"""Shared fixtures for the test suite."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.parameters import SystemParameters
from repro.core.types import PieceSet


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def flash_crowd_stable() -> SystemParameters:
    """K=3 flash crowd well inside the stability region (threshold Us=2)."""
    return SystemParameters.flash_crowd(
        num_pieces=3, arrival_rate=1.0, seed_rate=2.0, peer_rate=1.0
    )


@pytest.fixture
def flash_crowd_unstable() -> SystemParameters:
    """K=3 flash crowd well outside the stability region."""
    return SystemParameters.flash_crowd(
        num_pieces=3, arrival_rate=5.0, seed_rate=1.0, peer_rate=1.0
    )


@pytest.fixture
def example1_params() -> SystemParameters:
    """Example 1 parameters (K=1, dwelling peer seeds)."""
    return SystemParameters.single_piece(
        arrival_rate=1.0, seed_rate=2.0, peer_rate=1.0, seed_departure_rate=2.0
    )


@pytest.fixture
def example2_params() -> SystemParameters:
    """Example 2 parameters inside the stability region."""
    return SystemParameters.two_class_four_pieces(lambda_12=2.0, lambda_34=2.0)


@pytest.fixture
def example3_params() -> SystemParameters:
    """Example 3 parameters (symmetric, stable)."""
    return SystemParameters.one_piece_arrivals(
        (1.0, 1.0, 1.0), peer_rate=1.0, seed_departure_rate=2.0
    )


@pytest.fixture
def gifted_params() -> SystemParameters:
    """A mix in which some peers arrive holding piece 1 (gifted peers)."""
    return SystemParameters(
        num_pieces=3,
        seed_rate=0.5,
        peer_rate=1.0,
        seed_departure_rate=2.0,
        arrival_rates={
            PieceSet.empty(3): 1.0,
            PieceSet((1,), 3): 0.5,
            PieceSet((1, 2), 3): 0.25,
        },
    )
