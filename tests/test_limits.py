"""Tests for the mu = infinity watched process and the fluid limit."""

import math

import numpy as np
import pytest

from repro.core.parameters import SystemParameters
from repro.core.types import PieceSet
from repro.limits.fluid import FluidModel
from repro.limits.mu_infinity import (
    MuInfinityChain,
    finite_mu_symmetric_chain_simulation,
    negative_binomial_pmf,
)


class TestMuInfinityChain:
    def test_validation(self):
        with pytest.raises(ValueError):
            MuInfinityChain(num_pieces=1, arrival_rate_per_piece=1.0)
        with pytest.raises(ValueError):
            MuInfinityChain(num_pieces=3, arrival_rate_per_piece=0.0)

    def test_negative_binomial_pmf_sums_to_one(self):
        total = sum(negative_binomial_pmf(3, k) for k in range(200))
        assert total == pytest.approx(1.0, abs=1e-9)
        with pytest.raises(ValueError):
            negative_binomial_pmf(0, 1)

    def test_total_rate_from_any_state_is_arrival_rate(self):
        """Only arrivals trigger transitions of the watched process."""
        chain = MuInfinityChain(num_pieces=3, arrival_rate_per_piece=1.5)
        for state in ((0, 0), (1, 1), (4, 1), (4, 2), (30, 2)):
            total = sum(rate for rate, _ in chain.transitions(state))
            assert total == pytest.approx(chain.total_arrival_rate, rel=1e-6)

    def test_lower_layer_transitions(self):
        chain = MuInfinityChain(num_pieces=4, arrival_rate_per_piece=1.0)
        options = dict()
        for rate, target in chain.transitions((5, 2)):
            options[target] = options.get(target, 0.0) + rate
        assert options[(6, 2)] == pytest.approx(2.0)  # arrival with a held piece
        assert options[(6, 3)] == pytest.approx(2.0)  # arrival with a new piece

    def test_empty_state_transition(self):
        chain = MuInfinityChain(num_pieces=3, arrival_rate_per_piece=2.0)
        options = chain.transitions((0, 0))
        assert options == [(6.0, (1, 1))]

    def test_invalid_state_rejected(self):
        chain = MuInfinityChain(num_pieces=3, arrival_rate_per_piece=1.0)
        with pytest.raises(ValueError):
            chain.transitions((3, 5))

    def test_top_layer_outcomes_population_bounds(self):
        chain = MuInfinityChain(num_pieces=3, arrival_rate_per_piece=1.0)
        for rate, (population, pieces) in chain.transitions((6, 2)):
            assert rate > 0
            assert 1 <= population <= 7
            assert 1 <= pieces <= 2

    def test_top_layer_drift_is_zero(self):
        for num_pieces in (2, 3, 5):
            chain = MuInfinityChain(num_pieces=num_pieces, arrival_rate_per_piece=0.7)
            assert chain.top_layer_drift() == pytest.approx(0.0)

    def test_top_layer_mean_jump_zero_from_transitions(self):
        """The enumerated outcome distribution has (nearly) zero mean population change."""
        chain = MuInfinityChain(num_pieces=3, arrival_rate_per_piece=1.0)
        population = 40
        mean_change = sum(
            rate * (target[0] - population)
            for rate, target in chain.transitions((population, 2))
        )
        # Exactly zero up to the boundary effect, which is tiny for population 40.
        assert mean_change == pytest.approx(0.0, abs=1e-6)

    def test_simulation_runs(self):
        chain = MuInfinityChain(num_pieces=3, arrival_rate_per_piece=1.0)
        trajectory = chain.simulate(horizon=50.0, seed=0)
        assert trajectory.sample_values().min() >= 0

    def test_excursion_peaks_grow_with_sample_size(self):
        """Null recurrence: the running mean of excursion peaks keeps growing."""
        chain = MuInfinityChain(num_pieces=3, arrival_rate_per_piece=1.0)
        peaks = chain.excursion_peaks(600, seed=1)
        early = np.mean(peaks[:100])
        late = np.mean(peaks)
        assert late > early

    def test_excursion_peaks_heavy_tailed(self):
        """Peak sizes are heavy tailed: the maximum dwarfs the median."""
        chain = MuInfinityChain(num_pieces=3, arrival_rate_per_piece=1.0)
        peaks = np.array(chain.excursion_peaks(600, seed=42))
        assert np.max(peaks) > 30 * np.median(peaks)
        assert np.max(peaks) > 200

    def test_excursion_peaks_reproducible(self):
        chain = MuInfinityChain(num_pieces=3, arrival_rate_per_piece=1.0)
        assert chain.excursion_peaks(30, seed=5) == chain.excursion_peaks(30, seed=5)

    def test_finite_mu_simulation_wrapper(self):
        result = finite_mu_symmetric_chain_simulation(
            num_pieces=3,
            arrival_rate_per_piece=0.5,
            mu=1.0,
            horizon=30.0,
            seed=1,
            max_population=500,
        )
        assert result.metrics.total_arrivals > 0


class TestFluidModel:
    def test_stable_fluid_reaches_small_fixed_point(self, flash_crowd_stable):
        model = FluidModel(flash_crowd_stable)
        trajectory = model.integrate(horizon=200.0)
        mass = trajectory.total_mass()
        assert mass[-1] < 30
        # Mass stabilises: the last two samples are close.
        assert abs(mass[-1] - mass[-2]) < 0.5

    def test_unstable_fluid_quasi_stable_from_empty_start(self, flash_crowd_unstable):
        """The fluid limit from an empty start misses the missing piece syndrome.

        This reproduces the Section-IX remark: a provably transient system can
        look well behaved (a quasi-stable equilibrium) when the piece
        distribution stays symmetric — the instability is driven by the
        asymmetric one-club states, not by the symmetric fluid dynamics.
        """
        model = FluidModel(flash_crowd_unstable)
        trajectory = model.integrate(horizon=150.0)
        assert trajectory.total_mass()[-1] < 60

    def test_unstable_fluid_grows_from_one_club_start(self, flash_crowd_unstable):
        """Seeded with a large one club, the fluid one-club mass grows at ~lambda - Us."""
        club = PieceSet((2, 3), 3)
        model = FluidModel(flash_crowd_unstable)
        trajectory = model.integrate(horizon=30.0, initial={club: 200.0})
        mass = trajectory.mass_of(club)
        growth = (mass[-1] - mass[0]) / 30.0
        assert growth == pytest.approx(4.0, rel=0.4)
        # Total mass grows at essentially the same net rate.
        total = trajectory.total_mass()
        assert (total[-1] - total[0]) / 30.0 == pytest.approx(4.0, rel=0.2)

    def test_concentrations_stay_nonnegative(self, example3_params):
        model = FluidModel(example3_params)
        trajectory = model.integrate(horizon=80.0)
        assert (trajectory.concentrations >= -1e-9).all()

    def test_seed_dwell_creates_full_type_mass(self, example3_params):
        model = FluidModel(example3_params)
        trajectory = model.integrate(horizon=80.0)
        full_mass = trajectory.mass_of(PieceSet.full(3))
        assert full_mass[-1] > 0.1

    def test_initial_condition_respected(self, flash_crowd_stable):
        club = PieceSet((2, 3), 3)
        model = FluidModel(flash_crowd_stable)
        trajectory = model.integrate(horizon=50.0, initial={club: 40.0})
        assert trajectory.mass_of(club)[0] == pytest.approx(40.0)
        # The stable system drains the one club.
        assert trajectory.mass_of(club)[-1] < 10.0

    def test_invalid_horizon(self, flash_crowd_stable):
        with pytest.raises(ValueError):
            FluidModel(flash_crowd_stable).integrate(horizon=0.0)

    def test_final_state_mapping(self, flash_crowd_stable):
        model = FluidModel(flash_crowd_stable)
        trajectory = model.integrate(horizon=20.0)
        final = trajectory.final_state()
        assert set(final) == set(trajectory.type_order)
