"""Tests for the Section VIII-C faster-retry variant and other extensions."""

import math

import numpy as np
import pytest

from repro.core.parameters import SystemParameters
from repro.core.state import SystemState
from repro.core.types import PieceSet
from repro.swarm.swarm import SwarmSimulator, run_swarm


class TestFasterRetry:
    """Section VIII-C: speeding up the clock after an unsuccessful contact."""

    def test_speedup_increases_contact_attempts_in_one_club(self):
        """With a large one club most contacts are wasted; the faster retry
        multiplies the number of contact attempts per unit time (the behaviour
        the paper warns may violate the implicit upload constraint)."""
        # A transient configuration so the one club persists for the whole run
        # under either clock policy (threshold Us/(1-mu/gamma) = 1 < lambda).
        params = SystemParameters.flash_crowd(
            3, arrival_rate=3.0, seed_rate=0.5, peer_rate=1.0, seed_departure_rate=2.0
        )
        initial = SystemState.one_club(3, 60)

        def contact_attempts(speedup: float) -> tuple:
            simulator = SwarmSimulator(params, seed=21, retry_speedup=speedup)
            result = simulator.run(horizon=40.0, initial_state=initial)
            metrics = result.metrics
            return metrics.total_downloads + metrics.wasted_contacts, metrics.total_downloads

        baseline_attempts, baseline_downloads = contact_attempts(1.0)
        faster_attempts, faster_downloads = contact_attempts(8.0)
        assert faster_attempts > 1.5 * baseline_attempts
        # Useful work is not destroyed by the speedup (it mostly adds wasted
        # attempts, since club-to-club contacts stay useless).
        assert faster_downloads > 0.6 * baseline_downloads

    def test_speedup_does_not_change_stability_verdict_without_gifted_peers(self):
        """The paper notes that with no gifted peers the stability condition is
        unchanged; check both regimes empirically."""
        from repro.markov.classify import TrajectoryVerdict, classify_trajectory

        for arrival, expected in ((0.8, TrajectoryVerdict.STABLE), (4.0, TrajectoryVerdict.UNSTABLE)):
            params = SystemParameters.flash_crowd(3, arrival_rate=arrival, seed_rate=1.5)
            result = run_swarm(
                params, horizon=150.0, seed=22, retry_speedup=5.0, max_population=2500
            )
            classification = classify_trajectory(
                result.metrics.sample_times,
                result.metrics.population,
                arrival_rate=params.lambda_total,
            )
            assert classification.verdict is expected

    def test_speedup_state_is_cleared_on_departure(self):
        """Peers with a pending speedup can depart without corrupting the books."""
        params = SystemParameters.flash_crowd(2, arrival_rate=2.0, seed_rate=3.0)
        simulator = SwarmSimulator(params, seed=23, retry_speedup=10.0)
        result = simulator.run(horizon=80.0)
        metrics = result.metrics
        assert result.final_population == metrics.total_arrivals - metrics.total_departures
        assert result.final_population == sum(
            count for _type, count in result.final_state.items()
        )


class TestGiftedArrivalMixes:
    """Peers arriving with pieces (the paper's main generalisation over [9,10])."""

    def test_gifted_arrivals_can_replace_the_fixed_seed(self):
        """With enough peers arriving holding the rare piece, no seed is needed."""
        from repro.core.stability import analyze, Stability

        arrival_rates = {
            PieceSet.empty(3): 1.0,
            PieceSet((1,), 3): 0.5,
            PieceSet((2,), 3): 0.5,
            PieceSet((3,), 3): 0.5,
        }
        params = SystemParameters(
            num_pieces=3,
            seed_rate=0.0,
            peer_rate=1.0,
            seed_departure_rate=2.0,
            arrival_rates=arrival_rates,
        )
        assert analyze(params).verdict is Stability.STABLE
        result = run_swarm(params, horizon=250.0, seed=24, max_population=2500)
        assert result.metrics.peak_population < 100

    def test_gifted_peers_missing_the_rare_piece_do_not_help(self):
        """Arrivals carrying only non-rare pieces do not move the piece-1 threshold."""
        from repro.core.stability import piece_threshold

        base = SystemParameters.flash_crowd(3, arrival_rate=1.0, seed_rate=1.0,
                                            seed_departure_rate=2.0)
        with_gifts = base.with_arrival_rates(
            {PieceSet.empty(3): 0.5, PieceSet((2, 3), 3): 0.5}
        )
        assert piece_threshold(with_gifts, 1) == pytest.approx(piece_threshold(base, 1))
        assert piece_threshold(with_gifts, 2) > piece_threshold(base, 2)

    def test_peers_arriving_nearly_complete_depart_quickly(self):
        """Type F−{k} arrivals with a strong seed have short sojourns."""
        params = SystemParameters(
            num_pieces=3,
            seed_rate=4.0,
            peer_rate=1.0,
            seed_departure_rate=math.inf,
            arrival_rates={PieceSet((2, 3), 3): 1.0},
        )
        result = run_swarm(params, horizon=200.0, seed=25)
        assert result.metrics.mean_download_time() < 3.0
        assert result.metrics.peak_population < 30
