"""Unit tests for the exact truncated-chain computations."""

import numpy as np
import pytest

from repro.core.generator import TruncatedChain, build_truncated_chain, enumerate_states
from repro.core.parameters import SystemParameters
from repro.core.state import SystemState
from repro.core.types import PieceSet


@pytest.fixture
def small_chain(example1_params) -> TruncatedChain:
    return build_truncated_chain(example1_params, max_peers=6)


class TestEnumeration:
    def test_empty_state_first(self, example1_params):
        states = enumerate_states(example1_params, max_peers=4)
        assert states[0] == SystemState.empty(1)

    def test_population_cap_respected(self, example1_params):
        states = enumerate_states(example1_params, max_peers=4)
        assert all(s.total_peers <= 4 for s in states)

    def test_single_piece_state_count(self, example1_params):
        """K=1 with peer seeds: states are (x_empty, x_F) with sum <= n_max."""
        states = enumerate_states(example1_params, max_peers=5)
        expected = sum(n + 1 for n in range(6))  # pairs with x0 + xF = n
        assert len(states) == expected

    def test_flash_crowd_k2_states(self):
        params = SystemParameters.flash_crowd(2, 1.0, 1.0)
        states = enumerate_states(params, max_peers=3)
        # gamma = inf: types are {}, {1}, {2} -> multisets of size <= 3.
        assert all(s.count(PieceSet.full(2)) == 0 for s in states)

    def test_initial_state_beyond_cap_rejected(self, example1_params):
        with pytest.raises(ValueError):
            enumerate_states(
                example1_params, max_peers=2, initial=SystemState.one_club(1, 5, 1)
            )

    def test_custom_initial_state_included(self):
        params = SystemParameters.flash_crowd(2, 1.0, 1.0)
        start = SystemState({PieceSet((1,), 2): 2}, 2)
        states = enumerate_states(params, max_peers=3, initial=start)
        assert start in states
        assert states[0] == SystemState.empty(2)


class TestGeneratorMatrix:
    def test_rows_sum_to_zero(self, small_chain):
        sums = np.asarray(small_chain.generator.sum(axis=1)).ravel()
        assert np.allclose(sums, 0.0, atol=1e-10)

    def test_off_diagonal_nonnegative(self, small_chain):
        dense = small_chain.generator.toarray()
        off_diagonal = dense - np.diag(np.diag(dense))
        assert (off_diagonal >= -1e-12).all()

    def test_index_consistent(self, small_chain):
        for i, state in enumerate(small_chain.states):
            assert small_chain.index[state] == i


class TestStationaryDistribution:
    def test_normalised_and_nonnegative(self, small_chain):
        pi = small_chain.stationary_distribution()
        assert pi.shape == (small_chain.num_states,)
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= 0).all()

    def test_balance_equations(self, small_chain):
        pi = small_chain.stationary_distribution()
        residual = pi @ small_chain.generator.toarray()
        assert np.allclose(residual, 0.0, atol=1e-8)

    def test_expected_population_monotone_in_arrival_rate(self):
        populations = []
        for arrival in (0.5, 1.0, 1.5):
            params = SystemParameters.single_piece(
                arrival_rate=arrival, seed_rate=2.0, seed_departure_rate=2.0
            )
            chain = build_truncated_chain(params, max_peers=10)
            populations.append(chain.expected_population())
        assert populations[0] < populations[1] < populations[2]

    def test_occupancy_by_type_sums_to_population(self, small_chain):
        pi = small_chain.stationary_distribution()
        occupancy = small_chain.occupancy_by_type(pi)
        assert sum(occupancy.values()) == pytest.approx(
            small_chain.expected_population(pi)
        )

    def test_k1_matches_simple_birth_death_structure(self):
        """With Us large and lambda small the system is almost always nearly empty."""
        params = SystemParameters.single_piece(
            arrival_rate=0.1, seed_rate=10.0, seed_departure_rate=10.0
        )
        chain = build_truncated_chain(params, max_peers=8)
        pi = chain.stationary_distribution()
        empty_index = chain.index[SystemState.empty(1)]
        assert pi[empty_index] > 0.8


class TestHittingTimes:
    def test_time_from_empty_is_zero(self, small_chain):
        assert small_chain.mean_hitting_time_to_empty(SystemState.empty(1)) == 0.0

    def test_time_positive_from_loaded_state(self, small_chain):
        state = SystemState({PieceSet.empty(1): 2}, 1)
        assert small_chain.mean_hitting_time_to_empty(state) > 0.0

    def test_time_monotone_in_load(self, small_chain):
        light = SystemState({PieceSet.empty(1): 1}, 1)
        heavy = SystemState({PieceSet.empty(1): 4}, 1)
        assert small_chain.mean_hitting_time_to_empty(
            heavy
        ) > small_chain.mean_hitting_time_to_empty(light)

    def test_unknown_state_rejected(self, small_chain):
        with pytest.raises(ValueError):
            small_chain.mean_hitting_time_to_empty(SystemState.one_club(1, 50, 1))

    def test_unstable_parameters_give_longer_recovery(self):
        stable = SystemParameters.single_piece(1.0, seed_rate=2.0, seed_departure_rate=2.0)
        unstable = SystemParameters.single_piece(6.0, seed_rate=2.0, seed_departure_rate=2.0)
        start_stable = SystemState({PieceSet.empty(1): 5}, 1)
        chain_stable = build_truncated_chain(stable, max_peers=12)
        chain_unstable = build_truncated_chain(unstable, max_peers=12)
        time_stable = chain_stable.mean_hitting_time_to_empty(start_stable)
        time_unstable = chain_unstable.mean_hitting_time_to_empty(start_stable)
        assert time_unstable > time_stable
