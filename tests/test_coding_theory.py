"""Unit tests for the Theorem-15 network-coding stability conditions."""

import math

import pytest

from repro.core.coding_theory import (
    CodedArrivalClass,
    coded_stability,
    gifted_example_report,
    gifted_fraction_thresholds,
    gifted_fraction_thresholds_exact,
    mu_tilde,
    paper_example_table,
    uncoded_gifted_is_transient,
    useful_probability,
)


class TestBasics:
    def test_mu_tilde(self):
        assert mu_tilde(1.0, 2) == pytest.approx(0.5)
        assert mu_tilde(2.0, 64) == pytest.approx(2.0 * 63 / 64)
        with pytest.raises(ValueError):
            mu_tilde(1.0, 1)
        with pytest.raises(ValueError):
            mu_tilde(0.0, 4)

    def test_useful_probability(self):
        # V_B not contained in V_A: probability at least 1 - 1/q.
        assert useful_probability(0, 1, 2) == pytest.approx(0.5)
        assert useful_probability(1, 2, 4) == pytest.approx(1 - 0.25)
        # V_B contained in V_A: never useful.
        assert useful_probability(2, 2, 4) == 0.0
        assert useful_probability(0, 0, 4) == 0.0
        with pytest.raises(ValueError):
            useful_probability(3, 2, 4)

    def test_arrival_class_validation(self):
        with pytest.raises(ValueError):
            CodedArrivalClass(rate=-1.0, dimension=0, outside_worst_hyperplane_fraction=0.0)
        with pytest.raises(ValueError):
            CodedArrivalClass(rate=1.0, dimension=-1, outside_worst_hyperplane_fraction=0.0)
        with pytest.raises(ValueError):
            CodedArrivalClass(rate=1.0, dimension=0, outside_worst_hyperplane_fraction=1.5)


class TestWorkedExample:
    def test_paper_numbers_q64_k200(self):
        """The paper quotes thresholds 1.014/K and 1.032/K for q=64, K=200."""
        table = paper_example_table(q=64, num_pieces=200)
        assert table["transient_below_times_K"] == pytest.approx(1.0159, abs=2e-3)
        assert table["recurrent_above_times_K"] == pytest.approx(1.0321, abs=2e-3)
        assert table["transient_below"] == pytest.approx(0.00507, abs=5e-5)
        assert table["recurrent_above"] == pytest.approx(0.00516, abs=5e-5)

    def test_thresholds_ordering(self):
        for num_pieces, q in ((10, 2), (50, 7), (200, 64)):
            lower, upper = gifted_fraction_thresholds(num_pieces, q)
            assert 0 < lower < upper < 1

    def test_gap_shrinks_with_q(self):
        gaps = []
        for q in (2, 8, 64, 1024):
            lower, upper = gifted_fraction_thresholds(100, q)
            gaps.append(upper - lower)
        assert all(later <= earlier for earlier, later in zip(gaps, gaps[1:]))

    def test_exact_thresholds_close_to_paper_form(self):
        lower, upper = gifted_fraction_thresholds(200, 64)
        lower_exact, upper_exact = gifted_fraction_thresholds_exact(200, 64)
        assert lower_exact == pytest.approx(lower, rel=1e-9)
        assert upper_exact == pytest.approx(upper, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            gifted_fraction_thresholds(0, 4)
        with pytest.raises(ValueError):
            gifted_fraction_thresholds_exact(10, 1)

    def test_report_transient_below_threshold(self):
        lower, _ = gifted_fraction_thresholds(50, 8)
        report = gifted_example_report(50, 8, gifted_fraction=lower * 0.5)
        assert report.is_transient
        assert not report.is_positive_recurrent

    def test_report_recurrent_above_threshold(self):
        _, upper = gifted_fraction_thresholds_exact(50, 8)
        report = gifted_example_report(50, 8, gifted_fraction=min(1.0, upper * 1.5))
        assert report.is_positive_recurrent
        assert not report.is_transient

    def test_report_fraction_validation(self):
        with pytest.raises(ValueError):
            gifted_example_report(10, 4, gifted_fraction=1.5)

    def test_uncoded_always_transient_below_one(self):
        assert uncoded_gifted_is_transient(0.99)
        assert uncoded_gifted_is_transient(0.0)
        assert not uncoded_gifted_is_transient(1.0)


class TestGeneralConditions:
    def test_coded_stability_with_seed_only(self):
        """With only empty arrivals, the coded thresholds mirror Theorem 1."""
        classes = (
            CodedArrivalClass(rate=1.0, dimension=0, outside_worst_hyperplane_fraction=0.0),
        )
        report = coded_stability(
            num_pieces=4, q=16, seed_rate=2.0, mu=1.0, gamma=math.inf, arrival_classes=classes
        )
        assert report.transience_threshold == pytest.approx(2.0)
        # Recurrence threshold shrinks by the (1 - 1/q) factor.
        assert report.recurrence_threshold == pytest.approx(2.0 * (1 - 1 / 16))
        assert report.recurrence_threshold < report.transience_threshold

    def test_thresholds_scale_with_gifted_rate(self):
        def make(rate):
            return coded_stability(
                num_pieces=10,
                q=8,
                seed_rate=0.0,
                mu=1.0,
                gamma=math.inf,
                arrival_classes=(
                    CodedArrivalClass(rate=1.0, dimension=0, outside_worst_hyperplane_fraction=0.0),
                    CodedArrivalClass(
                        rate=rate, dimension=1, outside_worst_hyperplane_fraction=1 - 1 / 8
                    ),
                ),
            )

        small = make(0.1)
        large = make(0.4)
        assert large.recurrence_threshold > small.recurrence_threshold
        assert large.transience_threshold > small.transience_threshold

    def test_gamma_le_mu_tilde_degenerates(self):
        classes = (
            CodedArrivalClass(rate=1.0, dimension=0, outside_worst_hyperplane_fraction=0.0),
        )
        report = coded_stability(
            num_pieces=4, q=4, seed_rate=1.0, mu=1.0, gamma=0.5, arrival_classes=classes
        )
        assert math.isinf(report.recurrence_threshold)
        assert report.is_positive_recurrent

    def test_validation(self):
        with pytest.raises(ValueError):
            coded_stability(0, 4, 1.0, 1.0, math.inf, ())
        with pytest.raises(ValueError):
            coded_stability(4, 1, 1.0, 1.0, math.inf, ())
