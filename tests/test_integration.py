"""Integration tests: cross-checks between theory, the exact chain, and the simulators."""

import math

import numpy as np
import pytest

from repro.core.generator import build_truncated_chain
from repro.core.parameters import SystemParameters
from repro.core.stability import Stability, analyze
from repro.core.state import SystemState
from repro.core.transitions import outgoing_transitions
from repro.core.types import PieceSet
from repro.markov.classify import TrajectoryVerdict, classify_trajectory
from repro.simulation.ctmc import MarkovChainSimulator
from repro.swarm.swarm import SwarmSimulator, run_swarm


class TestSimulatorConsistency:
    """The jump-chain simulator and the peer-level simulator realise the same model."""

    def test_mean_population_agreement_small_system(self):
        """CTMC simulation, swarm simulation, and the exact truncation agree on E[N]."""
        params = SystemParameters.single_piece(
            arrival_rate=0.8, seed_rate=2.0, peer_rate=1.0, seed_departure_rate=2.0
        )
        # Exact value from a generous truncation.
        chain = build_truncated_chain(params, max_peers=25)
        exact = chain.expected_population()

        ctmc_means = []
        swarm_means = []
        for seed in range(4):
            ctmc = MarkovChainSimulator(params).run(horizon=800.0, seed=seed)
            values = ctmc.sample_values()
            ctmc_means.append(values[len(values) // 4 :].mean())
            swarm = run_swarm(params, horizon=800.0, seed=100 + seed)
            population = np.asarray(swarm.metrics.population, dtype=float)
            swarm_means.append(population[len(population) // 4 :].mean())
        assert np.mean(ctmc_means) == pytest.approx(exact, rel=0.2)
        assert np.mean(swarm_means) == pytest.approx(exact, rel=0.2)

    def test_swarm_state_transitions_match_model_reachability(self, gifted_params):
        """Every type observed in the swarm is reachable in the exact model."""
        result = run_swarm(gifted_params, horizon=60.0, seed=5)
        reachable_types = set(gifted_params.arrival_rates)
        # Closure under adding pieces (uploads only add pieces).
        frontier = list(reachable_types)
        while frontier:
            current = frontier.pop()
            for piece in current.missing():
                bigger = current.add(piece)
                if bigger not in reachable_types:
                    reachable_types.add(bigger)
                    frontier.append(bigger)
        for peer_type, _ in result.final_state.items():
            assert peer_type in reachable_types

    def test_exit_rates_match_between_model_and_swarm_census(self, flash_crowd_stable):
        """The swarm's aggregate event rates match the model's total exit rate."""
        simulator = SwarmSimulator(flash_crowd_stable, seed=3)
        simulator.seed_population(
            SystemState({PieceSet.empty(3): 3, PieceSet((1, 2), 3): 2}, 3)
        )
        state = simulator.current_state()
        model_rate = sum(t.rate for t in outgoing_transitions(state, flash_crowd_stable))
        arrival, seed_tick, peer_tick, seed_departure = simulator._event_rates()
        # The swarm's raw event rate counts wasted contacts too, so it upper
        # bounds the model's exit rate (which only counts useful transfers).
        assert arrival + seed_tick + peer_tick + seed_departure >= model_rate - 1e-9
        # Arrival components match exactly.
        assert arrival == pytest.approx(flash_crowd_stable.lambda_total)


class TestTheoremOneEndToEnd:
    """Theory vs. simulation on both sides of the stability boundary."""

    @pytest.mark.parametrize(
        "params, expected",
        [
            (SystemParameters.flash_crowd(3, 1.0, 2.0), Stability.STABLE),
            (SystemParameters.flash_crowd(3, 5.0, 1.0), Stability.UNSTABLE),
            (
                SystemParameters.single_piece(6.0, seed_rate=1.0, seed_departure_rate=2.0),
                Stability.UNSTABLE,
            ),
            (
                SystemParameters.one_piece_arrivals((1.0, 1.0, 1.0), seed_departure_rate=2.0),
                Stability.STABLE,
            ),
        ],
    )
    def test_simulation_matches_theory(self, params, expected):
        report = analyze(params)
        assert report.verdict is expected
        result = run_swarm(params, horizon=200.0, seed=7, max_population=3000)
        classification = classify_trajectory(
            result.metrics.sample_times,
            result.metrics.population,
            arrival_rate=params.lambda_total,
        )
        if expected is Stability.STABLE:
            assert classification.verdict is TrajectoryVerdict.STABLE
        else:
            assert classification.verdict is TrajectoryVerdict.UNSTABLE

    def test_missing_piece_syndrome_mechanism(self):
        """In the transient regime the rare piece stays rare while the club grows."""
        params = SystemParameters.flash_crowd(3, arrival_rate=4.0, seed_rate=0.5)
        simulator = SwarmSimulator(params, seed=8, track_groups=True)
        result = simulator.run(
            horizon=120.0,
            initial_state=SystemState.one_club(3, 50),
            max_population=3000,
        )
        snapshots = result.metrics.group_snapshots
        final = snapshots[-1]
        # The one club plus former one-club peers dominate the population.
        assert final.one_club_fraction > 0.8
        # The one club grew compared to the start.
        assert final.one_club > 50

    def test_peer_seed_dwell_rescues_system(self):
        """The headline corollary, end to end: gamma <= mu stabilises the swarm."""
        base = SystemParameters.flash_crowd(3, arrival_rate=2.5, seed_rate=0.2)
        assert analyze(base).verdict is Stability.UNSTABLE
        rescued = base.with_departure_rate(0.5)
        assert analyze(rescued).verdict is Stability.STABLE
        grown = run_swarm(base, horizon=200.0, seed=9, max_population=3000)
        contained = run_swarm(rescued, horizon=200.0, seed=9, max_population=3000)
        assert grown.final_population > 4 * max(contained.final_population, 1)

    def test_policy_choice_does_not_change_verdict(self):
        """Theorem 14 end to end, on one stable and one unstable point."""
        from repro.swarm.policies import make_policy

        points = {
            Stability.STABLE: SystemParameters.flash_crowd(3, 0.8, 1.5),
            Stability.UNSTABLE: SystemParameters.flash_crowd(3, 4.0, 1.0),
        }
        for expected, params in points.items():
            for policy_name in ("random-useful", "rarest-first", "sequential"):
                result = run_swarm(
                    params,
                    horizon=150.0,
                    seed=12,
                    policy=make_policy(policy_name),
                    max_population=2500,
                )
                classification = classify_trajectory(
                    result.metrics.sample_times,
                    result.metrics.population,
                    arrival_rate=params.lambda_total,
                )
                if expected is Stability.STABLE:
                    assert classification.verdict is TrajectoryVerdict.STABLE
                else:
                    assert classification.verdict is TrajectoryVerdict.UNSTABLE

    def test_truncated_chain_recovery_time_tracks_stability_margin(self):
        """Exact recovery times grow sharply as the boundary is approached."""
        arrivals = (0.5, 1.5, 2.5)
        times = []
        for arrival in arrivals:
            params = SystemParameters.single_piece(
                arrival_rate=arrival, seed_rate=2.0, seed_departure_rate=2.0
            )
            chain = build_truncated_chain(params, max_peers=14)
            start = SystemState({PieceSet.empty(1): 8}, 1)
            times.append(chain.mean_hitting_time_to_empty(start))
        assert times[0] < times[1] < times[2]
