"""Unit tests for the simulation substrates (rng, engine, processes, ctmc)."""

import math

import numpy as np
import pytest

from repro.simulation.ctmc import GenericCtmcSimulator, MarkovChainSimulator
from repro.simulation.engine import EventLoop, PoissonClock
from repro.simulation.processes import (
    CompoundPoissonProcess,
    MarkedPoissonProcess,
    kingman_exceedance_bound,
    thin_poisson_times,
)
from repro.simulation.rng import (
    exponential,
    make_rng,
    poisson_arrival_times,
    spawn_generators,
)
from repro.core.parameters import SystemParameters
from repro.core.state import SystemState


class TestRng:
    def test_make_rng_from_int_is_deterministic(self):
        a = make_rng(42).integers(0, 1000, size=5)
        b = make_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_make_rng_passthrough(self):
        rng = np.random.default_rng(1)
        assert make_rng(rng) is rng

    def test_spawn_generators_independent_and_reproducible(self):
        first = [g.integers(0, 10**6) for g in spawn_generators(7, 3)]
        second = [g.integers(0, 10**6) for g in spawn_generators(7, 3)]
        assert first == second
        assert len(set(first)) == 3

    def test_spawn_generators_count_validation(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)
        assert spawn_generators(1, 0) == []

    def test_exponential_zero_rate_is_infinite(self, rng):
        assert math.isinf(exponential(rng, 0.0))
        with pytest.raises(ValueError):
            exponential(rng, -1.0)

    def test_exponential_mean(self, rng):
        samples = [exponential(rng, 4.0) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(0.25, rel=0.1)

    def test_poisson_arrival_times_sorted_within_horizon(self, rng):
        times = poisson_arrival_times(rng, rate=3.0, horizon=50.0)
        assert (np.diff(times) >= 0).all()
        assert times.min() >= 0 and times.max() <= 50.0

    def test_poisson_arrival_count_mean(self, rng):
        counts = [poisson_arrival_times(rng, 2.0, 10.0).size for _ in range(300)]
        assert np.mean(counts) == pytest.approx(20.0, rel=0.1)

    def test_poisson_zero_rate(self, rng):
        assert poisson_arrival_times(rng, 0.0, 10.0).size == 0


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(2.0, lambda: fired.append("b"))
        loop.schedule(1.0, lambda: fired.append("a"))
        loop.schedule(3.0, lambda: fired.append("c"))
        loop.run_until(10.0)
        assert fired == ["a", "b", "c"]
        assert loop.now == 10.0

    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        loop.run_until(5.0)
        assert fired == []
        assert handle.is_cancelled

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        loop = EventLoop(start_time=5.0)
        fired = []
        loop.schedule_at(7.0, lambda: fired.append(loop.now))
        with pytest.raises(ValueError):
            loop.schedule_at(4.0, lambda: None)
        loop.run_until(10.0)
        assert fired == [7.0]

    def test_infinite_delay_never_fires(self):
        loop = EventLoop()
        handle = loop.schedule(math.inf, lambda: None)
        assert handle.is_cancelled
        assert loop.peek_time() == math.inf

    def test_run_until_respects_max_events(self):
        loop = EventLoop()
        for i in range(10):
            loop.schedule(0.1 * (i + 1), lambda: None)
        executed = loop.run_until(100.0, max_events=4)
        assert executed == 4

    def test_events_scheduled_during_events(self):
        loop = EventLoop()
        fired = []

        def chain():
            fired.append(loop.now)
            if len(fired) < 3:
                loop.schedule(1.0, chain)

        loop.schedule(1.0, chain)
        loop.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]


class TestPoissonClock:
    def test_tick_rate_approximates_rate(self, rng):
        loop = EventLoop()
        ticks = []
        clock = PoissonClock(loop, rng, rate=5.0, on_tick=lambda: ticks.append(loop.now))
        clock.start()
        loop.run_until(200.0)
        assert len(ticks) == pytest.approx(1000, rel=0.15)

    def test_stop_prevents_future_ticks(self, rng):
        loop = EventLoop()
        ticks = []
        clock = PoissonClock(loop, rng, rate=10.0, on_tick=lambda: ticks.append(1))
        clock.start()
        loop.run_until(5.0)
        count = len(ticks)
        clock.stop()
        loop.run_until(50.0)
        assert len(ticks) == count
        assert not clock.is_running

    def test_zero_rate_never_ticks(self, rng):
        loop = EventLoop()
        ticks = []
        clock = PoissonClock(loop, rng, rate=0.0, on_tick=lambda: ticks.append(1))
        clock.start()
        loop.run_until(100.0)
        assert ticks == []

    def test_set_rate_changes_frequency(self, rng):
        loop = EventLoop()
        ticks = []
        clock = PoissonClock(loop, rng, rate=1.0, on_tick=lambda: ticks.append(loop.now))
        clock.start()
        loop.run_until(50.0)
        slow_count = len(ticks)
        clock.set_rate(20.0)
        loop.run_until(100.0)
        fast_count = len(ticks) - slow_count
        assert fast_count > 5 * max(slow_count, 1)

    def test_negative_rate_rejected(self, rng):
        loop = EventLoop()
        with pytest.raises(ValueError):
            PoissonClock(loop, rng, rate=-1.0, on_tick=lambda: None)


class TestProcesses:
    def test_compound_poisson_cumulative(self, rng):
        process = CompoundPoissonProcess.with_constant_batches(rate=2.0, batch=3.0)
        sample = process.sample(horizon=100.0, seed=rng)
        cumulative = sample.cumulative_at([0.0, 50.0, 100.0])
        assert cumulative[0] == 0.0
        assert cumulative[-1] == pytest.approx(sample.total)
        assert (np.diff(cumulative) >= 0).all()

    def test_compound_poisson_mean_rate(self):
        process = CompoundPoissonProcess.with_constant_batches(rate=2.0, batch=3.0)
        assert process.mean_rate() == pytest.approx(6.0)

    def test_kingman_bound_properties(self):
        bound = kingman_exceedance_bound(1.0, 2.0, 6.0, offset=20.0, slope=3.0)
        assert 0 <= bound <= 1
        # Larger offset gives a smaller bound.
        tighter = kingman_exceedance_bound(1.0, 2.0, 6.0, offset=40.0, slope=3.0)
        assert tighter <= bound
        # Slope below the drift makes the bound vacuous.
        assert kingman_exceedance_bound(1.0, 2.0, 6.0, offset=20.0, slope=1.0) == 1.0

    def test_thinning_keeps_subset(self, rng):
        times = np.linspace(0, 10, 100)
        kept = thin_poisson_times(times, 0.3, rng)
        assert set(kept).issubset(set(times))
        assert kept.size < times.size
        with pytest.raises(ValueError):
            thin_poisson_times(times, 1.5, rng)

    def test_marked_poisson_superposition(self, rng):
        process = MarkedPoissonProcess({"a": 1.0, "b": 3.0})
        events = process.sample(horizon=200.0, seed=rng)
        times = [t for t, _ in events]
        assert times == sorted(times)
        marks = [m for _, m in events]
        ratio = marks.count("b") / max(marks.count("a"), 1)
        assert ratio == pytest.approx(3.0, rel=0.3)

    def test_marked_poisson_next_mark(self, rng):
        process = MarkedPoissonProcess({"a": 2.0})
        wait, mark = process.next_mark(rng)
        assert wait > 0 and mark == "a"
        empty = MarkedPoissonProcess({})
        wait, mark = empty.next_mark(rng)
        assert math.isinf(wait) and mark is None

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            MarkedPoissonProcess({"a": -1.0})
        with pytest.raises(ValueError):
            CompoundPoissonProcess(-1.0, lambda rng, n: np.ones(n))


class TestGenericCtmc:
    def test_two_state_chain_occupancy(self):
        """A symmetric two-state chain spends about half its time in each state."""
        transitions = {0: [(1.0, 1)], 1: [(1.0, 0)]}
        simulator = GenericCtmcSimulator(lambda s: transitions[s], observe=float)
        trajectory = simulator.run(0, horizon=2000.0, seed=3, sample_interval=1.0)
        assert trajectory.sample_values().mean() == pytest.approx(0.5, abs=0.05)

    def test_absorbing_state_stops_jumps(self):
        transitions = {0: [(1.0, 1)], 1: []}
        simulator = GenericCtmcSimulator(lambda s: transitions[s])
        trajectory = simulator.run(0, horizon=100.0, seed=1)
        assert trajectory.final_state == 1
        assert trajectory.total_jumps == 1

    def test_stop_condition(self):
        transitions = {i: [(1.0, i + 1)] for i in range(100)}
        simulator = GenericCtmcSimulator(lambda s: transitions.get(s, []))
        trajectory = simulator.run(
            0, horizon=1e6, seed=2, stop_condition=lambda s: s >= 5
        )
        assert trajectory.final_state == 5

    def test_max_jumps_cap(self):
        transitions = {0: [(1.0, 0)]}
        simulator = GenericCtmcSimulator(lambda s: transitions[s])
        trajectory = simulator.run(0, horizon=1e9, seed=4, max_jumps=10)
        assert trajectory.total_jumps == 10

    def test_invalid_horizon(self):
        simulator = GenericCtmcSimulator(lambda s: [])
        with pytest.raises(ValueError):
            simulator.run(0, horizon=0.0)

    def test_record_jumps(self):
        transitions = {0: [(1.0, 1)], 1: [(1.0, 0)]}
        simulator = GenericCtmcSimulator(lambda s: transitions[s])
        trajectory = simulator.run(0, horizon=10.0, seed=5, record_jumps=True)
        assert len(trajectory.jumps) == trajectory.total_jumps


class TestMarkovChainSimulator:
    def test_population_observable(self, flash_crowd_stable):
        simulator = MarkovChainSimulator(flash_crowd_stable)
        trajectory = simulator.run(horizon=100.0, seed=0)
        values = trajectory.sample_values()
        assert values.min() >= 0
        assert trajectory.final_state.total_peers >= 0

    def test_stable_system_stays_bounded(self, flash_crowd_stable):
        simulator = MarkovChainSimulator(flash_crowd_stable)
        trajectory = simulator.run(horizon=300.0, seed=1)
        assert trajectory.sample_values().max() < 60

    def test_unstable_system_grows(self, flash_crowd_unstable):
        simulator = MarkovChainSimulator(flash_crowd_unstable)
        trajectory = simulator.run(horizon=150.0, seed=2)
        values = trajectory.sample_values()
        assert values[-1] > 100
        # Roughly linear growth at rate close to lambda - Us.
        slope = values[-1] / trajectory.sample_times()[-1]
        assert slope == pytest.approx(4.0, rel=0.4)

    def test_custom_observable(self, flash_crowd_unstable):
        simulator = MarkovChainSimulator(flash_crowd_unstable)
        trajectory = simulator.run(
            horizon=80.0,
            seed=3,
            observe=lambda state: float(state.one_club_size()),
        )
        assert trajectory.sample_values().max() >= 0

    def test_custom_initial_state(self, flash_crowd_stable):
        start = SystemState.one_club(3, 30)
        simulator = MarkovChainSimulator(flash_crowd_stable)
        trajectory = simulator.run(initial_state=start, horizon=5.0, seed=4)
        assert trajectory.initial_state == start
