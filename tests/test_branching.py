"""Unit tests for the autonomous-branching-system analysis (Section VI)."""

import math

import numpy as np
import pytest

from repro.core.branching import (
    BranchingParameters,
    abs_download_rate,
    gifted_amplification,
    one_club_drift,
    seed_amplification,
    simulate_total_progeny,
)
from repro.core.parameters import SystemParameters
from repro.core.stability import delta_s
from repro.core.types import PieceSet


class TestBranchingParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            BranchingParameters(num_pieces=0, mu_over_gamma=0.5)
        with pytest.raises(ValueError):
            BranchingParameters(num_pieces=3, mu_over_gamma=0.5, xi=1.0)
        with pytest.raises(ValueError):
            BranchingParameters(num_pieces=3, mu_over_gamma=-0.1)

    def test_from_system(self, example3_params):
        branching = BranchingParameters.from_system(example3_params)
        assert branching.num_pieces == 3
        assert branching.mu_over_gamma == pytest.approx(0.5)

    def test_subcriticality_condition(self):
        assert BranchingParameters(3, 0.5, xi=0.0).is_subcritical()
        assert not BranchingParameters(3, 1.0, xi=0.0).is_subcritical()
        assert not BranchingParameters(3, 0.5, xi=0.5).is_subcritical()

    def test_offspring_matrix_rank_one(self):
        matrix = BranchingParameters(4, 0.3, xi=0.1).offspring_matrix()
        assert np.linalg.matrix_rank(matrix) == 1

    def test_spectral_radius_below_one_iff_subcritical(self):
        for ratio, xi in ((0.3, 0.0), (0.3, 0.05), (0.9, 0.0), (0.99, 0.2)):
            branching = BranchingParameters(3, ratio, xi=xi)
            radius = branching.spectral_radius()
            assert (radius < 1.0) == branching.is_subcritical()

    def test_mean_descendants_limit_as_xi_zero(self):
        """At xi = 0, m_b -> K/(1-mu/gamma) and m_f -> 1/(1-mu/gamma)."""
        branching = BranchingParameters(num_pieces=5, mu_over_gamma=0.4, xi=0.0)
        m_b, m_f = branching.mean_descendants()
        assert m_b == pytest.approx(5 / 0.6)
        assert m_f == pytest.approx(1 / 0.6)

    def test_mean_descendants_monotone_in_xi(self):
        previous = None
        for xi in (0.0, 0.01, 0.05):
            m_b, m_f = BranchingParameters(3, 0.5, xi=xi).mean_descendants()
            if previous is not None:
                assert m_b >= previous[0]
                assert m_f >= previous[1]
            previous = (m_b, m_f)

    def test_mean_descendants_raises_when_supercritical(self):
        with pytest.raises(ValueError):
            BranchingParameters(3, 1.2).mean_descendants()

    def test_fixed_point_equation(self):
        """(m_b, m_f) solves m = 1 + M m."""
        branching = BranchingParameters(num_pieces=4, mu_over_gamma=0.3, xi=0.05)
        m = np.array(branching.mean_descendants())
        matrix = branching.offspring_matrix()
        assert np.allclose(m, 1.0 + matrix @ m)

    def test_gifted_descendants_limit(self):
        branching = BranchingParameters(num_pieces=4, mu_over_gamma=0.25, xi=0.0)
        # (K - |C| + mu/gamma) / (1 - mu/gamma) with |C| = 1
        assert branching.mean_descendants_gifted(1) == pytest.approx((3 + 0.25) / 0.75)

    def test_gifted_descendants_range_check(self):
        branching = BranchingParameters(3, 0.5)
        with pytest.raises(ValueError):
            branching.mean_descendants_gifted(4)


class TestAmplificationFactors:
    def test_seed_amplification(self, example3_params):
        assert seed_amplification(example3_params) == pytest.approx(2.0)

    def test_seed_amplification_infinite_when_gamma_le_mu(self):
        params = SystemParameters.flash_crowd(
            2, 1.0, 1.0, peer_rate=1.0, seed_departure_rate=1.0
        )
        assert math.isinf(seed_amplification(params))

    def test_gifted_amplification(self, example3_params):
        # (K - |C| + mu/gamma)/(1 - mu/gamma) = (3 - 1 + 0.5)/0.5 = 5
        assert gifted_amplification(example3_params, 1) == pytest.approx(5.0)

    def test_one_club_drift_equals_delta(self, gifted_params):
        """The branching heuristic reproduces Delta_{F-{1}} exactly."""
        drift = one_club_drift(gifted_params, missing_piece=1)
        delta = delta_s(gifted_params, PieceSet.full(3).remove(1))
        assert drift == pytest.approx(delta)

    def test_one_club_drift_example3(self):
        params = SystemParameters.one_piece_arrivals(
            (4.0, 4.0, 0.5), seed_departure_rate=2.0
        )
        # lambda_1 + lambda_2 - lambda_3 (2 + mu/gamma)/(1 - mu/gamma) = 8 - 2.5
        assert one_club_drift(params, missing_piece=3) == pytest.approx(8.0 - 0.5 * 5.0)

    def test_one_club_drift_negative_infinite_when_gamma_le_mu(self):
        params = SystemParameters.flash_crowd(
            2, 5.0, 0.1, peer_rate=1.0, seed_departure_rate=0.5
        )
        assert one_club_drift(params) == -math.inf

    def test_abs_download_rate_limit(self, gifted_params):
        """At xi=0 the ABS rate is the amplified injection rate of piece one."""
        expected = (
            gifted_params.seed_rate
            + 0.5 * (3 - 1 + 0.5)
            + 0.25 * (3 - 2 + 0.5)
        ) / 0.5
        assert abs_download_rate(gifted_params, 1, xi=0.0) == pytest.approx(expected)

    def test_abs_download_rate_increases_with_xi(self, gifted_params):
        assert abs_download_rate(gifted_params, 1, xi=0.02) > abs_download_rate(
            gifted_params, 1, xi=0.0
        )


class TestBranchingSimulation:
    def test_simulated_mean_close_to_formula(self, rng):
        branching = BranchingParameters(num_pieces=2, mu_over_gamma=0.4, xi=0.0)
        _m_b, m_f = branching.mean_descendants()
        result = simulate_total_progeny(
            branching, root_type="f", num_replications=3000, rng=rng
        )
        assert result.mean_progeny == pytest.approx(m_f, rel=0.15)

    def test_supercritical_runs_hit_cap(self, rng):
        branching = BranchingParameters(num_pieces=2, mu_over_gamma=1.5, xi=0.0)
        result = simulate_total_progeny(
            branching,
            root_type="f",
            num_replications=50,
            rng=rng,
            max_population=2000,
        )
        assert result.extinction_fraction < 1.0

    def test_invalid_root_type(self, rng):
        with pytest.raises(ValueError):
            simulate_total_progeny(
                BranchingParameters(2, 0.4), root_type="x", rng=rng
            )
