"""JSONL fleet-log persistence tests.

Contracts:

* every completed swarm appends exactly one schema-versioned JSONL line;
  ``FleetResult.from_log`` replays the log into the *same* census the run
  streamed incrementally;
* a partially written last line (crash mid-append) is discarded, not fatal;
  corruption before the tail and schema-version mismatches raise a clear
  ``FleetLogError``;
* checkpoints hold only a byte offset into the log (no record list), and
  resuming truncates the log back to that offset so both always agree.
"""

import json
import pickle

import pytest

from repro.fleet import (
    FLEET_LOG_SCHEMA,
    FleetLogError,
    FleetLogHeader,
    FleetLogWriter,
    FleetResult,
    RandomSampler,
    ScenarioWeight,
    default_log_path,
    load_checkpoint,
    read_log,
    resume_fleet,
    run_fleet,
    tail_summary,
)
from repro.fleet.spec import FleetSpec


def small_spec(num_swarms=8, **overrides) -> FleetSpec:
    defaults = dict(
        name="log-fleet",
        num_swarms=num_swarms,
        sampler=RandomSampler.of({"arrival_rate": (0.8, 3.0)}, num_pieces=5),
        scenario_mix=(
            ScenarioWeight.of(None, weight=2.0),
            ScenarioWeight.of("free-rider", weight=1.0, leech_fraction=0.7),
        ),
        horizon=6.0,
        max_events=150,
        backend="array",
        initial_club_size=10,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestStreamingLog:
    def test_one_line_per_swarm_plus_header(self, tmp_path):
        spec = small_spec(num_swarms=6)
        log = tmp_path / "fleet.jsonl"
        run_fleet(spec, seed=3, workers=1, log_path=log)
        lines = log.read_text().splitlines()
        assert len(lines) == 1 + 6
        header = json.loads(lines[0])
        assert header["kind"] == "fleet-log"
        assert header["schema"] == FLEET_LOG_SCHEMA
        assert header["spec_name"] == "log-fleet"
        assert all(json.loads(line)["kind"] == "swarm" for line in lines[1:])

    def test_from_log_equals_streamed_census(self, tmp_path):
        spec = small_spec(num_swarms=10)
        log = tmp_path / "fleet.jsonl"
        streamed = run_fleet(spec, seed=11, workers=2, log_path=log)
        rebuilt = FleetResult.from_log(log)
        assert rebuilt == streamed
        assert rebuilt.fingerprint() == streamed.fingerprint()

    def test_from_log_max_records_prefix(self, tmp_path):
        spec = small_spec(num_swarms=6)
        log = tmp_path / "fleet.jsonl"
        full = run_fleet(spec, seed=5, workers=1, log_path=log)
        prefix = FleetResult.from_log(log, max_records=4)
        assert len(prefix.records) == 4
        assert prefix.records == full.records[:4]

    def test_tail_summary_renders(self, tmp_path):
        spec = small_spec(num_swarms=4)
        log = tmp_path / "fleet.jsonl"
        run_fleet(spec, seed=0, workers=1, log_path=log)
        summary = tail_summary(log)
        assert "4/4 swarms logged" in summary
        assert "log-fleet" in summary

    def test_records_roundtrip_exactly(self, tmp_path):
        """JSON serialization must preserve every field bit-for-bit
        (floats via repr round-tripping), or resumed censuses would drift."""
        spec = small_spec(num_swarms=5)
        log = tmp_path / "fleet.jsonl"
        streamed = run_fleet(spec, seed=21, workers=1, log_path=log)
        rebuilt = read_log(log)
        assert list(rebuilt.records) == list(streamed.records)
        for ours, theirs in zip(rebuilt.records, streamed.records):
            assert ours.key() == theirs.key()


class TestCrashRecovery:
    def test_truncated_tail_is_discarded(self, tmp_path):
        spec = small_spec(num_swarms=6)
        log = tmp_path / "fleet.jsonl"
        run_fleet(spec, seed=9, workers=1, log_path=log)
        intact = read_log(log)
        # Simulate a crash mid-append: a partial record with no newline.
        with log.open("ab") as handle:
            handle.write(b'{"kind": "swarm", "index": 6, "scena')
        recovered = read_log(log)
        assert recovered.records == intact.records
        assert FleetResult.from_log(log).records == list(intact.records)

    def test_corrupt_interior_line_raises(self, tmp_path):
        spec = small_spec(num_swarms=4)
        log = tmp_path / "fleet.jsonl"
        run_fleet(spec, seed=2, workers=1, log_path=log)
        lines = log.read_text().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]  # mangle a middle record
        log.write_text("\n".join(lines) + "\n")
        with pytest.raises(FleetLogError, match="corrupt"):
            read_log(log)

    def test_schema_mismatch_raises_clear_error(self, tmp_path):
        log = tmp_path / "future.jsonl"
        header = {
            "kind": "fleet-log",
            "schema": FLEET_LOG_SCHEMA + 7,
            "spec_name": "x",
            "num_swarms": 1,
            "seed": 0,
        }
        log.write_text(json.dumps(header) + "\n")
        with pytest.raises(FleetLogError, match="schema"):
            read_log(log)

    def test_headerless_log_raises(self, tmp_path):
        log = tmp_path / "empty.jsonl"
        log.write_text("")
        with pytest.raises(FleetLogError, match="headerless"):
            read_log(log)

    def test_writer_resume_truncates_past_offset(self, tmp_path):
        spec = small_spec(num_swarms=6)
        log = tmp_path / "fleet.jsonl"
        full = run_fleet(spec, seed=4, workers=1, log_path=log)
        parsed = read_log(log)
        cut = parsed.offset_after(3)
        header = FleetLogHeader(
            schema=FLEET_LOG_SCHEMA,
            spec_name=spec.name,
            num_swarms=spec.num_swarms,
            seed=parsed.header.seed,
        )
        with FleetLogWriter(log, header, resume_offset=cut) as writer:
            assert writer.offset == cut
        reread = read_log(log)
        assert len(reread.records) == 3
        assert list(reread.records) == list(full.records[:3])

    def test_writer_resume_rejects_seed_mismatch(self, tmp_path):
        spec = small_spec(num_swarms=3)
        log = tmp_path / "fleet.jsonl"
        run_fleet(spec, seed=4, workers=1, log_path=log)
        header = FleetLogHeader(
            schema=FLEET_LOG_SCHEMA,
            spec_name=spec.name,
            num_swarms=spec.num_swarms,
            seed=999,
        )
        with pytest.raises(FleetLogError, match="seed"):
            FleetLogWriter(log, header, resume_offset=10)


class TestOffsetCheckpoints:
    def test_checkpoint_stores_offset_not_records(self, tmp_path):
        spec = small_spec(num_swarms=8)
        path = tmp_path / "fleet.ckpt"
        run_fleet(
            spec,
            seed=31,
            workers=1,
            checkpoint_path=path,
            stop_after_swarms=4,
        )
        checkpoint = load_checkpoint(path)
        assert not hasattr(checkpoint, "records")
        assert checkpoint.num_records == 4
        assert checkpoint.next_index == 4
        log = checkpoint.log_path(path)
        assert log == default_log_path(path)
        parsed = read_log(log, max_records=checkpoint.num_records)
        assert checkpoint.log_offset == parsed.offset_after(4)
        # The checkpoint is small: spec + seed + offsets, no record payload.
        assert path.stat().st_size < 4096

    def test_checkpoint_and_log_travel_together(self, tmp_path):
        """Moving the checkpoint+log directory keeps resume working (the
        log is addressed by sibling name, not absolute path)."""
        spec = small_spec(num_swarms=8)
        original = tmp_path / "a" / "fleet.ckpt"
        uninterrupted = run_fleet(spec, seed=13, workers=1)
        run_fleet(
            spec,
            seed=13,
            workers=1,
            checkpoint_path=original,
            stop_after_swarms=3,
        )
        moved = tmp_path / "b"
        moved.mkdir()
        for source in original.parent.iterdir():
            source.rename(moved / source.name)
        resumed = resume_fleet(moved / "fleet.ckpt", workers=1)
        assert resumed == uninterrupted

    def test_resume_reruns_records_logged_after_checkpoint(self, tmp_path):
        """Records appended to the log after the last checkpoint (crash
        between log append and checkpoint write) are truncated on resume
        and re-run to the identical census."""
        spec = small_spec(num_swarms=8)
        path = tmp_path / "fleet.ckpt"
        uninterrupted = run_fleet(spec, seed=17, workers=1)
        run_fleet(
            spec,
            seed=17,
            workers=1,
            checkpoint_path=path,
            stop_after_swarms=5,
        )
        # Rewind the checkpoint to 3 records while the log still holds 5,
        # simulating a crash after two un-checkpointed appends.
        checkpoint = load_checkpoint(path)
        log = checkpoint.log_path(path)
        parsed = read_log(log)
        rewound = pickle.loads(pickle.dumps(checkpoint))
        rewound.num_records = 3
        rewound.log_offset = parsed.offset_after(3)
        from repro.fleet import save_checkpoint

        save_checkpoint(path, rewound)
        resumed = resume_fleet(path, workers=1)
        assert resumed == uninterrupted
        assert len(read_log(log).records) == spec.num_swarms


class TestFsyncBatching:
    def test_batched_fsync_defers_offset_until_sync(self, tmp_path):
        from repro.fleet.persistence import FleetLogHeader, FleetLogWriter

        header = FleetLogHeader(
            schema=FLEET_LOG_SCHEMA, spec_name="batched", num_swarms=4, seed=1
        )
        spec = small_spec(num_swarms=4)
        records = run_fleet(spec, seed=5).records
        path = tmp_path / "batched.jsonl"
        with FleetLogWriter(path, header, fsync_every_n=3) as writer:
            start = writer.offset
            writer.append([records[0]])
            # One unsynced record: the safe-checkpoint offset has not moved,
            # but the bytes are flushed for tail -f.
            assert writer.offset == start
            assert path.stat().st_size > start
            writer.append(list(records[1:3]))  # threshold reached -> fsync
            assert writer.offset == path.stat().st_size
            writer.append([records[3]])
            assert writer.offset < path.stat().st_size
            assert writer.sync() == path.stat().st_size
        # close() syncs the remainder; the log parses fully either way.
        assert len(read_log(path).records) == 4

    def test_batched_log_bytes_identical_to_per_append(self, tmp_path):
        spec = small_spec(num_swarms=6)
        per_append = tmp_path / "per-append.jsonl"
        batched = tmp_path / "batched.jsonl"
        result_1 = run_fleet(spec, seed=9, log_path=per_append, fsync_every_n=1)
        result_n = run_fleet(spec, seed=9, log_path=batched, fsync_every_n=32)
        assert per_append.read_bytes() == batched.read_bytes()
        assert result_1 == result_n

    def test_fsync_every_n_validation(self, tmp_path):
        with pytest.raises(ValueError, match="fsync_every_n"):
            run_fleet(small_spec(), seed=1, fsync_every_n=0)
