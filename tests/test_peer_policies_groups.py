"""Unit tests for Peer, the piece-selection policies, and the Figure-2 groups."""

import numpy as np
import pytest

from repro.core.types import PieceSet
from repro.swarm.groups import GroupSnapshot, PeerGroup, classify_peer, group_counts
from repro.swarm.peer import Peer
from repro.swarm.policies import (
    CallablePolicy,
    MostCommonFirstSelection,
    RandomUsefulSelection,
    RarestFirstSelection,
    SequentialSelection,
    OracleCensus,
    SwarmView,
    make_policy,
    registered_policies,
)


def make_view(num_pieces=3, piece_counts=None, total_peers=10, time=0.0) -> SwarmView:
    counts = piece_counts if piece_counts is not None else {k: 1 for k in range(1, num_pieces + 1)}
    return SwarmView(num_pieces=num_pieces, census=OracleCensus(counts), total_peers=total_peers, time=time)


class TestPeer:
    def make_peer(self, pieces=(), num_pieces=3, time=0.0) -> Peer:
        return Peer(peer_id=0, pieces=PieceSet(pieces, num_pieces), arrival_time=time)

    def test_initial_flags(self):
        peer = self.make_peer((1,))
        assert peer.is_gifted
        assert peer.infected_at is None
        assert not peer.is_seed
        assert peer.in_system

    def test_receive_piece_updates_collection(self):
        peer = self.make_peer(())
        peer.receive_piece(2, time=1.0)
        assert 2 in peer.pieces
        assert peer.downloads == 1

    def test_receiving_held_piece_raises(self):
        peer = self.make_peer((1,))
        with pytest.raises(ValueError):
            peer.receive_piece(1, time=1.0)

    def test_infection_flag_set_when_rare_piece_obtained_young(self):
        peer = self.make_peer(())  # missing all three pieces
        peer.receive_piece(1, time=2.0)
        assert peer.infected_at == 2.0

    def test_no_infection_for_gifted_peer(self):
        peer = self.make_peer((1,))
        peer.receive_piece(2, time=2.0)
        assert peer.infected_at is None

    def test_no_infection_when_completing_from_one_club(self):
        peer = self.make_peer((2, 3))  # one-club peer
        peer.receive_piece(1, time=3.0)
        assert peer.infected_at is None
        assert peer.was_one_club
        assert peer.is_seed
        assert peer.completed_at == 3.0

    def test_one_club_detection(self):
        peer = self.make_peer((2, 3))
        assert peer.is_one_club()
        assert not peer.is_one_club(rare_piece=2)

    def test_sojourn_and_download_time(self):
        peer = self.make_peer((), time=1.0)
        for piece, t in ((1, 2.0), (2, 3.0), (3, 5.0)):
            peer.receive_piece(piece, time=t)
        assert peer.download_time() == pytest.approx(4.0)
        peer.depart(6.0)
        assert peer.sojourn_time() == pytest.approx(5.0)
        assert not peer.in_system

    def test_double_departure_raises(self):
        peer = self.make_peer(())
        peer.depart(1.0)
        with pytest.raises(ValueError):
            peer.depart(2.0)

    def test_sojourn_requires_time_when_still_present(self):
        peer = self.make_peer((), time=1.0)
        with pytest.raises(ValueError):
            peer.sojourn_time()
        assert peer.sojourn_time(now=4.0) == pytest.approx(3.0)

    def test_useful_from(self):
        peer = self.make_peer((1,))
        assert sorted(peer.useful_from(PieceSet((1, 2), 3))) == [2]
        assert peer.needs(3)


class TestPolicies:
    def test_registry(self):
        names = registered_policies()
        assert "random-useful" in names and "rarest-first" in names
        for name in names:
            assert make_policy(name).name == name
        with pytest.raises(KeyError):
            make_policy("no-such-policy")

    def test_all_policies_respect_usefulness(self, rng):
        downloader = PieceSet((1,), 4)
        uploader = PieceSet((1, 2, 4), 4)
        view = make_view(num_pieces=4)
        for name in registered_policies():
            policy = make_policy(name)
            piece = policy.select_piece(downloader, uploader, view, rng)
            assert piece in (2, 4)

    def test_no_useful_piece_returns_none(self, rng):
        downloader = PieceSet((1, 2), 3)
        uploader = PieceSet((1,), 3)
        view = make_view()
        for name in registered_policies():
            assert make_policy(name).select_piece(downloader, uploader, view, rng) is None

    def test_random_useful_covers_all_choices(self, rng):
        policy = RandomUsefulSelection()
        downloader = PieceSet((), 3)
        uploader = PieceSet((1, 2, 3), 3)
        chosen = {
            policy.select_piece(downloader, uploader, make_view(), rng) for _ in range(100)
        }
        assert chosen == {1, 2, 3}

    def test_rarest_first_picks_globally_rarest(self, rng):
        policy = RarestFirstSelection()
        downloader = PieceSet((), 3)
        uploader = PieceSet((1, 2, 3), 3)
        view = make_view(piece_counts={1: 10, 2: 1, 3: 5})
        assert policy.select_piece(downloader, uploader, view, rng) == 2

    def test_rarest_first_breaks_ties_randomly(self, rng):
        policy = RarestFirstSelection()
        downloader = PieceSet((), 2)
        uploader = PieceSet((1, 2), 2)
        view = make_view(num_pieces=2, piece_counts={1: 3, 2: 3})
        chosen = {policy.select_piece(downloader, uploader, view, rng) for _ in range(50)}
        assert chosen == {1, 2}

    def test_most_common_first(self, rng):
        policy = MostCommonFirstSelection()
        downloader = PieceSet((), 3)
        uploader = PieceSet((1, 2, 3), 3)
        view = make_view(piece_counts={1: 10, 2: 1, 3: 5})
        assert policy.select_piece(downloader, uploader, view, rng) == 1

    def test_sequential_selects_lowest_index(self, rng):
        policy = SequentialSelection()
        downloader = PieceSet((1,), 4)
        uploader = PieceSet.full(4)
        assert policy.select_piece(downloader, uploader, make_view(num_pieces=4), rng) == 2

    def test_callable_policy_wraps_function(self, rng):
        policy = CallablePolicy(
            lambda down, up, view, rng_: max(down.useful_from(up)), name="highest"
        )
        downloader = PieceSet((1,), 3)
        uploader = PieceSet.full(3)
        assert policy.select_piece(downloader, uploader, make_view(), rng) == 3

    def test_callable_policy_rejects_useless_choice(self, rng):
        policy = CallablePolicy(lambda down, up, view, rng_: 1, name="bad")
        downloader = PieceSet((1,), 3)
        uploader = PieceSet.full(3)
        with pytest.raises(ValueError):
            policy.select_piece(downloader, uploader, make_view(), rng)


class TestGroups:
    def make_peer(self, pieces, arrived_with=None, num_pieces=3) -> Peer:
        peer = Peer(
            peer_id=0,
            pieces=PieceSet(pieces, num_pieces),
            arrival_time=0.0,
            arrived_with=PieceSet(arrived_with if arrived_with is not None else pieces, num_pieces),
        )
        return peer

    def test_normal_young(self):
        assert classify_peer(self.make_peer(())) is PeerGroup.NORMAL_YOUNG
        assert classify_peer(self.make_peer((2,))) is PeerGroup.NORMAL_YOUNG

    def test_one_club(self):
        assert classify_peer(self.make_peer((2, 3))) is PeerGroup.ONE_CLUB

    def test_gifted_is_sticky(self):
        gifted = self.make_peer((1,), arrived_with=(1,))
        assert classify_peer(gifted) is PeerGroup.GIFTED
        gifted.receive_piece(2, 1.0)
        gifted.receive_piece(3, 2.0)
        assert gifted.is_seed
        assert classify_peer(gifted) is PeerGroup.GIFTED

    def test_infected_classification(self):
        peer = self.make_peer(())
        peer.receive_piece(1, 1.0)  # infected: got the rare piece while young
        assert classify_peer(peer) is PeerGroup.INFECTED
        peer.receive_piece(2, 2.0)
        peer.receive_piece(3, 3.0)
        assert classify_peer(peer) is PeerGroup.INFECTED

    def test_former_one_club(self):
        peer = self.make_peer((2, 3))
        peer.receive_piece(1, 1.0)
        assert classify_peer(peer) is PeerGroup.FORMER_ONE_CLUB

    def test_group_counts_and_snapshot(self):
        peers = [
            self.make_peer(()),
            self.make_peer((2, 3)),
            self.make_peer((2, 3)),
            self.make_peer((1,), arrived_with=(1,)),
        ]
        counts = group_counts(peers)
        assert counts[PeerGroup.NORMAL_YOUNG] == 1
        assert counts[PeerGroup.ONE_CLUB] == 2
        assert counts[PeerGroup.GIFTED] == 1
        snapshot = GroupSnapshot.from_peers(time=1.0, peers=peers)
        assert snapshot.total == 4
        assert snapshot.one_club_fraction == pytest.approx(0.5)

    def test_snapshot_empty(self):
        snapshot = GroupSnapshot.from_peers(0.0, [])
        assert snapshot.total == 0
        assert snapshot.one_club_fraction == 0.0

    def test_other_rare_piece(self):
        peer = self.make_peer((1, 3))
        assert classify_peer(peer, rare_piece=2) is PeerGroup.ONE_CLUB
        gifted = self.make_peer((2,), arrived_with=(2,))
        assert classify_peer(gifted, rare_piece=2) is PeerGroup.GIFTED
