"""Unit tests for the Lyapunov functions of Section VII."""

import math

import numpy as np
import pytest

from repro.core.lyapunov import (
    LyapunovConfig,
    LyapunovFunction,
    check_negative_drift,
    phi,
    phi_prime,
    sample_heavy_load_states,
)
from repro.core.parameters import SystemParameters
from repro.core.state import SystemState
from repro.core.types import PieceSet


class TestPhi:
    def test_piecewise_values(self):
        d, beta = 5.0, 0.1
        assert phi(0.0, d, beta) == pytest.approx(2 * d + 1 / (2 * beta))
        assert phi(2 * d, d, beta) == pytest.approx(1 / (2 * beta))
        assert phi(2 * d + 1 / beta, d, beta) == 0.0
        assert phi(1000.0, d, beta) == 0.0

    def test_phi_is_continuous_at_knees(self):
        d, beta = 3.0, 0.05
        for knee in (2 * d, 2 * d + 1 / beta):
            left = phi(knee - 1e-9, d, beta)
            right = phi(knee + 1e-9, d, beta)
            assert left == pytest.approx(right, abs=1e-6)

    def test_phi_nonincreasing(self):
        d, beta = 4.0, 0.02
        values = [phi(x, d, beta) for x in np.linspace(0, 2 * d + 2 / beta, 200)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_phi_negative_argument_raises(self):
        with pytest.raises(ValueError):
            phi(-1.0, 5.0, 0.1)

    def test_phi_prime_range_and_regions(self):
        d, beta = 5.0, 0.1
        assert phi_prime(0.0, d, beta) == -1.0
        assert phi_prime(2 * d, d, beta) == pytest.approx(-1.0)
        assert phi_prime(2 * d + 1 / beta, d, beta) == pytest.approx(0.0)
        assert phi_prime(1e6, d, beta) == 0.0
        for x in np.linspace(0, 2 * d + 2 / beta, 100):
            assert -1.0 <= phi_prime(x, d, beta) <= 0.0

    def test_phi_prime_is_lipschitz_with_constant_beta(self):
        d, beta = 5.0, 0.07
        xs = np.linspace(0, 2 * d + 2 / beta, 500)
        derivatives = np.array([phi_prime(x, d, beta) for x in xs])
        slopes = np.abs(np.diff(derivatives) / np.diff(xs))
        assert slopes.max() <= beta + 1e-9


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LyapunovConfig(r=0.6)
        with pytest.raises(ValueError):
            LyapunovConfig(d=0.5)
        with pytest.raises(ValueError):
            LyapunovConfig(beta=0.7)
        with pytest.raises(ValueError):
            LyapunovConfig(alpha=0.4)
        with pytest.raises(ValueError):
            LyapunovConfig(p=0.0)

    def test_default_satisfies_constraints(self, example3_params):
        config = LyapunovConfig.default_for(example3_params)
        ratio = example3_params.mu_over_gamma
        jump = (example3_params.num_pieces + ratio) / (1 - ratio)
        assert config.beta * jump * jump <= 1.0 / config.alpha - 1.0 + 1e-9
        assert config.d > (1 + ratio) / (1 - ratio)

    def test_default_for_gamma_le_mu(self):
        params = SystemParameters.flash_crowd(
            3, 2.0, 0.5, peer_rate=1.0, seed_departure_rate=0.5
        )
        config = LyapunovConfig.default_for(params)
        assert config.p >= 1.0


class TestLyapunovFunction:
    def test_variant_selection(self, example3_params):
        assert LyapunovFunction(example3_params).variant == "W"
        params = example3_params.with_departure_rate(0.5)
        assert LyapunovFunction(params).variant == "Wprime"

    def test_variant_w_requires_mu_less_than_gamma(self, example3_params):
        params = example3_params.with_departure_rate(0.5)
        with pytest.raises(ValueError):
            LyapunovFunction(params, variant="W")

    def test_invalid_variant(self, example3_params):
        with pytest.raises(ValueError):
            LyapunovFunction(example3_params, variant="X")

    def test_value_zero_at_empty_state(self, example3_params):
        lyapunov = LyapunovFunction(example3_params)
        value = lyapunov(SystemState.empty(3))
        # Only the phi(0) terms contribute with E_C = 0, so W(empty) has no
        # quadratic part; the value is finite and small relative to any load.
        assert value == pytest.approx(0.0)

    def test_value_grows_quadratically_with_one_club(self, example3_params):
        lyapunov = LyapunovFunction(example3_params)
        small = lyapunov(SystemState.one_club(3, 300))
        large = lyapunov(SystemState.one_club(3, 600))
        assert large > 3.0 * small  # super-linear (quadratic-dominated) growth

    def test_value_nonnegative_on_random_states(self, example3_params, rng):
        lyapunov = LyapunovFunction(example3_params)
        for state in sample_heavy_load_states(example3_params, 40, 10, rng=rng):
            assert lyapunov(state) >= 0.0

    def test_drift_negative_on_large_one_club_when_stable(self, example3_params):
        lyapunov = LyapunovFunction(example3_params)
        state = SystemState.one_club(3, 400)
        assert lyapunov.drift_per_peer(state) < 0.0

    def test_drift_positive_on_large_one_club_when_unstable(self):
        params = SystemParameters.one_piece_arrivals(
            (4.0, 4.0, 0.5), seed_departure_rate=2.0
        )
        lyapunov = LyapunovFunction(params)
        # The one club missing piece 3 is the one that grows.
        club = SystemState({PieceSet((1, 2), 3): 400}, 3)
        assert lyapunov.drift(club) > 0.0

    def test_drift_negative_for_wprime_variant(self):
        """gamma <= mu: W' has negative drift on heavy one-club states."""
        params = SystemParameters.flash_crowd(
            3, arrival_rate=2.0, seed_rate=0.5, peer_rate=1.0, seed_departure_rate=0.5
        )
        lyapunov = LyapunovFunction(params)
        assert lyapunov.variant == "Wprime"
        state = SystemState.one_club(3, 400)
        assert lyapunov.drift_per_peer(state) < 0.0

    def test_drift_matches_manual_sum(self, example3_params):
        from repro.core.transitions import outgoing_transitions

        lyapunov = LyapunovFunction(example3_params)
        state = SystemState.one_club(3, 20)
        here = lyapunov(state)
        manual = sum(
            t.rate * (lyapunov(t.target) - here)
            for t in outgoing_transitions(state, example3_params)
        )
        assert lyapunov.drift(state) == pytest.approx(manual)


class TestHeavyLoadSampling:
    def test_population_is_exact(self, example3_params, rng):
        states = sample_heavy_load_states(example3_params, population=77, num_states=8, rng=rng)
        assert len(states) == 8
        assert all(s.total_peers == 77 for s in states)

    def test_one_club_states_included_first(self, example3_params, rng):
        states = sample_heavy_load_states(example3_params, 30, 3, rng=rng)
        for piece, state in zip((1, 2, 3), states):
            assert state.one_club_size(piece) == 30

    def test_no_full_type_when_gamma_infinite(self, rng):
        params = SystemParameters.flash_crowd(3, 1.0, 1.0)
        states = sample_heavy_load_states(params, 50, 20, rng=rng)
        full = PieceSet.full(3)
        assert all(state.count(full) == 0 for state in states)

    def test_check_negative_drift_summary(self, example3_params, rng):
        lyapunov = LyapunovFunction(example3_params)
        states = sample_heavy_load_states(example3_params, 400, 5, rng=rng)
        result = check_negative_drift(lyapunov, states)
        assert result.num_states == 5
        assert 0 <= result.num_negative <= 5
        assert result.min_drift_per_peer <= result.max_drift_per_peer
