"""Unit tests for the Eq. (1) transition rates."""

import math

import pytest

from repro.core.parameters import SystemParameters
from repro.core.state import SystemState
from repro.core.transitions import (
    Transition,
    TransitionKind,
    departure_rate_from_type,
    flow_between,
    outgoing_transitions,
    seed_departure_rate,
    total_download_rate,
    total_exit_rate,
    transition_rate_matrix_row,
    upgrade_rate,
)
from repro.core.types import PieceSet


class TestUpgradeRate:
    def test_single_empty_peer_with_seed_only(self):
        """One empty peer, fixed seed rate Us, K=2: each piece at rate Us/2."""
        params = SystemParameters.flash_crowd(2, arrival_rate=1.0, seed_rate=3.0)
        state = SystemState({PieceSet.empty(2): 1}, 2)
        rate = upgrade_rate(state, params, PieceSet.empty(2), 1)
        assert rate == pytest.approx(3.0 / 2)

    def test_peer_uploads_to_peer(self):
        """A holder of the piece uploads at rate mu scaled by contact probability."""
        params = SystemParameters.flash_crowd(2, arrival_rate=1.0, seed_rate=0.0, peer_rate=2.0)
        empty = PieceSet.empty(2)
        holder = PieceSet((1,), 2)
        state = SystemState({empty: 1, holder: 1}, 2)
        # Gamma_{empty, {1}} = (x_empty / n) * mu * x_{1} / |{1} - empty| = (1/2)*2*1
        assert upgrade_rate(state, params, empty, 1) == pytest.approx(1.0)
        # The holder cannot receive piece 1 again.
        assert upgrade_rate(state, params, holder, 1) == 0.0

    def test_useful_piece_divisor(self):
        """An uploader holding several useful pieces splits its rate among them."""
        params = SystemParameters.flash_crowd(3, arrival_rate=1.0, seed_rate=0.0, peer_rate=1.0)
        empty = PieceSet.empty(3)
        holder = PieceSet((1, 2), 3)
        state = SystemState({empty: 1, holder: 1}, 3)
        # |S - C| = 2, so each piece at (1/2)*1*(1/2) = 0.25
        assert upgrade_rate(state, params, empty, 1) == pytest.approx(0.25)
        assert upgrade_rate(state, params, empty, 2) == pytest.approx(0.25)
        assert upgrade_rate(state, params, empty, 3) == 0.0

    def test_zero_when_no_peers_of_type(self):
        params = SystemParameters.flash_crowd(2, 1.0, 1.0)
        state = SystemState({PieceSet((1,), 2): 1}, 2)
        assert upgrade_rate(state, params, PieceSet.empty(2), 1) == 0.0

    def test_zero_when_piece_already_held(self):
        params = SystemParameters.flash_crowd(2, 1.0, 1.0)
        state = SystemState({PieceSet((1,), 2): 1}, 2)
        assert upgrade_rate(state, params, PieceSet((1,), 2), 1) == 0.0

    def test_matches_eq1_closed_form(self, gifted_params):
        """Direct check of Eq. (1) on a mixed state."""
        empty = PieceSet.empty(3)
        g1 = PieceSet((1,), 3)
        g12 = PieceSet((1, 2), 3)
        full = PieceSet.full(3)
        state = SystemState({empty: 4, g1: 2, g12: 1, full: 3}, 3)
        n = 10
        params = gifted_params
        # Rate for an empty peer to obtain piece 1.
        expected = (4 / n) * (
            params.seed_rate / 3
            + params.peer_rate * (2 / 1 + 1 / 2 + 3 / 3)
        )
        assert upgrade_rate(state, params, empty, 1) == pytest.approx(expected)


class TestOutgoingTransitions:
    def test_empty_state_only_arrivals(self, flash_crowd_stable):
        transitions = outgoing_transitions(SystemState.empty(3), flash_crowd_stable)
        assert len(transitions) == 1
        assert transitions[0].kind is TransitionKind.ARRIVAL
        assert transitions[0].rate == pytest.approx(1.0)

    def test_arrival_targets(self, gifted_params):
        state = SystemState.empty(3)
        transitions = outgoing_transitions(state, gifted_params)
        arrival_targets = {
            t.peer_type for t in transitions if t.kind is TransitionKind.ARRIVAL
        }
        assert arrival_targets == set(gifted_params.arrival_rates)

    def test_completion_departure_when_gamma_infinite(self):
        params = SystemParameters.flash_crowd(2, arrival_rate=1.0, seed_rate=1.0)
        nearly_done = PieceSet((1,), 2)
        state = SystemState({nearly_done: 1}, 2)
        transitions = outgoing_transitions(state, params)
        kinds = {t.kind for t in transitions}
        assert TransitionKind.COMPLETION_DEPARTURE in kinds
        departure = next(
            t for t in transitions if t.kind is TransitionKind.COMPLETION_DEPARTURE
        )
        assert departure.target.total_peers == 0

    def test_upgrade_to_seed_when_gamma_finite(self, example1_params):
        state = SystemState({PieceSet.empty(1): 1}, 1)
        transitions = outgoing_transitions(state, example1_params)
        upgrades = [t for t in transitions if t.kind is TransitionKind.UPGRADE]
        assert len(upgrades) == 1
        assert upgrades[0].target.num_seeds == 1

    def test_seed_departure_transition(self, example1_params):
        state = SystemState({PieceSet.full(1): 3}, 1)
        transitions = outgoing_transitions(state, example1_params)
        departures = [t for t in transitions if t.kind is TransitionKind.SEED_DEPARTURE]
        assert len(departures) == 1
        assert departures[0].rate == pytest.approx(3 * example1_params.seed_departure_rate)

    def test_rates_are_positive(self, gifted_params):
        state = SystemState(
            {PieceSet.empty(3): 3, PieceSet((2, 3), 3): 5, PieceSet.full(3): 1}, 3
        )
        for transition in outgoing_transitions(state, gifted_params):
            assert transition.rate > 0

    def test_population_changes_by_at_most_one(self, gifted_params):
        state = SystemState(
            {PieceSet.empty(3): 3, PieceSet((2, 3), 3): 5, PieceSet.full(3): 1}, 3
        )
        n = state.total_peers
        for transition in outgoing_transitions(state, gifted_params):
            assert abs(transition.target.total_peers - n) <= 1


class TestAggregateRates:
    def test_total_exit_rate_is_sum(self, flash_crowd_stable):
        state = SystemState({PieceSet.empty(3): 2, PieceSet((1, 2), 3): 1}, 3)
        transitions = outgoing_transitions(state, flash_crowd_stable)
        assert total_exit_rate(state, flash_crowd_stable) == pytest.approx(
            sum(t.rate for t in transitions)
        )

    def test_seed_departure_rate_zero_when_gamma_infinite(self, flash_crowd_stable):
        state = SystemState({PieceSet((1, 2), 3): 1}, 3)
        assert seed_departure_rate(state, flash_crowd_stable) == 0.0

    def test_departure_rate_from_type_sums_pieces(self, flash_crowd_stable):
        state = SystemState({PieceSet.empty(3): 2}, 3)
        total = departure_rate_from_type(state, flash_crowd_stable, PieceSet.empty(3))
        per_piece = [
            upgrade_rate(state, flash_crowd_stable, PieceSet.empty(3), k)
            for k in (1, 2, 3)
        ]
        assert total == pytest.approx(sum(per_piece))

    def test_departure_rate_from_full_type(self, example1_params):
        state = SystemState({PieceSet.full(1): 4}, 1)
        assert departure_rate_from_type(
            state, example1_params, PieceSet.full(1)
        ) == pytest.approx(4 * 2.0)

    def test_total_download_rate_conservation(self, gifted_params):
        """Total download rate equals the sum of per-type departure rates."""
        state = SystemState(
            {PieceSet.empty(3): 3, PieceSet((2, 3), 3): 5, PieceSet((1,), 3): 2}, 3
        )
        total = total_download_rate(state, gifted_params)
        manual = sum(
            departure_rate_from_type(state, gifted_params, t)
            for t, _ in state.items()
            if not t.is_complete
        )
        assert total == pytest.approx(manual)

    def test_flow_between(self, flash_crowd_stable):
        empty = PieceSet.empty(3)
        singles = tuple(PieceSet.single(k, 3) for k in (1, 2, 3))
        state = SystemState({empty: 2, PieceSet.full(3): 1}, 3)
        flow = flow_between(state, flash_crowd_stable, (empty,), singles)
        assert flow == pytest.approx(
            departure_rate_from_type(state, flash_crowd_stable, empty)
        )

    def test_transition_rate_matrix_row_sums(self, gifted_params):
        state = SystemState({PieceSet.empty(3): 2, PieceSet((2, 3), 3): 2}, 3)
        row = transition_rate_matrix_row(state, gifted_params)
        assert sum(row.values()) == pytest.approx(total_exit_rate(state, gifted_params))
        assert state not in row
