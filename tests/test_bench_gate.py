"""Benchmark regression-gate tests (CI ``bench-gate`` job logic)."""

import json

import pytest

from repro.analysis.bench_gate import (
    DEFAULT_TOLERANCE,
    TOLERANCE_ENV,
    collect_throughputs,
    compare_baselines,
    main,
    tolerance_from_env,
)


def baseline(object_eps=10_000.0, array_eps=100_000.0, fleet_eps=90_000.0):
    """A miniature BENCH_swarm.json-shaped document."""
    return {
        "workload": {"num_pieces": 10},
        "backends": {
            "object": {"events_per_second": object_eps},
            "array": {"events_per_second": array_eps},
        },
        "fleet": {"array": {"events_per_second": fleet_eps, "workers": 1}},
        "python": "3.11",
    }


class TestCollect:
    def test_collects_dotted_paths(self):
        found = collect_throughputs(baseline())
        assert found == {
            "backends.object": 10_000.0,
            "backends.array": 100_000.0,
            "fleet.array": 90_000.0,
        }

    def test_ignores_non_numeric_and_other_keys(self):
        found = collect_throughputs({"a": {"events_per_second": "fast"}, "b": 3})
        assert found == {}


class TestCompare:
    def test_all_within_tolerance_passes(self):
        report = compare_baselines(baseline(), baseline(9_000, 95_000, 88_000))
        assert report.passed
        assert all(entry.status == "ok" for entry in report.entries)

    def test_drop_beyond_tolerance_fails(self):
        report = compare_baselines(baseline(), baseline(array_eps=60_000.0))
        assert not report.passed
        (regressed,) = report.regressions
        assert regressed.path == "backends.array"
        assert regressed.change == pytest.approx(-0.4)
        assert regressed.status == "REGRESSED"

    def test_boundary_is_exclusive(self):
        """A drop of exactly the tolerance passes; any more fails."""
        at_edge = baseline(array_eps=100_000.0 * (1 - DEFAULT_TOLERANCE))
        assert compare_baselines(baseline(), at_edge).passed
        past_edge = baseline(array_eps=100_000.0 * (1 - DEFAULT_TOLERANCE) - 1)
        assert not compare_baselines(baseline(), past_edge).passed

    def test_missing_benchmark_fails(self):
        current = baseline()
        del current["fleet"]
        report = compare_baselines(baseline(), current)
        assert not report.passed
        (regressed,) = report.regressions
        assert regressed.path == "fleet.array"
        assert regressed.status == "MISSING"

    def test_new_benchmark_reported_not_failing(self):
        current = baseline()
        current["adaptive"] = {"events_per_second": 50_000.0}
        report = compare_baselines(baseline(), current)
        assert report.passed
        new = [entry for entry in report.entries if entry.status == "new"]
        assert [entry.path for entry in new] == ["adaptive"]

    def test_custom_tolerance(self):
        report = compare_baselines(
            baseline(), baseline(array_eps=80_000.0), tolerance=0.1
        )
        assert not report.passed
        assert compare_baselines(
            baseline(), baseline(array_eps=80_000.0), tolerance=0.25
        ).passed

    def test_markdown_table_mentions_every_entry(self):
        report = compare_baselines(baseline(), baseline(array_eps=60_000.0))
        table = report.markdown_table()
        assert "`backends.array`" in table
        assert "REGRESSED" in table
        assert "FAIL" in table
        assert f"-{DEFAULT_TOLERANCE:.0%}" in table


class TestToleranceEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(TOLERANCE_ENV, raising=False)
        assert tolerance_from_env() == DEFAULT_TOLERANCE

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(TOLERANCE_ENV, "0.15")
        assert tolerance_from_env() == 0.15

    def test_empty_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(TOLERANCE_ENV, "")
        assert tolerance_from_env() == DEFAULT_TOLERANCE

    def test_garbage_env_raises(self, monkeypatch):
        monkeypatch.setenv(TOLERANCE_ENV, "fast-please")
        with pytest.raises(ValueError, match=TOLERANCE_ENV):
            tolerance_from_env()


class TestMain:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_pass_exit_zero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        old = self.write(tmp_path, "old.json", baseline())
        new = self.write(tmp_path, "new.json", baseline(9_500, 99_000, 91_000))
        assert main(["--baseline", str(old), "--current", str(new)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_regression_exit_nonzero_and_summary(self, tmp_path, capsys, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        old = self.write(tmp_path, "old.json", baseline())
        new = self.write(tmp_path, "new.json", baseline(array_eps=10_000.0))
        assert main(["--baseline", str(old), "--current", str(new)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "backends.array" in summary.read_text()

    def test_env_tolerance_applies(self, tmp_path, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        monkeypatch.setenv(TOLERANCE_ENV, "0.9")
        old = self.write(tmp_path, "old.json", baseline())
        new = self.write(tmp_path, "new.json", baseline(array_eps=20_000.0))
        assert main(["--baseline", str(old), "--current", str(new)]) == 0
        monkeypatch.setenv(TOLERANCE_ENV, "0.05")
        assert main(["--baseline", str(old), "--current", str(new)]) == 1

    def test_cli_tolerance_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        monkeypatch.setenv(TOLERANCE_ENV, "0.05")
        old = self.write(tmp_path, "old.json", baseline())
        new = self.write(tmp_path, "new.json", baseline(array_eps=80_000.0))
        assert (
            main(
                [
                    "--baseline", str(old),
                    "--current", str(new),
                    "--tolerance", "0.5",
                ]
            )
            == 0
        )
