"""Topology overlays: spec validation, determinism, flash-exit, fleet smoke.

The determinism battery mirrors the repo-wide contract for every new
stochastic feature: object/array bit-identity under a shared seed,
``DRAW_BLOCK_SIZE=1`` vs. default equality, mid-run suspend → pickle →
restore exactness (adjacency included), and stacked-lane == solo.
"""

import dataclasses
import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.scenario import base_params, make_scenario
from repro.core.stability import analyze
from repro.core.state import SystemState
from repro.fleet import resume_fleet, run_fleet
from repro.fleet.spec import FleetSpec, FixedSampler, ScenarioWeight
from repro.swarm.stacked import StackedSwarmKernel
from repro.swarm.swarm import make_simulator, run_swarm
from repro.swarm.topology import (
    TOPOLOGY_KINDS,
    OverlayState,
    TopologySpec,
    build_overlay,
)

OVERLAY_KINDS = tuple(k for k in TOPOLOGY_KINDS if k != "complete")


def metrics_tuple(result):
    m = result.metrics
    return (
        m.sample_times,
        m.population,
        m.num_seeds,
        m.one_club_size,
        m.min_piece_count,
        m.total_arrivals,
        m.total_departures,
        m.total_downloads,
        m.total_seed_uploads,
        m.wasted_contacts,
        m.thinned_events,
        m.neighbor_useful_ticks,
        m.neighbor_useless_ticks,
        m.culled_peers,
        m.sojourn_times,
        m.download_times,
        result.final_time,
        result.final_population,
        result.events_executed,
    )


def overlay_scenarios():
    """One scenario per overlay family (module-level so hypothesis can
    sample prebuilt specs without re-running factories per example)."""
    specs = [
        make_scenario("sparse-overlay"),
        make_scenario("sparse-overlay", topology="k-regular", degree=4),
        make_scenario("sparse-overlay", topology="scale-free", degree=4),
        make_scenario("sparse-overlay", topology="tracker", degree=6),
        make_scenario("partitioned", num_components=3),
        make_scenario("flash-exit", exit_time=8.0, exit_fraction=0.5),
        make_scenario(
            "flash-exit", exit_time=8.0, exit_fraction=0.5, topology="tracker"
        ),
    ]
    # Heterogeneous classes + overlay: exercises the per-class ticker walk
    # combined with the adjacency gather in the batch stage.
    specs.append(
        dataclasses.replace(
            make_scenario("free-rider", leech_fraction=0.4),
            topology=TopologySpec(kind="random-regular", degree=5),
        )
    )
    return specs


OVERLAY_SCENARIOS = overlay_scenarios()


class TestTopologySpec:
    def test_defaults_are_complete(self):
        spec = TopologySpec()
        assert spec.is_complete
        assert build_overlay(spec) is None
        assert build_overlay(None) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            TopologySpec(kind="small-world")
        with pytest.raises(ValueError, match="degree"):
            TopologySpec(kind="tracker", degree=0)
        with pytest.raises(ValueError, match="max_degree"):
            TopologySpec(kind="tracker", degree=8, max_degree=4)
        with pytest.raises(ValueError, match="bridge_prob"):
            TopologySpec(kind="partitioned", bridge_prob=1.5)
        with pytest.raises(ValueError, match="num_components"):
            TopologySpec(kind="partitioned", num_components=0)

    def test_frozen_hashable_picklable(self):
        spec = TopologySpec(kind="tracker", degree=6)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert hash(spec) == hash(TopologySpec(kind="tracker", degree=6))
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.degree = 3

    def test_overlay_state_rejects_complete(self):
        with pytest.raises(ValueError, match="complete"):
            OverlayState(TopologySpec())

    def test_complete_topology_is_legacy_identical(self):
        """A ``complete`` TopologySpec on a scenario is the legacy path:
        bit-identical to running with no topology at all."""
        plain = make_scenario("flash-crowd")
        complete = dataclasses.replace(plain, topology=TopologySpec())
        assert not complete.has_overlay
        for backend in ("object", "array"):
            a = run_swarm(
                plain.params, horizon=12.0, seed=5, scenario=plain,
                backend=backend, max_events=2000,
            )
            b = run_swarm(
                complete.params, horizon=12.0, seed=5, scenario=complete,
                backend=backend, max_events=2000,
            )
            assert metrics_tuple(a) == metrics_tuple(b)


class TestScenarioFactories:
    def test_registered(self):
        from repro.core.scenario import registered_scenarios

        names = registered_scenarios()
        for name in ("sparse-overlay", "partitioned", "flash-exit"):
            assert name in names

    def test_sparse_overlay_fields(self):
        spec = make_scenario("sparse-overlay", topology="tracker", degree=5)
        assert spec.has_overlay
        assert spec.topology.kind == "tracker"
        assert spec.topology.degree == 5
        assert "tracker" in spec.describe()

    def test_complete_request_degenerates_to_none(self):
        spec = make_scenario("sparse-overlay", topology="complete")
        assert spec.topology is None
        assert not spec.has_overlay

    def test_flash_exit_fields(self):
        spec = make_scenario("flash-exit", exit_time=30.0, exit_fraction=0.25)
        assert spec.has_cull
        assert spec.cull_time == 30.0
        assert spec.cull_fraction == 0.25
        assert "flash exit" in spec.describe()

    def test_cull_validation(self):
        with pytest.raises(ValueError, match="cull_fraction"):
            make_scenario("flash-exit", exit_time=30.0, exit_fraction=1.5)
        with pytest.raises(ValueError, match="exit_time|cull_time"):
            make_scenario("flash-exit", exit_time=-1.0)


class TestOverlayBackendEquivalence:
    """Bit-identity of the two backends on every overlay scenario family."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.sampled_from(OVERLAY_SCENARIOS),
        st.integers(0, 2**31 - 1),
    )
    def test_backends_bit_identical_on_overlays(self, scenario, seed):
        runs = {
            backend: run_swarm(
                scenario.params,
                horizon=6.0,
                seed=seed,
                scenario=scenario,
                backend=backend,
                max_events=300,
            )
            for backend in ("object", "array")
        }
        assert metrics_tuple(runs["object"]) == metrics_tuple(runs["array"])

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.sampled_from(OVERLAY_SCENARIOS), st.integers(0, 2**31 - 1))
    def test_backends_agree_from_seeded_one_club(self, scenario, seed):
        initial = SystemState.one_club(scenario.params.num_pieces, 20)
        runs = [
            run_swarm(
                scenario.params,
                horizon=5.0,
                seed=seed,
                scenario=scenario,
                backend=backend,
                initial_state=initial,
                max_events=300,
            )
            for backend in ("object", "array")
        ]
        assert metrics_tuple(runs[0]) == metrics_tuple(runs[1])

    @pytest.mark.parametrize("backend", ["object", "array"])
    def test_block_size_invariance(self, backend):
        for scenario in OVERLAY_SCENARIOS:
            small = make_simulator(
                scenario.params,
                seed=np.random.default_rng(3),
                backend=backend,
                scenario=scenario,
                draw_block_size=1,
            )
            default = make_simulator(
                scenario.params,
                seed=np.random.default_rng(3),
                backend=backend,
                scenario=scenario,
            )
            assert metrics_tuple(small.run(15.0)) == metrics_tuple(
                default.run(15.0)
            )


class TestOverlayCheckpoint:
    @pytest.mark.parametrize("backend", ["object", "array"])
    def test_suspend_pickle_restore_is_exact(self, backend):
        for scenario in OVERLAY_SCENARIOS:
            full = make_simulator(
                scenario.params,
                seed=np.random.default_rng(5),
                backend=backend,
                scenario=scenario,
            )
            reference = metrics_tuple(full.run(20.0))
            part = make_simulator(
                scenario.params,
                seed=np.random.default_rng(5),
                backend=backend,
                scenario=scenario,
            )
            part.run(20.0, suspend_after_events=150)
            snapshot = pickle.loads(pickle.dumps(part.capture_state()))
            fresh = make_simulator(
                scenario.params,
                seed=np.random.default_rng(999),
                backend=backend,
                scenario=scenario,
            )
            fresh.restore_state(snapshot)
            assert metrics_tuple(fresh.run(20.0, resume=True)) == reference

    def test_restore_rejects_topology_mismatch(self):
        scenario = make_scenario("sparse-overlay")
        sim = make_simulator(
            base_params(),
            seed=np.random.default_rng(1),
            backend="array",
            scenario=scenario,
        )
        sim.run(5.0, suspend_after_events=50)
        snapshot = sim.capture_state()
        plain = make_simulator(
            base_params(), seed=np.random.default_rng(1), backend="array"
        )
        with pytest.raises(ValueError, match="overlay"):
            plain.restore_state(snapshot)


class TestStackedOverlay:
    def test_stacked_lanes_equal_solo_on_overlays(self):
        for scenario in OVERLAY_SCENARIOS:
            stack = StackedSwarmKernel()
            seeds = list(range(21, 33))  # > 1 lane per point: clones too
            for seed in seeds:
                stack.add_lane(
                    scenario.params,
                    seed=np.random.default_rng(seed),
                    scenario=scenario,
                )
            stacked = stack.run_all(18.0)
            for index, seed in enumerate(seeds):
                solo = make_simulator(
                    scenario.params,
                    seed=np.random.default_rng(seed),
                    backend="array",
                    scenario=scenario,
                )
                assert metrics_tuple(stacked[index]) == metrics_tuple(
                    solo.run(18.0)
                ), (scenario.name, seed)

    def test_stacked_mixed_overlay_and_plain_lanes(self):
        """Overlay lanes take the per-lane batch route while plain lanes
        keep the cross-lane window classification — in the same stack."""
        overlay = make_scenario("sparse-overlay", topology="tracker")
        stack = StackedSwarmKernel()
        configs = [(overlay, 41), (None, 42), (overlay, 43), (None, 44)]
        for scenario, seed in configs:
            stack.add_lane(
                base_params() if scenario is None else scenario.params,
                seed=np.random.default_rng(seed),
                scenario=scenario,
            )
        stacked = stack.run_all(18.0)
        for index, (scenario, seed) in enumerate(configs):
            solo = make_simulator(
                base_params() if scenario is None else scenario.params,
                seed=np.random.default_rng(seed),
                backend="array",
                scenario=scenario,
            )
            assert metrics_tuple(stacked[index]) == metrics_tuple(
                solo.run(18.0)
            )


class TestFlashExitScenario:
    def _run(self, scenario, seed, horizon=60.0):
        return run_swarm(
            scenario.params,
            horizon=horizon,
            seed=seed,
            scenario=scenario,
            backend="array",
            max_population=8000,
        )

    @pytest.mark.parametrize("topology", [None, "tracker"])
    def test_stable_swarm_recovers_from_cull(self, topology):
        """With a positive Theorem-1 margin the swarm re-fills after the
        cull: the population returns to the pre-cull steady state."""
        scenario = make_scenario(
            "flash-exit", exit_time=30.0, exit_fraction=0.7, topology=topology
        )
        assert analyze(scenario.params).verdict.value == "stable"
        recovered = 0
        for seed in (1, 2, 3):
            result = self._run(scenario, seed)
            metrics = result.metrics
            assert metrics.culled_peers > 0
            times = np.asarray(metrics.sample_times)
            population = np.asarray(metrics.population, dtype=float)
            before = population[(times > 15.0) & (times < 30.0)].mean()
            tail = population[times > 50.0].mean()
            if tail > 0.5 * before:
                recovered += 1
        assert recovered >= 2

    def test_unstable_swarm_keeps_growing_past_cull(self):
        """With a negative margin the cull only dents the linear growth:
        the final population clearly exceeds the pre-cull level."""
        scenario = make_scenario(
            "flash-exit", exit_time=30.0, exit_fraction=0.7, arrival_rate=4.0
        )
        assert analyze(scenario.params).verdict.value == "unstable"
        grew = 0
        for seed in (1, 2, 3):
            result = self._run(scenario, seed)
            metrics = result.metrics
            assert metrics.culled_peers > 0
            times = np.asarray(metrics.sample_times)
            population = np.asarray(metrics.population, dtype=float)
            before = population[(times > 15.0) & (times < 30.0)].mean()
            if population[-1] > before:
                grew += 1
        assert grew >= 2

    def test_cull_after_horizon_never_fires(self):
        scenario = make_scenario("flash-exit", exit_time=500.0)
        result = self._run(scenario, 3, horizon=20.0)
        assert result.metrics.culled_peers == 0

    def test_step_fires_cull_exactly_once(self):
        scenario = make_scenario("flash-exit", exit_time=0.5, exit_fraction=1.0)
        sim = make_simulator(
            scenario.params,
            seed=np.random.default_rng(0),
            backend="object",
            scenario=scenario,
        )
        sim.seed_population(SystemState.one_club(scenario.params.num_pieces, 10))
        while sim.now < 2.0 and sim.step():
            pass
        culled = sim.metrics.culled_peers
        assert culled >= 10  # the initial club plus any pre-cull arrivals
        while sim.now < 4.0 and sim.step():
            pass
        assert sim.metrics.culled_peers == culled


class TestOverlayFleetSmoke:
    def _spec(self):
        return FleetSpec(
            name="overlay-smoke",
            num_swarms=6,
            sampler=FixedSampler.of(arrival_rate=1.2, seed_rate=1.0),
            scenario_mix=(
                ScenarioWeight.of("sparse-overlay", topology="tracker", degree=6),
                ScenarioWeight.of("partitioned", weight=0.5),
            ),
            horizon=25.0,
            max_events=4000,
            backend="array",
            initial_club_size=15,
        )

    def test_overlay_fleet_smoke_kill_midrun_and_resume(self, tmp_path):
        """An overlay fleet killed mid-run resumes to the exact census, and
        the fingerprint is identical at any worker count."""
        spec = self._spec()
        uninterrupted = run_fleet(spec, seed=19, workers=1)
        path = tmp_path / "overlay.ckpt"
        run_fleet(
            spec,
            seed=19,
            workers=1,
            checkpoint_path=path,
            stop_after_swarms=3,
        )
        resumed = resume_fleet(path, workers=2)
        assert resumed.fingerprint() == uninterrupted.fingerprint()
        assert resumed == uninterrupted
        two_workers = run_fleet(spec, seed=19, workers=2)
        assert two_workers.fingerprint() == uninterrupted.fingerprint()

    def test_overlay_fleet_smoke_stacked_matches_per_swarm(self):
        spec = self._spec()
        per_swarm = run_fleet(spec, seed=23, workers=1)
        stacked = run_fleet(spec, seed=23, workers=1, stacked=True)
        assert stacked.fingerprint() == per_swarm.fingerprint()

    def test_overlay_fleet_smoke_suspend_mid_chunk(self, tmp_path):
        """Kill *inside* a swarm (event-bounded suspension) and resume."""
        spec = self._spec()
        uninterrupted = run_fleet(spec, seed=29, workers=1)
        path = tmp_path / "overlay-mid.ckpt"
        run_fleet(
            spec,
            seed=29,
            workers=1,
            checkpoint_path=path,
            stop_after_swarms=2,
            suspend_after_events=500,
        )
        resumed = resume_fleet(path, workers=1)
        assert resumed == uninterrupted
