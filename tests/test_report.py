"""Tests for the combined experiment report runner / CLI."""

import pytest

from repro.experiments.report import EXPERIMENTS, main, run_experiments


class TestRunExperiments:
    def test_registry_covers_all_ten_experiments(self):
        assert list(EXPERIMENTS) == [f"E{i}" for i in range(1, 11)]
        for key, (title, runner) in EXPERIMENTS.items():
            assert title
            assert callable(runner)

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(only=["E99"], quick=True)

    def test_subset_run_and_file_output(self, tmp_path):
        reports = run_experiments(only=["E5", "E10"], quick=True, output_dir=tmp_path)
        assert set(reports) == {"E5", "E10"}
        assert "Figure 3" in reports["E5"]
        assert (tmp_path / "E5.txt").exists()
        assert (tmp_path / "E10.txt").read_text().startswith("E10")

    def test_ids_are_case_insensitive(self):
        reports = run_experiments(only=["e5"], quick=True)
        assert set(reports) == {"E5"}


class TestCli:
    def test_main_prints_reports(self, capsys, tmp_path):
        exit_code = main(["--only", "E5", "--quick", "--output-dir", str(tmp_path)])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Figure 3" in captured.out
        assert (tmp_path / "E5.txt").exists()

    def test_main_rejects_unknown_id(self):
        with pytest.raises(KeyError):
            main(["--only", "E42", "--quick"])
