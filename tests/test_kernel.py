"""Unit tests for the array-backed swarm kernel, the mask-level policy API
and the batched replication runner."""

import numpy as np
import pytest

from repro.core.parameters import SystemParameters
from repro.core.state import SystemState
from repro.core.types import PieceSet
from repro.experiments.runner import BatchRunner, BatchSwarmResult
from repro.swarm.kernel import ArraySwarmKernel
from repro.swarm.policies import (
    CallablePolicy,
    MostCommonFirstSelection,
    RandomUsefulSelection,
    RarestFirstSelection,
    SequentialSelection,
    OracleCensus,
    SwarmView,
    make_policy,
    registered_policies,
)
from repro.swarm.swarm import make_simulator, run_swarm


def make_view(num_pieces=3, piece_counts=None, total_peers=10, time=0.0) -> SwarmView:
    counts = piece_counts or {k: 1 for k in range(1, num_pieces + 1)}
    return SwarmView(
        num_pieces=num_pieces,
        census=OracleCensus(counts),
        total_peers=total_peers,
        time=time,
    )


class TestMaskPolicyAPI:
    """select_piece_mask is the primitive; select_piece must agree with it."""

    @pytest.mark.parametrize("name", registered_policies())
    def test_mask_and_pieceset_paths_agree(self, name):
        view = make_view(num_pieces=4, piece_counts={1: 5, 2: 1, 3: 3, 4: 1})
        downloader = PieceSet((1,), 4)
        uploader = PieceSet((2, 3, 4), 4)
        for seed in range(20):
            policy = make_policy(name)
            from_mask = policy.select_piece_mask(
                downloader.mask, uploader.mask, view, np.random.default_rng(seed)
            )
            from_sets = policy.select_piece(
                downloader, uploader, view, np.random.default_rng(seed)
            )
            assert from_mask == from_sets
            assert from_mask in (2, 3, 4)

    @pytest.mark.parametrize("name", registered_policies())
    def test_no_useful_piece_returns_none(self, name):
        view = make_view()
        rng = np.random.default_rng(0)
        policy = make_policy(name)
        # Uploader's pieces are a subset of the downloader's: nothing useful.
        assert policy.select_piece_mask(0b111, 0b101, view, rng) is None
        assert policy.select_piece_mask(0b111, 0b000, view, rng) is None

    def test_random_useful_covers_all_useful_pieces(self):
        view = make_view()
        rng = np.random.default_rng(1)
        policy = RandomUsefulSelection()
        chosen = {
            policy.select_piece_mask(0b001, 0b110, view, rng) for _ in range(60)
        }
        assert chosen == {2, 3}

    def test_sequential_picks_lowest_useful_bit(self):
        policy = SequentialSelection()
        rng = np.random.default_rng(2)
        assert policy.select_piece_mask(0b0001, 0b1110, make_view(4), rng) == 2
        assert policy.select_piece_mask(0b0011, 0b1110, make_view(4), rng) == 3

    def test_rarest_first_uses_census(self):
        view = make_view(num_pieces=3, piece_counts={1: 9, 2: 9, 3: 2})
        policy = RarestFirstSelection()
        rng = np.random.default_rng(3)
        assert policy.select_piece_mask(0b000, 0b111, view, rng) == 3

    def test_most_common_first_uses_census(self):
        view = make_view(num_pieces=3, piece_counts={1: 9, 2: 1, 3: 2})
        policy = MostCommonFirstSelection()
        rng = np.random.default_rng(4)
        assert policy.select_piece_mask(0b000, 0b111, view, rng) == 1

    def test_callable_policy_works_through_mask_shim(self):
        policy = CallablePolicy(
            lambda downloader, uploader, view, rng: max(
                downloader.useful_from(uploader)
            ),
            name="highest-useful",
        )
        rng = np.random.default_rng(5)
        assert policy.select_piece_mask(0b001, 0b110, make_view(), rng) == 3

    def test_callable_policy_mask_shim_enforces_usefulness(self):
        policy = CallablePolicy(lambda *args: 1, name="broken")
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            policy.select_piece_mask(0b001, 0b110, make_view(), rng)

    def test_view_piece_count_defaults_to_zero(self):
        view = make_view(piece_counts={1: 4})
        assert view.piece_count(1) == 4
        assert view.piece_count(3) == 0


class TestArrayKernel:
    def test_population_bookkeeping(self, flash_crowd_stable):
        kernel = ArraySwarmKernel(flash_crowd_stable, seed=0)
        result = kernel.run(horizon=30.0)
        metrics = result.metrics
        assert metrics.total_arrivals >= metrics.total_departures
        assert result.final_population == metrics.total_arrivals - metrics.total_departures
        assert result.final_state.total_peers == result.final_population

    def test_incremental_aggregates_match_final_state(self, flash_crowd_stable):
        kernel = ArraySwarmKernel(flash_crowd_stable, seed=1)
        result = kernel.run(horizon=40.0)
        state = result.final_state
        assert kernel.one_club_size() == state.one_club_size()
        assert kernel.population == state.total_peers
        census = state.piece_counts()
        for piece in range(1, flash_crowd_stable.num_pieces + 1):
            assert kernel._piece_counts[piece] == census[piece]

    def test_capacity_growth_keeps_invariants(self, flash_crowd_unstable):
        kernel = ArraySwarmKernel(flash_crowd_unstable, seed=2, initial_capacity=16)
        result = kernel.run(horizon=120.0, max_population=120)
        assert not result.horizon_reached
        assert result.final_population >= 120
        assert result.final_state.total_peers == result.final_population

    def test_group_snapshot_totals(self, flash_crowd_stable):
        kernel = ArraySwarmKernel(flash_crowd_stable, seed=3, track_groups=True)
        result = kernel.run(horizon=30.0)
        assert result.metrics.group_snapshots
        for snapshot, population in zip(
            result.metrics.group_snapshots, result.metrics.population
        ):
            assert snapshot.total == population

    def test_seeds_dwell_when_gamma_finite(self, example1_params):
        kernel = ArraySwarmKernel(example1_params, seed=4)
        result = kernel.run(horizon=100.0)
        assert max(result.metrics.num_seeds) >= 1

    def test_reproducible_from_seed(self, flash_crowd_stable):
        first = run_swarm(flash_crowd_stable, horizon=40.0, seed=9, backend="array")
        second = run_swarm(flash_crowd_stable, horizon=40.0, seed=9, backend="array")
        assert first.metrics.population == second.metrics.population
        assert first.final_state == second.final_state

    def test_rejects_more_than_64_pieces(self):
        params = SystemParameters.flash_crowd(65, arrival_rate=1.0, seed_rate=1.0)
        with pytest.raises(ValueError, match="64"):
            ArraySwarmKernel(params)

    def test_make_simulator_rejects_large_k_at_construction(self):
        """K > 64 must fail fast in make_simulator with an actionable message."""
        params = SystemParameters.flash_crowd(70, arrival_rate=1.0, seed_rate=1.0)
        with pytest.raises(ValueError, match=r"at most 64.*K=70"):
            make_simulator(params, backend="array")
        with pytest.raises(ValueError, match="backend='object'"):
            make_simulator(params, backend="array")
        # The object backend accepts the same parameters.
        make_simulator(params, backend="object")

    def test_rejects_bad_rare_piece_and_speedup(self, flash_crowd_stable):
        with pytest.raises(ValueError):
            ArraySwarmKernel(flash_crowd_stable, rare_piece=9)
        with pytest.raises(ValueError):
            ArraySwarmKernel(flash_crowd_stable, retry_speedup=0.2)

    def test_make_simulator_backend_dispatch(self, flash_crowd_stable):
        from repro.swarm.swarm import SwarmSimulator

        assert isinstance(
            make_simulator(flash_crowd_stable, backend="object"), SwarmSimulator
        )
        assert isinstance(
            make_simulator(flash_crowd_stable, backend="array"), ArraySwarmKernel
        )
        with pytest.raises(ValueError, match="unknown backend"):
            make_simulator(flash_crowd_stable, backend="gpu")


class TestBatchRunner:
    def test_batch_matches_manual_replications(self, flash_crowd_stable):
        from repro.simulation.rng import spawn_generators
        from repro.swarm.swarm import SwarmSimulator

        batch = BatchRunner(flash_crowd_stable).run(30.0, 3, seed=21)
        manual = []
        for rng in spawn_generators(21, 3):
            manual.append(SwarmSimulator(flash_crowd_stable, seed=rng).run(30.0))
        assert [r.final_population for r in batch.results] == [
            r.final_population for r in manual
        ]
        assert [r.final_state for r in batch.results] == [
            r.final_state for r in manual
        ]

    def test_backends_agree_within_batch(self, flash_crowd_stable):
        by_backend = {
            backend: BatchRunner(flash_crowd_stable, backend=backend).run(
                25.0, 3, seed=5
            )
            for backend in ("object", "array")
        }
        assert [r.final_state for r in by_backend["object"].results] == [
            r.final_state for r in by_backend["array"].results
        ]

    def test_parallel_workers_match_serial(self, flash_crowd_stable):
        serial = BatchRunner(flash_crowd_stable, backend="array").run(25.0, 3, seed=8)
        parallel = BatchRunner(flash_crowd_stable, backend="array", workers=2).run(
            25.0, 3, seed=8
        )
        assert [r.final_population for r in serial.results] == [
            r.final_population for r in parallel.results
        ]
        assert [r.final_state for r in serial.results] == [
            r.final_state for r in parallel.results
        ]

    @pytest.mark.parametrize("backend", ["object", "array"])
    def test_worker_count_reproducibility(self, flash_crowd_stable, backend):
        """One master seed must yield the same multiset of final populations
        whether the batch runs serially or on a 4-worker pool."""
        batches = {
            workers: BatchRunner(
                flash_crowd_stable, backend=backend, workers=workers
            ).run(20.0, 8, seed=123)
            for workers in (1, 4)
        }
        populations = {
            workers: sorted(batch.final_populations().tolist())
            for workers, batch in batches.items()
        }
        assert populations[1] == populations[4]
        # Results also come back in seed order, so the full per-replication
        # sequences agree, not just the multiset.
        assert [r.final_state for r in batches[1].results] == [
            r.final_state for r in batches[4].results
        ]

    def test_batch_result_aggregation(self, flash_crowd_stable):
        batch = BatchRunner(flash_crowd_stable, backend="array").run(20.0, 2, seed=3)
        assert isinstance(batch, BatchSwarmResult)
        assert len(batch) == 2
        assert batch.final_populations().shape == (2,)
        assert batch.mean_final_population() == pytest.approx(
            batch.final_populations().mean()
        )
        assert batch.all_horizons_reached()
        summary = batch.summary()
        for key in ("final_population", "mean_population", "total_downloads"):
            assert key in summary
        assert len(batch.metrics) == 2

    def test_sim_kwargs_reach_the_simulator(self, flash_crowd_stable):
        batch = BatchRunner(
            flash_crowd_stable, backend="array", track_groups=True
        ).run(15.0, 1, seed=4)
        assert batch.results[0].metrics.group_snapshots

    def test_invalid_replications(self, flash_crowd_stable):
        with pytest.raises(ValueError):
            BatchRunner(flash_crowd_stable).run(10.0, 0, seed=1)

    def test_experiment_backend_passthrough(self):
        from repro.experiments.runner import run_stability_trial

        params = SystemParameters.flash_crowd(
            num_pieces=3, arrival_rate=1.0, seed_rate=2.0, peer_rate=1.0
        )
        trials = {
            backend: run_stability_trial(
                params, horizon=60.0, replications=2, seed=6, backend=backend
            )
            for backend in ("object", "array")
        }
        assert (
            trials["object"].mean_normalized_slope
            == trials["array"].mean_normalized_slope
        )
        assert trials["object"].mean_population == trials["array"].mean_population
