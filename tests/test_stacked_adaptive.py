"""Stacked execution of the adaptive fleet driver.

The contract (ISSUE 7): ``stacked=True`` on the adaptive driver is purely an
execution property.  Every round-chunk runs inside one
:class:`~repro.swarm.stacked.StackedSwarmKernel`, but the records are
bit-identical to the per-swarm path, so the sampled-point trail, the
boundary estimate and the full result fingerprint are equal at any worker
count — including runs killed mid-round (with a mid-swarm kernel snapshot)
and resumed through *either* path.
"""

import pytest

from repro.fleet import (
    AdaptiveFleetDriver,
    AdaptiveFleetSpec,
    ScenarioWeight,
    load_checkpoint,
    resume_adaptive_fleet,
    run_adaptive_fleet,
)


def tiny_spec(**overrides) -> AdaptiveFleetSpec:
    defaults = dict(
        name="tiny-stacked-adaptive",
        arrival_rates=(0.8, 1.6, 2.4),
        seed_rates=(0.5,),
        scenario_mix=(
            ScenarioWeight.of(None, weight=2.0),
            ScenarioWeight.of("free-rider", weight=1.0, leech_fraction=0.6),
        ),
        num_pieces=5,
        swarm_budget=18,
        round_size=6,
        horizon=6.0,
        max_events=150,
        initial_club_size=10,
        backend="array",
    )
    defaults.update(overrides)
    return AdaptiveFleetSpec(**defaults)


class TestStackedEquality:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_trail_and_boundary_match_per_swarm(self, workers):
        """Identical sampled-point trails, boundary estimates and
        fingerprints with ``stacked=True`` and ``stacked=False``."""
        spec = tiny_spec()
        per_swarm = run_adaptive_fleet(spec, seed=31, workers=workers)
        stacked = run_adaptive_fleet(
            spec, seed=31, workers=workers, stacked=True
        )
        assert stacked.trail() == per_swarm.trail()
        assert stacked.boundary_estimate() == per_swarm.boundary_estimate()
        assert stacked.fingerprint() == per_swarm.fingerprint()
        assert stacked.fleet == per_swarm.fleet

    def test_worker_counts_agree_on_stacked_path(self):
        spec = tiny_spec()
        fingerprints = [
            run_adaptive_fleet(
                spec, seed=31, workers=workers, stacked=True
            ).fingerprint()
            for workers in (1, 2, 4)
        ]
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]


class TestStackedResume:
    def test_midround_kill_resume_stacked(self, tmp_path):
        """Killed mid-round on the stacked path (mid-swarm kernel snapshot
        in the checkpoint), resumed on the stacked path: exact equality
        with the uninterrupted per-swarm run."""
        spec = tiny_spec()
        uninterrupted = run_adaptive_fleet(spec, seed=31)
        path = tmp_path / "adaptive.ckpt"
        partial = run_adaptive_fleet(
            spec,
            seed=31,
            stacked=True,
            checkpoint_path=path,
            stop_after_swarms=8,  # mid-round: 6 + 2
            suspend_after_events=40,
        )
        assert not partial.complete
        checkpoint = load_checkpoint(path)
        assert checkpoint.in_flight is not None or len(partial.fleet.records) > 8
        resumed = resume_adaptive_fleet(path, workers=2, stacked=True)
        assert resumed.complete
        assert resumed.boundary_estimate() == uninterrupted.boundary_estimate()
        assert resumed.trail() == uninterrupted.trail()
        assert resumed.fingerprint() == uninterrupted.fingerprint()

    @pytest.mark.parametrize(
        "kill_stacked,resume_stacked", [(True, False), (False, True)]
    )
    def test_cross_path_resume(self, tmp_path, kill_stacked, resume_stacked):
        """A run suspended by one execution path resumes bit-identically
        through the other (snapshots are the ordinary per-swarm payloads)."""
        spec = tiny_spec()
        uninterrupted = run_adaptive_fleet(spec, seed=31)
        path = tmp_path / "adaptive.ckpt"
        run_adaptive_fleet(
            spec,
            seed=31,
            stacked=kill_stacked,
            checkpoint_path=path,
            stop_after_swarms=8,
            suspend_after_events=40,
        )
        resumed = resume_adaptive_fleet(path, stacked=resume_stacked)
        assert resumed.fingerprint() == uninterrupted.fingerprint()

    def test_from_checkpoint_carries_stacked_flag(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "adaptive.ckpt"
        run_adaptive_fleet(
            spec, seed=31, checkpoint_path=path, stop_after_swarms=8
        )
        driver = AdaptiveFleetDriver.from_checkpoint(path, stacked=True)
        assert driver.stacked
        resumed = driver.resume()
        assert resumed.fingerprint() == run_adaptive_fleet(spec, seed=31).fingerprint()


class TestStackedValidation:
    def test_rejects_non_array_backend(self):
        with pytest.raises(ValueError, match="array"):
            AdaptiveFleetDriver(tiny_spec(backend="object"), stacked=True)

    def test_rejects_unrepresentable_piece_count(self):
        """num_pieces beyond the array kernel's 64-bit mask bound is caught
        at task-build time, naming the swarm."""
        spec = tiny_spec(num_pieces=65, scenario_mix=())
        with pytest.raises(ValueError, match="num_pieces <= 64"):
            run_adaptive_fleet(spec, seed=31, stacked=True)
