"""Adaptive fleet driver tests: acquisition, determinism, resume, acceptance.

The headline contracts (ISSUE 4):

* the driver is a pure function of ``(spec, seed)``: identical sampled-point
  trail and boundary estimate at ``workers=1`` and ``workers=4``;
* killing a tiny-budget adaptive run mid-round (with a mid-swarm kernel
  snapshot) and resuming from the JSONL log + snapshot reproduces the exact
  uninterrupted boundary estimate — the CI smoke step (``-k smoke``);
* with a budget equal to the uniform grid's swarm count, the adaptive run
  achieves a *tighter* boundary (lower mean Beta-posterior variance in
  boundary cells) than ``run_fleet_phase_diagram`` on the same seed.
"""

import numpy as np
import pytest

from repro.experiments.fleet import (
    run_adaptive_phase_diagram,
    run_fleet_phase_diagram,
)
from repro.fleet import (
    AdaptiveFleetDriver,
    AdaptiveFleetSpec,
    CaptureGrid,
    CellKey,
    FleetResult,
    ScenarioWeight,
    load_checkpoint,
    resume_adaptive_fleet,
    run_adaptive_fleet,
)
from repro.fleet.adaptive import _allocate, _replay_state


def tiny_spec(**overrides) -> AdaptiveFleetSpec:
    defaults = dict(
        name="tiny-adaptive",
        arrival_rates=(0.8, 1.6, 2.4),
        seed_rates=(0.5,),
        scenario_mix=(
            ScenarioWeight.of(None, weight=2.0),
            ScenarioWeight.of("free-rider", weight=1.0, leech_fraction=0.6),
        ),
        num_pieces=5,
        swarm_budget=18,
        round_size=6,
        horizon=6.0,
        max_events=150,
        initial_club_size=10,
        backend="array",
    )
    defaults.update(overrides)
    return AdaptiveFleetSpec(**defaults)


class TestSpec:
    def test_candidate_set_is_strata_times_grid(self):
        spec = tiny_spec()
        assert spec.grid_shape == (2, 3, 1)
        assert len(spec.cells) == 6
        assert spec.cells[0] == CellKey(0, 0, 0)
        lam, us, label = spec.cell_point(CellKey(1, 2, 0))
        assert (lam, us, label) == (2.4, 0.5, "free-rider")

    def test_empty_mix_is_one_plain_stratum(self):
        spec = tiny_spec(scenario_mix=())
        assert [entry.label for entry in spec.strata] == ["plain"]
        assert spec.grid_shape[0] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            tiny_spec(arrival_rates=(1.0, 1.0))
        with pytest.raises(ValueError, match="swarm_budget"):
            tiny_spec(swarm_budget=0)
        with pytest.raises(ValueError, match="round_size"):
            tiny_spec(round_size=0)
        with pytest.raises(ValueError, match="boundary_band"):
            tiny_spec(boundary_band=(0.9, 0.2))
        with pytest.raises(ValueError, match="variance_tol"):
            tiny_spec(variance_tol=0.0)


class TestAllocation:
    def test_flat_scores_round_robin(self):
        order = _allocate(np.ones(4), 8)
        assert order == (0, 1, 2, 3, 0, 1, 2, 3)

    def test_high_scores_win_proportionally(self):
        order = _allocate(np.array([4.0, 1.0, 1.0]), 6)
        assert order.count(0) == 4
        assert order.count(1) == 1 and order.count(2) == 1

    def test_deterministic(self):
        scores = np.array([0.3, 0.1, 0.7, 0.7])
        assert _allocate(scores, 11) == _allocate(scores.copy(), 11)


class TestDeterminism:
    def test_workers_1_vs_4_identical_trail_and_boundary(self):
        """ISSUE acceptance: same (spec, seed) ⇒ identical sampled-point
        trail and boundary estimate at workers=1 and workers=4."""
        spec = tiny_spec(swarm_budget=24, round_size=8)
        serial = run_adaptive_fleet(spec, seed=42, workers=1)
        pooled = run_adaptive_fleet(spec, seed=42, workers=4, chunk_size=2)
        assert serial.trail() == pooled.trail()
        assert serial.boundary_estimate() == pooled.boundary_estimate()
        assert serial.fingerprint() == pooled.fingerprint()
        assert serial.fleet == pooled.fleet

    def test_seed_changes_trail(self):
        spec = tiny_spec()
        a = run_adaptive_fleet(spec, seed=1, workers=1)
        b = run_adaptive_fleet(spec, seed=2, workers=1)
        assert a.fleet.records != b.fleet.records

    def test_assignments_pair_records(self):
        spec = tiny_spec()
        result = run_adaptive_fleet(spec, seed=7, workers=1)
        assert len(result.cell_assignments) == len(result.fleet.records)
        # Every record's (λ, U_s) matches its assigned cell.
        for cell, record in zip(result.cell_assignments, result.fleet.records):
            lam, us, label = spec.cell_point(cell)
            assert record.scenario == label
            assert record.seed_rate == us

    def test_replay_state_reconstructs_rounds(self):
        spec = tiny_spec()
        result = run_adaptive_fleet(spec, seed=7, workers=1)
        state, pending = _replay_state(spec, result.fleet.records)
        assert pending is None
        assert tuple(state.trail) == result.rounds
        assert state.stopped is None  # stop fires on the *next* next_round()
        assert state.next_round() is None
        assert state.stopped == result.stopped


class TestStoppingRule:
    def test_budget_stop_consumes_budget_exactly(self):
        spec = tiny_spec(swarm_budget=10, round_size=4)
        result = run_adaptive_fleet(spec, seed=3, workers=1)
        assert result.stopped == "swarm-budget"
        assert len(result.fleet.records) == 10  # 4 + 4 + truncated 2
        assert [len(r.cells) for r in result.rounds] == [4, 4, 2]

    def test_event_budget_stops_between_rounds(self):
        spec = tiny_spec(swarm_budget=1000, event_budget=400, round_size=4)
        result = run_adaptive_fleet(spec, seed=3, workers=1)
        assert result.stopped == "event-budget"
        events_before_last = sum(
            record.events for record in result.fleet.records[: -len(result.rounds[-1].cells)]
        )
        assert events_before_last < 400 <= result.fleet.total_events

    def test_boundary_stable_stop(self):
        """A loose tolerance stops the run before the budget is spent."""
        spec = tiny_spec(
            swarm_budget=200,
            round_size=6,
            variance_tol=0.05,
            min_rounds=1,
            patience=2,
        )
        result = run_adaptive_fleet(spec, seed=5, workers=1)
        assert result.stopped == "boundary-stable"
        assert len(result.fleet.records) < 200
        # The last `patience` rounds had a stable boundary under tolerance.
        tail = result.rounds[-spec.patience :]
        assert all(r.mean_boundary_variance <= 0.05 for r in tail)


class TestResume:
    @pytest.mark.parametrize("workers", [2])
    def test_smoke_kill_midround_resume_equality(self, tmp_path, workers):
        """CI adaptive smoke: tiny-budget driver over 2 workers, killed
        mid-round (with a mid-swarm kernel snapshot), resumed from the
        JSONL log + snapshot; the resumed boundary estimate must equal the
        uninterrupted one."""
        spec = tiny_spec(swarm_budget=18, round_size=6)
        uninterrupted = run_adaptive_fleet(spec, seed=31, workers=workers)
        path = tmp_path / "adaptive.ckpt"
        partial = run_adaptive_fleet(
            spec,
            seed=31,
            workers=workers,
            checkpoint_path=path,
            stop_after_swarms=8,  # mid-round: 6 + 2
            suspend_after_events=40,
        )
        assert not partial.complete
        checkpoint = load_checkpoint(path)
        assert checkpoint.in_flight is not None or len(partial.fleet.records) > 8
        resumed = resume_adaptive_fleet(path, workers=workers)
        assert resumed.complete
        assert resumed.boundary_estimate() == uninterrupted.boundary_estimate()
        assert resumed.trail() == uninterrupted.trail()
        assert resumed.fingerprint() == uninterrupted.fingerprint()
        assert resumed.fleet == uninterrupted.fleet
        # The log now carries every swarm of the completed run.
        census = FleetResult.from_log(checkpoint.log_path(path))
        assert census == resumed.fleet

    def test_kill_at_round_boundary_resumes(self, tmp_path):
        """A kill landing exactly on a round boundary (the suspended swarm
        is the first of a freshly allocated round) resumes identically."""
        spec = tiny_spec(swarm_budget=18, round_size=6)
        uninterrupted = run_adaptive_fleet(spec, seed=8, workers=1)
        path = tmp_path / "adaptive.ckpt"
        run_adaptive_fleet(
            spec,
            seed=8,
            workers=1,
            checkpoint_path=path,
            stop_after_swarms=6,
            suspend_after_events=40,
        )
        resumed = resume_adaptive_fleet(path, workers=1)
        assert resumed.fingerprint() == uninterrupted.fingerprint()

    def test_kill_without_suspension_resumes(self, tmp_path):
        spec = tiny_spec()
        uninterrupted = run_adaptive_fleet(spec, seed=12, workers=1)
        path = tmp_path / "adaptive.ckpt"
        run_adaptive_fleet(
            spec, seed=12, workers=1, checkpoint_path=path, stop_after_swarms=7
        )
        resumed = resume_adaptive_fleet(path, workers=1)
        assert resumed.fingerprint() == uninterrupted.fingerprint()

    def test_driver_from_checkpoint_rejects_fixed_fleet(self, tmp_path):
        from repro.fleet import RandomSampler, run_fleet
        from repro.fleet.spec import FleetSpec

        spec = FleetSpec(
            name="fixed",
            num_swarms=4,
            sampler=RandomSampler.of({"arrival_rate": (0.8, 2.0)}, num_pieces=5),
            horizon=4.0,
            max_events=100,
        )
        path = tmp_path / "fixed.ckpt"
        run_fleet(spec, seed=0, workers=1, checkpoint_path=path, stop_after_swarms=2)
        with pytest.raises(ValueError, match="adaptive"):
            AdaptiveFleetDriver.from_checkpoint(path)

    def test_stop_requires_checkpoint_path(self):
        with pytest.raises(ValueError, match="checkpoint"):
            run_adaptive_fleet(tiny_spec(), seed=0, stop_after_swarms=2)


class TestAcceptanceVsUniformGrid:
    ARRIVALS = (0.4, 1.0, 1.6, 2.2)
    SEEDS = (0.8, 1.6)
    PER_CELL = 8

    def test_adaptive_tighter_than_uniform_at_equal_budget(self):
        """ISSUE acceptance: with a budget matching the uniform grid's swarm
        count, the adaptive driver yields a lower mean Beta-posterior
        variance in boundary cells than the uniform phase diagram on the
        same seed."""
        budget = len(self.ARRIVALS) * len(self.SEEDS) * self.PER_CELL
        uniform = run_fleet_phase_diagram(
            arrival_rates=self.ARRIVALS,
            seed_rates=self.SEEDS,
            swarms_per_cell=self.PER_CELL,
            scenario_mix=None,
            horizon=40.0,
            max_events=4_000,
            initial_club_size=20,
            workers=1,
            seed=16,
        )
        uniform_grid = CaptureGrid.from_records(
            uniform.fleet.records, self.ARRIVALS, self.SEEDS
        )
        adaptive = run_adaptive_phase_diagram(
            arrival_rates=self.ARRIVALS,
            seed_rates=self.SEEDS,
            swarm_budget=budget,
            round_size=8,
            boundary_boost=8.0,
            scenario_mix=None,
            horizon=40.0,
            max_events=4_000,
            initial_club_size=20,
            workers=1,
            seed=16,
        )
        assert len(adaptive.fleet.records) == budget  # equal spend
        # Adaptive shifts replications toward its boundary cells ...
        boundary = adaptive.grid.boundary_cells()
        adaptive_trials = sum(int(adaptive.grid.trials[c]) for c in boundary)
        uniform_trials = sum(int(uniform_grid.trials[c]) for c in boundary)
        assert adaptive_trials > uniform_trials
        # ... and its boundary posterior is tighter than the uniform one.
        assert (
            adaptive.mean_boundary_variance()
            < uniform_grid.mean_boundary_variance()
        )

    def test_report_renders(self):
        result = run_adaptive_fleet(tiny_spec(), seed=4, workers=1)
        report = result.report()
        assert "Posterior capture probability" in report
        assert "Estimated capture-onset boundary" in report
        assert "Acquisition trail" in report
        assert "one-club prevalence" in report
