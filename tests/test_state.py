"""Unit tests for SystemState."""

import pytest

from repro.core.state import SystemState, describe_state
from repro.core.types import PieceSet


class TestConstruction:
    def test_empty_state(self):
        state = SystemState.empty(3)
        assert state.total_peers == 0
        assert state.num_seeds == 0
        assert len(state) == 0

    def test_one_club_state(self):
        state = SystemState.one_club(3, 10)
        assert state.total_peers == 10
        assert state.one_club_size() == 10
        assert state.one_club_fraction() == pytest.approx(1.0)

    def test_one_club_other_missing_piece(self):
        state = SystemState.one_club(3, 5, missing_piece=2)
        assert state.one_club_size(missing_piece=2) == 5
        assert state.one_club_size(missing_piece=1) == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SystemState({PieceSet.empty(3): -1}, 3)

    def test_mismatched_type_rejected(self):
        with pytest.raises(ValueError):
            SystemState({PieceSet.empty(2): 1}, 3)

    def test_zero_counts_dropped(self):
        state = SystemState({PieceSet.empty(3): 0, PieceSet((1,), 3): 2}, 3)
        assert len(state) == 1
        assert state.count(PieceSet.empty(3)) == 0

    def test_from_pairs_accumulates(self):
        t = PieceSet((1,), 3)
        state = SystemState.from_pairs([(t, 1), (t, 2)], 3)
        assert state.count(t) == 3

    def test_equality_and_hash(self):
        a = SystemState({PieceSet((1,), 3): 2}, 3)
        b = SystemState({PieceSet((1,), 3): 2}, 3)
        c = SystemState({PieceSet((1,), 3): 3}, 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_repr_and_describe(self):
        state = SystemState({PieceSet((1,), 3): 2}, 3)
        assert "2" in repr(state)
        assert describe_state(state).startswith("n=2")


class TestAggregates:
    def test_total_and_seeds(self):
        state = SystemState(
            {PieceSet.empty(3): 2, PieceSet.full(3): 3}, 3
        )
        assert state.total_peers == 5
        assert state.num_seeds == 3

    def test_peers_with_and_missing_piece(self):
        state = SystemState(
            {PieceSet((1,), 3): 2, PieceSet((2, 3), 3): 4}, 3
        )
        assert state.peers_with_piece(1) == 2
        assert state.peers_missing_piece(1) == 4
        assert state.peers_with_piece(3) == 4

    def test_piece_counts(self):
        state = SystemState(
            {PieceSet((1, 2), 3): 2, PieceSet.full(3): 1}, 3
        )
        counts = state.piece_counts()
        assert counts == {1: 3, 2: 3, 3: 1}

    def test_one_club_fraction_empty(self):
        assert SystemState.empty(3).one_club_fraction() == 0.0

    def test_downward_count(self):
        state = SystemState(
            {PieceSet.empty(3): 1, PieceSet((1,), 3): 2, PieceSet((1, 2), 3): 3,
             PieceSet((3,), 3): 4},
            3,
        )
        target = PieceSet((1, 2), 3)
        assert state.downward_count(target) == 6  # empty + {1} + {1,2}
        assert state.helper_count(target) == 4

    def test_downward_count_of_full_is_population(self):
        state = SystemState({PieceSet((1,), 3): 2, PieceSet.full(3): 1}, 3)
        assert state.downward_count(PieceSet.full(3)) == state.total_peers

    def test_helper_potential(self):
        # One seed helping the one club: H_S = (K - K + mu/gamma) x_F / (1 - mu/gamma)
        state = SystemState({PieceSet((2, 3), 3): 5, PieceSet.full(3): 2}, 3)
        target = PieceSet((2, 3), 3)
        ratio = 0.5
        expected = (3 - 3 + ratio) * 2 / (1 - ratio)
        assert state.helper_potential(target, ratio) == pytest.approx(expected)

    def test_helper_potential_requires_valid_ratio(self):
        state = SystemState.one_club(3, 2)
        with pytest.raises(ValueError):
            state.helper_potential(PieceSet((2, 3), 3), 1.5)

    def test_helper_potential_prime(self):
        state = SystemState({PieceSet((2, 3), 3): 5, PieceSet.full(3): 2}, 3)
        target = PieceSet((2, 3), 3)
        assert state.helper_potential_prime(target) == pytest.approx((3 + 1 - 3) * 2)


class TestTransformations:
    def test_add_peer(self):
        state = SystemState.empty(3).add_peer(PieceSet((1,), 3))
        assert state.total_peers == 1

    def test_remove_peer(self):
        t = PieceSet((1,), 3)
        state = SystemState({t: 2}, 3).remove_peer(t)
        assert state.count(t) == 1

    def test_remove_absent_peer_raises(self):
        with pytest.raises(ValueError):
            SystemState.empty(3).remove_peer(PieceSet((1,), 3))

    def test_move_peer(self):
        t = PieceSet((1,), 3)
        u = PieceSet((1, 2), 3)
        state = SystemState({t: 2}, 3).move_peer(t, u)
        assert state.count(t) == 1
        assert state.count(u) == 1

    def test_move_absent_peer_raises(self):
        with pytest.raises(ValueError):
            SystemState.empty(3).move_peer(PieceSet((1,), 3), PieceSet((1, 2), 3))

    def test_transformations_do_not_mutate(self):
        t = PieceSet((1,), 3)
        state = SystemState({t: 1}, 3)
        state.add_peer(t)
        state.move_peer(t, PieceSet((1, 2), 3))
        assert state.count(t) == 1

    def test_vector_roundtrip(self):
        from repro.core.types import canonical_type_order

        order = canonical_type_order(2)
        state = SystemState({PieceSet((1,), 2): 3, PieceSet.full(2): 1}, 2)
        vector = state.to_vector(order)
        assert sum(vector) == 4
        rebuilt = SystemState.from_vector(vector, order, 2)
        assert rebuilt == state
