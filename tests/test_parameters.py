"""Unit tests for SystemParameters and its constructors."""

import math

import pytest

from repro.core.parameters import (
    SystemParameters,
    uniform_single_piece_rates,
    validate_policy_support,
)
from repro.core.types import PieceSet


class TestValidation:
    def test_requires_positive_arrivals(self):
        with pytest.raises(ValueError):
            SystemParameters(
                num_pieces=2,
                seed_rate=1.0,
                peer_rate=1.0,
                seed_departure_rate=1.0,
                arrival_rates={},
            )

    def test_rejects_negative_rates(self):
        empty = PieceSet.empty(2)
        with pytest.raises(ValueError):
            SystemParameters(2, -1.0, 1.0, 1.0, {empty: 1.0})
        with pytest.raises(ValueError):
            SystemParameters(2, 1.0, 0.0, 1.0, {empty: 1.0})
        with pytest.raises(ValueError):
            SystemParameters(2, 1.0, 1.0, 0.0, {empty: 1.0})
        with pytest.raises(ValueError):
            SystemParameters(2, 1.0, 1.0, 1.0, {empty: -1.0})

    def test_rejects_full_arrivals_when_gamma_infinite(self):
        with pytest.raises(ValueError):
            SystemParameters(
                num_pieces=2,
                seed_rate=1.0,
                peer_rate=1.0,
                seed_departure_rate=math.inf,
                arrival_rates={PieceSet.full(2): 1.0},
            )

    def test_full_arrivals_allowed_with_finite_gamma(self):
        params = SystemParameters(
            num_pieces=2,
            seed_rate=1.0,
            peer_rate=1.0,
            seed_departure_rate=1.0,
            arrival_rates={PieceSet.full(2): 0.5, PieceSet.empty(2): 0.5},
        )
        assert params.lambda_total == pytest.approx(1.0)

    def test_mismatched_type_dimension_rejected(self):
        with pytest.raises(ValueError):
            SystemParameters(
                num_pieces=3,
                seed_rate=1.0,
                peer_rate=1.0,
                seed_departure_rate=1.0,
                arrival_rates={PieceSet.empty(2): 1.0},
            )

    def test_non_pieceset_key_rejected(self):
        with pytest.raises(TypeError):
            SystemParameters(
                num_pieces=2,
                seed_rate=1.0,
                peer_rate=1.0,
                seed_departure_rate=1.0,
                arrival_rates={"empty": 1.0},
            )

    def test_zero_rate_entries_are_dropped(self):
        params = SystemParameters(
            num_pieces=2,
            seed_rate=1.0,
            peer_rate=1.0,
            seed_departure_rate=1.0,
            arrival_rates={PieceSet.empty(2): 1.0, PieceSet((1,), 2): 0.0},
        )
        assert PieceSet((1,), 2) not in params.arrival_rates

    def test_invalid_num_pieces(self):
        with pytest.raises(ValueError):
            SystemParameters(0, 1.0, 1.0, 1.0, {})


class TestAggregates:
    def test_lambda_total(self, gifted_params):
        assert gifted_params.lambda_total == pytest.approx(1.75)

    def test_mu_over_gamma(self):
        params = SystemParameters.flash_crowd(2, 1.0, 1.0, peer_rate=2.0, seed_departure_rate=4.0)
        assert params.mu_over_gamma == pytest.approx(0.5)

    def test_mu_over_gamma_infinite_departure(self):
        params = SystemParameters.flash_crowd(2, 1.0, 1.0)
        assert params.immediate_departure
        assert params.mu_over_gamma == 0.0
        assert params.mean_dwell_time == 0.0

    def test_mean_dwell_time(self, example1_params):
        assert example1_params.mean_dwell_time == pytest.approx(0.5)

    def test_arrival_rate_lookup(self, gifted_params):
        assert gifted_params.arrival_rate(PieceSet.empty(3)) == pytest.approx(1.0)
        assert gifted_params.arrival_rate(PieceSet((2,), 3)) == 0.0

    def test_arrival_rate_with_piece(self, gifted_params):
        # Types containing piece 1: {1} at 0.5 and {1,2} at 0.25.
        assert gifted_params.arrival_rate_with_piece(1) == pytest.approx(0.75)
        assert gifted_params.arrival_rate_with_piece(2) == pytest.approx(0.25)
        assert gifted_params.arrival_rate_with_piece(3) == 0.0

    def test_arrival_rate_missing_piece(self, gifted_params):
        assert gifted_params.arrival_rate_missing_piece(1) == pytest.approx(1.0)
        assert gifted_params.arrival_rate_missing_piece(3) == pytest.approx(1.75)

    def test_piece_injection_and_can_enter(self, gifted_params):
        assert gifted_params.piece_injection_rate(1) == pytest.approx(1.25)
        assert gifted_params.piece_can_enter(3)  # via the fixed seed
        assert gifted_params.all_pieces_can_enter()

    def test_piece_cannot_enter_without_seed(self):
        params = SystemParameters(
            num_pieces=2,
            seed_rate=0.0,
            peer_rate=1.0,
            seed_departure_rate=math.inf,
            arrival_rates={PieceSet((1,), 2): 1.0},
        )
        assert params.piece_can_enter(1)
        assert not params.piece_can_enter(2)
        assert not params.all_pieces_can_enter()
        with pytest.raises(ValueError):
            validate_policy_support(params)

    def test_arriving_types_sorted(self, gifted_params):
        types = gifted_params.arriving_types()
        assert list(types) == sorted(types)


class TestCopies:
    def test_with_seed_rate(self, flash_crowd_stable):
        modified = flash_crowd_stable.with_seed_rate(5.0)
        assert modified.seed_rate == 5.0
        assert flash_crowd_stable.seed_rate == 2.0

    def test_with_departure_rate(self, flash_crowd_stable):
        modified = flash_crowd_stable.with_departure_rate(3.0)
        assert modified.seed_departure_rate == 3.0
        assert modified.arrival_rates == flash_crowd_stable.arrival_rates

    def test_with_arrival_rates(self, flash_crowd_stable):
        modified = flash_crowd_stable.with_arrival_rates(
            {PieceSet.empty(3): 7.0}
        )
        assert modified.lambda_total == pytest.approx(7.0)

    def test_scaled_arrivals(self, gifted_params):
        doubled = gifted_params.scaled_arrivals(2.0)
        assert doubled.lambda_total == pytest.approx(2 * gifted_params.lambda_total)
        with pytest.raises(ValueError):
            gifted_params.scaled_arrivals(0.0)

    def test_describe_mentions_rates(self, gifted_params):
        text = gifted_params.describe()
        assert "K=3" in text
        assert "lambda" in text


class TestExampleConstructors:
    def test_single_piece(self):
        params = SystemParameters.single_piece(arrival_rate=2.0, seed_rate=1.0)
        assert params.num_pieces == 1
        assert params.lambda_total == pytest.approx(2.0)
        assert PieceSet.empty(1) in params.arrival_rates

    def test_two_class_four_pieces(self):
        params = SystemParameters.two_class_four_pieces(3.0, 1.5)
        assert params.num_pieces == 4
        assert params.seed_rate == 0.0
        assert params.immediate_departure
        assert params.arrival_rate(PieceSet((1, 2), 4)) == pytest.approx(3.0)
        assert params.arrival_rate(PieceSet((3, 4), 4)) == pytest.approx(1.5)

    def test_one_piece_arrivals(self):
        params = SystemParameters.one_piece_arrivals((1.0, 2.0, 3.0))
        assert params.num_pieces == 3
        assert params.arrival_rate(PieceSet.single(2, 3)) == pytest.approx(2.0)

    def test_one_piece_arrivals_drops_zero_rates(self):
        params = SystemParameters.one_piece_arrivals((1.0, 0.0, 3.0))
        assert PieceSet.single(2, 3) not in params.arrival_rates

    def test_flash_crowd(self):
        params = SystemParameters.flash_crowd(5, 2.0, 1.0)
        assert params.num_pieces == 5
        assert params.immediate_departure
        assert params.arrival_rate(PieceSet.empty(5)) == pytest.approx(2.0)

    def test_uniform_single_piece_rates(self):
        rates = uniform_single_piece_rates(4, 0.5)
        assert len(rates) == 4
        assert all(rate == 0.5 for rate in rates.values())
        assert all(len(t) == 1 for t in rates)
