"""Tests for the network-coded swarm simulator (Theorem 15)."""

import math

import pytest

from repro.swarm.network_coding import (
    CodedArrivalSpec,
    CodedSwarmSimulator,
    gifted_fraction_arrivals,
)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            CodedSwarmSimulator(0, 5, [CodedArrivalSpec(1.0)])
        with pytest.raises(ValueError):
            CodedSwarmSimulator(4, 4, [CodedArrivalSpec(1.0)])  # not prime
        with pytest.raises(ValueError):
            CodedSwarmSimulator(4, 5, [CodedArrivalSpec(0.0)])
        with pytest.raises(ValueError):
            CodedSwarmSimulator(4, 5, [CodedArrivalSpec(1.0)], peer_rate=0.0)
        with pytest.raises(ValueError):
            CodedSwarmSimulator(4, 5, [CodedArrivalSpec(1.0)], seed_rate=-1.0)

    def test_arrival_spec_validation(self):
        with pytest.raises(ValueError):
            CodedArrivalSpec(rate=-1.0)
        with pytest.raises(ValueError):
            CodedArrivalSpec(rate=1.0, num_coded_pieces=-1)

    def test_gifted_fraction_arrivals_split(self):
        empty, gifted = gifted_fraction_arrivals(4.0, 0.25)
        assert empty.rate == pytest.approx(3.0)
        assert gifted.rate == pytest.approx(1.0)
        assert gifted.num_coded_pieces == 1
        with pytest.raises(ValueError):
            gifted_fraction_arrivals(1.0, 1.5)


class TestDynamics:
    def test_seed_driven_swarm_completes_peers(self):
        """With a fixed seed, empty-handed peers complete and depart."""
        simulator = CodedSwarmSimulator(
            num_pieces=4,
            field_size=5,
            arrivals=[CodedArrivalSpec(rate=0.5, num_coded_pieces=0)],
            seed_rate=3.0,
            seed=0,
        )
        result = simulator.run(horizon=120.0)
        assert result.metrics.total_departures > 10
        assert result.final_population < 30

    def test_population_bookkeeping(self):
        simulator = CodedSwarmSimulator(
            num_pieces=4,
            field_size=3,
            arrivals=[CodedArrivalSpec(rate=1.0, num_coded_pieces=1)],
            seed_rate=1.0,
            seed=1,
        )
        result = simulator.run(horizon=60.0)
        metrics = result.metrics
        assert result.final_population == metrics.total_arrivals - metrics.total_departures

    def test_peer_seeds_dwell_with_finite_gamma(self):
        simulator = CodedSwarmSimulator(
            num_pieces=3,
            field_size=3,
            arrivals=[CodedArrivalSpec(rate=0.5, num_coded_pieces=0)],
            seed_rate=3.0,
            seed_departure_rate=0.5,
            seed=2,
        )
        result = simulator.run(horizon=80.0)
        assert max(result.metrics.num_seeds) >= 1

    def test_reproducibility(self):
        def run(seed):
            simulator = CodedSwarmSimulator(
                num_pieces=4,
                field_size=5,
                arrivals=gifted_fraction_arrivals(1.5, 0.5),
                seed=seed,
            )
            return simulator.run(horizon=50.0).metrics.population

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_high_gifted_fraction_is_stable(self):
        """Above the Theorem-15 threshold the coded swarm stays small."""
        simulator = CodedSwarmSimulator(
            num_pieces=6,
            field_size=5,
            arrivals=gifted_fraction_arrivals(2.0, 0.6),
            seed=3,
        )
        result = simulator.run(horizon=150.0, max_population=2000)
        assert result.final_population < 60

    def test_low_gifted_fraction_grows(self):
        """Well below the threshold the coded swarm accumulates peers."""
        simulator = CodedSwarmSimulator(
            num_pieces=6,
            field_size=5,
            arrivals=gifted_fraction_arrivals(2.0, 0.02),
            seed=4,
        )
        result = simulator.run(horizon=150.0, max_population=2000)
        assert result.final_population > 120

    def test_min_dimension_tracks_syndrome(self):
        simulator = CodedSwarmSimulator(
            num_pieces=5,
            field_size=3,
            arrivals=gifted_fraction_arrivals(2.0, 0.02),
            seed=5,
        )
        result = simulator.run(horizon=100.0, max_population=2000)
        # Peers pile up one innovation short (or less); the minimum dimension
        # among stuck peers stays below K.
        assert result.final_min_dimension < 5

    def test_invalid_horizon(self):
        simulator = CodedSwarmSimulator(
            num_pieces=3, field_size=3, arrivals=[CodedArrivalSpec(1.0)], seed=6
        )
        with pytest.raises(ValueError):
            simulator.run(horizon=-1.0)
