"""Checkpoint round-trips: snapshot -> restore -> continue is bit-identical.

The contract under test (see ``_SwarmEventLoop`` in ``repro.swarm.swarm``):
suspending a run after ``k`` events, capturing the simulator state,
restoring it into a *fresh* simulator built with the same constructor
arguments, and resuming must reproduce the exact trajectory — every metrics
series, the final state, the final clock — of an uninterrupted run, on both
backends, on plain parameters and on scenarios with real Poisson thinning.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.parameters import SystemParameters
from repro.core.scenario import make_scenario
from repro.core.state import SystemState
from repro.swarm.swarm import make_simulator, run_swarm

BACKENDS = ("object", "array")


def _assert_same_outcome(resumed, uninterrupted):
    assert resumed.final_state == uninterrupted.final_state
    assert resumed.final_time == uninterrupted.final_time
    assert resumed.final_population == uninterrupted.final_population
    assert resumed.horizon_reached == uninterrupted.horizon_reached
    assert resumed.events_executed == uninterrupted.events_executed
    for series in (
        "sample_times",
        "population",
        "num_seeds",
        "one_club_size",
        "min_piece_count",
        "sojourn_times",
        "download_times",
    ):
        assert getattr(resumed.metrics, series) == getattr(
            uninterrupted.metrics, series
        ), series
    assert resumed.metrics.total_arrivals == uninterrupted.metrics.total_arrivals
    assert resumed.metrics.total_downloads == uninterrupted.metrics.total_downloads
    assert resumed.metrics.wasted_contacts == uninterrupted.metrics.wasted_contacts
    assert resumed.metrics.thinned_events == uninterrupted.metrics.thinned_events


def _round_trip(params, backend, seed, suspend_after, scenario=None, club=10):
    """Uninterrupted run vs. suspend -> pickle -> restore -> resume."""
    kwargs = dict(seed=seed, backend=backend, scenario=scenario)
    initial = SystemState.one_club(params.num_pieces, club)
    uninterrupted = make_simulator(params, **kwargs).run(
        12.0, initial_state=initial, max_events=800
    )
    first = make_simulator(params, **kwargs)
    segment = first.run(
        12.0,
        initial_state=initial,
        max_events=800,
        suspend_after_events=suspend_after,
    )
    if not segment.suspended:
        # The run ended (horizon or cap) before the suspension point; the
        # segment already is the whole run.
        _assert_same_outcome(segment, uninterrupted)
        return None
    assert not segment.horizon_reached
    # The suspended segment must not have flushed trailing samples.
    assert len(segment.metrics.sample_times) <= len(
        uninterrupted.metrics.sample_times
    )
    snapshot = pickle.loads(pickle.dumps(first.capture_state()))
    fresh = make_simulator(params, **kwargs)
    fresh.restore_state(snapshot)
    resumed = fresh.run(12.0, resume=True, max_events=800)
    _assert_same_outcome(resumed, uninterrupted)
    return snapshot


class TestCheckpointRoundTrip:
    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(1, 300),
        st.sampled_from(BACKENDS),
        st.sampled_from([2, 4, 7]),
    )
    def test_plain_parameters_round_trip(self, seed, suspend_after, backend, k):
        params = SystemParameters.flash_crowd(
            num_pieces=k, arrival_rate=2.0, seed_rate=1.0, seed_departure_rate=2.0
        )
        _round_trip(params, backend, seed, suspend_after)

    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(1, 300),
        st.sampled_from(BACKENDS),
    )
    def test_thinned_schedule_round_trip(self, seed, suspend_after, backend):
        """A flash-crowd pulse keeps Poisson thinning on the hot path, so the
        snapshot also has to preserve the thinning RNG consumption."""
        scenario = make_scenario("flash-crowd", surge_start=1.0, surge_end=6.0)
        _round_trip(
            scenario.params, backend, seed, suspend_after, scenario=scenario
        )

    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(1, 300),
        st.sampled_from(BACKENDS),
    )
    def test_heterogeneous_scenario_round_trip(self, seed, suspend_after, backend):
        """Per-class member/seed/sped lists must survive the snapshot."""
        scenario = make_scenario("free-rider", leech_fraction=0.5)
        _round_trip(
            scenario.params, backend, seed, suspend_after, scenario=scenario
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_snapshot_is_reusable(self, backend, flash_crowd_stable):
        """Restoring the same snapshot twice yields the same continuation."""
        sim = make_simulator(flash_crowd_stable, seed=5, backend=backend)
        sim.run(10.0, suspend_after_events=20, max_events=500)
        snapshot = sim.capture_state()
        outcomes = []
        for _ in range(2):
            fresh = make_simulator(flash_crowd_stable, seed=99, backend=backend)
            fresh.restore_state(snapshot)
            outcomes.append(fresh.run(10.0, resume=True, max_events=500))
        _assert_same_outcome(outcomes[0], outcomes[1])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_suspension_can_repeat(self, backend, flash_crowd_stable):
        """Multiple suspend/resume segments still match one straight run."""
        kwargs = dict(seed=17, backend=backend)
        uninterrupted = make_simulator(flash_crowd_stable, **kwargs).run(
            10.0, max_events=400
        )
        sim = make_simulator(flash_crowd_stable, **kwargs)
        result = sim.run(10.0, suspend_after_events=40, max_events=400)
        for bound in (120, 250):
            if not result.suspended:
                break
            result = sim.run(
                10.0, resume=True, suspend_after_events=bound, max_events=400
            )
        if result.suspended:
            result = sim.run(10.0, resume=True, max_events=400)
        _assert_same_outcome(result, uninterrupted)


class TestSnapshotValidation:
    def test_backend_mismatch_rejected(self, flash_crowd_stable):
        snapshot = make_simulator(
            flash_crowd_stable, seed=1, backend="object"
        ).capture_state()
        kernel = make_simulator(flash_crowd_stable, seed=1, backend="array")
        with pytest.raises(ValueError, match="backend"):
            kernel.restore_state(snapshot)

    def test_num_pieces_mismatch_rejected(self, flash_crowd_stable):
        snapshot = make_simulator(flash_crowd_stable, seed=1).capture_state()
        other = SystemParameters.flash_crowd(
            num_pieces=5, arrival_rate=1.0, seed_rate=2.0
        )
        with pytest.raises(ValueError, match="K="):
            make_simulator(other, seed=1).restore_state(snapshot)

    def test_scenario_mismatch_rejected(self):
        scenario = make_scenario("flash-crowd")
        snapshot = make_simulator(
            scenario.params, seed=1, scenario=scenario
        ).capture_state()
        with pytest.raises(ValueError, match="scenario"):
            make_simulator(scenario.params, seed=1).restore_state(snapshot)

    def test_format_mismatch_rejected(self, flash_crowd_stable):
        sim = make_simulator(flash_crowd_stable, seed=1)
        snapshot = sim.capture_state()
        snapshot["format"] = 999
        with pytest.raises(ValueError, match="format"):
            sim.restore_state(snapshot)

    def test_resume_requires_suspended_run(self, flash_crowd_stable):
        sim = make_simulator(flash_crowd_stable, seed=1)
        with pytest.raises(RuntimeError, match="resume"):
            sim.run(5.0, resume=True)
        sim.run(5.0, max_events=50)  # completes (or caps) -> not resumable
        with pytest.raises(RuntimeError, match="resume"):
            sim.run(5.0, resume=True)

    def test_resume_horizon_must_match(self, flash_crowd_stable):
        sim = make_simulator(flash_crowd_stable, seed=1)
        sim.run(5.0, suspend_after_events=5)
        with pytest.raises(ValueError, match="horizon"):
            sim.run(6.0, resume=True)

    def test_run_swarm_defaults_unaffected(self, flash_crowd_stable):
        """The legacy one-shot entry point never reports a suspension."""
        result = run_swarm(flash_crowd_stable, horizon=4.0, seed=3, max_events=100)
        assert not result.suspended
        assert result.events_executed <= 100
