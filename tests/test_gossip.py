"""Gossip census: spec validation, protocol unit tests, determinism battery.

The determinism battery mirrors the repo-wide contract for every new
stochastic feature: object/array bit-identity under a shared seed,
``DRAW_BLOCK_SIZE=1`` vs. default equality, mid-run suspend → pickle →
restore exactness (estimates included), and stacked-lane == solo.  The
``census="oracle"`` spec must additionally be a *no-op*: bit-identical
to never mentioning the census at all.
"""

import dataclasses
import math
import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.swarm.policies as policies_module
from repro.core.scenario import base_params, make_scenario
from repro.core.state import SystemState
from repro.fleet import resume_fleet, run_fleet
from repro.fleet.spec import FleetSpec, FixedSampler, ScenarioWeight
from repro.swarm.gossip import (
    CENSUS_KINDS,
    CensusSpec,
    GossipCensus,
    GossipState,
    build_gossip,
)
from repro.swarm.policies import (
    OracleCensus,
    RarestFirstSelection,
    SwarmView,
)
from repro.swarm.stacked import StackedSwarmKernel
from repro.swarm.swarm import make_simulator, run_swarm


def metrics_tuple(result):
    m = result.metrics
    return (
        m.sample_times,
        m.population,
        m.num_seeds,
        m.one_club_size,
        m.min_piece_count,
        m.census_error,
        m.census_staleness,
        m.total_arrivals,
        m.total_departures,
        m.total_downloads,
        m.total_seed_uploads,
        m.wasted_contacts,
        m.thinned_events,
        m.neighbor_useful_ticks,
        m.neighbor_useless_ticks,
        m.culled_peers,
        m.sojourn_times,
        m.download_times,
        result.final_time,
        result.final_population,
        result.events_executed,
    )


def gossip_scenarios():
    """One scenario per gossip-relevant family (module-level so hypothesis
    samples prebuilt specs without re-running factories per example)."""
    return [
        make_scenario("flash-crowd", census="gossip"),
        make_scenario("flash-crowd", census=CensusSpec.gossip(exchange_rate=1.0)),
        make_scenario(
            "flash-crowd",
            census=CensusSpec.gossip(exchange_rate=0.1, damping=0.5),
        ),
        # Gossip over a sparse overlay: exchanges ride the adjacency draws.
        make_scenario("sparse-overlay", census="gossip"),
        make_scenario(
            "sparse-overlay", topology="tracker", degree=6, census="gossip"
        ),
        # Heterogeneous classes + gossip: per-class ticker walk.
        make_scenario("free-rider", leech_fraction=0.4, census="gossip"),
        # Churn-heavy: exercises swap-remove of estimate rows.
        make_scenario("high-churn", census="gossip"),
    ]


GOSSIP_SCENARIOS = gossip_scenarios()


class TestCensusSpec:
    def test_kinds_and_defaults(self):
        assert CENSUS_KINDS == ("oracle", "gossip")
        spec = CensusSpec()
        assert spec.is_oracle
        assert build_gossip(spec, 3) is None
        assert build_gossip(None, 3) is None
        assert build_gossip(CensusSpec.gossip(), 3) is not None

    def test_validation(self):
        with pytest.raises(ValueError, match="census kind"):
            CensusSpec(kind="telepathy")
        with pytest.raises(ValueError, match="exchange_rate"):
            CensusSpec.gossip(exchange_rate=1.5)
        with pytest.raises(ValueError, match="damping"):
            CensusSpec.gossip(damping=0.0)
        with pytest.raises(TypeError, match="census"):
            CensusSpec.coerce(42)

    def test_coerce(self):
        assert CensusSpec.coerce("oracle") == CensusSpec.oracle()
        assert CensusSpec.coerce("gossip") == CensusSpec.gossip()
        spec = CensusSpec.gossip(exchange_rate=0.2)
        assert CensusSpec.coerce(spec) is spec

    def test_frozen_hashable_picklable(self):
        spec = CensusSpec.gossip(exchange_rate=0.25, damping=0.5)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert hash(spec) == hash(CensusSpec.gossip(exchange_rate=0.25, damping=0.5))
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.damping = 1.0

    def test_scenario_field_coerces_and_describes(self):
        spec = make_scenario("flash-crowd", census="gossip")
        assert isinstance(spec.census, CensusSpec)
        assert spec.has_gossip
        assert not spec.is_trivial
        assert "gossip census" in spec.describe()
        oracle = make_scenario("flash-crowd")
        assert oracle.census.is_oracle
        assert not oracle.has_gossip


class TestGossipProtocol:
    """Draw-free unit behaviour of the flow-updating state."""

    def make_state(self, num_pieces=3, **kwargs):
        return GossipState(CensusSpec.gossip(**kwargs), num_pieces, capacity=2)

    def test_arrival_sets_indicator(self):
        state = self.make_state()
        state.on_arrival(0, 0b101, time=1.0)
        assert state.n == 1
        assert state.est[0].tolist() == [1.0, 0.0, 1.0]
        assert state.last_update[0] == 1.0

    def test_piece_receipt_moves_own_value(self):
        state = self.make_state()
        state.on_arrival(0, 0b000, time=0.0)
        state.on_piece(0, piece=2, time=2.0)
        assert state.est[0].tolist() == [0.0, 1.0, 0.0]
        assert state.last_update[0] == 2.0

    def test_exchange_conserves_mass(self):
        state = self.make_state(damping=0.5)
        state.on_arrival(0, 0b111, time=0.0)
        state.on_arrival(1, 0b000, time=0.0)
        before = state.est[:2].sum(axis=0).copy()
        state.exchange(0, 1, time=1.0)
        assert np.allclose(state.est[:2].sum(axis=0), before)
        assert state.exchanges == 1
        # damping=0.5 moves each a quarter of the way to the average.
        assert np.allclose(state.est[0], [0.75, 0.75, 0.75])
        assert np.allclose(state.est[1], [0.25, 0.25, 0.25])

    def test_full_average_at_damping_one(self):
        state = self.make_state()
        state.on_arrival(0, 0b001, time=0.0)
        state.on_arrival(1, 0b010, time=0.0)
        state.exchange(0, 1, time=1.0)
        assert np.allclose(state.est[0], state.est[1])
        assert np.allclose(state.est[0], [0.5, 0.5, 0.0])

    def test_swap_remove_matches_backend_discipline(self):
        state = self.make_state()
        for slot, mask in enumerate((0b001, 0b010, 0b100)):
            state.on_arrival(slot, mask, time=float(slot))
        state.on_departure(0)  # last row (0b100) swaps into slot 0
        assert state.n == 2
        assert state.est[0].tolist() == [0.0, 0.0, 1.0]
        assert state.est[1].tolist() == [0.0, 1.0, 0.0]

    def test_bulk_arrivals_match_scalar_loop(self):
        bulk = self.make_state()
        bulk.on_bulk_arrivals(0, 5, 0b011, time=3.0)
        scalar = self.make_state()
        for slot in range(5):
            scalar.on_arrival(slot, 0b011, time=3.0)
        assert bulk.n == scalar.n == 5
        assert np.array_equal(bulk.est[:5], scalar.est[:5])
        assert np.array_equal(bulk.last_update[:5], scalar.last_update[:5])

    def test_repeated_exchanges_converge_to_truth(self):
        """Full mixing drives every estimate to the population mean, so the
        scaled census converges on the oracle counts and rarest-first picks
        the same piece either way."""
        rng = np.random.default_rng(7)
        masks = [0b001, 0b011, 0b011, 0b111, 0b110, 0b010, 0b011, 0b111]
        state = self.make_state()
        for slot, mask in enumerate(masks):
            state.on_arrival(slot, mask, time=0.0)
        n = len(masks)
        for _ in range(4000):
            a, b = rng.choice(n, size=2, replace=False)
            state.exchange(int(a), int(b), time=1.0)
        truth = {
            k: sum((mask >> (k - 1)) & 1 for mask in masks) for k in (1, 2, 3)
        }
        state.focus(0, total_peers=n, time=1.0)
        census = GossipCensus(state)
        for k in (1, 2, 3):
            assert census.count(k) == pytest.approx(truth[k], abs=1e-6)
        assert np.allclose(
            census.counts_array(), [truth[1], truth[2], truth[3]], atol=1e-6
        )
        policy = RarestFirstSelection()
        view = SwarmView(num_pieces=3, census=census, total_peers=n, time=1.0)
        oracle_view = SwarmView(
            num_pieces=3, census=OracleCensus(truth), total_peers=n, time=1.0
        )
        wanted, held = 0b111, 0b000
        pick_rng = np.random.default_rng(0)
        assert policy.select_piece_mask(
            held, wanted, view, pick_rng
        ) == policy.select_piece_mask(
            held, wanted, oracle_view, np.random.default_rng(0)
        )

    def test_focus_and_staleness(self):
        state = self.make_state()
        state.on_arrival(0, 0b001, time=0.0)
        state.on_arrival(1, 0b010, time=4.0)
        state.focus(1, total_peers=2, time=10.0)
        census = GossipCensus(state)
        assert census.staleness() == 6.0
        assert census.count(2) == 2.0  # est 1.0 × 2 peers
        assert state.mean_staleness(10.0) == pytest.approx(8.0)

    def test_mean_error_zero_when_exact(self):
        state = self.make_state()
        state.on_arrival(0, 0b010, time=0.0)
        # A single peer's indicator *is* the population mean.
        assert state.mean_error({1: 0, 2: 1, 3: 0}, total_peers=1) == 0.0


class TestCensusSourceAPI:
    def test_oracle_census_reads_live_mapping(self):
        counts = {1: 3, 2: 0}
        census = OracleCensus(counts)
        assert census.count(1) == 3
        assert census.count(99) == 0
        assert census.staleness() == 0.0
        counts[1] = 7
        assert census.count(1) == 7

    def test_view_piece_count_delegates(self):
        view = SwarmView(
            num_pieces=2, census=OracleCensus({1: 4, 2: 1}), total_peers=5, time=0.0
        )
        assert view.piece_count(1) == 4

    def test_piece_counts_property_warns_once_per_process(self, monkeypatch):
        monkeypatch.setattr(policies_module, "_PIECE_COUNTS_WARNED", False)
        view = SwarmView(
            num_pieces=2, census=OracleCensus({1: 4, 2: 1}), total_peers=5, time=0.0
        )
        with pytest.warns(DeprecationWarning, match="view.census.count"):
            counts = view.piece_counts
        assert counts[1] == 4
        # Second access: the process-wide guard suppresses the warning.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert view.piece_counts[2] == 1

    def test_mask_shim_warns_once_per_process(self, monkeypatch):
        monkeypatch.setattr(policies_module, "_MASK_SHIM_WARNED", False)
        from repro.swarm.policies import CallablePolicy

        policy = CallablePolicy(
            lambda downloader, uploader, view, rng: max(
                downloader.useful_from(uploader)
            )
        )
        view = SwarmView(
            num_pieces=3,
            census=OracleCensus({1: 1, 2: 1, 3: 1}),
            total_peers=3,
            time=0.0,
        )
        rng = np.random.default_rng(0)
        with pytest.warns(DeprecationWarning, match="select_piece_mask"):
            policy.select_piece_mask(0b001, 0b110, view, rng)
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            policy.select_piece_mask(0b001, 0b110, view, rng)


class TestGossipBackendEquivalence:
    """Bit-identity of the two backends on every gossip scenario family."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.sampled_from(GOSSIP_SCENARIOS),
        st.integers(0, 2**31 - 1),
    )
    def test_backends_bit_identical_on_gossip(self, scenario, seed):
        runs = {
            backend: run_swarm(
                scenario.params,
                horizon=6.0,
                seed=seed,
                scenario=scenario,
                backend=backend,
                max_events=300,
            )
            for backend in ("object", "array")
        }
        assert metrics_tuple(runs["object"]) == metrics_tuple(runs["array"])

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(0, 2**31 - 1))
    def test_oracle_census_is_bit_identical_to_unspecified(self, seed):
        """``census="oracle"`` must be a pure spelling of the default: the
        trajectory (and the empty census series) match a run of the same
        scenario that never mentions the census, on both backends."""
        plain = make_scenario("flash-crowd")
        explicit = make_scenario("flash-crowd", census="oracle")
        assert explicit.census.is_oracle
        for backend in ("object", "array"):
            a = run_swarm(
                plain.params, horizon=8.0, seed=seed, scenario=plain,
                backend=backend, max_events=400,
            )
            b = run_swarm(
                explicit.params, horizon=8.0, seed=seed, scenario=explicit,
                backend=backend, max_events=400,
            )
            assert metrics_tuple(a) == metrics_tuple(b)
            assert b.metrics.census_error == []
            assert math.isnan(b.metrics.summary()["mean_census_error"])

    @pytest.mark.parametrize("backend", ["object", "array"])
    def test_block_size_invariance(self, backend):
        for scenario in GOSSIP_SCENARIOS:
            small = make_simulator(
                scenario.params,
                seed=np.random.default_rng(3),
                backend=backend,
                scenario=scenario,
                draw_block_size=1,
            )
            default = make_simulator(
                scenario.params,
                seed=np.random.default_rng(3),
                backend=backend,
                scenario=scenario,
            )
            assert metrics_tuple(small.run(12.0)) == metrics_tuple(
                default.run(12.0)
            )

    def test_backends_agree_from_seeded_one_club(self):
        scenario = make_scenario("flash-crowd", census="gossip")
        initial = SystemState.one_club(scenario.params.num_pieces, 20)
        runs = [
            run_swarm(
                scenario.params,
                horizon=5.0,
                seed=11,
                scenario=scenario,
                backend=backend,
                initial_state=initial,
                max_events=400,
            )
            for backend in ("object", "array")
        ]
        assert metrics_tuple(runs[0]) == metrics_tuple(runs[1])
        # The pre-seeded club populates the estimate rows: error series is
        # recorded and finite.
        assert runs[0].metrics.census_error
        assert all(math.isfinite(v) for v in runs[0].metrics.census_error)


class TestGossipMetrics:
    def test_summary_reports_error_and_staleness(self):
        scenario = make_scenario("flash-crowd", census="gossip")
        result = run_swarm(
            scenario.params,
            horizon=15.0,
            seed=2,
            scenario=scenario,
            backend="array",
            max_events=4000,
        )
        summary = result.metrics.summary()
        assert math.isfinite(summary["mean_census_error"])
        assert math.isfinite(summary["mean_census_staleness"])
        assert summary["mean_census_staleness"] >= 0.0
        assert len(result.metrics.census_error) == len(
            result.metrics.sample_times
        )

    def test_higher_exchange_rate_tracks_census_more_closely(self):
        """More gossip → lower estimate staleness (averaged over seeds)."""

        def mean_staleness(rate, seed):
            scenario = make_scenario(
                "flash-crowd", census=CensusSpec.gossip(exchange_rate=rate)
            )
            result = run_swarm(
                scenario.params,
                horizon=20.0,
                seed=seed,
                scenario=scenario,
                backend="array",
                max_events=6000,
            )
            return result.metrics.mean_census_staleness()

        seeds = (1, 2, 3)
        lazy = np.mean([mean_staleness(0.05, s) for s in seeds])
        chatty = np.mean([mean_staleness(0.9, s) for s in seeds])
        assert chatty < lazy


class TestGossipCheckpoint:
    @pytest.mark.parametrize("backend", ["object", "array"])
    def test_suspend_pickle_restore_is_exact(self, backend):
        for scenario in (
            make_scenario("flash-crowd", census="gossip"),
            make_scenario("sparse-overlay", census="gossip"),
        ):
            full = make_simulator(
                scenario.params,
                seed=np.random.default_rng(5),
                backend=backend,
                scenario=scenario,
            )
            reference = metrics_tuple(full.run(20.0))
            part = make_simulator(
                scenario.params,
                seed=np.random.default_rng(5),
                backend=backend,
                scenario=scenario,
            )
            part.run(20.0, suspend_after_events=150)
            snapshot = pickle.loads(pickle.dumps(part.capture_state()))
            fresh = make_simulator(
                scenario.params,
                seed=np.random.default_rng(999),
                backend=backend,
                scenario=scenario,
            )
            fresh.restore_state(snapshot)
            assert metrics_tuple(fresh.run(20.0, resume=True)) == reference

    def test_restore_rejects_census_mismatch(self):
        scenario = make_scenario("flash-crowd", census="gossip")
        sim = make_simulator(
            scenario.params,
            seed=np.random.default_rng(1),
            backend="array",
            scenario=scenario,
        )
        sim.run(5.0, suspend_after_events=50)
        snapshot = sim.capture_state()
        oracle = make_scenario("flash-crowd")  # same name, oracle census
        plain = make_simulator(
            oracle.params,
            seed=np.random.default_rng(1),
            backend="array",
            scenario=oracle,
        )
        with pytest.raises(ValueError, match="census"):
            plain.restore_state(snapshot)

    def test_restore_rejects_parameter_mismatch(self):
        scenario = make_scenario(
            "flash-crowd", census=CensusSpec.gossip(exchange_rate=0.3)
        )
        sim = make_simulator(
            scenario.params,
            seed=np.random.default_rng(1),
            backend="array",
            scenario=scenario,
        )
        sim.run(5.0, suspend_after_events=50)
        snapshot = sim.capture_state()
        other = make_scenario(
            "flash-crowd", census=CensusSpec.gossip(exchange_rate=0.8)
        )
        target = make_simulator(
            other.params,
            seed=np.random.default_rng(1),
            backend="array",
            scenario=other,
        )
        with pytest.raises(ValueError, match="exchange_rate"):
            target.restore_state(snapshot)


class TestStackedGossip:
    def test_stacked_lanes_equal_solo_on_gossip(self):
        for scenario in (
            make_scenario("flash-crowd", census="gossip"),
            make_scenario("sparse-overlay", census="gossip"),
        ):
            stack = StackedSwarmKernel()
            seeds = list(range(21, 29))
            for seed in seeds:
                stack.add_lane(
                    scenario.params,
                    seed=np.random.default_rng(seed),
                    scenario=scenario,
                )
            stacked = stack.run_all(15.0)
            for index, seed in enumerate(seeds):
                solo = make_simulator(
                    scenario.params,
                    seed=np.random.default_rng(seed),
                    backend="array",
                    scenario=scenario,
                )
                assert metrics_tuple(stacked[index]) == metrics_tuple(
                    solo.run(15.0)
                ), (scenario.name, seed)

    def test_stacked_mixed_gossip_and_plain_lanes(self):
        """Gossip lanes fall back to scalar dispatch while plain lanes keep
        the cross-lane window classification — in the same stack."""
        gossip = make_scenario("flash-crowd", census="gossip")
        overlay_gossip = make_scenario("sparse-overlay", census="gossip")
        stack = StackedSwarmKernel()
        configs = [(gossip, 41), (None, 42), (overlay_gossip, 43), (None, 44)]
        for scenario, seed in configs:
            stack.add_lane(
                base_params() if scenario is None else scenario.params,
                seed=np.random.default_rng(seed),
                scenario=scenario,
            )
        stacked = stack.run_all(15.0)
        for index, (scenario, seed) in enumerate(configs):
            solo = make_simulator(
                base_params() if scenario is None else scenario.params,
                seed=np.random.default_rng(seed),
                backend="array",
                scenario=scenario,
            )
            assert metrics_tuple(stacked[index]) == metrics_tuple(
                solo.run(15.0)
            )


class TestGossipFleetSmoke:
    def _spec(self):
        return FleetSpec(
            name="gossip-smoke",
            num_swarms=6,
            sampler=FixedSampler.of(arrival_rate=1.2, seed_rate=1.0),
            scenario_mix=(
                ScenarioWeight.of("flash-crowd", census="gossip"),
                ScenarioWeight.of(
                    "sparse-overlay", census="gossip", weight=0.5
                ),
            ),
            horizon=25.0,
            max_events=4000,
            backend="array",
            initial_club_size=15,
        )

    def test_gossip_fleet_kill_midrun_and_resume(self, tmp_path):
        spec = self._spec()
        uninterrupted = run_fleet(spec, seed=19, workers=1)
        path = tmp_path / "gossip.ckpt"
        run_fleet(
            spec,
            seed=19,
            workers=1,
            checkpoint_path=path,
            stop_after_swarms=3,
        )
        resumed = resume_fleet(path, workers=2)
        assert resumed.fingerprint() == uninterrupted.fingerprint()
        assert resumed == uninterrupted

    def test_gossip_fleet_stacked_matches_per_swarm(self):
        spec = self._spec()
        per_swarm = run_fleet(spec, seed=23, workers=1)
        stacked = run_fleet(spec, seed=23, workers=1, stacked=True)
        assert stacked.fingerprint() == per_swarm.fingerprint()


class TestGossipExperiment:
    def test_e14_smoke_produces_grid_and_baseline(self):
        from repro.experiments import run_gossip_census_experiment

        result = run_gossip_census_experiment(
            scenarios=("flash-crowd",),
            exchange_rates=(0.9,),
            swarms_per_cell=2,
            horizon=10.0,
            max_events=1500,
            seed=3,
        )
        baseline = result.baseline("flash-crowd")
        assert baseline.is_oracle
        assert math.isnan(baseline.mean_staleness)
        cell = result.cell("flash-crowd", 0.9)
        assert cell.swarms == 2
        assert math.isfinite(cell.mean_staleness)
        assert math.isfinite(cell.mean_error)
        report = result.report()
        assert "oracle" in report and "gossip r=0.9" in report
        assert isinstance(result.capture_shift("flash-crowd", 0.9), float)


class TestUnifiedEntryPoints:
    """The run_* family rejects unsupported keywords with one phrasing."""

    REJECTION = r"does not support"

    def test_run_swarm_rejects_workers_and_stacked(self):
        params = base_params()
        with pytest.raises(ValueError, match=self.REJECTION):
            run_swarm(params, horizon=1.0, seed=0, workers=4)
        with pytest.raises(ValueError, match=self.REJECTION):
            run_swarm(params, horizon=1.0, seed=0, stacked=True)

    def test_run_scenario_rejects_stacked(self):
        from repro.experiments.runner import run_scenario

        with pytest.raises(ValueError, match=self.REJECTION):
            run_scenario("flash-crowd", horizon=1.0, stacked=True)

    def test_run_fleet_rejects_backend_override(self):
        spec = FleetSpec(name="x", num_swarms=1, horizon=1.0)
        with pytest.raises(ValueError, match=self.REJECTION):
            run_fleet(spec, backend="array")

    def test_run_adaptive_fleet_rejects_backend_override(self):
        from repro.fleet.adaptive import run_adaptive_fleet

        with pytest.raises(ValueError, match=self.REJECTION):
            run_adaptive_fleet(None, backend="object")

    def test_stacked_requires_array_uses_uniform_phrase(self):
        from repro.fleet.scheduler import FleetScheduler

        spec = FleetSpec(name="x", num_swarms=1, horizon=1.0, backend="object")
        with pytest.raises(ValueError, match=self.REJECTION):
            FleetScheduler(spec, stacked=True)
