"""Ragged-stack property tests for the cross-lane cohort dispatcher.

The cohort dispatch groups every active lane's next pending event into
per-event-type cohorts each round, so its trickiest shapes are *ragged*
stacks: lanes that retire mid-round (event cap, absorption, horizon) while
others keep going, lanes whose piece counts and populations differ wildly
(heterogeneous window widths and ticker-table shapes), and the degenerate
1-lane stack, which must collapse to exactly the solo kernel's trajectory.
``tests/test_stacked.py`` pins the headline bit-identity contract; this file
stresses the grouping machinery itself.  Chunk-size invariance of the fleet
entry points rides along: sharding is pure bookkeeping, so fingerprints
cannot depend on it.
"""

import numpy as np
import pytest

from repro.core.parameters import SystemParameters
from repro.core.state import SystemState
from repro.core.types import PieceSet
from repro.fleet import (
    FixedSampler,
    FleetSpec,
    ScenarioWeight,
    run_fleet,
)
from repro.fleet.adaptive import AdaptiveFleetSpec, run_adaptive_fleet
from repro.swarm import ArraySwarmKernel, StackedSwarmKernel

HORIZON = 4.0
INTERVAL = 0.2


def mk_params(lam=6.0, num_pieces=10, **overrides):
    kwargs = dict(
        num_pieces=num_pieces,
        seed_rate=1.0,
        peer_rate=1.0,
        seed_departure_rate=0.5,
        arrival_rates={PieceSet.empty(num_pieces): lam},
    )
    kwargs.update(overrides)
    return SystemParameters(**kwargs)


def metrics_tuple(metrics):
    return (
        tuple(metrics.sample_times),
        tuple(metrics.population),
        tuple(metrics.num_seeds),
        tuple(metrics.one_club_size),
        tuple(metrics.min_piece_count),
        metrics.wasted_contacts,
        metrics.thinned_events,
        tuple(metrics.sojourn_times),
        tuple(metrics.download_times),
    )


def result_tuple(result):
    return (
        metrics_tuple(result.metrics),
        result.final_time,
        result.final_population,
        result.horizon_reached,
        result.suspended,
        result.events_executed,
        tuple(
            sorted((str(k), v) for k, v in result.final_state._counts.items())
        ),
    )


def run_both(lanes, **run_kwargs):
    """Run (params, seed, initial_state) lanes solo and stacked; return both."""
    solos = []
    for params, seed, init in lanes:
        kernel = ArraySwarmKernel(params, seed=np.random.default_rng(seed))
        solos.append(
            kernel.run(
                HORIZON,
                initial_state=init,
                sample_interval=INTERVAL,
                **run_kwargs,
            )
        )
    stack = StackedSwarmKernel()
    for params, seed, _init in lanes:
        stack.add_lane(params, seed=np.random.default_rng(seed))
    stacked = stack.run_all(
        HORIZON,
        initial_states=[init for _params, _seed, init in lanes],
        sample_interval=INTERVAL,
        **run_kwargs,
    )
    return solos, stacked


class TestRaggedStacks:
    def test_single_lane_stack_equals_solo(self):
        """The degenerate 1-lane stack is the solo kernel under cohorts."""
        lanes = [(mk_params(), 11, SystemState.one_club(10, 150))]
        solos, stacked = run_both(lanes)
        assert result_tuple(solos[0]) == result_tuple(stacked[0])

    def test_lanes_retire_at_different_rounds(self):
        """Lanes finishing at very different event counts — early absorption
        of a tiny no-arrival swarm, a hot lane hitting the event cap, a calm
        lane running to the horizon — stay bit-identical to solo while the
        survivors keep dispatching through the rounds the retirees left."""
        lanes = [
            # Tiny population, negligible arrivals: absorbs almost at once.
            (mk_params(lam=0.01), 21, SystemState.one_club(10, 4)),
            # Hot swarm: hits the shared event cap long before the horizon.
            (mk_params(lam=25.0), 22, SystemState.one_club(10, 400)),
            (mk_params(lam=6.0), 23, SystemState.one_club(10, 80)),
            (mk_params(lam=0.5), 24, SystemState.one_club(10, 12)),
        ]
        solos, stacked = run_both(lanes, max_events=300)
        for index, (solo, lane) in enumerate(zip(solos, stacked)):
            assert result_tuple(solo) == result_tuple(lane), f"lane {index}"
        # The stack really was ragged: retirement times differ across lanes.
        assert len({lane.events_executed for lane in stacked}) > 1
        assert len({lane.final_time for lane in stacked}) > 1

    def test_heterogeneous_piece_counts_and_populations(self):
        """Lanes with different K (including K > 16, the census bincount
        cutover) and very different population sizes share one stack."""
        lanes = [
            (mk_params(num_pieces=3), 31, SystemState.one_club(3, 20)),
            (mk_params(num_pieces=5, lam=12.0), 32, SystemState.one_club(5, 250)),
            (mk_params(num_pieces=16), 33, SystemState.one_club(16, 60)),
            (mk_params(num_pieces=33, lam=2.0), 34, SystemState.one_club(33, 15)),
        ]
        solos, stacked = run_both(lanes, max_events=400)
        for index, (solo, lane) in enumerate(zip(solos, stacked)):
            assert result_tuple(solo) == result_tuple(lane), f"lane {index}"


def fleet_spec(num_swarms=9) -> FleetSpec:
    return FleetSpec(
        name="chunk-invariance",
        num_swarms=num_swarms,
        sampler=FixedSampler.of(
            num_pieces=6,
            arrival_rate=5.0,
            seed_rate=1.0,
            peer_rate=1.0,
            seed_departure_rate=1.0,
        ),
        scenario_mix=(
            ScenarioWeight.of(None, weight=1.0),
            ScenarioWeight.of("free-rider", weight=1.0, leech_fraction=0.5),
        ),
        horizon=3.0,
        max_events=200,
        backend="array",
        initial_club_size=25,
    )


class TestChunkSizeInvariance:
    @pytest.mark.parametrize("stacked", [False, True])
    def test_run_fleet_fingerprint_chunk_invariant(self, stacked):
        """Sharding is pure bookkeeping: any explicit ``chunk_size`` yields
        the exact fingerprint of the heuristic default, on both paths."""
        spec = fleet_spec()
        reference = run_fleet(spec, seed=13, stacked=stacked).fingerprint()
        for chunk_size in (1, 4, 100):
            result = run_fleet(
                spec, seed=13, stacked=stacked, chunk_size=chunk_size
            )
            assert result.fingerprint() == reference, f"chunk_size={chunk_size}"

    def test_run_adaptive_fleet_fingerprint_chunk_invariant(self):
        spec = AdaptiveFleetSpec.of(
            "chunk-invariance-adaptive",
            arrival_rates=(0.5, 2.0, 6.0),
            seed_rates=(0.5, 2.0),
            num_pieces=4,
            swarm_budget=16,
            round_size=8,
            horizon=3.0,
            max_events=200,
            initial_club_size=12,
        )
        reference = run_adaptive_fleet(spec, seed=13).fingerprint()
        for chunk_size in (1, 3, 50):
            result = run_adaptive_fleet(spec, seed=13, chunk_size=chunk_size)
            assert result.fingerprint() == reference, f"chunk_size={chunk_size}"

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError, match="chunk_size"):
            run_fleet(fleet_spec(), seed=13, chunk_size=0)
        with pytest.raises(ValueError, match="chunk_size"):
            run_adaptive_fleet(
                AdaptiveFleetSpec.of(
                    "bad-chunk",
                    arrival_rates=(1.0,),
                    seed_rates=(1.0,),
                    swarm_budget=2,
                ),
                chunk_size=-1,
            )
