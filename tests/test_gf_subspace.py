"""Unit tests for GF(p) arithmetic and subspace representations."""

import numpy as np
import pytest

from repro.coding.gf import PrimeField, is_prime
from repro.coding.subspace import Subspace, random_subspace, rref


class TestPrimality:
    def test_small_primes(self):
        assert [p for p in range(2, 30) if is_prime(p)] == [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
        ]

    def test_non_primes(self):
        for value in (0, 1, 4, 9, 15, 21, 25, 27):
            assert not is_prime(value)


class TestPrimeField:
    def test_rejects_non_prime_order(self):
        with pytest.raises(ValueError):
            PrimeField(4)
        with pytest.raises(ValueError):
            PrimeField(1)

    def test_inverse(self):
        field = PrimeField(7)
        for a in range(1, 7):
            assert (a * field.inverse(a)) % 7 == 1
        with pytest.raises(ZeroDivisionError):
            field.inverse(0)

    def test_reduce_add_scale_dot(self):
        field = PrimeField(5)
        left = np.array([1, 2, 3, 4])
        right = np.array([4, 4, 4, 4])
        assert list(field.add(left, right)) == [0, 1, 2, 3]
        assert list(field.scale(left, 3)) == [3, 1, 4, 2]
        assert field.dot(left, right) == (1 * 4 + 2 * 4 + 3 * 4 + 4 * 4) % 5

    def test_random_vector_range(self, rng):
        field = PrimeField(3)
        vector = field.random_vector(50, rng)
        assert vector.min() >= 0 and vector.max() <= 2

    def test_random_nonzero_vector(self, rng):
        field = PrimeField(2)
        for _ in range(20):
            assert field.random_vector(3, rng, nonzero=True).any()

    def test_random_combination_in_span(self, rng):
        field = PrimeField(5)
        basis = np.array([[1, 0, 2], [0, 1, 3]])
        combo = field.random_combination(basis, rng)
        subspace = Subspace(field, 3, basis)
        assert subspace.contains(combo)

    def test_equality_and_hash(self):
        assert PrimeField(5) == PrimeField(5)
        assert PrimeField(5) != PrimeField(7)
        assert hash(PrimeField(5)) == hash(PrimeField(5))


class TestRref:
    def test_identity_unchanged(self):
        field = PrimeField(2)
        identity = np.eye(3, dtype=np.int64)
        assert np.array_equal(rref(identity, field), identity)

    def test_dependent_rows_dropped(self):
        field = PrimeField(5)
        matrix = np.array([[1, 2, 3], [2, 4, 6], [0, 1, 1]])
        reduced = rref(matrix, field)
        assert reduced.shape[0] == 2

    def test_rref_is_idempotent(self, rng):
        field = PrimeField(7)
        matrix = rng.integers(0, 7, size=(4, 5))
        once = rref(matrix, field)
        twice = rref(once, field)
        assert np.array_equal(once, twice)

    def test_leading_entries_are_one(self, rng):
        field = PrimeField(5)
        matrix = rng.integers(0, 5, size=(3, 4))
        reduced = rref(matrix, field)
        for row in reduced:
            nonzero = np.nonzero(row)[0]
            assert row[nonzero[0]] == 1


class TestSubspace:
    def test_zero_and_full(self):
        field = PrimeField(3)
        zero = Subspace.zero(field, 4)
        full = Subspace.full(field, 4)
        assert zero.dimension == 0 and zero.is_zero
        assert full.dimension == 4 and full.is_full
        assert full.contains_subspace(zero)

    def test_contains_vector(self):
        field = PrimeField(2)
        subspace = Subspace(field, 3, [[1, 0, 1]])
        assert subspace.contains([1, 0, 1])
        assert subspace.contains([0, 0, 0])
        assert not subspace.contains([1, 1, 0])

    def test_is_useful(self):
        field = PrimeField(2)
        subspace = Subspace(field, 3, [[1, 0, 0]])
        assert subspace.is_useful([0, 1, 0])
        assert not subspace.is_useful([1, 0, 0])

    def test_add_vector_increases_dimension_only_when_useful(self):
        field = PrimeField(5)
        subspace = Subspace(field, 3, [[1, 0, 0]])
        grown = subspace.add_vector([0, 1, 0])
        assert grown.dimension == 2
        same = subspace.add_vector([3, 0, 0])
        assert same.dimension == 1

    def test_dimension_formula(self, rng):
        field = PrimeField(3)
        a = random_subspace(field, 5, 3, rng)
        b = random_subspace(field, 5, 2, rng)
        total = a.sum(b)
        assert total.dimension == a.dimension + b.dimension - a.intersection_dimension(b)
        assert total.dimension <= 5

    def test_contains_subspace(self):
        field = PrimeField(2)
        small = Subspace(field, 3, [[1, 0, 0]])
        big = Subspace(field, 3, [[1, 0, 0], [0, 1, 0]])
        assert big.contains_subspace(small)
        assert not small.contains_subspace(big)

    def test_random_vector_is_member(self, rng):
        field = PrimeField(7)
        subspace = random_subspace(field, 4, 2, rng)
        for _ in range(10):
            assert subspace.contains(subspace.random_vector(rng))

    def test_useful_probability_lower_bound(self, rng):
        """When B is not contained in A, usefulness probability >= 1 - 1/q."""
        field = PrimeField(5)
        receiver = Subspace(field, 3, [[1, 0, 0]])
        sender = Subspace(field, 3, [[0, 1, 0], [0, 0, 1]])
        probability = sender.useful_probability_for(receiver)
        assert probability >= 1 - 1 / 5

    def test_useful_probability_zero_when_contained(self):
        field = PrimeField(3)
        receiver = Subspace.full(field, 3)
        sender = Subspace(field, 3, [[1, 1, 1]])
        assert sender.useful_probability_for(receiver) == 0.0

    def test_useful_probability_empirical(self, rng):
        """The formula matches the empirical innovation frequency."""
        field = PrimeField(3)
        receiver = Subspace(field, 4, [[1, 0, 0, 0], [0, 1, 0, 0]])
        sender = Subspace.full(field, 4)
        expected = sender.useful_probability_for(receiver)
        hits = sum(
            1 for _ in range(2000) if receiver.is_useful(sender.random_vector(rng))
        )
        assert hits / 2000 == pytest.approx(expected, abs=0.05)

    def test_equality_and_hash(self):
        field = PrimeField(2)
        a = Subspace(field, 3, [[1, 1, 0], [0, 1, 1]])
        b = Subspace(field, 3, [[1, 0, 1], [0, 1, 1]])  # same span
        assert a == b
        assert hash(a) == hash(b)

    def test_incompatible_spaces_rejected(self):
        a = Subspace(PrimeField(2), 3, [[1, 0, 0]])
        b = Subspace(PrimeField(3), 3, [[1, 0, 0]])
        with pytest.raises(ValueError):
            a.sum(b)

    def test_wrong_vector_length_rejected(self):
        subspace = Subspace(PrimeField(2), 3, [[1, 0, 0]])
        with pytest.raises(ValueError):
            subspace.contains([1, 0])

    def test_random_subspace_dimension(self, rng):
        field = PrimeField(2)
        for dim in range(4):
            assert random_subspace(field, 4, dim, rng).dimension == dim
        with pytest.raises(ValueError):
            random_subspace(field, 4, 5, rng)
