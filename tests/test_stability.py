"""Unit tests for the Theorem-1 stability analysis."""

import math

import pytest

from repro.core.parameters import SystemParameters, uniform_single_piece_rates
from repro.core.stability import (
    Stability,
    analyze,
    critical_arrival_scale,
    critical_departure_rate,
    critical_seed_rate,
    delta_s,
    is_stable,
    is_unstable,
    minimum_mean_dwell_time,
    piece_threshold,
    stability_margin,
    stability_region_boundary_example2,
    stability_region_boundary_example3,
    worst_case_subset,
)
from repro.core.types import PieceSet


class TestPieceThreshold:
    def test_flash_crowd_threshold_is_seed_rate(self):
        """With gamma = inf and empty arrivals, the threshold is exactly Us."""
        params = SystemParameters.flash_crowd(3, arrival_rate=1.0, seed_rate=2.5)
        for piece in (1, 2, 3):
            assert piece_threshold(params, piece) == pytest.approx(2.5)

    def test_example1_threshold(self):
        """Example 1: lambda* = Us / (1 - mu/gamma)."""
        params = SystemParameters.single_piece(
            arrival_rate=1.0, seed_rate=2.0, peer_rate=1.0, seed_departure_rate=2.0
        )
        assert piece_threshold(params, 1) == pytest.approx(2.0 / (1 - 0.5))

    def test_gifted_arrivals_raise_threshold(self, gifted_params):
        """Peers arriving with piece 1 add (K+1-|C|) lambda_C to the numerator."""
        expected = (0.5 + 0.5 * (3 + 1 - 1) + 0.25 * (3 + 1 - 2)) / (1 - 0.5)
        assert piece_threshold(gifted_params, 1) == pytest.approx(expected)

    def test_threshold_infinite_when_gamma_le_mu(self):
        params = SystemParameters.flash_crowd(
            2, arrival_rate=1.0, seed_rate=0.5, peer_rate=1.0, seed_departure_rate=0.5
        )
        assert math.isinf(piece_threshold(params, 1))

    def test_threshold_zero_when_piece_cannot_enter(self):
        params = SystemParameters(
            num_pieces=2,
            seed_rate=0.0,
            peer_rate=1.0,
            seed_departure_rate=2.0,
            arrival_rates={PieceSet((1,), 2): 1.0},
        )
        assert piece_threshold(params, 2) == 0.0

    def test_out_of_range_piece(self, flash_crowd_stable):
        with pytest.raises(ValueError):
            piece_threshold(flash_crowd_stable, 0)
        with pytest.raises(ValueError):
            piece_threshold(flash_crowd_stable, 4)


class TestDeltaS:
    def test_requires_mu_less_than_gamma(self):
        params = SystemParameters.flash_crowd(
            2, 1.0, 1.0, peer_rate=1.0, seed_departure_rate=1.0
        )
        with pytest.raises(ValueError):
            delta_s(params, PieceSet((1,), 2))

    def test_rejects_full_set(self, flash_crowd_stable):
        with pytest.raises(ValueError):
            delta_s(flash_crowd_stable, PieceSet.full(3))

    def test_sign_matches_threshold_condition(self, gifted_params):
        """delta_{F-{k}} < 0 iff lambda_total < threshold_k (Eq. (3) <=> Eq. (4))."""
        for piece in (1, 2, 3):
            subset = PieceSet.full(3).remove(piece)
            delta = delta_s(gifted_params, subset)
            threshold = piece_threshold(gifted_params, piece)
            assert (delta < 0) == (gifted_params.lambda_total < threshold)

    def test_flash_crowd_value(self):
        params = SystemParameters.flash_crowd(3, arrival_rate=1.5, seed_rate=2.0)
        # All arrivals are subsets of any S containing the empty set.
        subset = PieceSet((2, 3), 3)
        assert delta_s(params, subset) == pytest.approx(1.5 - 2.0)

    def test_worst_case_subset_is_one_club_type(self, gifted_params):
        subset, value = worst_case_subset(gifted_params)
        assert len(subset) == gifted_params.num_pieces - 1
        # The maximum over F-{k} should equal the overall maximum.
        best_over_clubs = max(
            delta_s(gifted_params, PieceSet.full(3).remove(k)) for k in (1, 2, 3)
        )
        assert value == pytest.approx(best_over_clubs)


class TestAnalyze:
    def test_stable_flash_crowd(self, flash_crowd_stable):
        report = analyze(flash_crowd_stable)
        assert report.verdict is Stability.STABLE
        assert report.is_stable
        assert report.margin > 0
        assert is_stable(flash_crowd_stable)

    def test_unstable_flash_crowd(self, flash_crowd_unstable):
        report = analyze(flash_crowd_unstable)
        assert report.verdict is Stability.UNSTABLE
        assert report.critical_piece in (1, 2, 3)
        assert is_unstable(flash_crowd_unstable)

    def test_borderline(self):
        params = SystemParameters.flash_crowd(2, arrival_rate=2.0, seed_rate=2.0)
        report = analyze(params)
        assert report.verdict is Stability.BORDERLINE

    def test_gamma_le_mu_stable_when_pieces_enter(self):
        params = SystemParameters.flash_crowd(
            3, arrival_rate=100.0, seed_rate=0.01, peer_rate=1.0, seed_departure_rate=0.5
        )
        report = analyze(params)
        assert report.verdict is Stability.STABLE
        assert "gamma <= mu" in report.regime

    def test_gamma_le_mu_unstable_when_piece_blocked(self):
        params = SystemParameters(
            num_pieces=2,
            seed_rate=0.0,
            peer_rate=1.0,
            seed_departure_rate=0.5,
            arrival_rates={PieceSet((1,), 2): 1.0},
        )
        report = analyze(params)
        assert report.verdict is Stability.UNSTABLE

    def test_describe_contains_verdict(self, flash_crowd_stable):
        text = analyze(flash_crowd_stable).describe()
        assert "stable" in text
        assert "piece 1" in text

    def test_stability_margin_sign(self, flash_crowd_stable, flash_crowd_unstable):
        assert stability_margin(flash_crowd_stable) > 0
        assert stability_margin(flash_crowd_unstable) < 0

    def test_example2_region(self):
        stable = SystemParameters.two_class_four_pieces(2.0, 2.0)
        unstable = SystemParameters.two_class_four_pieces(5.0, 1.0)
        assert analyze(stable).verdict is Stability.STABLE
        assert analyze(unstable).verdict is Stability.UNSTABLE

    def test_example2_boundary_formula(self):
        low, high = stability_region_boundary_example2(2.0)
        assert low == pytest.approx(1.0)
        assert high == pytest.approx(4.0)
        # Just inside and outside the boundary.
        assert analyze(SystemParameters.two_class_four_pieces(3.9, 2.0)).is_stable
        assert analyze(SystemParameters.two_class_four_pieces(4.1, 2.0)).is_unstable

    def test_example3_region(self):
        stable = SystemParameters.one_piece_arrivals((1.0, 1.0, 1.0), seed_departure_rate=2.0)
        unstable = SystemParameters.one_piece_arrivals((4.0, 4.0, 0.5), seed_departure_rate=2.0)
        assert analyze(stable).verdict is Stability.STABLE
        assert analyze(unstable).verdict is Stability.UNSTABLE

    def test_example3_boundary_formula(self):
        rows = stability_region_boundary_example3((1.0, 1.0, 1.0), mu=1.0, gamma=2.0)
        assert len(rows) == 3
        for _label, lhs, rhs in rows:
            assert lhs == pytest.approx(2.0)
            assert rhs == pytest.approx(5.0)
        with pytest.raises(ValueError):
            stability_region_boundary_example3((1.0, 1.0, 1.0), mu=2.0, gamma=1.0)

    def test_example3_theorem_agreement(self):
        """The closed-form inequalities agree with the general Theorem-1 verdict."""
        for mix in ((1.0, 1.0, 1.0), (2.0, 1.0, 0.8), (4.0, 4.0, 0.5), (3.0, 0.4, 3.0)):
            params = SystemParameters.one_piece_arrivals(mix, seed_departure_rate=2.0)
            rows = stability_region_boundary_example3(mix, 1.0, 2.0)
            closed_form_stable = all(lhs < rhs for _l, lhs, rhs in rows)
            report = analyze(params)
            if report.verdict is Stability.STABLE:
                assert closed_form_stable
            elif report.verdict is Stability.UNSTABLE:
                assert not closed_form_stable

    def test_symmetric_flat_network_with_immediate_departure_is_borderline(self):
        """Conjecture-17 setting: symmetric one-piece arrivals, gamma = inf."""
        params = SystemParameters(
            num_pieces=3,
            seed_rate=0.0,
            peer_rate=1.0,
            seed_departure_rate=math.inf,
            arrival_rates=uniform_single_piece_rates(3, 1.0),
        )
        assert analyze(params).verdict is Stability.BORDERLINE


class TestCriticalParameters:
    def test_critical_seed_rate_flash_crowd(self):
        params = SystemParameters.flash_crowd(3, arrival_rate=2.0, seed_rate=0.5)
        assert critical_seed_rate(params) == pytest.approx(2.0)
        # With the critical seed rate the system sits on the boundary.
        boundary = params.with_seed_rate(critical_seed_rate(params))
        assert analyze(boundary).verdict is Stability.BORDERLINE

    def test_critical_seed_rate_zero_when_gamma_small(self):
        params = SystemParameters.flash_crowd(
            3, arrival_rate=2.0, seed_rate=0.5, peer_rate=1.0, seed_departure_rate=0.5
        )
        assert critical_seed_rate(params) == 0.0

    def test_critical_arrival_scale(self):
        params = SystemParameters.flash_crowd(3, arrival_rate=1.0, seed_rate=2.0)
        scale = critical_arrival_scale(params)
        assert scale == pytest.approx(2.0)
        assert analyze(params.scaled_arrivals(scale * 0.9)).is_stable
        assert analyze(params.scaled_arrivals(scale * 1.1)).is_unstable

    def test_critical_arrival_scale_infinite_when_always_stable(self):
        params = SystemParameters.flash_crowd(
            2, arrival_rate=1.0, seed_rate=1.0, peer_rate=2.0, seed_departure_rate=1.0
        )
        assert math.isinf(critical_arrival_scale(params))

    def test_critical_departure_rate_and_dwell(self):
        params = SystemParameters.flash_crowd(
            3, arrival_rate=2.0, seed_rate=0.2, peer_rate=1.0, seed_departure_rate=2.0
        )
        gamma_star = critical_departure_rate(params)
        assert gamma_star > params.peer_rate  # some slack beyond one piece
        assert analyze(params.with_departure_rate(gamma_star * 0.95)).is_stable
        assert analyze(params.with_departure_rate(gamma_star * 1.05)).is_unstable
        assert minimum_mean_dwell_time(params) == pytest.approx(1.0 / gamma_star)

    def test_corollary_one_extra_piece(self):
        """For any arrivals with Us > 0, dwell time 1/mu is always sufficient."""
        for arrival in (1.0, 10.0, 100.0):
            params = SystemParameters.flash_crowd(
                4, arrival_rate=arrival, seed_rate=0.01, peer_rate=1.0,
                seed_departure_rate=2.0,
            )
            assert minimum_mean_dwell_time(params) <= 1.0 / params.peer_rate + 1e-12

    def test_critical_departure_rate_infinite_when_stable_without_seeds(self):
        params = SystemParameters.flash_crowd(2, arrival_rate=0.5, seed_rate=2.0)
        assert math.isinf(critical_departure_rate(params))
        assert minimum_mean_dwell_time(params) == 0.0
