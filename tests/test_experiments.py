"""Tests for the experiment harness and (quick versions of) each experiment."""

import math

import pytest

from repro.core.parameters import SystemParameters
from repro.core.stability import Stability
from repro.experiments.coding import run_coding_experiment
from repro.experiments.dwell_time import dwell_parameters, run_dwell_time_experiment
from repro.experiments.example1 import example1_parameters, run_example1
from repro.experiments.example2 import example2_parameters, run_example2
from repro.experiments.example3 import example3_parameters, run_example3
from repro.experiments.lyapunov_exp import run_lyapunov_experiment
from repro.experiments.mu_infinity_exp import run_mu_infinity_experiment
from repro.experiments.one_club import run_one_club_experiment
from repro.experiments.policy import run_policy_experiment
from repro.experiments.queueing_exp import run_queueing_bounds_experiment
from repro.experiments.runner import run_stability_trial, run_sweep
from repro.markov.classify import TrajectoryVerdict


class TestRunner:
    def test_trial_on_clearly_stable_point(self, flash_crowd_stable):
        trial = run_stability_trial(
            flash_crowd_stable, label="stable", horizon=150.0, replications=2, seed=1
        )
        assert trial.theory.verdict is Stability.STABLE
        assert trial.empirical_verdict is TrajectoryVerdict.STABLE
        assert trial.agrees_with_theory
        assert len(trial.classifications) == 2

    def test_trial_on_clearly_unstable_point(self, flash_crowd_unstable):
        trial = run_stability_trial(
            flash_crowd_unstable,
            label="unstable",
            horizon=120.0,
            replications=2,
            seed=2,
            max_population=2000,
        )
        assert trial.theory.verdict is Stability.UNSTABLE
        assert trial.empirical_verdict is TrajectoryVerdict.UNSTABLE
        assert trial.agrees_with_theory
        assert trial.mean_normalized_slope > 0.2

    def test_trial_row_shape(self, flash_crowd_stable):
        trial = run_stability_trial(
            flash_crowd_stable, label="x", horizon=60.0, replications=1, seed=3
        )
        row = trial.row()
        assert row[0] == "x"
        assert row[1] in ("stable", "unstable", "borderline")

    def test_sweep_aggregation(self, flash_crowd_stable, flash_crowd_unstable):
        sweep = run_sweep(
            "demo",
            [("s", flash_crowd_stable), ("u", flash_crowd_unstable)],
            horizon=120.0,
            replications=1,
            seed=4,
            max_population=2000,
        )
        assert len(sweep.trials) == 2
        assert 0.0 <= sweep.agreement_fraction() <= 1.0
        assert len(sweep.table_rows()) == 2

    def test_keep_results_option(self, flash_crowd_stable):
        trial = run_stability_trial(
            flash_crowd_stable, horizon=40.0, replications=1, seed=5, keep_results=True
        )
        assert len(trial.results) == 1


class TestExampleParameterBuilders:
    def test_example1_parameters(self):
        params = example1_parameters(arrival_rate=3.0, seed_rate=2.0)
        assert params.num_pieces == 1
        assert params.lambda_total == pytest.approx(3.0)

    def test_example2_parameters(self):
        params = example2_parameters(lambda_12=1.0, lambda_34=2.0)
        assert params.num_pieces == 4
        assert params.seed_rate == 0.0

    def test_example3_parameters(self):
        params = example3_parameters((1.0, 2.0, 3.0))
        assert params.num_pieces == 3
        assert params.seed_departure_rate == pytest.approx(2.0)

    def test_dwell_parameters(self):
        params = dwell_parameters(gamma=0.7, arrival_rate=2.0, seed_rate=0.2)
        assert params.seed_departure_rate == pytest.approx(0.7)


class TestQuickExperiments:
    """Each experiment run with tiny settings: structure and verdict sanity."""

    def test_example1_quick(self):
        result = run_example1(
            relative_rates=(0.5, 2.0),
            horizon=120.0,
            replications=1,
            seed=10,
            max_population=1500,
        )
        assert result.threshold == pytest.approx(4.0)
        assert result.sweep.all_decisive_agree()
        assert "Example 1" in result.report()

    def test_example2_quick(self):
        result = run_example2(
            lambda_34=2.0,
            lambda_12_values=(2.0, 7.0),
            horizon=120.0,
            replications=1,
            seed=11,
            max_population=1500,
        )
        assert result.stable_interval == (1.0, 4.0)
        assert result.sweep.all_decisive_agree()

    def test_example3_quick(self):
        result = run_example3(
            mixes=((1.0, 1.0, 1.0), (4.0, 4.0, 0.5)),
            horizon=120.0,
            replications=1,
            seed=12,
            max_population=1500,
        )
        assert result.sweep.all_decisive_agree()
        assert len(result.inequality_tables) == 2
        assert "Example 3" in result.report()

    def test_one_club_quick(self):
        result = run_one_club_experiment(
            initial_club_size=40,
            horizon=60.0,
            replications=1,
            seed=13,
            max_population=1500,
        )
        unstable, stable = result.runs
        assert unstable.predicted_growth > 0
        assert unstable.measured_growth > 0
        assert stable.predicted_growth < 0
        assert stable.final_one_club < 40
        assert "one-club" in result.report() or "club" in result.report()

    def test_policy_quick(self):
        result = run_policy_experiment(
            policies=("random-useful", "rarest-first"),
            horizon=100.0,
            replications=1,
            seed=14,
            max_population=1500,
        )
        assert result.all_agree()
        assert len(result.trials) == 2

    def test_dwell_time_quick(self):
        result = run_dwell_time_experiment(
            gamma_values=(0.8, math.inf),
            horizon=220.0,
            replications=1,
            seed=15,
            max_population=1500,
        )
        assert result.minimum_dwell <= 1.0 / result.peer_rate + 1e-9
        assert result.sweep.all_decisive_agree()

    def test_mu_infinity_quick(self):
        result = run_mu_infinity_experiment(block_sizes=(20, 80), seed=16)
        assert result.top_layer_drift == pytest.approx(0.0)
        assert len(result.running_mean_peaks) == 2
        assert "drift" in result.report()

    def test_coding_quick(self):
        result = run_coding_experiment(
            num_pieces=6,
            field_size=5,
            horizon=80.0,
            seed=17,
            max_population=1200,
        )
        assert result.paper_numbers["transient_below_times_K"] == pytest.approx(1.016, abs=0.01)
        assert len(result.rows) == 3
        coded_high = result.rows[1]
        uncoded = result.rows[2]
        assert coded_high.final_population < uncoded.final_population
        assert "Theorem 15" in result.report()

    def test_lyapunov_quick(self):
        result = run_lyapunov_experiment(populations=(400,), states_per_population=4, seed=18)
        stable_rows = [row for row in result.rows if row.label == "stable"]
        unstable_rows = [row for row in result.rows if row.label == "unstable"]
        assert stable_rows[0].one_club_drift_per_peer < 0
        assert unstable_rows[0].one_club_drift_per_peer > 0
        assert "Lyapunov" in result.report() or "Foster" in result.report()

    def test_queueing_quick(self):
        result = run_queueing_bounds_experiment(
            horizon=80.0, num_paths=40, offsets=(20.0,), seed=19
        )
        assert result.all_bounds_hold()
        assert len(result.rows) == 2
