"""DrawBuffer edge cases: refills, block-size invariance, snapshot formats.

The blocked-draw contract (see ``repro.swarm.drawbuf``): draw number ``k``
of a simulation reads stream position ``k`` of the underlying PCG64
generator regardless of block size, so every block size yields bit-identical
trajectories; snapshots carry the un-consumed block remainder so mid-block
restores continue exactly; and snapshots/checkpoints that predate the buffer
(format 1, no look-ahead) still restore.
"""

import pickle

import numpy as np
import pytest

from repro.core.parameters import SystemParameters
from repro.core.state import SystemState
from repro.swarm.drawbuf import BLOCK_SIZE_ENV, DrawBuffer, default_block_size
from repro.swarm.swarm import make_simulator

BLOCK_SIZES = (1, 2, 4096)


def _params():
    return SystemParameters.flash_crowd(
        num_pieces=4, arrival_rate=2.0, seed_rate=1.0, seed_departure_rate=2.0
    )


class TestDrawBufferUnit:
    def test_stream_matches_scalar_generator_across_refills(self):
        """Blocked consumption reads the same stream as scalar random()."""
        scalar_rng = np.random.default_rng(3)
        reference = [scalar_rng.random() for _ in range(11)]
        for block_size in (1, 2, 3, 4096):
            buffer = DrawBuffer(np.random.default_rng(3), block_size)
            drawn = [buffer.next() for _ in range(11)]
            assert drawn == list(reference), block_size

    def test_uniform_matches_generator_uniform(self):
        buffer = DrawBuffer(np.random.default_rng(7), 4)
        expected = np.random.default_rng(7).uniform(0.0, 3.5)
        assert buffer.uniform(0.0, 3.5) == expected

    def test_exponential_is_inverse_transform(self):
        buffer = DrawBuffer(np.random.default_rng(11), 8)
        u = np.random.default_rng(11).random()
        assert buffer.exponential(2.0) == 2.0 * -np.log1p(-u)

    def test_integers_bounds_and_determinism(self):
        buffer = DrawBuffer(np.random.default_rng(5), 2)
        values = [buffer.integers(7) for _ in range(100)]
        assert all(0 <= v < 7 for v in values)
        assert buffer.integers(1) == 0
        ranged = DrawBuffer(np.random.default_rng(5), 2)
        assert [ranged.integers(10, 17) for _ in range(100)] == [
            10 + v for v in values
        ]

    def test_choice_weighted_matches_searchsorted(self):
        buffer = DrawBuffer(np.random.default_rng(9), 4)
        u = np.random.default_rng(9).random()
        cumulative = np.cumsum([0.1, 0.2, 0.7])
        expected = int(np.searchsorted(cumulative, cumulative[-1] * u, side="right"))
        assert buffer.choice(3, p=[0.1, 0.2, 0.7]) == expected

    def test_views_and_advance_track_scalar_positions(self):
        buffer = DrawBuffer(np.random.default_rng(1), 16)
        first = buffer.next()
        view = buffer.uniforms_view(4).copy()
        exp_view = buffer.exp_view(4).copy()
        assert np.array_equal(exp_view, -np.log1p(-view))
        buffer.advance(4)
        scalar = DrawBuffer(np.random.default_rng(1), 16)
        expected = [scalar.next() for _ in range(6)]
        assert [first, *view, buffer.next()] == expected

    def test_advance_past_block_rejected(self):
        buffer = DrawBuffer(np.random.default_rng(1), 4)
        buffer.next()
        with pytest.raises(ValueError, match="advance"):
            buffer.advance(4)

    def test_capture_restore_mid_block(self):
        buffer = DrawBuffer(np.random.default_rng(13), 8)
        for _ in range(3):
            buffer.next()
        state = pickle.loads(pickle.dumps(buffer.capture()))
        tail = [buffer.next() for _ in range(5)]
        clone = DrawBuffer(np.random.default_rng(13), 8)
        # Match the generator position (one block consumed), then restore.
        clone._refill()
        clone.restore(state)
        assert [clone.next() for _ in range(5)] == tail

    def test_block_size_validation(self):
        with pytest.raises(ValueError, match="block_size"):
            DrawBuffer(np.random.default_rng(0), 0)

    def test_default_block_size_env(self, monkeypatch):
        monkeypatch.setenv(BLOCK_SIZE_ENV, "17")
        assert default_block_size() == 17
        assert DrawBuffer(np.random.default_rng(0)).block_size == 17
        monkeypatch.setenv(BLOCK_SIZE_ENV, "0")
        with pytest.raises(ValueError, match=BLOCK_SIZE_ENV):
            default_block_size()
        monkeypatch.setenv(BLOCK_SIZE_ENV, "many")
        with pytest.raises(ValueError, match=BLOCK_SIZE_ENV):
            default_block_size()
        monkeypatch.delenv(BLOCK_SIZE_ENV)
        assert default_block_size() == 4096


class TestBlockSizeInvariance:
    """Block-boundary refills must be invisible in the trajectory."""

    @pytest.mark.parametrize("backend", ("object", "array"))
    def test_trajectories_identical_across_block_sizes(self, backend):
        results = {}
        for block_size in (1, 2, 3, 64, 4096):
            simulator = make_simulator(
                _params(), seed=29, backend=backend, draw_block_size=block_size
            )
            results[block_size] = simulator.run(
                8.0,
                initial_state=SystemState.one_club(4, 30),
                max_events=600,
            )
        reference = results[4096]
        for block_size, result in results.items():
            assert result.final_state == reference.final_state, block_size
            assert result.final_time == reference.final_time, block_size
            assert (
                result.metrics.population == reference.metrics.population
            ), block_size
            assert (
                result.metrics.wasted_contacts
                == reference.metrics.wasted_contacts
            ), block_size


class TestSnapshotMidBlock:
    """Checkpoint/restore mid-block continues bit-identically (ISSUE: block
    sizes 1, 2 and 4096)."""

    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    @pytest.mark.parametrize("backend", ("object", "array"))
    def test_restore_mid_block_continues_exactly(self, backend, block_size):
        kwargs = dict(seed=41, backend=backend, draw_block_size=block_size)
        initial = SystemState.one_club(4, 25)
        uninterrupted = make_simulator(_params(), **kwargs).run(
            9.0, initial_state=initial, max_events=500
        )
        first = make_simulator(_params(), **kwargs)
        segment = first.run(
            9.0,
            initial_state=initial,
            max_events=500,
            suspend_after_events=37,  # never a multiple of any block size
        )
        assert segment.suspended
        snapshot = pickle.loads(pickle.dumps(first.capture_state()))
        if block_size > 37:
            # The suspension really is mid-block: a remainder travels along.
            assert len(snapshot["draws"]["uniforms"]) > 0
        fresh = make_simulator(_params(), **kwargs)
        fresh.restore_state(snapshot)
        resumed = fresh.run(9.0, resume=True, max_events=500)
        assert resumed.final_state == uninterrupted.final_state
        assert resumed.final_time == uninterrupted.final_time
        assert resumed.metrics.population == uninterrupted.metrics.population
        assert (
            resumed.metrics.wasted_contacts
            == uninterrupted.metrics.wasted_contacts
        )

    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_restore_into_other_block_size(self, block_size):
        """A snapshot replays its remainder, then refills at the restoring
        simulator's own block size — the trajectory must not care."""
        initial = SystemState.one_club(4, 25)
        donor = make_simulator(
            _params(), seed=43, backend="array", draw_block_size=block_size
        )
        donor.run(9.0, initial_state=initial, max_events=500, suspend_after_events=37)
        snapshot = donor.capture_state()
        reference = donor.run(9.0, resume=True, max_events=500)
        other = make_simulator(
            _params(), seed=43, backend="array", draw_block_size=512
        )
        other.restore_state(snapshot)
        resumed = other.run(9.0, resume=True, max_events=500)
        assert resumed.final_state == reference.final_state
        assert resumed.final_time == reference.final_time


class TestLegacySnapshotFormats:
    """Format-1 snapshots (pre-buffer) and old fleet checkpoints restore."""

    def _legacy_snapshot(self, backend):
        """A faithful format-1 snapshot: captured at block size 1, where the
        generator holds no look-ahead, then stripped of the buffer state."""
        simulator = make_simulator(
            _params(), seed=47, backend=backend, draw_block_size=1
        )
        simulator.run(
            9.0,
            initial_state=SystemState.one_club(4, 25),
            max_events=500,
            suspend_after_events=37,
        )
        snapshot = simulator.capture_state()
        assert len(snapshot["draws"]["uniforms"]) == 0
        del snapshot["draws"]
        snapshot["format"] = 1
        reference = simulator.run(9.0, resume=True, max_events=500)
        return snapshot, reference

    @pytest.mark.parametrize("backend", ("object", "array"))
    def test_format_1_snapshot_restores(self, backend):
        snapshot, reference = self._legacy_snapshot(backend)
        fresh = make_simulator(_params(), seed=0, backend=backend)
        fresh.restore_state(snapshot)
        resumed = fresh.run(9.0, resume=True, max_events=500)
        assert resumed.final_state == reference.final_state
        assert resumed.final_time == reference.final_time

    def test_unknown_format_still_rejected(self):
        simulator = make_simulator(_params(), seed=1)
        snapshot = simulator.capture_state()
        snapshot["format"] = 999
        with pytest.raises(ValueError, match="format"):
            simulator.restore_state(snapshot)

    def test_old_fleet_checkpoint_with_format_1_kernel_snapshot(
        self, tmp_path, monkeypatch
    ):
        """A fleet checkpoint written before the draw buffer existed carries
        a format-1 in-flight kernel snapshot; resume must accept it."""
        from repro.fleet import (
            FixedSampler,
            FleetSpec,
            load_checkpoint,
            resume_fleet,
            run_fleet,
        )
        from repro.fleet.checkpoint import save_checkpoint

        # Block size 1 reproduces the pre-buffer capture exactly: the
        # generator is in sync, so stripping the (empty) buffer state and
        # stamping format 1 yields a checkpoint an old build would have
        # written for the same trajectory.
        monkeypatch.setenv(BLOCK_SIZE_ENV, "1")
        spec = FleetSpec(
            name="legacy-ckpt",
            num_swarms=6,
            sampler=FixedSampler.of(
                num_pieces=4,
                arrival_rate=2.0,
                seed_rate=1.0,
                peer_rate=1.0,
                seed_departure_rate=2.0,
            ),
            horizon=6.0,
            max_events=120,
            backend="array",
            initial_club_size=10,
        )
        uninterrupted = run_fleet(spec, seed=21)
        path = tmp_path / "fleet.ckpt"
        run_fleet(
            spec,
            seed=21,
            checkpoint_path=path,
            stop_after_swarms=3,
            suspend_after_events=40,
        )
        checkpoint = load_checkpoint(path)
        assert checkpoint.in_flight is not None
        index, snapshot = checkpoint.in_flight
        assert len(snapshot["draws"]["uniforms"]) == 0
        del snapshot["draws"]
        snapshot["format"] = 1
        checkpoint.in_flight = (index, snapshot)
        save_checkpoint(path, checkpoint)
        # The new build (any block size) resumes the old checkpoint exactly.
        monkeypatch.delenv(BLOCK_SIZE_ENV)
        resumed = resume_fleet(path)
        assert resumed == uninterrupted


class TestRestoreIntoUsedSimulator:
    @pytest.mark.parametrize("scenario_name", ("free-rider", "heterogeneous-classes"))
    def test_same_simulator_restore_matches_fresh(self, scenario_name):
        """Restoring a snapshot into a simulator that kept running after the
        capture must continue exactly like restoring into a fresh one — in
        particular the array kernel's cached per-class ticker arrays must
        not survive the restore (regression: stale ``_ticker_cache``)."""
        from repro.core.scenario import make_scenario

        scenario = make_scenario(scenario_name)
        kwargs = dict(seed=2, backend="array", scenario=scenario)
        simulator = make_simulator(scenario.params, **kwargs)
        segment = simulator.run(
            40.0,
            initial_state=SystemState.one_club(scenario.params.num_pieces, 40),
            max_events=2000,
            suspend_after_events=300,
        )
        assert segment.suspended
        snapshot = pickle.loads(pickle.dumps(simulator.capture_state()))
        # Keep running past the capture point, so the batch stage rebuilds
        # its caches against post-snapshot membership before the restore.
        simulator.run(40.0, resume=True, max_events=2000)
        fresh = make_simulator(scenario.params, **kwargs)
        fresh.restore_state(snapshot)
        fresh_result = fresh.run(40.0, resume=True, max_events=2000)
        simulator.restore_state(snapshot)
        # The cached per-class ticker arrays reflect continuation-end
        # membership, not the restored membership: restore must have
        # invalidated them (this is what guarantees the trajectory
        # equality below for *every* workload, not just this one).
        cache = simulator._ticker_cache
        assert cache is None or cache["version"] != simulator._membership_version
        reused_result = simulator.run(40.0, resume=True, max_events=2000)
        assert reused_result.final_state == fresh_result.final_state
        assert reused_result.final_time == fresh_result.final_time
        assert (
            reused_result.metrics.population == fresh_result.metrics.population
        )
