"""Unit tests for the scenario subsystem: rate schedules, peer classes,
scenario specs, the named registry, and the scenario paths through the
kernels, the batch runner and the scenario-dynamics experiment."""

import math

import numpy as np
import pytest

from repro.core.parameters import SystemParameters
from repro.core.scenario import (
    PeerClass,
    RateSchedule,
    ScenarioSpec,
    make_scenario,
    register_scenario,
    registered_scenarios,
)
from repro.core.schedule_stability import OUT_OF_THEORY, piecewise_stability
from repro.core.stability import analyze
from repro.core.state import SystemState
from repro.core.types import PieceSet
from repro.experiments.runner import BatchRunner, run_scenario
from repro.experiments.scenarios import run_scenario_dynamics
from repro.swarm.policies import make_policy
from repro.swarm.swarm import make_simulator, run_swarm


# ---------------------------------------------------------------------------
# RateSchedule
# ---------------------------------------------------------------------------


class TestRateSchedule:
    def test_constant(self):
        schedule = RateSchedule.constant(2.5)
        assert schedule.is_constant
        assert schedule.max_value == 2.5
        assert schedule.value_at(0.0) == schedule.value_at(1e6) == 2.5

    def test_pulse_lookup(self):
        schedule = RateSchedule.pulse(10.0, 20.0, 5.0)
        assert schedule.value_at(0.0) == 1.0
        assert schedule.value_at(9.999) == 1.0
        assert schedule.value_at(10.0) == 5.0
        assert schedule.value_at(19.999) == 5.0
        assert schedule.value_at(20.0) == 1.0
        assert schedule.max_value == 5.0
        assert not schedule.is_constant

    def test_pulse_starting_at_zero(self):
        schedule = RateSchedule.pulse(0.0, 5.0, 3.0)
        assert schedule.value_at(0.0) == 3.0
        assert schedule.value_at(5.0) == 1.0

    def test_outage_is_zero_inside_window(self):
        schedule = RateSchedule.outage(2.0, 4.0)
        assert schedule.value_at(3.0) == 0.0
        assert schedule.value_at(4.0) == 1.0

    def test_square_wave_alternates(self):
        schedule = RateSchedule.square_wave(period=10.0, high=2.0, low=0.5, horizon=30.0)
        assert schedule.value_at(0.0) == 2.0
        assert schedule.value_at(5.0) == 0.5
        assert schedule.value_at(10.0) == 2.0

    def test_step_constructor(self):
        schedule = RateSchedule.step([(0.0, 1.0), (3.0, 0.0), (6.0, 2.0)])
        assert schedule.value_at(2.0) == 1.0
        assert schedule.value_at(3.5) == 0.0
        assert schedule.value_at(100.0) == 2.0

    def test_scaled(self):
        schedule = RateSchedule.pulse(1.0, 2.0, 4.0).scaled(0.5)
        assert schedule.value_at(1.5) == 2.0
        assert schedule.value_at(0.0) == 0.5

    @pytest.mark.parametrize(
        "times, values",
        [
            ((1.0,), (1.0,)),  # must start at 0
            ((0.0, 1.0), (1.0,)),  # length mismatch
            ((0.0, 0.0), (1.0, 2.0)),  # not strictly increasing
            ((0.0,), (-1.0,)),  # negative factor
            ((0.0,), (0.0,)),  # no positive factor at all
            ((0.0,), (math.inf,)),  # infinite factor
        ],
    )
    def test_invalid_schedules(self, times, values):
        with pytest.raises(ValueError):
            RateSchedule(times, values)


# ---------------------------------------------------------------------------
# PeerClass / ScenarioSpec
# ---------------------------------------------------------------------------


class TestPeerClass:
    def test_validation(self):
        with pytest.raises(ValueError, match="contact_rate"):
            PeerClass(name="bad", contact_rate=0.0, seed_departure_rate=1.0)
        with pytest.raises(ValueError, match="seed_departure_rate"):
            PeerClass(name="bad", contact_rate=1.0, seed_departure_rate=0.0)
        with pytest.raises(ValueError, match="arrival_fraction"):
            PeerClass(
                name="bad",
                contact_rate=1.0,
                seed_departure_rate=1.0,
                arrival_fraction=-0.1,
            )

    def test_immediate_departure(self):
        cls = PeerClass(name="fast", contact_rate=1.0, seed_departure_rate=math.inf)
        assert cls.immediate_departure

    def test_arrival_mix_cleaning(self):
        cls = PeerClass(
            name="mixed",
            contact_rate=1.0,
            seed_departure_rate=1.0,
            arrival_mix={PieceSet.empty(3): 1.0, PieceSet((1,), 3): 0.0},
        )
        assert list(cls.arrival_mix) == [PieceSet.empty(3)]


class TestScenarioSpec:
    def make_params(self, **kwargs):
        defaults = dict(num_pieces=3, arrival_rate=1.0, seed_rate=1.0, peer_rate=1.0)
        defaults.update(kwargs)
        return SystemParameters.flash_crowd(**defaults)

    def test_trivial_homogeneous(self):
        spec = ScenarioSpec.homogeneous(self.make_params())
        assert spec.is_trivial
        assert not spec.is_heterogeneous
        assert not spec.has_schedules
        assert spec.class_fractions() == (1.0,)
        assert spec.num_classes == 1

    def test_single_class_equal_to_base_is_homogeneous(self):
        params = self.make_params()
        spec = ScenarioSpec(
            name="one",
            params=params,
            classes=(
                PeerClass(
                    name="base",
                    contact_rate=params.peer_rate,
                    seed_departure_rate=params.seed_departure_rate,
                ),
            ),
        )
        assert not spec.is_heterogeneous

    def test_differing_class_is_heterogeneous(self):
        params = self.make_params()
        spec = ScenarioSpec(
            name="fast",
            params=params,
            classes=(
                PeerClass(
                    name="fast",
                    contact_rate=2.0 * params.peer_rate,
                    seed_departure_rate=params.seed_departure_rate,
                ),
            ),
        )
        assert spec.is_heterogeneous

    def test_class_fractions_normalised(self):
        params = self.make_params()
        spec = ScenarioSpec(
            name="two",
            params=params,
            classes=(
                PeerClass(name="a", contact_rate=1.0, seed_departure_rate=2.0,
                          arrival_fraction=3.0),
                PeerClass(name="b", contact_rate=2.0, seed_departure_rate=2.0,
                          arrival_fraction=1.0),
            ),
        )
        assert spec.class_fractions() == (0.75, 0.25)

    def test_duplicate_class_names_rejected(self):
        params = self.make_params()
        cls = PeerClass(name="dup", contact_rate=1.0, seed_departure_rate=2.0)
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioSpec(name="bad", params=params, classes=(cls, cls))

    def test_mix_must_match_num_pieces(self):
        with pytest.raises(ValueError, match="does not match"):
            ScenarioSpec(
                name="bad",
                params=self.make_params(num_pieces=3),
                classes=(
                    PeerClass(
                        name="wrong-k",
                        contact_rate=1.0,
                        seed_departure_rate=2.0,
                        arrival_mix={PieceSet.empty(4): 1.0},
                    ),
                ),
            )

    def test_immediate_class_rejects_full_arrivals(self):
        params = self.make_params()
        with pytest.raises(ValueError, match="full-file"):
            ScenarioSpec(
                name="bad",
                params=params,
                classes=(
                    PeerClass(
                        name="leaver",
                        contact_rate=1.0,
                        seed_departure_rate=math.inf,
                        arrival_mix={PieceSet.full(3): 1.0},
                    ),
                ),
            )

    def test_peak_rates(self):
        spec = ScenarioSpec(
            name="peaky",
            params=self.make_params(arrival_rate=2.0, seed_rate=3.0),
            arrival_schedule=RateSchedule.pulse(1.0, 2.0, 4.0),
            seed_schedule=RateSchedule.constant(0.5),
        )
        assert spec.peak_arrival_rate == pytest.approx(8.0)
        assert spec.peak_seed_rate == pytest.approx(1.5)
        assert spec.has_schedules

    def test_describe_mentions_classes_and_schedules(self):
        spec = make_scenario("heterogeneous-classes")
        text = spec.describe()
        assert "fast" in text and "slow" in text
        assert "schedule" in text


class TestRegistry:
    def test_known_scenarios_registered(self):
        names = registered_scenarios()
        for expected in (
            "flash-crowd",
            "seed-outage",
            "heterogeneous-classes",
            "diurnal",
            "high-churn",
            "sparse-overlay",
            "partitioned",
            "flash-exit",
        ):
            assert expected in names

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario") as excinfo:
            make_scenario("no-such-workload")
        # The DX contract: the error lists every registered name.
        for name in registered_scenarios():
            assert name in str(excinfo.value)

    def test_overrides_forwarded(self):
        spec = make_scenario("flash-crowd", surge_factor=3.0, num_pieces=4)
        assert spec.params.num_pieces == 4
        assert spec.arrival_schedule.max_value == 3.0

    def test_register_custom(self):
        def factory(**kwargs):
            return ScenarioSpec.homogeneous(
                SystemParameters.flash_crowd(
                    num_pieces=2, arrival_rate=1.0, seed_rate=1.0
                ),
                name="custom-test",
            )

        register_scenario("custom-test", factory)
        try:
            assert make_scenario("custom-test").name == "custom-test"
        finally:
            from repro.core import scenario as scenario_module

            scenario_module._SCENARIO_REGISTRY.pop("custom-test")


# ---------------------------------------------------------------------------
# Scenario execution through the kernels
# ---------------------------------------------------------------------------


class TestScenarioSimulation:
    def test_trivial_scenario_matches_plain_run(self, flash_crowd_stable):
        plain = run_swarm(flash_crowd_stable, horizon=30.0, seed=11)
        via_scenario = run_swarm(
            flash_crowd_stable,
            horizon=30.0,
            seed=11,
            scenario=ScenarioSpec.homogeneous(flash_crowd_stable),
        )
        assert via_scenario.final_state == plain.final_state
        assert via_scenario.metrics.population == plain.metrics.population
        assert via_scenario.metrics.thinned_events == 0

    @pytest.mark.parametrize("backend", ["object", "array"])
    def test_scenario_params_mismatch_raises(self, flash_crowd_stable, backend):
        other = SystemParameters.flash_crowd(
            num_pieces=3, arrival_rate=9.0, seed_rate=1.0
        )
        with pytest.raises(ValueError, match="scenario.params"):
            make_simulator(
                flash_crowd_stable,
                backend=backend,
                scenario=ScenarioSpec.homogeneous(other),
            )

    def test_flash_crowd_grows_population_during_surge(self):
        spec = make_scenario(
            "flash-crowd", surge_start=10.0, surge_end=60.0, surge_factor=10.0
        )
        result = run_swarm(
            spec.params, horizon=60.0, seed=3, backend="array", scenario=spec
        )
        metrics = result.metrics
        before = [
            pop
            for time, pop in zip(metrics.sample_times, metrics.population)
            if time < 10.0
        ]
        assert metrics.total_arrivals > 0
        assert metrics.thinned_events > 0
        # Arrivals during the surge run ~10x faster than in the quiet prefix.
        assert result.final_population > max(before) * 2

    def test_seed_outage_blocks_seed_uploads(self):
        params = SystemParameters.flash_crowd(
            num_pieces=3, arrival_rate=1.0, seed_rate=5.0
        )
        spec = ScenarioSpec(
            name="outage-all",
            params=params,
            seed_schedule=RateSchedule.step([(0.0, 0.0), (40.0, 1.0)]),
        )
        result = run_swarm(
            params, horizon=39.0, seed=5, backend="array", scenario=spec
        )
        # The seed was dark for the whole run: candidates were all thinned.
        assert result.metrics.total_seed_uploads == 0
        assert result.metrics.thinned_events > 0

    def test_constant_non_unit_schedule_scales_arrivals(self, flash_crowd_stable):
        doubled = ScenarioSpec(
            name="doubled",
            params=flash_crowd_stable,
            arrival_schedule=RateSchedule.constant(2.0),
        )
        runs = [
            run_swarm(
                flash_crowd_stable,
                horizon=80.0,
                seed=seed,
                backend="array",
                scenario=doubled,
            )
            for seed in range(5)
        ]
        arrivals = np.mean([run.metrics.total_arrivals for run in runs])
        # E[arrivals] = 2 * lambda * horizon = 160; no thinning draws burnt.
        assert 120 < arrivals < 200
        assert all(run.metrics.thinned_events == 0 for run in runs)

    @pytest.mark.parametrize("backend", ["object", "array"])
    def test_heterogeneous_classes_bookkeeping(self, backend):
        spec = make_scenario("heterogeneous-classes")
        simulator = make_simulator(spec.params, seed=7, backend=backend, scenario=spec)
        result = simulator.run(60.0, max_events=5000)
        assert result.final_population == sum(
            len(members) for members in simulator._class_members
        )
        assert result.final_state.total_peers == result.final_population

    def test_high_churn_impatient_peers_never_dwell(self):
        spec = make_scenario("high-churn", impatient_fraction=1.0)
        result = run_swarm(
            spec.params, horizon=80.0, seed=13, backend="array", scenario=spec
        )
        # Every completing peer departs instantly, so no peer seeds ever dwell.
        assert max(result.metrics.num_seeds) == 0
        assert result.metrics.total_departures > 0

    def test_class_counts_exposed_to_policies(self):
        from repro.swarm.policies import CallablePolicy

        seen = []

        def spy(downloader, uploader, view, rng):
            seen.append(view.class_counts)
            return max(downloader.useful_from(uploader))

        spec = make_scenario("heterogeneous-classes")
        run_swarm(
            spec.params,
            horizon=30.0,
            seed=1,
            scenario=spec,
            policy=CallablePolicy(spy, name="spy"),
            max_events=2000,
        )
        assert seen
        assert all(counts is not None and len(counts) == 2 for counts in seen)

    def test_initial_state_assigned_to_class_zero(self):
        spec = make_scenario("heterogeneous-classes")
        simulator = make_simulator(spec.params, seed=2, backend="array", scenario=spec)
        simulator.seed_population(SystemState.one_club(spec.params.num_pieces, 25))
        assert len(simulator._class_members[0]) == 25
        assert len(simulator._class_members[1]) == 0


# ---------------------------------------------------------------------------
# Runner + experiment surfaces
# ---------------------------------------------------------------------------


class TestScenarioRunner:
    def test_run_scenario_accepts_name_and_spec(self):
        by_name = run_scenario(
            "flash-crowd", horizon=20.0, replications=2, seed=4, max_events=2000
        )
        by_spec = run_scenario(
            make_scenario("flash-crowd"),
            horizon=20.0,
            replications=2,
            seed=4,
            max_events=2000,
        )
        assert [r.final_population for r in by_name.results] == [
            r.final_population for r in by_spec.results
        ]

    def test_run_scenario_backends_agree(self):
        batches = {
            backend: run_scenario(
                "heterogeneous-classes",
                horizon=25.0,
                replications=3,
                seed=9,
                backend=backend,
                max_events=3000,
            )
            for backend in ("object", "array")
        }
        assert [r.final_state for r in batches["object"].results] == [
            r.final_state for r in batches["array"].results
        ]

    def test_run_scenario_parallel_workers_match_serial(self):
        batches = {
            workers: run_scenario(
                "flash-crowd",
                horizon=20.0,
                replications=4,
                seed=6,
                backend="array",
                workers=workers,
                max_events=2000,
            )
            for workers in (1, 4)
        }
        assert sorted(batches[1].final_populations().tolist()) == sorted(
            batches[4].final_populations().tolist()
        )

    def test_run_scenario_kwargs_validation(self):
        with pytest.raises(TypeError, match="unknown"):
            run_scenario("flash-crowd", horizon=10.0, bogus_option=1)
        with pytest.raises(ValueError, match="scenario_kwargs"):
            run_scenario(
                make_scenario("flash-crowd"),
                horizon=10.0,
                scenario_kwargs={"surge_factor": 2.0},
            )

    def test_scenario_kwargs_reach_factory(self):
        batch = run_scenario(
            "flash-crowd",
            horizon=15.0,
            replications=1,
            seed=2,
            scenario_kwargs={"surge_factor": 1.0, "arrival_rate": 0.5},
            max_events=1000,
        )
        assert batch.results[0].metrics.thinned_events == 0

    def test_batch_runner_scenario_passthrough(self):
        spec = make_scenario("seed-outage")
        batch = BatchRunner(spec.params, backend="array", scenario=spec).run(
            20.0, 2, seed=8, max_events=2000
        )
        assert len(batch) == 2

    def test_scenario_dynamics_experiment(self):
        result = run_scenario_dynamics(
            horizon=40.0,
            replications=2,
            initial_club_size=30,
            backend="array",
            max_population=3000,
        )
        assert len(result.runs) == 2
        report = result.report()
        assert "flash-crowd" in report and "seed-outage" in report
        for run in result.runs:
            assert run.base_verdict == "stable"
            assert run.worst_case_verdict == "unstable"
            assert run.piecewise_verdict == "unstable"
            assert run.thinned_events > 0
        assert "theory (piecewise)" in report


# ---------------------------------------------------------------------------
# Scenario-aware Theorem-1 reporting (piecewise verdicts)
# ---------------------------------------------------------------------------


class TestPiecewiseStability:
    def test_trivial_scenario_single_stable_segment(self):
        spec = ScenarioSpec.homogeneous(
            SystemParameters.flash_crowd(
                num_pieces=3, arrival_rate=1.0, seed_rate=2.0
            )
        )
        report = piecewise_stability(spec)
        assert not report.is_piecewise
        assert len(report.segments) == 1
        assert report.segments[0].end == math.inf
        assert report.overall == "stable"

    def test_flash_crowd_surge_segment_flips_verdict(self):
        spec = make_scenario("flash-crowd", surge_start=20.0, surge_end=50.0)
        report = piecewise_stability(spec)
        verdicts = [segment.verdict for segment in report.segments]
        assert verdicts == ["stable", "unstable", "stable"]
        assert report.segments[1].start == 20.0
        assert report.segments[1].end == 50.0
        # Conservative whole-run verdict: any unstable segment -> unstable.
        assert report.overall == "unstable"

    def test_seed_outage_segment_matches_zero_seed_analysis(self):
        spec = make_scenario("seed-outage", outage_start=10.0, outage_end=30.0)
        report = piecewise_stability(spec)
        outage = report.segments[1]
        assert outage.seed_factor == 0.0
        expected = analyze(spec.params.with_seed_rate(0.0)).verdict.value
        assert outage.verdict == expected
        assert report.overall == "unstable"

    def test_arrival_outage_segment_is_trivially_stable(self):
        spec = ScenarioSpec(
            name="arrival-outage",
            params=SystemParameters.flash_crowd(
                num_pieces=3, arrival_rate=5.0, seed_rate=1.0
            ),
            arrival_schedule=RateSchedule.outage(5.0, 10.0),
        )
        report = piecewise_stability(spec)
        assert report.segments[1].arrival_factor == 0.0
        assert report.segments[1].verdict == "stable"
        # The surrounding segments run lambda=5 > threshold -> unstable run.
        assert report.overall == "unstable"

    def test_all_stable_segments_give_stable_run(self):
        spec = make_scenario("flash-crowd", surge_factor=1.2)
        report = piecewise_stability(spec)
        assert all(s.verdict == "stable" for s in report.segments)
        assert report.overall == "stable"

    def test_heterogeneous_scenario_is_out_of_theory(self):
        report = piecewise_stability(make_scenario("heterogeneous-classes"))
        assert report.overall == OUT_OF_THEORY
        assert report.segments == ()
        assert "outside Theorem 1" in report.describe()

    def test_segments_partition_time(self):
        spec = make_scenario("diurnal", period=20.0, horizon=100.0)
        report = piecewise_stability(spec)
        assert report.is_piecewise
        for before, after in zip(report.segments, report.segments[1:]):
            assert before.end == after.start
        assert report.segments[0].start == 0.0
        assert report.segments[-1].end == math.inf

    def test_describe_lists_segments(self):
        text = piecewise_stability(make_scenario("seed-outage")).describe()
        assert "whole-run verdict" in text
        assert "seed x0" in text


# ---------------------------------------------------------------------------
# Free-rider scenario
# ---------------------------------------------------------------------------


class TestFreeRiderScenario:
    def test_registered_and_heterogeneous(self):
        assert "free-rider" in registered_scenarios()
        spec = make_scenario("free-rider", leech_fraction=0.5)
        assert spec.is_heterogeneous
        names = [cls.name for cls in spec.classes]
        # Contributors first: initial_state peers land in the uploading class.
        assert names == ["contributor", "free-rider"]
        assert spec.classes[1].contact_rate < 0.1
        assert spec.classes[1].immediate_departure

    def test_leech_fraction_validated(self):
        with pytest.raises(ValueError, match="leech_fraction"):
            make_scenario("free-rider", leech_fraction=1.0)

    def test_base_params_are_theorem1_stable(self):
        spec = make_scenario("free-rider", leech_fraction=0.9)
        assert analyze(spec.params).verdict.value == "stable"
        assert piecewise_stability(spec).overall == OUT_OF_THEORY

    def _club_outcome(self, leech_fraction, policy_name, seeds=(1, 2, 3)):
        spec = make_scenario("free-rider", leech_fraction=leech_fraction)
        populations, clubs = [], []
        for seed in seeds:
            result = run_swarm(
                spec.params,
                horizon=80.0,
                seed=seed,
                scenario=spec,
                policy=make_policy(policy_name),
                backend="array",
                initial_state=SystemState.one_club(spec.params.num_pieces, 40),
                max_population=8000,
            )
            populations.append(result.metrics.final_population)
            clubs.append(result.metrics.one_club_size[-1])
        return float(np.mean(populations)), float(np.mean(clubs))

    def test_enough_leeching_tips_a_stable_swarm(self):
        """Theorem 1 certifies the base rates stable, yet a leech-heavy
        arrival mix keeps the one-club alive and the population growing."""
        light_pop, light_club = self._club_outcome(0.05, "random-useful")
        heavy_pop, heavy_club = self._club_outcome(0.85, "random-useful")
        assert heavy_pop > 2.0 * light_pop
        assert heavy_club > light_club

    def test_rarest_first_is_measured_either_way(self):
        """The rarest-first policy runs through the same scenario path and
        its one-club outcome is measured at both leech levels."""
        for leech_fraction in (0.05, 0.85):
            population, club = self._club_outcome(
                leech_fraction, "rarest-first", seeds=(1, 2)
            )
            assert population > 0
            assert club >= 0
        # At the light-leech operating point rarest-first reliably dissolves
        # the seeded club (it targets the rare piece directly).
        _population, light_club = self._club_outcome(0.05, "rarest-first")
        assert light_club <= 5
