"""Stacked mega-kernel tests: bit-identity, fleet fingerprints, resume.

The headline contract of :class:`repro.swarm.stacked.StackedSwarmKernel`:
every lane's trajectory — metrics stream, sample grid, final state,
snapshots — is **bit-identical** to a solo :class:`ArraySwarmKernel` run on
the same seed, for every scenario shape the solo kernel supports.  On top
of that, the fleet layer's ``stacked=True`` path must reproduce the exact
per-swarm :class:`FleetResult` fingerprint at any worker count, through
kill + resume, and even when a run suspended by one path is resumed by the
other (snapshots are the ordinary per-swarm format-2 payloads).
"""

import numpy as np
import pytest

from repro.core.parameters import SystemParameters
from repro.core.scenario import make_scenario
from repro.core.state import SystemState
from repro.core.types import PieceSet
from repro.fleet import (
    FixedSampler,
    FleetScheduler,
    FleetSpec,
    RandomSampler,
    ScenarioWeight,
    resume_fleet,
    run_fleet,
)
from repro.swarm import ArraySwarmKernel, StackedSwarmKernel

HORIZON = 4.0
INTERVAL = 0.2


def mk_params(lam=6.0, num_pieces=10):
    return SystemParameters(
        num_pieces=num_pieces,
        seed_rate=1.0,
        peer_rate=1.0,
        seed_departure_rate=0.5,
        arrival_rates={PieceSet.empty(num_pieces): lam},
    )


def mk_scenario(kind, **overrides):
    kwargs = dict(
        num_pieces=10,
        arrival_rate=6.0,
        seed_rate=1.0,
        peer_rate=1.0,
        seed_departure_rate=0.5,
    )
    kwargs.update(overrides)
    return make_scenario(kind, **kwargs)


def lane_specs():
    """(params, scenario, seed) triples covering every solo scenario shape."""
    plain = mk_params()
    flash = mk_scenario("flash-crowd", surge_start=1.0, surge_end=3.0)
    rider = mk_scenario("free-rider", leech_fraction=0.5)
    hetero = mk_scenario("heterogeneous-classes")
    outage = mk_scenario("seed-outage", outage_start=1.0, outage_end=2.0)
    return [
        (plain, None, 101),
        (flash.params, flash, 202),
        (rider.params, rider, 303),
        (hetero.params, hetero, 404),
        (outage.params, outage, 505),
        (plain, None, 606),
    ]


def metrics_tuple(metrics):
    return (
        tuple(metrics.sample_times),
        tuple(metrics.population),
        tuple(metrics.num_seeds),
        tuple(metrics.one_club_size),
        tuple(metrics.min_piece_count),
        metrics.wasted_contacts,
        metrics.thinned_events,
        tuple(metrics.sojourn_times),
        tuple(metrics.download_times),
    )


def result_tuple(result):
    return (
        metrics_tuple(result.metrics),
        result.final_time,
        result.final_population,
        result.horizon_reached,
        result.suspended,
        result.events_executed,
        tuple(
            sorted((str(k), v) for k, v in result.final_state._counts.items())
        ),
    )


def solo_results(specs, init, **run_kwargs):
    results = []
    for params, scenario, seed in specs:
        kernel = ArraySwarmKernel(
            params, scenario=scenario, seed=np.random.default_rng(seed)
        )
        results.append(
            kernel.run(
                HORIZON,
                initial_state=init,
                sample_interval=INTERVAL,
                **run_kwargs,
            )
        )
    return results


def stacked_results(specs, init, **run_kwargs):
    stack = StackedSwarmKernel()
    for params, scenario, seed in specs:
        stack.add_lane(params, seed=np.random.default_rng(seed), scenario=scenario)
    return stack, stack.run_all(
        HORIZON,
        initial_states=[init] * len(specs),
        sample_interval=INTERVAL,
        **run_kwargs,
    )


class TestLaneBitIdentity:
    def test_mixed_lanes_match_solo_runs(self):
        """Plain / flash-crowd / free-rider / hetero-classes / seed-outage
        lanes all reproduce their solo trajectories bit for bit."""
        specs = lane_specs()
        init = SystemState.one_club(10, 200)
        solos = solo_results(specs, init)
        _, stacked = stacked_results(specs, init)
        for index, (solo, lane) in enumerate(zip(solos, stacked)):
            assert result_tuple(solo) == result_tuple(lane), f"lane {index}"

    def test_event_cap_matches_solo(self):
        specs = lane_specs()[:3]
        init = SystemState.one_club(10, 500)
        solos = solo_results(specs, init, max_events=250)
        _, stacked = stacked_results(specs, init, max_events=250)
        for solo, lane in zip(solos, stacked):
            assert result_tuple(solo) == result_tuple(lane)
            assert lane.events_executed == 250

    def test_suspend_capture_resume_in_new_stack(self):
        """Suspend every lane mid-run, snapshot, restore into a *new* stack;
        the continued trajectories equal uninterrupted solo resumes."""
        specs = lane_specs()[:3]
        init = SystemState.one_club(10, 200)
        solo_resumed = []
        for params, scenario, seed in specs:
            kernel = ArraySwarmKernel(
                params, scenario=scenario, seed=np.random.default_rng(seed)
            )
            first = kernel.run(
                HORIZON,
                initial_state=init,
                sample_interval=INTERVAL,
                suspend_after_events=150,
            )
            assert first.suspended
            solo_resumed.append(kernel.run(HORIZON, resume=True))
        stack, mid = stacked_results(specs, init, suspend_after_events=150)
        assert all(result.suspended for result in mid)
        snapshots = [stack.lane(i).capture_state() for i in range(len(specs))]
        stack2 = StackedSwarmKernel()
        for (params, scenario, seed), snapshot in zip(specs, snapshots):
            stack2.add_lane(
                params,
                seed=np.random.default_rng(seed),
                scenario=scenario,
                snapshot=snapshot,
            )
        resumed = stack2.run_all(HORIZON, sample_interval=INTERVAL)
        for solo, lane in zip(solo_resumed, resumed):
            assert result_tuple(solo) == result_tuple(lane)

    def test_solo_snapshot_restores_into_stacked_lane(self):
        """Snapshots interoperate: a solo-suspended swarm resumed inside a
        stack equals the solo resume (and vice versa is covered above)."""
        params = mk_params()
        init = SystemState.one_club(10, 200)
        kernel = ArraySwarmKernel(params, seed=np.random.default_rng(77))
        first = kernel.run(
            HORIZON,
            initial_state=init,
            sample_interval=INTERVAL,
            suspend_after_events=100,
        )
        assert first.suspended
        snapshot = kernel.capture_state()
        stack = StackedSwarmKernel()
        stack.add_lane(
            params, seed=np.random.default_rng(77), snapshot=snapshot
        )
        stacked = stack.run_all(HORIZON, sample_interval=INTERVAL)
        solo = ArraySwarmKernel(params, seed=np.random.default_rng(77))
        solo.restore_state(snapshot)
        resumed = solo.run(HORIZON, resume=True)
        assert result_tuple(resumed) == result_tuple(stacked[0])

    def test_block_size_one_uses_solo_fallback(self, monkeypatch):
        """``DRAW_BLOCK_SIZE=1`` (the CI determinism pin) still produces the
        solo trajectories — tiny blocks take the per-lane fallback path."""
        monkeypatch.setenv("DRAW_BLOCK_SIZE", "1")
        specs = lane_specs()[:3]
        init = SystemState.one_club(10, 100)
        solos = solo_results(specs, init)
        _, stacked = stacked_results(specs, init)
        for solo, lane in zip(solos, stacked):
            assert result_tuple(solo) == result_tuple(lane)

    def test_small_blocks_stress_refill_boundaries(self, monkeypatch):
        """A 16-draw block forces refills inside batched windows; lanes must
        still match the solo runs at the same block size."""
        monkeypatch.setenv("DRAW_BLOCK_SIZE", "16")
        specs = lane_specs()[:3]
        init = SystemState.one_club(10, 100)
        solos = solo_results(specs, init)
        _, stacked = stacked_results(specs, init)
        for solo, lane in zip(solos, stacked):
            assert result_tuple(solo) == result_tuple(lane)


MIXED = (
    ScenarioWeight.of(None, weight=2.0),
    ScenarioWeight.of("flash-crowd", weight=1.0, surge_start=1.0, surge_end=4.0),
    ScenarioWeight.of("free-rider", weight=1.0, leech_fraction=0.7),
)


def small_spec(num_swarms=24, **overrides) -> FleetSpec:
    defaults = dict(
        name="stacked-test-fleet",
        num_swarms=num_swarms,
        sampler=RandomSampler.of({"arrival_rate": (0.8, 3.0)}, num_pieces=5),
        scenario_mix=MIXED,
        horizon=6.0,
        max_events=200,
        backend="array",
        initial_club_size=10,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestStackedFleet:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_fingerprint_matches_per_swarm(self, workers):
        """The acceptance property: ``run_fleet(stacked=True)`` produces the
        exact per-swarm fingerprint at any worker count."""
        spec = small_spec()
        per_swarm = run_fleet(spec, seed=42, workers=1)
        stacked = run_fleet(spec, seed=42, workers=workers, stacked=True)
        assert stacked.complete
        assert stacked.fingerprint() == per_swarm.fingerprint()

    def test_smoke_stacked_kill_resume_equality(self, tmp_path):
        """CI stacked-fleet smoke: kill a 2-worker mixed stacked fleet
        mid-chunk (mid-swarm, via the kernel snapshot), resume through the
        stacked path, and require the exact uninterrupted aggregate."""
        spec = small_spec()
        baseline = run_fleet(spec, seed=7, workers=1)
        checkpoint = tmp_path / "stacked-fleet.ckpt"
        partial = run_fleet(
            spec,
            seed=7,
            workers=2,
            stacked=True,
            checkpoint_path=checkpoint,
            stop_after_swarms=11,
            suspend_after_events=60,
        )
        assert not partial.complete
        resumed = resume_fleet(checkpoint, workers=2, stacked=True)
        assert resumed.complete
        assert resumed.fingerprint() == baseline.fingerprint()

    def test_cross_path_suspend_resume(self, tmp_path):
        """A fleet suspended by the stacked path resumes bit-identically
        through the per-swarm path, and the other way around."""
        spec = small_spec(num_swarms=16)
        baseline = run_fleet(spec, seed=3, workers=1)
        for suspend_with, resume_with in ((True, False), (False, True)):
            checkpoint = tmp_path / f"cross-{suspend_with}.ckpt"
            run_fleet(
                spec,
                seed=3,
                workers=1,
                stacked=suspend_with,
                checkpoint_path=checkpoint,
                stop_after_swarms=6,
                suspend_after_events=50,
            )
            resumed = resume_fleet(checkpoint, workers=1, stacked=resume_with)
            assert resumed.fingerprint() == baseline.fingerprint()

    def test_stacked_default_chunks_are_larger(self):
        """The stacked path defaults to fewer, larger chunks per worker."""
        spec = small_spec(num_swarms=200)
        per_swarm = FleetScheduler(spec, workers=2)
        stacked = FleetScheduler(spec, workers=2, stacked=True)
        assert stacked.chunk_size > per_swarm.chunk_size


class TestStackedValidation:
    def test_object_backend_rejected(self):
        spec = small_spec(backend="object")
        with pytest.raises(ValueError, match="array"):
            FleetScheduler(spec, stacked=True)

    def test_k_above_64_names_the_swarm(self):
        spec = small_spec(
            num_swarms=4,
            sampler=FixedSampler.of(arrival_rate=2.0, num_pieces=65),
            scenario_mix=(),
        )
        with pytest.raises(ValueError, match=r"swarm 0 .*num_pieces=65"):
            run_fleet(spec, seed=1, stacked=True)
