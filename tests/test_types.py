"""Unit tests for the piece-set / peer-type lattice."""

import pytest

from repro.core.types import (
    PieceSet,
    all_types,
    canonical_type_order,
    downward_closure,
    format_type,
    helpers,
    one_club_type,
    parse_type,
    type_index_map,
    types_of_size,
)


class TestPieceSetBasics:
    def test_empty_set_has_no_pieces(self):
        empty = PieceSet.empty(4)
        assert len(empty) == 0
        assert empty.is_empty
        assert not empty.is_complete

    def test_full_set_is_complete(self):
        full = PieceSet.full(4)
        assert len(full) == 4
        assert full.is_complete
        assert list(full) == [1, 2, 3, 4]

    def test_single_constructor(self):
        single = PieceSet.single(3, 5)
        assert list(single) == [3]
        assert 3 in single
        assert 2 not in single

    def test_membership_and_iteration(self):
        pieces = PieceSet((1, 3), 4)
        assert 1 in pieces
        assert 2 not in pieces
        assert 3 in pieces
        assert sorted(pieces) == [1, 3]

    def test_out_of_range_piece_rejected(self):
        with pytest.raises(ValueError):
            PieceSet((5,), 4)
        with pytest.raises(ValueError):
            PieceSet((0,), 4)

    def test_invalid_num_pieces_rejected(self):
        with pytest.raises(ValueError):
            PieceSet((), 0)

    def test_from_mask_roundtrip(self):
        original = PieceSet((2, 4), 4)
        rebuilt = PieceSet.from_mask(original.mask, 4)
        assert rebuilt == original

    def test_from_mask_out_of_range(self):
        with pytest.raises(ValueError):
            PieceSet.from_mask(1 << 4, 4)

    def test_equality_and_hash(self):
        a = PieceSet((1, 2), 3)
        b = PieceSet((2, 1), 3)
        c = PieceSet((1, 2), 4)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_ordering_by_cardinality_then_mask(self):
        small = PieceSet((3,), 3)
        big = PieceSet((1, 2), 3)
        assert small < big

    def test_repr_contains_pieces(self):
        assert "1" in repr(PieceSet((1,), 2))

    def test_membership_out_of_range_is_false(self):
        assert 10 not in PieceSet((1,), 3)


class TestPieceSetAlgebra:
    def test_subset_and_superset(self):
        small = PieceSet((1,), 3)
        big = PieceSet((1, 2), 3)
        assert small.issubset(big)
        assert big.issuperset(small)
        assert not big.issubset(small)

    def test_proper_subset(self):
        a = PieceSet((1,), 3)
        assert a.is_proper_subset(PieceSet((1, 2), 3))
        assert not a.is_proper_subset(a)

    def test_union_intersection_difference(self):
        a = PieceSet((1, 2), 4)
        b = PieceSet((2, 3), 4)
        assert sorted(a.union(b)) == [1, 2, 3]
        assert sorted(a.intersection(b)) == [2]
        assert sorted(a.difference(b)) == [1]

    def test_add_and_remove(self):
        a = PieceSet((1,), 3)
        assert sorted(a.add(2)) == [1, 2]
        assert sorted(a.add(2).remove(1)) == [2]

    def test_remove_missing_piece_raises(self):
        with pytest.raises(KeyError):
            PieceSet((1,), 3).remove(2)

    def test_add_out_of_range_raises(self):
        with pytest.raises(ValueError):
            PieceSet((1,), 3).add(4)

    def test_incompatible_files_raise(self):
        with pytest.raises(ValueError):
            PieceSet((1,), 3).union(PieceSet((1,), 4))

    def test_missing_pieces(self):
        a = PieceSet((2,), 3)
        assert a.missing_pieces() == [1, 3]
        assert sorted(a.missing()) == [1, 3]

    def test_useful_from(self):
        downloader = PieceSet((1,), 3)
        uploader = PieceSet((1, 2), 3)
        assert sorted(downloader.useful_from(uploader)) == [2]
        assert downloader.can_be_helped_by(uploader)
        assert not uploader.can_be_helped_by(downloader)

    def test_seed_helps_everyone_incomplete(self):
        seed = PieceSet.full(3)
        for mask in range(7):
            peer = PieceSet.from_mask(mask, 3)
            assert peer.can_be_helped_by(seed)

    def test_immutability_of_operations(self):
        a = PieceSet((1,), 3)
        a.add(2)
        assert sorted(a) == [1]


class TestLatticeEnumeration:
    def test_all_types_count(self):
        assert len(all_types(3)) == 8
        assert len(all_types(3, include_full=False)) == 7

    def test_all_types_sorted_by_size(self):
        types = all_types(3)
        sizes = [len(t) for t in types]
        assert sizes == sorted(sizes)
        assert types[0].is_empty
        assert types[-1].is_complete

    def test_types_of_size(self):
        pairs = types_of_size(4, 2)
        assert len(pairs) == 6
        assert all(len(t) == 2 for t in pairs)

    def test_downward_closure(self):
        closure = downward_closure(PieceSet((1, 2), 3))
        assert len(closure) == 4  # {}, {1}, {2}, {1,2}
        assert PieceSet.empty(3) in closure
        assert PieceSet((1, 2), 3) in closure
        assert PieceSet((3,), 3) not in closure

    def test_helpers_complement(self):
        target = PieceSet((1, 2), 3)
        helper_set = helpers(target)
        closure = downward_closure(target)
        assert len(helper_set) + len(closure) == 8
        assert all(not h.issubset(target) for h in helper_set)

    def test_full_type_in_helpers(self):
        target = PieceSet((2, 3), 3)
        assert PieceSet.full(3) in helpers(target)
        assert PieceSet.full(3) not in helpers(target, include_full=False)

    def test_one_club_type(self):
        club = one_club_type(4)
        assert sorted(club) == [2, 3, 4]
        club2 = one_club_type(4, missing_piece=3)
        assert sorted(club2) == [1, 2, 4]

    def test_canonical_type_order_and_index_map(self):
        order = canonical_type_order(3)
        index = type_index_map(order)
        assert len(index) == 8
        assert index[order[0]] == 0
        assert index[order[-1]] == 7


class TestFormatting:
    def test_format_special_types(self):
        assert format_type(PieceSet.empty(3)) == "∅"
        assert format_type(PieceSet.full(3)) == "F"
        assert format_type(PieceSet((1, 3), 3)) == "{1,3}"

    def test_parse_roundtrip(self):
        for text in ("∅", "F", "{1,3}", "2"):
            parsed = parse_type(text, 3)
            assert parse_type(format_type(parsed), 3) == parsed

    def test_parse_empty_string(self):
        assert parse_type("", 3).is_empty
