"""Tests for the generic Markov-chain toolkit (chain, foster, classify)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.markov.chain import (
    build_generator,
    expected_hitting_times,
    stationary_distribution,
    transient_distribution,
    uniformized_transition_matrix,
)
from repro.markov.classify import (
    TrajectoryVerdict,
    classify_trajectory,
    majority_verdict,
)
from repro.markov.foster import (
    check_foster_lyapunov,
    drift,
    lipschitz_drift_bound,
)


def mm1_transitions(arrival: float, service: float, cap: int):
    """Birth-death transitions of an M/M/1 queue truncated at ``cap``."""

    def transitions(state: int):
        options = []
        if state < cap:
            options.append((arrival, state + 1))
        if state > 0:
            options.append((service, state - 1))
        return options

    return transitions


class TestChainUtilities:
    def test_build_generator_rows_sum_to_zero(self):
        states = list(range(6))
        generator = build_generator(states, mm1_transitions(1.0, 2.0, 5))
        sums = np.asarray(generator.sum(axis=1)).ravel()
        assert np.allclose(sums, 0.0)

    def test_build_generator_unknown_target(self):
        states = [0, 1]
        with pytest.raises(KeyError):
            build_generator(states, mm1_transitions(1.0, 2.0, 5), absorb_unknown=False)
        generator = build_generator(states, mm1_transitions(1.0, 2.0, 5))
        assert generator.shape == (2, 2)

    def test_mm1_stationary_distribution_geometric(self):
        """Truncated M/M/1: stationary law close to geometric(rho)."""
        rho = 0.5
        states = list(range(12))
        generator = build_generator(states, mm1_transitions(rho, 1.0, 11))
        pi = stationary_distribution(generator)
        expected = np.array([(1 - rho) * rho ** k for k in states])
        expected /= expected.sum()
        assert np.allclose(pi, expected, atol=1e-3)

    def test_hitting_times_increase_with_distance(self):
        states = list(range(8))
        generator = build_generator(states, mm1_transitions(0.5, 1.0, 7))
        times = expected_hitting_times(generator, target_indices=[0])
        assert times[0] == 0.0
        assert all(times[i + 1] > times[i] for i in range(6))

    def test_mm1_hitting_time_matches_formula(self):
        """E[T_{1->0}] = 1/(mu - lambda) for M/M/1 (lightly truncated)."""
        arrival, service = 0.3, 1.0
        states = list(range(40))
        generator = build_generator(states, mm1_transitions(arrival, service, 39))
        times = expected_hitting_times(generator, target_indices=[0])
        assert times[1] == pytest.approx(1.0 / (service - arrival), rel=0.02)

    def test_uniformization_is_stochastic(self):
        states = list(range(5))
        generator = build_generator(states, mm1_transitions(1.0, 2.0, 4))
        kernel, rate = uniformized_transition_matrix(generator)
        rows = np.asarray(kernel.sum(axis=1)).ravel()
        assert np.allclose(rows, 1.0)
        assert (kernel.toarray() >= -1e-12).all()
        assert rate > 0

    def test_uniformization_rate_validation(self):
        states = list(range(3))
        generator = build_generator(states, mm1_transitions(1.0, 2.0, 2))
        with pytest.raises(ValueError):
            uniformized_transition_matrix(generator, uniformization_rate=0.1)

    def test_transient_distribution_converges_to_stationary(self):
        states = list(range(8))
        generator = build_generator(states, mm1_transitions(0.5, 1.0, 7))
        initial = np.zeros(len(states))
        initial[0] = 1.0
        late = transient_distribution(generator, initial, time=200.0)
        pi = stationary_distribution(generator)
        assert np.allclose(late, pi, atol=1e-3)
        assert late.sum() == pytest.approx(1.0, abs=1e-6)

    def test_transient_distribution_time_zero(self):
        states = list(range(4))
        generator = build_generator(states, mm1_transitions(0.5, 1.0, 3))
        initial = np.array([0.0, 1.0, 0.0, 0.0])
        assert np.allclose(transient_distribution(generator, initial, 0.0), initial)
        with pytest.raises(ValueError):
            transient_distribution(generator, initial, -1.0)


class TestFoster:
    def test_drift_of_identity_on_mm1(self):
        transitions = mm1_transitions(0.5, 1.0, 100)
        # For 0 < state < cap the drift of f(x)=x is arrival - service.
        assert drift(transitions, float, 5) == pytest.approx(-0.5)
        assert drift(transitions, float, 0) == pytest.approx(0.5)

    def test_check_foster_lyapunov_on_stable_queue(self):
        transitions = mm1_transitions(0.5, 1.0, 10_000)
        result = check_foster_lyapunov(
            transitions,
            lyapunov=lambda x: float(x),
            f=lambda x: 0.4,
            g=lambda x: 1.0 if x == 0 else 0.0,
            states=range(1, 200),
        )
        assert result.all_satisfied
        assert result.worst_violation == 0.0

    def test_check_foster_lyapunov_detects_violation(self):
        transitions = mm1_transitions(2.0, 1.0, 10_000)  # unstable queue
        result = check_foster_lyapunov(
            transitions,
            lyapunov=lambda x: float(x),
            f=lambda x: 0.1,
            g=lambda x: 0.0,
            states=range(1, 50),
        )
        assert not result.all_satisfied
        assert result.worst_violation > 0

    def test_lipschitz_drift_bound_dominates_exact_drift(self):
        """Lemma 19: the bound is an upper bound for V(f) = f^2/2."""
        transitions = mm1_transitions(0.7, 1.0, 10_000)

        def value(x):
            return 0.5 * float(x) ** 2

        for state in (1, 5, 20):
            exact = drift(transitions, value, state)
            bound = lipschitz_drift_bound(
                transitions,
                inner=float,
                outer_derivative=lambda v: v,
                lipschitz_constant=1.0,
                state=state,
            )
            assert bound >= exact - 1e-9


class TestTrajectoryClassification:
    def test_flat_trajectory_is_stable(self):
        times = np.linspace(0, 100, 50)
        population = 5 + np.sin(times)
        result = classify_trajectory(times, population, arrival_rate=1.0)
        assert result.verdict is TrajectoryVerdict.STABLE

    def test_linear_growth_is_unstable(self):
        times = np.linspace(0, 100, 50)
        population = 1.0 * times
        result = classify_trajectory(times, population, arrival_rate=2.0)
        assert result.verdict is TrajectoryVerdict.UNSTABLE
        assert result.normalized_slope == pytest.approx(0.5, rel=0.05)

    def test_short_trajectory_is_inconclusive(self):
        result = classify_trajectory([0, 1], [0, 1], arrival_rate=1.0)
        assert result.verdict is TrajectoryVerdict.INCONCLUSIVE

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            classify_trajectory([0, 1, 2], [0, 1], arrival_rate=1.0)

    def test_arrival_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            classify_trajectory([0, 1, 2, 3, 4], [0, 1, 2, 3, 4], arrival_rate=0.0)

    def test_slow_drift_is_not_unstable(self):
        times = np.linspace(0, 200, 100)
        population = 10 + 0.01 * times
        result = classify_trajectory(times, population, arrival_rate=2.0)
        assert result.verdict is not TrajectoryVerdict.UNSTABLE

    def test_majority_verdict(self):
        stable = classify_trajectory(
            np.linspace(0, 100, 50), np.full(50, 3.0), arrival_rate=1.0
        )
        unstable = classify_trajectory(
            np.linspace(0, 100, 50), np.linspace(0, 100, 50), arrival_rate=1.0
        )
        assert majority_verdict([stable, stable, unstable]) is TrajectoryVerdict.STABLE
        assert majority_verdict([unstable, unstable]) is TrajectoryVerdict.UNSTABLE
        assert majority_verdict([]) is TrajectoryVerdict.INCONCLUSIVE
        assert majority_verdict([stable, unstable]) is TrajectoryVerdict.INCONCLUSIVE
