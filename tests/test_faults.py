"""Fault-tolerance tests: supervision, chaos recovery, durable persistence.

The acceptance criteria of the robustness PR:

* under an injected :class:`~repro.fleet.faults.FaultPlan` (worker kills
  mid-chunk, torn tail appends, corrupted checkpoint bytes) a fleet and an
  adaptive fleet both recover automatically — by supervised retry or by
  resume — to the *exact* uninterrupted fingerprint at workers 1, 2 and 4;
* a real ``kill -9`` (the subprocess harness SIGKILLs a running fleet at a
  planned log record) resumes exactly;
* a log rotated and compacted mid-run rebuilds the same ``FleetResult``
  via ``FleetResult.from_log``;
* a poison swarm degrades to a ``failed`` record without poisoning its
  chunk-mates, and salvage mode recovers what a corrupted log still holds.

The ``chaos``-named tests double as the CI chaos smoke step
(``pytest tests/test_faults.py -k chaos``).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.runner import (
    TaskFailure,
    map_tasks,
)
from repro.fleet import (
    AdaptiveFleetSpec,
    FaultPlan,
    FleetLogWriter,
    FleetResult,
    FleetScheduler,
    FleetSpec,
    InjectedCheckpointCrash,
    InjectedTornWrite,
    RandomSampler,
    ScenarioWeight,
    compact_log,
    read_log,
    resume_adaptive_fleet,
    resume_fleet,
    run_adaptive_fleet,
    run_fleet,
)
from repro.fleet.checkpoint import (
    FleetCheckpoint,
    backup_path,
    load_checkpoint,
    save_checkpoint,
)
from repro.fleet.faults import FaultState, corrupt_file_bytes
from repro.fleet.persistence import FleetLogError

REPO_ROOT = Path(__file__).resolve().parents[1]

MIXED = (
    ScenarioWeight.of(None, weight=2.0),
    ScenarioWeight.of("free-rider", weight=1.0, leech_fraction=0.7),
)


def small_spec(num_swarms=12, **overrides) -> FleetSpec:
    defaults = dict(
        name="fault-fleet",
        num_swarms=num_swarms,
        sampler=RandomSampler.of({"arrival_rate": (0.8, 3.0)}, num_pieces=5),
        scenario_mix=MIXED,
        horizon=6.0,
        max_events=150,
        backend="array",
        initial_club_size=10,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


def tiny_adaptive_spec(**overrides) -> AdaptiveFleetSpec:
    defaults = dict(
        name="fault-adaptive",
        arrival_rates=(0.8, 1.6, 2.4),
        seed_rates=(0.5,),
        scenario_mix=MIXED,
        num_pieces=5,
        swarm_budget=12,
        round_size=6,
        horizon=6.0,
        max_events=150,
        initial_club_size=10,
        backend="array",
    )
    defaults.update(overrides)
    return AdaptiveFleetSpec(**defaults)


# -- the fault plan itself ----------------------------------------------------


class TestFaultPlan:
    def test_plan_is_deterministic(self):
        a = FaultPlan.plan(7, 20, worker_crashes=2, torn_appends=1, task_errors=3)
        b = FaultPlan.plan(7, 20, worker_crashes=2, torn_appends=1, task_errors=3)
        assert a == b
        assert len(a.worker_crashes) == 2
        assert len(a.task_errors) == 3

    def test_plan_checkpoint_ordinals_skip_the_initial_checkpoint(self):
        plan = FaultPlan.plan(3, 10, corrupt_checkpoints=4, checkpoint_crashes=4)
        assert all(ordinal >= 1 for ordinal in plan.corrupt_checkpoints)
        assert all(ordinal >= 1 for ordinal in plan.checkpoint_crashes)

    def test_entries_are_sorted_and_validated(self):
        plan = FaultPlan(task_errors=(5, 1, 3))
        assert plan.task_errors == (1, 3, 5)
        with pytest.raises(ValueError, match="must be >= 0"):
            FaultPlan(worker_crashes=(-1,))
        with pytest.raises(ValueError, match="stall_seconds"):
            FaultPlan(stall_seconds=0.0)

    def test_empty_property(self):
        assert FaultPlan().empty
        assert not FaultPlan(torn_appends=(0,)).empty

    def test_writer_faults_fire_once(self):
        state = FaultState(FaultPlan(torn_appends=(2,), failed_fsyncs=(3,)))
        assert not state.take_torn_append(1)
        assert state.take_torn_append(2)
        assert not state.take_torn_append(2)  # once per process lifetime
        assert not state.take_failed_fsync(2)
        assert state.take_failed_fsync(5)  # smallest unfired key <= total
        assert not state.take_failed_fsync(9)


# -- map_tasks supervision ----------------------------------------------------


def _flaky_task(task, attempt):
    value, failures_needed = task
    if attempt < failures_needed:
        raise RuntimeError(f"planned failure for {value} at attempt {attempt}")
    return value * value


def _crashing_task(task, attempt):
    value, crashes = task
    if crashes and attempt == 0:
        os._exit(173)
    return value + 100


def _stalling_task(task, attempt):
    value, stalls = task
    if stalls and attempt == 0:
        time.sleep(60.0)
    return value * 2


class TestSupervisedMapTasks:
    def test_serial_retry_recovers_flaky_tasks(self):
        tasks = [(0, 0), (1, 2), (2, 1)]
        out = list(map_tasks(_flaky_task, tasks, None, max_retries=2,
                             with_attempt=True))
        assert out == [0, 1, 4]

    def test_exhausted_retries_yield_task_failure_in_position(self):
        tasks = [(0, 0), (1, 99), (2, 0)]  # task 1 fails every attempt
        out = list(map_tasks(_flaky_task, tasks, None, max_retries=1,
                             on_exhausted="yield", with_attempt=True))
        assert out[0] == 0 and out[2] == 4
        failure = out[1]
        assert isinstance(failure, TaskFailure)
        assert failure.task_index == 1
        assert failure.attempts == 2
        assert "planned failure" in failure.error

    def test_exhausted_retries_raise_by_default(self):
        with pytest.raises(RuntimeError, match="planned failure"):
            list(map_tasks(_flaky_task, [(0, 99)], None, max_retries=1,
                           with_attempt=True))

    def test_pool_survives_worker_crash(self):
        tasks = [(i, i == 2) for i in range(6)]  # task 2 kills its worker once
        out = list(map_tasks(_crashing_task, tasks, 2, max_retries=2,
                             with_attempt=True))
        assert out == [100, 101, 102, 103, 104, 105]

    def test_pool_times_out_stalled_task_and_retries(self):
        tasks = [(i, i == 1) for i in range(4)]  # task 1 stalls on attempt 0
        started = time.monotonic()
        out = list(map_tasks(_stalling_task, tasks, 2, task_timeout=1.0,
                             max_retries=1, with_attempt=True))
        assert out == [0, 2, 4, 6]
        assert time.monotonic() - started < 30.0  # far below the 60 s stall

    def test_supervision_options_validated(self):
        with pytest.raises(ValueError, match="does not support"):
            list(map_tasks(_flaky_task, [(0, 0)], None, max_retries=-1))
        with pytest.raises(ValueError, match="does not support"):
            list(map_tasks(_flaky_task, [(0, 0)], None, task_timeout=0))
        with pytest.raises(ValueError, match="does not support"):
            list(map_tasks(_flaky_task, [(0, 0)], None, retry_backoff=-0.5))
        with pytest.raises(ValueError, match="on_exhausted"):
            list(map_tasks(_flaky_task, [(0, 0)], None, on_exhausted="bogus"))

    def test_fleet_layer_validates_supervision_options(self):
        with pytest.raises(ValueError, match="does not support"):
            FleetScheduler(small_spec(), max_retries=-3)
        with pytest.raises(ValueError, match="does not support"):
            FleetScheduler(small_spec(), task_timeout=0.0)
        with pytest.raises(ValueError, match="does not support"):
            run_fleet(small_spec(), retry_backoff=-1.0)


# -- chaos: automatic recovery to exact fingerprints --------------------------


class TestChaosRecovery:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_chaos_fleet_recovers_from_crashes_and_errors(self, workers):
        """Worker kills + task errors under supervision: exact fingerprint."""
        spec = small_spec()
        clean = run_fleet(spec, seed=42).fingerprint()
        plan = FaultPlan(worker_crashes=(3, 8), task_errors=(5,))
        faulty = run_fleet(
            spec, seed=42, workers=workers, chunk_size=2,
            max_retries=2, fault_plan=plan,
        )
        assert faulty.failed_count == 0
        assert faulty.fingerprint() == clean

    @pytest.mark.parametrize("workers", [1, 2])
    def test_chaos_adaptive_fleet_recovers_from_crashes(self, workers):
        spec = tiny_adaptive_spec()
        clean = run_adaptive_fleet(spec, seed=9).fingerprint()
        plan = FaultPlan(worker_crashes=(2,), task_errors=(7,))
        faulty = run_adaptive_fleet(
            spec, seed=9, workers=workers, chunk_size=2,
            max_retries=2, fault_plan=plan,
        )
        assert faulty.fleet.failed_count == 0
        assert faulty.fingerprint() == clean

    def test_chaos_smoke_two_kills_torn_append_corrupt_checkpoint(self, tmp_path):
        """The CI chaos scenario: 2 worker kills + 1 torn append + corrupted
        checkpoint bytes; the resumed run equals the uninterrupted one."""
        spec = small_spec()
        clean = run_fleet(spec, seed=5).fingerprint()
        checkpoint = tmp_path / "chaos-cp"
        plan = FaultPlan(worker_crashes=(1, 5), torn_appends=(9,))
        with pytest.raises(InjectedTornWrite):
            run_fleet(
                spec, seed=5, workers=2, chunk_size=2, max_retries=2,
                checkpoint_path=checkpoint, fault_plan=plan,
            )
        # Bit-rot the checkpoint the crash left behind; resume must fall
        # back to the .bak copy and still converge to the exact result.
        corrupt_file_bytes(checkpoint)
        with pytest.warns(UserWarning, match="falling back"):
            resumed = resume_fleet(checkpoint, workers=2, max_retries=2)
        assert resumed.complete
        assert resumed.fingerprint() == clean

    def test_chaos_poison_task_quarantined_as_failed_record(self):
        """A swarm that fails every attempt degrades to one `failed` record
        without contaminating its chunk-mates."""
        spec = small_spec()
        clean = run_fleet(spec, seed=13)
        plan = FaultPlan(poison_tasks=(4,))
        degraded = run_fleet(
            spec, seed=13, chunk_size=3, max_retries=1, fault_plan=plan
        )
        assert degraded.complete
        assert degraded.failed_count == 1
        failures = degraded.failures()
        assert len(failures) == 1
        failed = failures[0]
        assert failed.index == 4
        assert failed.status == "failed"
        assert failed.empirical == "failed"
        assert not failed.captured
        assert "injected poison" in failed.error
        assert failed.attempts == 2
        for position, record in enumerate(degraded.records):
            if position != 4:
                assert record == clean.records[position]

    def test_chaos_failed_fsync_aborts_then_resume_is_exact(self, tmp_path):
        spec = small_spec()
        clean = run_fleet(spec, seed=21).fingerprint()
        checkpoint = tmp_path / "fsync-cp"
        plan = FaultPlan(failed_fsyncs=(7,))
        with pytest.raises(Exception, match="injected fsync failure"):
            run_fleet(
                spec, seed=21, chunk_size=2, checkpoint_path=checkpoint,
                fault_plan=plan,
            )
        resumed = resume_fleet(checkpoint)
        assert resumed.complete
        assert resumed.fingerprint() == clean


# -- chaos: real SIGKILL subprocess harness -----------------------------------


_KILL_FLEET_CHILD = """
import sys
from repro.fleet import FaultPlan, run_fleet
sys.path.insert(0, {tests_dir!r})
from test_faults import small_spec

plan = FaultPlan(kill_points=(7,))
run_fleet(small_spec(), seed=11, checkpoint_path=sys.argv[1],
          checkpoint_every=1, chunk_size=2, rotate_every=3, fault_plan=plan)
raise SystemExit("kill point did not fire")
"""

_KILL_ADAPTIVE_CHILD = """
import sys
from repro.fleet import FaultPlan, run_adaptive_fleet
sys.path.insert(0, {tests_dir!r})
from test_faults import tiny_adaptive_spec

plan = FaultPlan(kill_points=(7,))
run_adaptive_fleet(tiny_adaptive_spec(), seed=17, checkpoint_path=sys.argv[1],
                   checkpoint_every=1, chunk_size=2, fault_plan=plan)
raise SystemExit("kill point did not fire")
"""


def _run_killed_child(script: str, checkpoint: Path) -> None:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    script = script.format(tests_dir=str(REPO_ROOT / "tests"))
    proc = subprocess.run(
        [sys.executable, "-c", script, str(checkpoint)],
        env=env,
        cwd=str(REPO_ROOT),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        timeout=300,
    )
    assert proc.returncode == -signal.SIGKILL, (
        f"child exited with {proc.returncode} instead of SIGKILL: "
        f"{proc.stderr.decode(errors='replace')[-2000:]}"
    )


class TestChaosSigkill:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_chaos_sigkill_fleet_resume_matches_uninterrupted(
        self, tmp_path, workers
    ):
        checkpoint = tmp_path / "cp"
        _run_killed_child(_KILL_FLEET_CHILD, checkpoint)
        resumed = resume_fleet(checkpoint, workers=workers, rotate_every=3)
        clean = run_fleet(small_spec(), seed=11)
        assert resumed.complete
        assert resumed.fingerprint() == clean.fingerprint()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_chaos_sigkill_adaptive_resume_matches_uninterrupted(
        self, tmp_path, workers
    ):
        checkpoint = tmp_path / "cp"
        _run_killed_child(_KILL_ADAPTIVE_CHILD, checkpoint)
        resumed = resume_adaptive_fleet(checkpoint, workers=workers)
        clean = run_adaptive_fleet(tiny_adaptive_spec(), seed=17)
        assert resumed.fingerprint() == clean.fingerprint()


# -- durable checkpoints ------------------------------------------------------


def _checkpoint(num_records: int) -> FleetCheckpoint:
    return FleetCheckpoint(
        spec="spec-token",
        seed=1,
        num_records=num_records,
        log_name="log.jsonl",
        log_offset=10 * num_records,
    )


class TestCrashAtomicCheckpoints:
    def test_kill_during_checkpoint_write_preserves_previous(self, tmp_path):
        path = tmp_path / "cp"
        save_checkpoint(path, _checkpoint(1))
        state = FaultState(FaultPlan(checkpoint_crashes=(1,)))
        state.next_checkpoint_ordinal()  # ordinal 0 was the initial write
        with pytest.raises(InjectedCheckpointCrash):
            save_checkpoint(path, _checkpoint(2), faults=state)
        # The crash died after a partial temp file; the primary survives.
        assert load_checkpoint(path).num_records == 1
        # And a later write over the leftover temp file works.
        save_checkpoint(path, _checkpoint(3))
        assert load_checkpoint(path).num_records == 3

    def test_corrupt_primary_falls_back_to_backup(self, tmp_path):
        path = tmp_path / "cp"
        save_checkpoint(path, _checkpoint(1))
        save_checkpoint(path, _checkpoint(2))
        assert backup_path(path).exists()
        corrupt_file_bytes(path)
        with pytest.warns(UserWarning, match="falling back"):
            loaded = load_checkpoint(path)
        assert loaded.num_records == 1

    def test_corrupt_primary_without_backup_raises(self, tmp_path):
        path = tmp_path / "cp"
        save_checkpoint(path, _checkpoint(1), keep_previous=False)
        corrupt_file_bytes(path)
        with pytest.raises(Exception):
            load_checkpoint(path)

    def test_fresh_run_initial_checkpoint_clears_stale_backup(self, tmp_path):
        path = tmp_path / "cp"
        save_checkpoint(path, _checkpoint(1))
        save_checkpoint(path, _checkpoint(2))  # leaves a .bak of 1
        save_checkpoint(path, _checkpoint(0), keep_previous=False)
        assert not backup_path(path).exists()
        assert load_checkpoint(path).num_records == 0

    def test_planned_corruption_is_caught_on_load(self, tmp_path):
        path = tmp_path / "cp"
        save_checkpoint(path, _checkpoint(1))
        state = FaultState(FaultPlan(corrupt_checkpoints=(1,)))
        state.next_checkpoint_ordinal()
        save_checkpoint(path, _checkpoint(2), faults=state)  # then corrupted
        with pytest.warns(UserWarning, match="falling back"):
            loaded = load_checkpoint(path)
        assert loaded.num_records == 1


# -- rotation, compaction, salvage --------------------------------------------


class TestRotationAndCompaction:
    def test_rotated_log_rebuilds_same_result(self, tmp_path):
        spec = small_spec()
        log = tmp_path / "fleet.jsonl"
        result = run_fleet(spec, seed=2, log_path=log, rotate_every=4)
        segments = sorted(tmp_path.glob("fleet.jsonl.seg*"))
        assert len(segments) >= 2
        rebuilt = FleetResult.from_log(log)
        assert rebuilt.fingerprint() == result.fingerprint()

    def test_auto_compaction_is_lossless(self, tmp_path):
        spec = small_spec()
        log = tmp_path / "fleet.jsonl"
        result = run_fleet(
            spec, seed=2, log_path=log, rotate_every=3, compact_after=2
        )
        assert (tmp_path / "fleet.jsonl.compact").exists()
        rebuilt = FleetResult.from_log(log)
        assert rebuilt.fingerprint() == result.fingerprint()

    def test_explicit_compact_log_merges_all_segments(self, tmp_path):
        spec = small_spec()
        log = tmp_path / "fleet.jsonl"
        result = run_fleet(spec, seed=4, log_path=log, rotate_every=3)
        merged = compact_log(log)
        assert merged >= 9  # at least the closed segments' records
        assert not list(tmp_path.glob("fleet.jsonl.seg*"))
        rebuilt = FleetResult.from_log(log)
        assert rebuilt.fingerprint() == result.fingerprint()
        assert compact_log(log) == 0  # idempotent: nothing left to merge

    def test_resume_across_rotation_is_exact(self, tmp_path):
        spec = small_spec()
        clean = run_fleet(spec, seed=6).fingerprint()
        checkpoint = tmp_path / "cp"
        partial = run_fleet(
            spec, seed=6, chunk_size=2, checkpoint_path=checkpoint,
            rotate_every=3, stop_after_swarms=7,
        )
        assert not partial.complete
        resumed = resume_fleet(checkpoint, rotate_every=3)
        assert resumed.complete
        assert resumed.fingerprint() == clean

    def test_resume_across_rotation_and_compaction_is_exact(self, tmp_path):
        spec = small_spec()
        clean = run_fleet(spec, seed=6).fingerprint()
        checkpoint = tmp_path / "cp"
        run_fleet(
            spec, seed=6, chunk_size=2, checkpoint_path=checkpoint,
            rotate_every=2, compact_after=2, stop_after_swarms=7,
        )
        resumed = resume_fleet(checkpoint, rotate_every=2, compact_after=2)
        assert resumed.complete
        assert resumed.fingerprint() == clean

    def test_resume_after_checkpointed_segment_was_compacted(self, tmp_path):
        """The slow resume path: the checkpointed segment no longer exists,
        so the prefix is rebuilt from the census snapshot by record count."""
        spec = small_spec(num_swarms=8)
        reference_log = tmp_path / "ref.jsonl"
        result = run_fleet(spec, seed=3, log_path=reference_log)
        full = read_log(reference_log)
        log = tmp_path / "rot.jsonl"
        with FleetLogWriter(
            log, full.header, rotate_every=2, compact_after=1
        ) as writer:
            writer.append(list(full.records))
        # Every closed segment was folded into the census snapshot; a
        # checkpoint pointing into segment 0 can only resume by count.
        resumed_writer = FleetLogWriter(
            log, full.header,
            resume_offset=999_999,  # meaningless once the segment is gone
            resume_segment=0,
            resume_records=2,
        )
        prefix = read_log(log)
        assert [record.index for record in prefix.records] == [0, 1]
        resumed_writer.append(list(full.records[2:]))
        resumed_writer.close()
        rebuilt = FleetResult.from_log(log)
        assert rebuilt.fingerprint() == result.fingerprint()

    def test_adaptive_resume_across_rotation(self, tmp_path):
        spec = tiny_adaptive_spec()
        clean = run_adaptive_fleet(spec, seed=8).fingerprint()
        checkpoint = tmp_path / "cp"
        run_adaptive_fleet(
            spec, seed=8, chunk_size=2, checkpoint_path=checkpoint,
            rotate_every=3, stop_after_swarms=7,
        )
        resumed = resume_adaptive_fleet(checkpoint, rotate_every=3)
        assert resumed.fingerprint() == clean


class TestSalvageMode:
    def _corrupt_record_line(self, log: Path, record_index: int) -> None:
        """Flip a payload value of one record line without breaking its
        JSON, so only the CRC32 checksum can tell it changed."""
        lines = log.read_bytes().split(b"\n")
        line_number = 1 + record_index  # line 0 is the header
        payload = json.loads(lines[line_number])
        payload["events"] = payload["events"] + 1
        lines[line_number] = json.dumps(payload, sort_keys=True).encode()
        log.write_bytes(b"\n".join(lines))

    def test_strict_read_rejects_checksum_mismatch(self, tmp_path):
        spec = small_spec(num_swarms=8)
        log = tmp_path / "fleet.jsonl"
        run_fleet(spec, seed=1, log_path=log)
        self._corrupt_record_line(log, 3)
        with pytest.raises(FleetLogError, match="CRC32"):
            read_log(log)

    def test_salvage_skips_corrupt_interior_records(self, tmp_path):
        spec = small_spec(num_swarms=8)
        log = tmp_path / "fleet.jsonl"
        run_fleet(spec, seed=1, log_path=log)
        self._corrupt_record_line(log, 3)
        with pytest.warns(UserWarning, match="checksum"):
            salvaged = read_log(log, strict=False)
        assert salvaged.salvaged == 1
        assert [record.index for record in salvaged.records] == [
            0, 1, 2, 4, 5, 6, 7,
        ]

    def test_from_log_salvage_keeps_contiguous_prefix(self, tmp_path):
        spec = small_spec(num_swarms=8)
        log = tmp_path / "fleet.jsonl"
        run_fleet(spec, seed=1, log_path=log)
        self._corrupt_record_line(log, 3)
        with pytest.warns(UserWarning):
            rebuilt = FleetResult.from_log(log, strict=False)
        assert len(rebuilt.records) == 3  # the prefix before the bad line

    def test_undecodable_interior_line_is_salvaged_too(self, tmp_path):
        spec = small_spec(num_swarms=8)
        log = tmp_path / "fleet.jsonl"
        run_fleet(spec, seed=1, log_path=log)
        lines = log.read_bytes().split(b"\n")
        lines[2] = b"\x00\xff garbage \xfe"
        log.write_bytes(b"\n".join(lines))
        with pytest.raises(FleetLogError, match="corrupt"):
            read_log(log)
        with pytest.warns(UserWarning, match="corrupt"):
            salvaged = read_log(log, strict=False)
        assert salvaged.salvaged == 1
        assert [record.index for record in salvaged.records] == [
            0, 2, 3, 4, 5, 6, 7,
        ]
