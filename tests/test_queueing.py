"""Tests for the queueing substrates (M/GI/infinity, appendix bounds)."""

import math

import numpy as np
import pytest

from repro.queueing import (
    CompoundPoissonProcess,
    MGInfinityQueue,
    erlang_plus_exponential_mean,
    erlang_plus_exponential_sampler,
    kingman_exceedance_bound,
    maximal_exceedance_bound,
    stationary_mean,
)


class TestStationaryMean:
    def test_little_law_identity(self):
        assert stationary_mean(2.0, 3.0) == pytest.approx(6.0)
        assert stationary_mean(0.0, 10.0) == 0.0
        with pytest.raises(ValueError):
            stationary_mean(-1.0, 1.0)


class TestServiceSampler:
    def test_mean_formula(self):
        assert erlang_plus_exponential_mean(3, 2.0, 4.0) == pytest.approx(1.5 + 0.25)
        assert erlang_plus_exponential_mean(2, 1.0, math.inf) == pytest.approx(2.0)

    def test_sampler_matches_mean(self, rng):
        sampler = erlang_plus_exponential_sampler(3, 2.0, 4.0)
        samples = sampler(rng, 5000)
        assert samples.mean() == pytest.approx(1.75, rel=0.1)
        assert (samples >= 0).all()

    def test_sampler_without_dwell(self, rng):
        sampler = erlang_plus_exponential_sampler(2, 1.0, math.inf)
        samples = sampler(rng, 2000)
        assert samples.mean() == pytest.approx(2.0, rel=0.1)

    def test_sampler_zero_count(self, rng):
        sampler = erlang_plus_exponential_sampler(2, 1.0, 1.0)
        assert sampler(rng, 0).size == 0

    def test_sampler_validation(self):
        with pytest.raises(ValueError):
            erlang_plus_exponential_sampler(-1, 1.0, 1.0)
        with pytest.raises(ValueError):
            erlang_plus_exponential_sampler(2, 0.0, 1.0)


class TestMGInfinityQueue:
    def test_occupancy_nonnegative_and_consistent(self, rng):
        queue = MGInfinityQueue(2.0, erlang_plus_exponential_sampler(2, 1.0, 2.0))
        trajectory = queue.simulate(horizon=100.0, seed=rng)
        assert (trajectory.occupancy >= 0).all()
        assert trajectory.arrival_times.size == trajectory.departure_times.size

    def test_mean_occupancy_matches_little_law(self, rng):
        arrival_rate = 3.0
        mean_service = erlang_plus_exponential_mean(2, 2.0, 2.0)
        queue = MGInfinityQueue(arrival_rate, erlang_plus_exponential_sampler(2, 2.0, 2.0))
        means = []
        for seed in range(15):
            trajectory = queue.simulate(horizon=200.0, seed=seed, num_samples=400)
            # Discard the warm-up half.
            means.append(trajectory.occupancy[200:].mean())
        assert np.mean(means) == pytest.approx(
            stationary_mean(arrival_rate, mean_service), rel=0.1
        )

    def test_zero_arrival_rate_stays_empty(self, rng):
        queue = MGInfinityQueue(0.0, erlang_plus_exponential_sampler(1, 1.0, 1.0))
        trajectory = queue.simulate(horizon=50.0, seed=rng)
        assert trajectory.peak == 0
        assert trajectory.mean_occupancy() == 0.0

    def test_invalid_horizon(self, rng):
        queue = MGInfinityQueue(1.0, erlang_plus_exponential_sampler(1, 1.0, 1.0))
        with pytest.raises(ValueError):
            queue.simulate(horizon=0.0, seed=rng)

    def test_negative_arrival_rate_rejected(self):
        with pytest.raises(ValueError):
            MGInfinityQueue(-1.0, erlang_plus_exponential_sampler(1, 1.0, 1.0))


class TestMaximalBound:
    def test_bound_properties(self):
        bound = maximal_exceedance_bound(1.0, 2.0, offset=30.0, slope=1.0)
        assert 0.0 <= bound <= 1.0
        tighter = maximal_exceedance_bound(1.0, 2.0, offset=60.0, slope=1.0)
        assert tighter <= bound
        assert maximal_exceedance_bound(1.0, 2.0, offset=0.0, slope=1.0) == 1.0
        assert maximal_exceedance_bound(1.0, 2.0, offset=10.0, slope=0.0) == 1.0

    def test_bound_formula(self):
        value = maximal_exceedance_bound(1.0, 2.0, offset=20.0, slope=1.0)
        expected = math.exp(3.0) * 2.0 ** -20 / (1 - 0.5)
        assert value == pytest.approx(min(1.0, expected))

    def test_empirical_exceedance_below_bound(self):
        """Lemma 21 holds empirically for the Lemma-5 service law."""
        arrival_rate = 1.0
        sampler = erlang_plus_exponential_sampler(3, 1.0, 2.0)
        mean_service = erlang_plus_exponential_mean(3, 1.0, 2.0)
        queue = MGInfinityQueue(arrival_rate, sampler)
        offset, slope = 25.0, 1.0
        bound = maximal_exceedance_bound(arrival_rate, mean_service, offset, slope)
        exceed = 0
        paths = 100
        for seed in range(paths):
            trajectory = queue.simulate(horizon=120.0, seed=seed, num_samples=300)
            if np.any(trajectory.occupancy >= offset + slope * trajectory.sample_times):
                exceed += 1
        assert exceed / paths <= bound + 0.05


class TestKingmanBound:
    def test_empirical_exceedance_below_bound(self):
        """Proposition 20 holds empirically for a geometric compound Poisson."""
        process = CompoundPoissonProcess(
            rate=1.0,
            batch_sampler=lambda rng, n: rng.geometric(0.5, size=n).astype(float),
            batch_mean=2.0,
            batch_second_moment=6.0,
        )
        offset, slope = 25.0, 3.0
        bound = kingman_exceedance_bound(1.0, 2.0, 6.0, offset, slope)
        exceed = 0
        paths = 100
        for seed in range(paths):
            sample = process.sample(horizon=150.0, seed=seed)
            if sample.arrival_times.size == 0:
                continue
            cumulative = np.cumsum(sample.batch_sizes)
            if np.any(cumulative >= offset + slope * sample.arrival_times):
                exceed += 1
        assert exceed / paths <= bound + 0.05
