"""Fleet subsystem tests: samplers, determinism, sharding, checkpoint/resume.

The headline contracts:

* task materialization is a pure function of ``(spec, seed)``;
* the fleet outcome is identical at any worker count and chunking;
* killing a fleet (at a swarm boundary or mid-swarm, via the kernel
  snapshot) and resuming from the checkpoint — since PR 4 an offset into
  the streaming JSONL fleet log plus the snapshot, see
  ``tests/test_fleet_persistence.py`` for the log layer itself —
  reproduces the *exact* ``FleetResult`` of an uninterrupted run — the
  acceptance criterion, at ``workers=1`` and ``workers=4`` on a 200-swarm
  mixed-scenario fleet.
"""

import numpy as np
import pytest

from repro.experiments.fleet import run_fleet_phase_diagram
from repro.fleet import (
    FixedSampler,
    FleetResult,
    FleetScheduler,
    FleetSpec,
    GridSampler,
    RandomSampler,
    ScenarioWeight,
    load_checkpoint,
    materialize_tasks,
    resume_fleet,
    run_fleet,
)

MIXED = (
    ScenarioWeight.of(None, weight=2.0),
    ScenarioWeight.of("flash-crowd", weight=1.0, surge_start=1.0, surge_end=4.0),
    ScenarioWeight.of("free-rider", weight=1.0, leech_fraction=0.7),
)


def small_spec(num_swarms=16, **overrides) -> FleetSpec:
    defaults = dict(
        name="test-fleet",
        num_swarms=num_swarms,
        sampler=RandomSampler.of({"arrival_rate": (0.8, 3.0)}, num_pieces=5),
        scenario_mix=MIXED,
        horizon=6.0,
        max_events=200,
        backend="array",
        initial_club_size=10,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestSamplers:
    def test_fixed_sampler_constant(self):
        sampler = FixedSampler.of(arrival_rate=2.5, seed_rate=0.5)
        rng = np.random.default_rng(0)
        assert sampler.draw(0, rng) == sampler.draw(7, rng)
        assert sampler.draw(3, rng) == {"arrival_rate": 2.5, "seed_rate": 0.5}

    def test_fixed_sampler_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown parameter field"):
            FixedSampler.of(bogus=1.0)

    def test_grid_sampler_cycles_cells(self):
        sampler = GridSampler.of(
            {"arrival_rate": (1.0, 2.0), "seed_rate": (0.5, 1.5, 2.5)},
            num_pieces=4,
        )
        assert sampler.grid_size == 6
        rng = np.random.default_rng(0)
        cells = [tuple(sorted(sampler.cell(i).items())) for i in range(6)]
        assert len(set(cells)) == 6  # all cells distinct
        assert sampler.cell(0) == sampler.cell(6)  # cycles
        draw = sampler.draw(0, rng)
        assert draw["num_pieces"] == 4  # base merged in

    def test_grid_sampler_row_major_order(self):
        sampler = GridSampler.of(
            {"arrival_rate": (1.0, 2.0), "seed_rate": (0.5, 1.5)}
        )
        assert sampler.cell(0) == {"arrival_rate": 1.0, "seed_rate": 0.5}
        assert sampler.cell(1) == {"arrival_rate": 1.0, "seed_rate": 1.5}
        assert sampler.cell(2) == {"arrival_rate": 2.0, "seed_rate": 0.5}

    def test_random_sampler_deterministic_per_stream(self):
        sampler = RandomSampler.of({"arrival_rate": (1.0, 3.0)})
        a = sampler.draw(0, np.random.default_rng(42))
        b = sampler.draw(0, np.random.default_rng(42))
        assert a == b
        assert 1.0 <= a["arrival_rate"] <= 3.0

    def test_random_sampler_rejects_num_pieces(self):
        with pytest.raises(ValueError, match="num_pieces"):
            RandomSampler.of({"num_pieces": (3, 6)})


class TestMaterialization:
    def test_tasks_are_deterministic(self):
        spec = small_spec()
        first = materialize_tasks(spec, 42)
        second = materialize_tasks(spec, 42)
        assert [t.params for t in first] == [t.params for t in second]
        assert [t.scenario_label for t in first] == [
            t.scenario_label for t in second
        ]
        for a, b in zip(first, second):
            assert a.seed.entropy == b.seed.entropy
            assert a.seed.spawn_key == b.seed.spawn_key

    def test_different_seeds_differ(self):
        spec = small_spec()
        first = materialize_tasks(spec, 1)
        second = materialize_tasks(spec, 2)
        assert [t.params for t in first] != [t.params for t in second]

    def test_mix_produces_all_labels(self):
        labels = {t.scenario_label for t in materialize_tasks(small_spec(32), 0)}
        assert labels == {"plain", "flash-crowd", "free-rider"}

    def test_empty_mix_is_plain(self):
        spec = small_spec(scenario_mix=())
        tasks = materialize_tasks(spec, 0)
        assert all(t.scenario is None for t in tasks)
        assert all(t.scenario_label == "plain" for t in tasks)

    def test_plain_mix_entry_applies_overrides(self):
        """ScenarioWeight(None, ...) overrides reach base_params too."""
        spec = small_spec(
            sampler=FixedSampler.of(num_pieces=5),
            scenario_mix=(ScenarioWeight.of(None, seed_rate=5.0),),
        )
        tasks = materialize_tasks(spec, 0)
        assert all(t.params.seed_rate == 5.0 for t in tasks)
        # Sampler draws win over mix overrides on conflicts.
        spec = small_spec(
            sampler=FixedSampler.of(num_pieces=5, seed_rate=2.0),
            scenario_mix=(ScenarioWeight.of(None, seed_rate=5.0),),
        )
        assert materialize_tasks(spec, 0)[0].params.seed_rate == 2.0

    def test_seed_sequence_master_seed_is_not_mutated(self):
        """Materializing twice from the same SeedSequence yields the same
        fleet (the caller's object must not be spawned from directly)."""
        spec = small_spec(num_swarms=6)
        root = np.random.SeedSequence(42)
        first = materialize_tasks(spec, root)
        second = materialize_tasks(spec, root)
        assert [t.params for t in first] == [t.params for t in second]
        assert [t.seed.spawn_key for t in first] == [
            t.seed.spawn_key for t in second
        ]
        assert root.n_children_spawned == 0

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="num_swarms"):
            small_spec(num_swarms=0)
        with pytest.raises(ValueError, match="backend"):
            small_spec(backend="gpu")
        with pytest.raises(ValueError, match="weight"):
            ScenarioWeight.of("flash-crowd", weight=0.0)


class TestFleetExecution:
    def test_result_streams_in_order(self):
        spec = small_spec(num_swarms=6)
        result = run_fleet(spec, seed=3, workers=1)
        assert result.complete
        assert [r.index for r in result.records] == list(range(6))
        assert result.total_events == sum(r.events for r in result.records)
        assert 0.0 <= result.prevalence() <= 1.0
        assert sum(result.confusion.values()) == 6
        assert sum(c.swarms for c in result.per_scenario.values()) == 6

    def test_worker_count_invariance(self):
        spec = small_spec(num_swarms=12)
        serial = run_fleet(spec, seed=9, workers=1)
        pooled = run_fleet(spec, seed=9, workers=3, chunk_size=2)
        assert serial == pooled
        assert serial.fingerprint() == pooled.fingerprint()

    def test_object_backend_matches_array(self):
        spec_a = small_spec(num_swarms=6)
        spec_o = small_spec(num_swarms=6, backend="object")
        a = run_fleet(spec_a, seed=4, workers=1)
        o = run_fleet(spec_o, seed=4, workers=1)
        # Identical trajectories, record for record (backend equivalence
        # lifted to fleet level).
        assert [r.key() for r in a.records] == [r.key() for r in o.records]

    def test_report_renders(self):
        result = run_fleet(small_spec(num_swarms=8), seed=5, workers=1)
        report = result.report()
        assert "one-club prevalence" in report
        assert "free-rider" in report or "plain" in report
        assert "Theorem-1 verdict vs. empirical outcome" in report

    def test_records_enforce_order(self):
        result = FleetResult(spec_name="x", num_swarms=2)
        good = run_fleet(small_spec(num_swarms=2), seed=0, workers=1).records
        with pytest.raises(ValueError, match="index order"):
            result.add(good[1])


class TestCheckpointResume:
    def test_stop_requires_checkpoint_path(self):
        with pytest.raises(ValueError, match="checkpoint"):
            run_fleet(small_spec(), seed=0, stop_after_swarms=2)

    def test_mid_swarm_suspension_lands_in_checkpoint(self, tmp_path):
        spec = small_spec(num_swarms=8)
        path = tmp_path / "fleet.ckpt"
        partial = run_fleet(
            spec,
            seed=21,
            workers=1,
            checkpoint_path=path,
            stop_after_swarms=3,
            suspend_after_events=40,
        )
        assert not partial.complete
        assert len(partial.records) == 3
        checkpoint = load_checkpoint(path)
        assert checkpoint.next_index == 3
        assert checkpoint.in_flight is not None
        index, snapshot = checkpoint.in_flight
        assert index == 3
        assert snapshot["run"]["active"]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_smoke_checkpoint_resume_equality(self, tmp_path, workers):
        """CI fleet smoke: kill a 2-worker mixed fleet mid-run (mid-swarm),
        resume from the checkpoint, and demand exact aggregate equality."""
        spec = small_spec(num_swarms=14)
        uninterrupted = run_fleet(spec, seed=31, workers=workers)
        path = tmp_path / "fleet.ckpt"
        run_fleet(
            spec,
            seed=31,
            workers=workers,
            checkpoint_path=path,
            stop_after_swarms=5,
            suspend_after_events=30,
        )
        resumed = resume_fleet(path, workers=workers)
        assert resumed.complete
        assert resumed == uninterrupted
        assert resumed.fingerprint() == uninterrupted.fingerprint()

    @pytest.mark.parametrize(
        "master_seed",
        [
            np.random.SeedSequence(42),
            None,
            "generator",
        ],
        ids=["seed-sequence", "none", "generator"],
    )
    def test_non_int_master_seeds_resume_exactly(self, tmp_path, master_seed):
        """SeedSequence / None / Generator master seeds are normalized to a
        pure token up front, so kill+resume still reproduces the exact
        uninterrupted FleetResult (regression: spawning from the caller's
        SeedSequence used to shift every post-resume swarm)."""
        if master_seed == "generator":
            master_seed = np.random.default_rng(3)
        spec = small_spec(num_swarms=8)
        path = tmp_path / "fleet.ckpt"
        partial = run_fleet(
            spec,
            seed=master_seed,
            workers=1,
            checkpoint_path=path,
            stop_after_swarms=3,
            suspend_after_events=30,
        )
        assert len(partial.records) == 3
        resumed = resume_fleet(path, workers=1)
        # Replaying the checkpoint's normalized token reproduces the fleet.
        token = load_checkpoint(path).seed
        replay = run_fleet(spec, seed=token, workers=1)
        assert resumed == replay

    def test_resume_rejects_mismatched_spec(self, tmp_path):
        path = tmp_path / "fleet.ckpt"
        run_fleet(
            small_spec(num_swarms=4),
            seed=0,
            workers=1,
            checkpoint_path=path,
            stop_after_swarms=2,
        )
        other = FleetScheduler(small_spec(num_swarms=5), workers=1)
        with pytest.raises(ValueError, match="spec"):
            other.resume(path)

    def test_acceptance_200_swarms_mixed_resume_at_1_and_4_workers(self, tmp_path):
        """ISSUE acceptance: a 200-swarm mixed-scenario fleet on the array
        backend, killed and resumed from a checkpoint, reproduces the exact
        FleetResult of an uninterrupted run at workers=1 and workers=4."""
        spec = small_spec(
            num_swarms=200,
            horizon=4.0,
            max_events=120,
            initial_club_size=8,
        )
        uninterrupted = run_fleet(spec, seed=77, workers=1)
        assert uninterrupted.complete and len(uninterrupted.records) == 200
        for workers in (1, 4):
            path = tmp_path / f"fleet-w{workers}.ckpt"
            partial = run_fleet(
                spec,
                seed=77,
                workers=workers,
                checkpoint_path=path,
                stop_after_swarms=83,
                suspend_after_events=50,
            )
            assert not partial.complete
            resumed = resume_fleet(path, workers=workers)
            assert resumed == uninterrupted, f"workers={workers}"


class TestPhaseDiagram:
    def test_phase_diagram_grid(self):
        diagram = run_fleet_phase_diagram(
            arrival_rates=(0.8, 4.0),
            seed_rates=(0.5,),
            swarms_per_cell=2,
            horizon=20.0,
            max_events=2000,
            workers=1,
            seed=13,
        )
        assert len(diagram.cells) == 2
        for cell in diagram.cells.values():
            assert cell.swarms == 2
            assert 0.0 <= cell.captured_fraction <= 1.0
        assert diagram.cell(0.8, 0.5).theory == "stable"
        assert diagram.cell(4.0, 0.5).theory == "unstable"
        report = diagram.report()
        assert "Us \\ lambda" in report
        assert "Per-scenario capture census" in report
        assert diagram.fleet.complete
