"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.coding.gf import PrimeField
from repro.coding.subspace import Subspace
from repro.core.branching import one_club_drift
from repro.core.parameters import SystemParameters
from repro.core.scenario import PeerClass, RateSchedule, ScenarioSpec
from repro.core.stability import analyze, delta_s, piece_threshold, Stability
from repro.core.state import SystemState
from repro.core.transitions import outgoing_transitions, total_exit_rate
from repro.core.types import PieceSet, all_types
from repro.swarm.policies import make_policy, registered_policies
from repro.swarm.swarm import run_swarm

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

MAX_K = 4


@st.composite
def piece_sets(draw, num_pieces=None):
    k = num_pieces if num_pieces is not None else draw(st.integers(1, MAX_K))
    mask = draw(st.integers(0, (1 << k) - 1))
    return PieceSet.from_mask(mask, k)


@st.composite
def piece_set_pairs(draw):
    k = draw(st.integers(1, MAX_K))
    return draw(piece_sets(k)), draw(piece_sets(k))


@st.composite
def system_parameters(draw):
    k = draw(st.integers(1, 3))
    seed_rate = draw(st.floats(0.0, 5.0))
    peer_rate = draw(st.floats(0.1, 3.0))
    gamma = draw(st.one_of(st.floats(0.2, 5.0), st.just(math.inf)))
    num_arrival_types = draw(st.integers(1, 3))
    arrival_rates = {}
    for _ in range(num_arrival_types):
        type_c = draw(piece_sets(k))
        if type_c.is_complete and math.isinf(gamma):
            continue
        arrival_rates[type_c] = draw(st.floats(0.05, 4.0))
    assume(arrival_rates)
    return SystemParameters(
        num_pieces=k,
        seed_rate=seed_rate,
        peer_rate=peer_rate,
        seed_departure_rate=gamma,
        arrival_rates=arrival_rates,
    )


@st.composite
def rate_schedules(draw):
    """Piecewise-constant schedules, biased toward shapes with real thinning."""
    kind = draw(st.sampled_from(["constant", "pulse", "outage", "step"]))
    if kind == "constant":
        return RateSchedule.constant(draw(st.floats(0.5, 3.0)))
    if kind == "pulse":
        start = draw(st.floats(0.5, 2.0))
        return RateSchedule.pulse(start, start + draw(st.floats(0.5, 3.0)), draw(st.floats(2.0, 6.0)))
    if kind == "outage":
        start = draw(st.floats(0.5, 2.0))
        return RateSchedule.outage(start, start + draw(st.floats(0.5, 3.0)))
    return RateSchedule.step([(0.0, 1.0), (draw(st.floats(0.5, 3.0)), draw(st.floats(0.0, 4.0)))])


@st.composite
def scenario_specs(draw):
    """Heterogeneous scenarios: 1-3 peer classes plus arrival/seed schedules."""
    params = draw(system_parameters())
    num_classes = draw(st.integers(1, 3))
    classes = []
    for index in range(num_classes):
        gamma = draw(st.one_of(st.floats(0.3, 4.0), st.just(math.inf)))
        mix = None
        if draw(st.booleans()):
            types = {}
            for _ in range(draw(st.integers(1, 2))):
                type_c = draw(piece_sets(params.num_pieces))
                if type_c.is_complete and math.isinf(gamma):
                    continue
                types[type_c] = draw(st.floats(0.1, 3.0))
            mix = types or None
        classes.append(
            PeerClass(
                name=f"class-{index}",
                contact_rate=draw(st.floats(0.2, 3.0)),
                seed_departure_rate=gamma,
                arrival_fraction=draw(st.floats(0.1, 2.0)),
                arrival_mix=mix,
            )
        )
    # The base mix must be valid for any immediate-departure class inheriting it.
    full = PieceSet.full(params.num_pieces)
    if any(cls.immediate_departure and cls.arrival_mix is None for cls in classes):
        assume(params.arrival_rates.get(full, 0.0) == 0.0)
    return ScenarioSpec(
        name="hetero-property",
        params=params,
        classes=tuple(classes),
        arrival_schedule=draw(rate_schedules()),
        seed_schedule=draw(rate_schedules()),
    )


@st.composite
def system_states(draw, max_count=6):
    k = draw(st.integers(1, 3))
    counts = {}
    for type_c in all_types(k):
        value = draw(st.integers(0, max_count))
        if value:
            counts[type_c] = value
    return SystemState(counts, k)


# ---------------------------------------------------------------------------
# PieceSet lattice properties
# ---------------------------------------------------------------------------


class TestPieceSetProperties:
    @given(piece_set_pairs())
    def test_union_is_superset_of_both(self, pair):
        a, b = pair
        union = a.union(b)
        assert a.issubset(union) and b.issubset(union)
        assert len(union) == len(a) + len(b) - len(a.intersection(b))

    @given(piece_set_pairs())
    def test_difference_disjoint_from_other(self, pair):
        a, b = pair
        assert a.difference(b).intersection(b).is_empty

    @given(piece_sets())
    def test_missing_is_complement(self, a):
        missing = a.missing()
        assert a.intersection(missing).is_empty
        assert a.union(missing).is_complete

    @given(piece_set_pairs())
    def test_useful_from_matches_containment(self, pair):
        a, b = pair
        useful = a.useful_from(b)
        assert useful.is_empty == b.issubset(a)
        assert a.can_be_helped_by(b) == (not useful.is_empty)

    @given(piece_sets(), st.integers(1, MAX_K))
    def test_add_remove_roundtrip(self, a, piece):
        assume(piece <= a.num_pieces)
        assume(piece not in a)
        assert a.add(piece).remove(piece) == a

    @given(piece_set_pairs())
    def test_subset_antisymmetry(self, pair):
        a, b = pair
        if a.issubset(b) and b.issubset(a):
            assert a == b

    @given(piece_sets())
    def test_mask_roundtrip(self, a):
        assert PieceSet.from_mask(a.mask, a.num_pieces) == a


# ---------------------------------------------------------------------------
# SystemState invariants
# ---------------------------------------------------------------------------


class TestSystemStateProperties:
    @given(system_states())
    def test_population_decomposes_over_helpers(self, state):
        """E_C + x_{H_C} = n for every target C."""
        for target in all_types(state.num_pieces):
            assert state.downward_count(target) + state.helper_count(target) == state.total_peers

    @given(system_states(), st.integers(1, 3))
    def test_piece_counts_consistent(self, state, piece):
        assume(piece <= state.num_pieces)
        assert (
            state.peers_with_piece(piece) + state.peers_missing_piece(piece)
            == state.total_peers
        )

    @given(system_states())
    def test_add_then_remove_is_identity(self, state):
        type_c = PieceSet.empty(state.num_pieces)
        assert state.add_peer(type_c).remove_peer(type_c) == state

    @given(system_states())
    def test_vector_roundtrip(self, state):
        from repro.core.types import canonical_type_order

        order = canonical_type_order(state.num_pieces)
        assert SystemState.from_vector(state.to_vector(order), order, state.num_pieces) == state


# ---------------------------------------------------------------------------
# Transition-rate invariants
# ---------------------------------------------------------------------------


class TestTransitionProperties:
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(system_parameters(), system_states())
    def test_rates_nonnegative_and_population_step_one(self, params, state):
        assume(state.num_pieces == params.num_pieces)
        total = 0.0
        for transition in outgoing_transitions(state, params):
            assert transition.rate > 0
            assert abs(transition.target.total_peers - state.total_peers) <= 1
            total += transition.rate
        assert total == pytest.approx(total_exit_rate(state, params))

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(system_parameters(), system_states())
    def test_downloads_preserve_piece_monotonicity(self, params, state):
        """Every non-arrival transition only adds pieces to peers (or removes seeds)."""
        assume(state.num_pieces == params.num_pieces)
        before = state.piece_counts()
        for transition in outgoing_transitions(state, params):
            after = transition.target.piece_counts()
            for piece in before:
                # Counts can only drop by a departure of a complete peer.
                assert after[piece] >= before[piece] - 1


# ---------------------------------------------------------------------------
# Stability-theory properties
# ---------------------------------------------------------------------------


class TestStabilityProperties:
    @settings(max_examples=60)
    @given(system_parameters())
    def test_eq3_eq4_equivalence(self, params):
        """The per-piece threshold condition (3) matches the sign of Delta (4)."""
        assume(params.mu_over_gamma < 1.0)
        for piece in range(1, params.num_pieces + 1):
            delta = delta_s(params, PieceSet.full(params.num_pieces).remove(piece))
            threshold = piece_threshold(params, piece)
            if params.lambda_total < threshold:
                assert delta < 1e-9
            elif params.lambda_total > threshold:
                assert delta > -1e-9

    @settings(max_examples=60)
    @given(system_parameters())
    def test_branching_drift_equals_delta(self, params):
        assume(params.mu_over_gamma < 1.0)
        for piece in range(1, params.num_pieces + 1):
            assert one_club_drift(params, piece) == pytest.approx(
                delta_s(params, PieceSet.full(params.num_pieces).remove(piece))
            )

    @settings(max_examples=40)
    @given(system_parameters(), st.floats(1.2, 4.0))
    def test_scaling_arrivals_never_helps(self, params, factor):
        """If a system is already unstable, scaling up arrivals keeps it unstable."""
        report = analyze(params)
        assume(report.verdict is Stability.UNSTABLE)
        scaled = analyze(params.scaled_arrivals(factor))
        assert scaled.verdict is Stability.UNSTABLE

    @settings(max_examples=40)
    @given(system_parameters(), st.floats(0.5, 5.0))
    def test_more_seed_capacity_never_hurts(self, params, extra):
        """Adding fixed-seed capacity can only enlarge the margin."""
        assume(params.mu_over_gamma < 1.0)
        before = analyze(params).margin
        after = analyze(params.with_seed_rate(params.seed_rate + extra)).margin
        assert after >= before - 1e-9

    @settings(max_examples=40)
    @given(system_parameters())
    def test_gamma_below_mu_always_stable_when_pieces_enter(self, params):
        assume(params.all_pieces_can_enter())
        slow = params.with_departure_rate(params.peer_rate * 0.5)
        assert analyze(slow).verdict is Stability.STABLE

    @settings(max_examples=40)
    @given(system_parameters())
    def test_verdict_is_exclusive(self, params):
        report = analyze(params)
        assert report.is_stable + report.is_unstable <= 1


# ---------------------------------------------------------------------------
# Backend equivalence: object simulator vs. array kernel
# ---------------------------------------------------------------------------


class TestBackendEquivalence:
    """The array kernel and the object simulator share RNG consumption, so a
    common seed must yield bit-identical trajectories on both backends."""

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        system_parameters(),
        st.integers(0, 2**31 - 1),
        st.sampled_from(registered_policies()),
        st.sampled_from([1.0, 2.5]),
        st.booleans(),
    )
    def test_backends_produce_identical_trajectories(
        self, params, seed, policy_name, retry_speedup, track_groups
    ):
        runs = {}
        for backend in ("object", "array"):
            runs[backend] = run_swarm(
                params,
                horizon=6.0,
                seed=seed,
                policy=make_policy(policy_name),
                backend=backend,
                retry_speedup=retry_speedup,
                track_groups=track_groups,
                max_events=300,
            )
        obj, arr = runs["object"], runs["array"]
        assert arr.final_population == obj.final_population
        assert arr.final_state == obj.final_state
        assert arr.final_state.piece_counts() == obj.final_state.piece_counts()
        assert arr.final_time == obj.final_time
        assert arr.horizon_reached == obj.horizon_reached
        assert arr.metrics.population == obj.metrics.population
        assert arr.metrics.one_club_size == obj.metrics.one_club_size
        assert arr.metrics.num_seeds == obj.metrics.num_seeds
        assert arr.metrics.min_piece_count == obj.metrics.min_piece_count
        assert arr.metrics.total_downloads == obj.metrics.total_downloads
        assert arr.metrics.wasted_contacts == obj.metrics.wasted_contacts
        assert arr.metrics.total_seed_uploads == obj.metrics.total_seed_uploads
        assert arr.metrics.sojourn_times == obj.metrics.sojourn_times
        assert arr.metrics.download_times == obj.metrics.download_times
        assert arr.metrics.group_snapshots == obj.metrics.group_snapshots

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(system_parameters(), st.integers(0, 2**31 - 1), st.integers(1, 30))
    def test_backends_agree_from_seeded_one_club(self, params, seed, club_size):
        initial = SystemState.one_club(params.num_pieces, club_size)
        results = [
            run_swarm(
                params,
                horizon=4.0,
                seed=seed,
                backend=backend,
                initial_state=initial,
                max_events=200,
            )
            for backend in ("object", "array")
        ]
        assert results[0].final_state == results[1].final_state
        assert results[0].metrics.population == results[1].metrics.population
        assert results[0].metrics.one_club_size == results[1].metrics.one_club_size
        assert results[0].metrics.min_piece_count == results[1].metrics.min_piece_count
        assert results[0].metrics.num_seeds == results[1].metrics.num_seeds

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(scenario_specs(), st.integers(0, 2**31 - 1), st.sampled_from([1.0, 2.5]))
    def test_backends_agree_on_heterogeneous_scenarios(
        self, scenario, seed, retry_speedup
    ):
        """Per-class rates, per-class mixes and thinned schedules all go
        through the shared driver, so the full time series — population,
        one-club size, min piece count, seeds — must stay bit-identical."""
        runs = {
            backend: run_swarm(
                scenario.params,
                horizon=6.0,
                seed=seed,
                backend=backend,
                scenario=scenario,
                retry_speedup=retry_speedup,
                max_events=300,
            )
            for backend in ("object", "array")
        }
        obj, arr = runs["object"], runs["array"]
        assert arr.final_population == obj.final_population
        assert arr.final_state == obj.final_state
        assert arr.final_time == obj.final_time
        assert arr.metrics.population == obj.metrics.population
        assert arr.metrics.one_club_size == obj.metrics.one_club_size
        assert arr.metrics.min_piece_count == obj.metrics.min_piece_count
        assert arr.metrics.num_seeds == obj.metrics.num_seeds
        assert arr.metrics.total_downloads == obj.metrics.total_downloads
        assert arr.metrics.thinned_events == obj.metrics.thinned_events
        assert arr.metrics.wasted_contacts == obj.metrics.wasted_contacts
        assert arr.metrics.sojourn_times == obj.metrics.sojourn_times
        assert arr.metrics.download_times == obj.metrics.download_times

    def test_backends_agree_on_named_scenarios(self):
        """The ISSUE's acceptance pair: flash crowd and heterogeneous classes
        must be bit-identical across backends from a shared seed."""
        from repro.core.scenario import make_scenario

        for name in ("flash-crowd", "heterogeneous-classes"):
            scenario = make_scenario(name)
            runs = {
                backend: run_swarm(
                    scenario.params,
                    horizon=50.0,
                    seed=2026,
                    backend=backend,
                    scenario=scenario,
                    max_events=8000,
                )
                for backend in ("object", "array")
            }
            obj, arr = runs["object"], runs["array"]
            assert arr.final_state == obj.final_state, name
            assert arr.metrics.population == obj.metrics.population, name
            assert arr.metrics.one_club_size == obj.metrics.one_club_size, name
            assert arr.metrics.min_piece_count == obj.metrics.min_piece_count, name
            assert arr.metrics.thinned_events == obj.metrics.thinned_events, name


# ---------------------------------------------------------------------------
# GF(p) subspace properties
# ---------------------------------------------------------------------------


@st.composite
def subspace_pairs(draw):
    prime = draw(st.sampled_from([2, 3, 5]))
    dim = draw(st.integers(2, 4))
    field = PrimeField(prime)
    num_vectors_a = draw(st.integers(0, dim))
    num_vectors_b = draw(st.integers(0, dim))
    vectors_a = [
        [draw(st.integers(0, prime - 1)) for _ in range(dim)] for _ in range(num_vectors_a)
    ]
    vectors_b = [
        [draw(st.integers(0, prime - 1)) for _ in range(dim)] for _ in range(num_vectors_b)
    ]
    return Subspace(field, dim, vectors_a), Subspace(field, dim, vectors_b)


class TestSubspaceProperties:
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(subspace_pairs())
    def test_dimension_formula(self, pair):
        a, b = pair
        total = a.sum(b)
        intersection_dim = a.intersection_dimension(b)
        assert total.dimension == a.dimension + b.dimension - intersection_dim
        assert 0 <= intersection_dim <= min(a.dimension, b.dimension)
        assert total.contains_subspace(a) and total.contains_subspace(b)

    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(subspace_pairs())
    def test_sum_is_commutative(self, pair):
        a, b = pair
        assert a.sum(b) == b.sum(a)

    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(subspace_pairs())
    def test_containment_iff_sum_unchanged(self, pair):
        a, b = pair
        assert a.contains_subspace(b) == (a.sum(b).dimension == a.dimension)

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(subspace_pairs(), st.integers(0, 2**31 - 1))
    def test_random_vector_membership_and_usefulness(self, pair, seed):
        a, b = pair
        rng = np.random.default_rng(seed)
        vector = a.random_vector(rng)
        assert a.contains(vector)
        if b.is_useful(vector):
            assert not b.contains(vector)
            assert b.add_vector(vector).dimension == b.dimension + 1
        else:
            assert b.add_vector(vector).dimension == b.dimension
