"""Tests for the statistics helpers and table rendering."""

import math
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.statistics import (
    ConfidenceInterval,
    empirical_exceedance_probability,
    linear_slope,
    mean_confidence_interval,
    relative_error,
    trailing_window,
)
from repro.analysis.tables import format_table, table_to_csv_string, write_csv


class TestStatistics:
    def test_confidence_interval_contains_true_mean(self, rng):
        samples = rng.normal(loc=5.0, scale=1.0, size=200)
        interval = mean_confidence_interval(samples)
        assert interval.contains(5.0)
        assert interval.lower < interval.mean < interval.upper

    def test_confidence_interval_single_sample(self):
        interval = mean_confidence_interval([3.0])
        assert interval.mean == 3.0
        assert math.isinf(interval.half_width)

    def test_confidence_interval_constant_samples(self):
        interval = mean_confidence_interval([2.0, 2.0, 2.0])
        assert interval.half_width == 0.0
        assert "2" in str(interval)

    def test_confidence_interval_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_confidence_width_shrinks_with_samples(self, rng):
        small = mean_confidence_interval(rng.normal(size=20))
        large = mean_confidence_interval(rng.normal(size=2000))
        assert large.half_width < small.half_width

    def test_linear_slope(self):
        times = np.linspace(0, 10, 50)
        assert linear_slope(times, 3.0 * times + 1.0) == pytest.approx(3.0)
        assert linear_slope([1.0], [2.0]) == 0.0
        assert linear_slope([1.0, 1.0], [2.0, 3.0]) == 0.0

    def test_trailing_window(self):
        data = list(range(10))
        assert list(trailing_window(data, 0.5)) == [5, 6, 7, 8, 9]
        assert list(trailing_window(data, 1.0)) == data
        with pytest.raises(ValueError):
            trailing_window(data, 0.0)

    def test_empirical_exceedance_probability(self):
        below = (np.array([0.0, 1.0, 2.0]), np.array([1.0, 1.0, 1.0]))
        above = (np.array([0.0, 1.0, 2.0]), np.array([1.0, 50.0, 1.0]))
        probability = empirical_exceedance_probability([below, above], offset=10.0, slope=1.0)
        assert probability == pytest.approx(0.5)
        with pytest.raises(ValueError):
            empirical_exceedance_probability([], 1.0, 1.0)

    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            headers=["name", "value"],
            rows=[("alpha", 1.0), ("beta", 22.5)],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5
        # Columns aligned: every data line has the same width as the header line.
        assert all(len(line) <= len(lines[1]) + 2 for line in lines[3:])

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_float_format(self):
        text = format_table(["x"], [(1.23456789,)], float_format="{:.2f}")
        assert "1.23" in text

    def test_csv_string(self):
        csv_text = table_to_csv_string(["a", "b"], [(1, 2), (3, 4)])
        assert csv_text.splitlines()[0] == "a,b"
        assert csv_text.splitlines()[2] == "3,4"

    def test_write_csv_creates_directories(self, tmp_path):
        target = tmp_path / "nested" / "out.csv"
        written = write_csv(target, ["a"], [(1,), (2,)])
        assert written == target
        assert target.read_text().splitlines() == ["a", "1", "2"]
