"""Unit and behavioural tests for the peer-level swarm simulator."""

import math

import numpy as np
import pytest

from repro.core.parameters import SystemParameters
from repro.core.state import SystemState
from repro.core.types import PieceSet
from repro.swarm.metrics import SwarmMetrics
from repro.swarm.policies import RarestFirstSelection
from repro.swarm.swarm import SwarmSimulator, run_swarm


class TestMechanics:
    def test_population_bookkeeping(self, flash_crowd_stable):
        simulator = SwarmSimulator(flash_crowd_stable, seed=0)
        result = simulator.run(horizon=30.0)
        metrics = result.metrics
        assert metrics.total_arrivals >= metrics.total_departures
        assert result.final_population == metrics.total_arrivals - metrics.total_departures
        assert result.final_state.total_peers == result.final_population

    def test_seeded_initial_population(self, flash_crowd_stable):
        initial = SystemState.one_club(3, 25)
        simulator = SwarmSimulator(flash_crowd_stable, seed=1)
        simulator.seed_population(initial)
        assert simulator.population == 25
        assert simulator.one_club_size() == 25
        assert simulator.metrics.total_arrivals == 0

    def test_current_state_counts_types(self, flash_crowd_stable):
        simulator = SwarmSimulator(flash_crowd_stable, seed=2)
        simulator.seed_population(
            SystemState({PieceSet((1,), 3): 2, PieceSet((2, 3), 3): 3}, 3)
        )
        state = simulator.current_state()
        assert state.count(PieceSet((1,), 3)) == 2
        assert state.count(PieceSet((2, 3), 3)) == 3

    def test_departed_peers_leave_the_population(self):
        """With gamma = inf every completed peer leaves immediately."""
        params = SystemParameters.flash_crowd(2, arrival_rate=1.0, seed_rate=3.0)
        result = run_swarm(params, horizon=80.0, seed=3)
        for peer_type, _count in result.final_state.items():
            assert not peer_type.is_complete

    def test_peer_seeds_dwell_when_gamma_finite(self, example1_params):
        simulator = SwarmSimulator(example1_params, seed=4)
        result = simulator.run(horizon=100.0)
        # Some samples should have recorded dwelling peer seeds.
        assert max(result.metrics.num_seeds) >= 1

    def test_sojourn_times_positive(self, flash_crowd_stable):
        result = run_swarm(flash_crowd_stable, horizon=60.0, seed=5)
        assert all(t >= 0 for t in result.metrics.sojourn_times)
        assert result.metrics.mean_download_time() > 0

    def test_max_population_cap_stops_run(self, flash_crowd_unstable):
        result = run_swarm(
            flash_crowd_unstable, horizon=10_000.0, seed=6, max_population=200
        )
        assert not result.horizon_reached
        assert result.final_population >= 200

    def test_max_events_cap(self, flash_crowd_stable):
        result = run_swarm(flash_crowd_stable, horizon=10_000.0, seed=7, max_events=50)
        assert not result.horizon_reached

    def test_invalid_horizon(self, flash_crowd_stable):
        simulator = SwarmSimulator(flash_crowd_stable, seed=8)
        with pytest.raises(ValueError):
            simulator.run(horizon=0.0)

    def test_invalid_retry_speedup(self, flash_crowd_stable):
        with pytest.raises(ValueError):
            SwarmSimulator(flash_crowd_stable, retry_speedup=0.5)

    def test_invalid_rare_piece(self, flash_crowd_stable):
        with pytest.raises(ValueError):
            SwarmSimulator(flash_crowd_stable, rare_piece=7)

    def test_reproducibility(self, flash_crowd_stable):
        first = run_swarm(flash_crowd_stable, horizon=40.0, seed=99)
        second = run_swarm(flash_crowd_stable, horizon=40.0, seed=99)
        assert first.metrics.population == second.metrics.population
        assert first.metrics.total_downloads == second.metrics.total_downloads

    def test_different_seeds_differ(self, flash_crowd_stable):
        first = run_swarm(flash_crowd_stable, horizon=40.0, seed=1)
        second = run_swarm(flash_crowd_stable, horizon=40.0, seed=2)
        assert first.metrics.population != second.metrics.population


class TestSamplingAndMetrics:
    def test_sample_grid_regular(self, flash_crowd_stable):
        result = run_swarm(
            flash_crowd_stable, horizon=50.0, seed=0, sample_interval=5.0
        )
        times = result.metrics.times_array()
        assert times.size == 11
        assert np.allclose(np.diff(times), 5.0)

    def test_group_tracking_optional(self, flash_crowd_stable):
        with_groups = SwarmSimulator(flash_crowd_stable, seed=1, track_groups=True)
        result = with_groups.run(horizon=20.0)
        assert len(result.metrics.group_snapshots) == len(result.metrics.sample_times)
        without = SwarmSimulator(flash_crowd_stable, seed=1)
        assert without.run(horizon=20.0).metrics.group_snapshots == []

    def test_group_totals_match_population(self, flash_crowd_stable):
        simulator = SwarmSimulator(flash_crowd_stable, seed=2, track_groups=True)
        result = simulator.run(horizon=30.0)
        for snapshot, population in zip(
            result.metrics.group_snapshots, result.metrics.population
        ):
            assert snapshot.total == population

    def test_metrics_summary_keys(self, flash_crowd_stable):
        summary = run_swarm(flash_crowd_stable, horizon=20.0, seed=3).metrics.summary()
        for key in (
            "final_population",
            "mean_population",
            "population_slope",
            "total_downloads",
            "mean_sojourn_time",
        ):
            assert key in summary

    def test_metrics_empty(self):
        metrics = SwarmMetrics()
        assert metrics.final_population == 0
        assert metrics.population_slope() == 0.0
        assert math.isnan(metrics.mean_sojourn_time())
        assert metrics.fraction_time_empty() == 0.0


class TestBehaviour:
    def test_stable_system_stays_small(self, flash_crowd_stable):
        result = run_swarm(flash_crowd_stable, horizon=300.0, seed=10)
        assert result.metrics.peak_population < 80
        assert abs(result.metrics.population_slope()) < 0.1

    def test_unstable_system_grows_linearly(self, flash_crowd_unstable):
        result = run_swarm(flash_crowd_unstable, horizon=150.0, seed=11)
        # Growth rate approx lambda - Us = 4 peers per unit time.
        slope = result.metrics.population_slope()
        assert slope > 2.0
        assert result.final_population > 300

    def test_missing_piece_becomes_rare_in_unstable_system(self, flash_crowd_unstable):
        result = run_swarm(flash_crowd_unstable, horizon=120.0, seed=12)
        metrics = result.metrics
        # Which piece the one club forms around is trajectory-dependent, so
        # check the club with respect to each piece and take the largest.
        club_sizes = [
            result.final_state.one_club_size(piece) for piece in (1, 2, 3)
        ]
        # The one club dominates: min piece count stays far below the population.
        assert max(club_sizes) > 0.5 * metrics.population[-1]
        assert metrics.min_piece_count[-1] < 0.2 * metrics.population[-1]

    def test_one_club_drains_in_stable_system(self, flash_crowd_stable):
        initial = SystemState.one_club(3, 50)
        result = run_swarm(
            flash_crowd_stable, horizon=200.0, seed=13, initial_state=initial
        )
        assert result.metrics.one_club_size[-1] < 15

    def test_example1_mean_sojourn_reasonable(self):
        """Example 1 far inside stability: mean sojourn ~ download + dwell time."""
        params = SystemParameters.single_piece(
            arrival_rate=0.5, seed_rate=4.0, peer_rate=1.0, seed_departure_rate=1.0
        )
        result = run_swarm(params, horizon=400.0, seed=14)
        assert result.metrics.mean_sojourn_time() > 1.0  # at least the dwell time

    def test_dwell_time_stabilises_otherwise_unstable_system(self):
        """gamma <= mu rescues a system that is unstable with gamma = inf."""
        base = SystemParameters.flash_crowd(
            3, arrival_rate=2.0, seed_rate=0.3, peer_rate=1.0
        )
        unstable = run_swarm(base, horizon=150.0, seed=18, max_population=2000)
        stable = run_swarm(
            base.with_departure_rate(0.8), horizon=150.0, seed=18, max_population=2000
        )
        assert unstable.final_population > 5 * max(stable.final_population, 1)

    def test_rarest_first_policy_runs(self, flash_crowd_stable):
        result = run_swarm(
            flash_crowd_stable, horizon=100.0, seed=16, policy=RarestFirstSelection()
        )
        assert result.metrics.total_downloads > 0
        assert result.metrics.peak_population < 100

    def test_retry_speedup_accepted_and_runs(self, flash_crowd_stable):
        result = run_swarm(flash_crowd_stable, horizon=50.0, seed=17, retry_speedup=5.0)
        assert result.metrics.total_downloads > 0

    def test_gifted_arrivals_carry_pieces(self, gifted_params):
        simulator = SwarmSimulator(gifted_params, seed=18)
        result = simulator.run(horizon=50.0)
        # Some arrivals hold piece 1 on arrival, so piece 1 is never globally rare
        # for long; total downloads should also be positive.
        assert result.metrics.total_downloads > 0
