r"""Deterministic fluid limit of the population dynamics.

Scaling arrival rates and the initial state by a factor that grows to infinity
turns the population chain into a vector ODE (the approach of Massoulié &
Vojnovic [11]).  With the same functional form of the transfer rates as
Eq. (1) the fluid equations are

.. math::

   \dot x_C = λ_C + \sum_{i ∈ C} Γ_{C−\{i\}, C}(x)
             - \sum_{i ∉ C} Γ_{C, C∪\{i\}}(x) - γ x_F 1_{C=F},

with the convention that the inflow into ``F`` is a departure when ``γ = ∞``.
The fluid model is useful for intuition and for locating the quasi-stable
behaviour of provably-transient systems (Section IX), and serves as an extra
consistency check on the stochastic simulators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.integrate import solve_ivp

from ..core.parameters import SystemParameters
from ..core.types import PieceSet, all_types, canonical_type_order


@dataclass
class FluidTrajectory:
    """Solution of the fluid ODE on a time grid."""

    times: np.ndarray
    concentrations: np.ndarray  # shape (num_types, num_times)
    type_order: Tuple[PieceSet, ...]

    def total_mass(self) -> np.ndarray:
        """Total fluid population over time."""
        return self.concentrations.sum(axis=0)

    def mass_of(self, type_c: PieceSet) -> np.ndarray:
        index = self.type_order.index(type_c)
        return self.concentrations[index]

    def final_state(self) -> Dict[PieceSet, float]:
        return {
            type_c: float(self.concentrations[i, -1])
            for i, type_c in enumerate(self.type_order)
        }


class FluidModel:
    """Right-hand side and integrator of the fluid limit."""

    def __init__(self, params: SystemParameters):
        self.params = params
        self.type_order = canonical_type_order(params.num_pieces, include_full=True)
        self._index = {t: i for i, t in enumerate(self.type_order)}
        self._full = PieceSet.full(params.num_pieces)

    def _transfer_rate(
        self, concentrations: np.ndarray, from_type: PieceSet, piece: int
    ) -> float:
        """Fluid analogue of Eq. (1) for the flow ``C → C ∪ {piece}``."""
        total = concentrations.sum()
        if total <= 0:
            return 0.0
        x_c = concentrations[self._index[from_type]]
        if x_c <= 0:
            return 0.0
        seed_term = self.params.seed_rate / (self.params.num_pieces - len(from_type))
        peer_term = 0.0
        for holder, j in self._index.items():
            if piece in holder:
                mass = concentrations[j]
                if mass > 0:
                    peer_term += mass / len(holder.difference(from_type))
        return (x_c / total) * (seed_term + self.params.peer_rate * peer_term)

    def rhs(self, _time: float, concentrations: np.ndarray) -> np.ndarray:
        """Time derivative of the fluid state."""
        x = np.clip(concentrations, 0.0, None)
        derivative = np.zeros_like(x)
        for type_c, index in self._index.items():
            derivative[index] += self.params.arrival_rate(type_c)
        for from_type, index in self._index.items():
            if from_type.is_complete:
                continue
            for piece in from_type.missing():
                rate = self._transfer_rate(x, from_type, piece)
                if rate <= 0:
                    continue
                target = from_type.add(piece)
                derivative[index] -= rate
                if target.is_complete and self.params.immediate_departure:
                    continue  # mass leaves the system on completion
                derivative[self._index[target]] += rate
        if not self.params.immediate_departure:
            full_index = self._index[self._full]
            derivative[full_index] -= self.params.seed_departure_rate * x[full_index]
        return derivative

    def integrate(
        self,
        horizon: float,
        initial: Optional[Dict[PieceSet, float]] = None,
        num_samples: int = 200,
        rtol: float = 1e-6,
        atol: float = 1e-8,
    ) -> FluidTrajectory:
        """Integrate the fluid ODE on ``[0, horizon]``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        x0 = np.zeros(len(self.type_order))
        if initial:
            for type_c, mass in initial.items():
                x0[self._index[type_c]] = mass
        times = np.linspace(0.0, horizon, num_samples)
        solution = solve_ivp(
            self.rhs,
            t_span=(0.0, horizon),
            y0=x0,
            t_eval=times,
            rtol=rtol,
            atol=atol,
            method="LSODA",
        )
        if not solution.success:
            raise RuntimeError(f"fluid integration failed: {solution.message}")
        return FluidTrajectory(
            times=solution.t,
            concentrations=np.clip(solution.y, 0.0, None),
            type_order=self.type_order,
        )


__all__ = ["FluidModel", "FluidTrajectory"]
