"""Limiting regimes of the model.

* :mod:`repro.limits.mu_infinity` — the µ = ∞ watched process of Figure 3
  and Section VIII-D (borderline / null-recurrent behaviour);
* :mod:`repro.limits.fluid` — the deterministic fluid ODE limit.
"""

from .fluid import FluidModel, FluidTrajectory
from .mu_infinity import (
    MuInfinityChain,
    MuInfinityState,
    finite_mu_symmetric_chain_simulation,
    negative_binomial_pmf,
)

__all__ = [
    "FluidModel",
    "FluidTrajectory",
    "MuInfinityChain",
    "MuInfinityState",
    "finite_mu_symmetric_chain_simulation",
    "negative_binomial_pmf",
]
