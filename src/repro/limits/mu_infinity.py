"""The µ = ∞ watched process of Section VIII-D (Figure 3).

For the symmetric flat network (``λ_C = λ`` for ``|C| = 1``, no fixed seed,
``γ = ∞``) the paper studies the limit ``µ → ∞`` of the chain watched on its
*slow* states — states where all peers hold the same piece set.  The reduced
state space is ``{(0,0)} ∪ {(n, k) : n ≥ 1, 1 ≤ k ≤ K−1}``: ``n`` peers, all
holding the same ``k`` pieces.

Transitions (rate ``λ`` per single-piece type):

* from ``(n, k)`` with ``k < K−1``: an arrival with a piece already held
  (rate ``kλ``) joins the group, ``(n+1, k)``; an arrival with a new piece
  (rate ``(K−k)λ``) is instantly assimilated and everyone ends with ``k+1``
  pieces, ``(n+1, k+1)``;
* from the top layer ``(n, K−1)``: an arrival with a held piece (rate
  ``(K−1)λ``) gives ``(n+1, K−1)``; an arrival with the missing piece (rate
  ``λ``) triggers the fair-coin race of the paper — the newcomer uploads
  (each upload removes one member) and downloads (it needs ``K−1`` pieces) at
  equal rates, leading to ``(n − Z, K−1)`` when ``Z ≤ n−1`` members depart, or
  to ``(1, j)`` when all members depart first.

Because ``E[Z] = K−1``, the top layer evolves as a zero-drift random walk and
the watched process is null recurrent — the borderline behaviour that
motivates Conjecture 17.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.stats import nbinom

from ..simulation.ctmc import GenericCtmcSimulator
from ..simulation.rng import SeedLike, make_rng

MuInfinityState = Tuple[int, int]  # (population, common number of pieces)


def negative_binomial_pmf(num_tails: int, num_heads: int) -> float:
    """P{exactly ``num_heads`` heads occur before the ``num_tails``-th tail}."""
    if num_tails < 1 or num_heads < 0:
        raise ValueError("num_tails must be >= 1 and num_heads >= 0")
    return float(nbinom.pmf(num_heads, num_tails, 0.5))


def heads_before_all_depart_pmf(population: int, max_tails: int, num_tails: int) -> float:
    """P{the ``population``-th head occurs with exactly ``num_tails`` tails before it}.

    Used for the boundary jump to ``(1, 1 + num_tails)``: the newcomer has
    uploaded to every member (``population`` heads) having downloaded
    ``num_tails < max_tails`` pieces so far.
    """
    if num_tails < 0 or num_tails >= max_tails:
        raise ValueError("num_tails must lie in [0, max_tails)")
    return _head_path_probability(population, num_tails)


def _head_path_probability(population: int, num_tails: int) -> float:
    """Probability of a coin-flip path with ``population`` heads, the last flip a head,
    and exactly ``num_tails`` tails among the earlier flips."""
    total_flips = population + num_tails
    return math.comb(total_flips - 1, num_tails) * 0.5 ** total_flips


@dataclass(frozen=True)
class MuInfinityChain:
    """The reduced chain of Figure 3 for the symmetric flat network."""

    num_pieces: int
    arrival_rate_per_piece: float

    def __post_init__(self) -> None:
        if self.num_pieces < 2:
            raise ValueError("the watched process needs K >= 2")
        if self.arrival_rate_per_piece <= 0:
            raise ValueError("arrival rate must be positive")

    @property
    def total_arrival_rate(self) -> float:
        return self.num_pieces * self.arrival_rate_per_piece

    def transitions(self, state: MuInfinityState) -> List[Tuple[float, MuInfinityState]]:
        """Outgoing ``(rate, next_state)`` pairs of the watched process."""
        population, pieces = state
        lam = self.arrival_rate_per_piece
        k_max = self.num_pieces - 1
        if population == 0:
            # Any arrival creates a single peer holding one piece.
            return [(self.total_arrival_rate, (1, 1))]
        if not 1 <= pieces <= k_max:
            raise ValueError(f"invalid state {state!r}")
        results: List[Tuple[float, MuInfinityState]] = []
        if pieces < k_max:
            results.append((pieces * lam, (population + 1, pieces)))
            results.append(((self.num_pieces - pieces) * lam, (population + 1, pieces + 1)))
            return results
        # Top layer: pieces == K - 1.
        results.append((pieces * lam, (population + 1, pieces)))
        # Arrival with the missing piece, total rate lam, split over outcomes.
        for departures in range(population):
            probability = negative_binomial_pmf(self.num_pieces - 1, departures)
            if probability <= 0:
                continue
            target_population = population - departures
            results.append((lam * probability, (target_population, pieces)))
        for tails in range(self.num_pieces - 1):
            probability = _head_path_probability(population, tails)
            if probability <= 0:
                continue
            results.append((lam * probability, (1, 1 + tails)))
        return results

    # -- analysis ---------------------------------------------------------------

    def top_layer_drift(self) -> float:
        """Mean drift of the population in the top layer (zero ⇒ null recurrence).

        Upward jumps of +1 occur at rate ``(K−1)λ``; the missing-piece arrival
        at rate ``λ`` removes ``E[Z] = K−1`` members on average (ignoring the
        boundary), so the drift is ``(K−1)λ − λ(K−1) = 0``.
        """
        k = self.num_pieces
        lam = self.arrival_rate_per_piece
        return (k - 1) * lam - lam * (k - 1)

    def simulate(
        self,
        horizon: float,
        initial_state: MuInfinityState = (0, 0),
        seed: SeedLike = None,
        sample_interval: Optional[float] = None,
        max_jumps: Optional[int] = None,
    ):
        """Simulate the watched process and record the population trajectory."""
        simulator = GenericCtmcSimulator(
            transition_function=self.transitions,
            observe=lambda state: float(state[0]),
        )
        return simulator.run(
            initial_state=initial_state,
            horizon=horizon,
            seed=seed,
            sample_interval=sample_interval,
            max_jumps=max_jumps,
        )

    def _jump(self, state: MuInfinityState, rng: np.random.Generator) -> MuInfinityState:
        """Sample the next state of the embedded jump chain directly (O(K) work).

        Equivalent to sampling from :meth:`transitions` but without enumerating
        the full outcome distribution, which matters because top-layer states
        with large populations have O(population) possible outcomes.
        """
        population, pieces = state
        k_max = self.num_pieces - 1
        if population == 0:
            return (1, 1)
        if pieces < k_max:
            if rng.uniform() < pieces / self.num_pieces:
                return (population + 1, pieces)
            return (population + 1, pieces + 1)
        # Top layer.
        if rng.uniform() < (self.num_pieces - 1) / self.num_pieces:
            return (population + 1, pieces)
        # Arrival with the missing piece: fair-coin race between uploads
        # (heads, one member departs each) and downloads (tails, the newcomer
        # needs K-1 of them).
        heads = 0
        tails = 0
        while heads < population and tails < self.num_pieces - 1:
            if rng.uniform() < 0.5:
                heads += 1
            else:
                tails += 1
        if tails >= self.num_pieces - 1:
            # The newcomer completed and departs; `heads` members departed too.
            return (population - heads, pieces)
        # Every original member departed before the newcomer finished.
        return (1, 1 + tails)

    def excursion_peaks(
        self,
        num_excursions: int,
        seed: SeedLike = None,
        max_jumps_per_excursion: int = 50_000,
    ) -> List[int]:
        """Peak population of successive excursions from the near-empty set.

        An excursion starts at ``(1, 1)`` and ends when the population returns
        to one (or the jump cap is hit).  For a null-recurrent process the
        peaks have no finite mean — their empirical mean keeps growing with
        the number of excursions — whereas a positive-recurrent process would
        show a stable mean.  Excursions that hit the cap record the running
        peak (a lower bound).
        """
        rng = make_rng(seed)
        peaks: List[int] = []
        for _ in range(num_excursions):
            state: MuInfinityState = (1, 1)
            peak = 1
            for _jump in range(max_jumps_per_excursion):
                state = self._jump(state, rng)
                peak = max(peak, state[0])
                if state[0] <= 1:
                    break
            peaks.append(peak)
        return peaks


def finite_mu_symmetric_chain_simulation(
    num_pieces: int,
    arrival_rate_per_piece: float,
    mu: float,
    horizon: float,
    seed: SeedLike = None,
    max_population: Optional[int] = 5000,
):
    """Simulate the *finite-µ* symmetric flat network (Conjecture 17 territory).

    Uses the peer-level swarm simulator with the symmetric single-piece
    arrival mix, no fixed seed, and ``γ = ∞``; returns the
    :class:`repro.swarm.swarm.SwarmResult`.
    """
    from ..core.parameters import SystemParameters, uniform_single_piece_rates
    from ..swarm.swarm import SwarmSimulator

    params = SystemParameters(
        num_pieces=num_pieces,
        seed_rate=0.0,
        peer_rate=mu,
        seed_departure_rate=math.inf,
        arrival_rates=uniform_single_piece_rates(num_pieces, arrival_rate_per_piece),
    )
    simulator = SwarmSimulator(params, seed=seed)
    return simulator.run(horizon, max_population=max_population)


__all__ = [
    "MuInfinityChain",
    "MuInfinityState",
    "finite_mu_symmetric_chain_simulation",
    "heads_before_all_depart_pmf",
    "negative_binomial_pmf",
]
