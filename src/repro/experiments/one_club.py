"""Experiment E4 — Figure 2: the missing piece syndrome / one-club dynamics.

Starting from a pure one-club state (every peer holds ``F − {1}``), the
transience proof predicts that the one club grows at rate ``Δ_{F−{1}}`` when
that quantity is positive, while a stable system escapes the syndrome and the
club drains.  The experiment runs the swarm simulator from a large one-club
initial condition in an unstable and a stable configuration, tracks the five
Figure-2 peer groups over time, and compares the measured one-club growth rate
with ``Δ_{F−{1}}``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..analysis.statistics import linear_slope
from ..analysis.tables import format_table
from ..core.parameters import SystemParameters
from ..core.stability import delta_s
from ..core.state import SystemState
from ..core.types import PieceSet
from ..simulation.rng import SeedLike, spawn_generators
from .runner import BatchRunner


@dataclass
class OneClubRun:
    """One configuration: predicted vs. measured one-club growth."""

    label: str
    params: SystemParameters
    predicted_growth: float
    measured_growth: float
    final_one_club: float
    final_population: float
    one_club_fraction_trajectory: List[Tuple[float, float]]


@dataclass
class OneClubResult:
    """Both regimes of the Figure-2 experiment."""

    runs: List[OneClubRun]

    def report(self) -> str:
        rows = [
            (
                run.label,
                run.predicted_growth,
                run.measured_growth,
                run.final_one_club,
                run.final_population,
            )
            for run in self.runs
        ]
        return format_table(
            headers=[
                "configuration",
                "predicted club growth",
                "measured club growth",
                "final club size",
                "final population",
            ],
            rows=rows,
            title="Figure 2 / missing piece syndrome: one-club growth rate",
        )


def one_club_parameters(
    arrival_rate: float,
    seed_rate: float,
    num_pieces: int = 3,
    peer_rate: float = 1.0,
    seed_departure_rate: float = 2.0,
) -> SystemParameters:
    """Flash-crowd style parameters used for the one-club experiment."""
    return SystemParameters.flash_crowd(
        num_pieces=num_pieces,
        arrival_rate=arrival_rate,
        seed_rate=seed_rate,
        peer_rate=peer_rate,
        seed_departure_rate=seed_departure_rate,
    )


def _run_configuration(
    label: str,
    params: SystemParameters,
    initial_club_size: int,
    horizon: float,
    seed: SeedLike,
    replications: int,
    max_population: int,
    backend: str = "object",
    workers: Optional[int] = None,
) -> OneClubRun:
    predicted = delta_s(params, PieceSet.full(params.num_pieces).remove(1))
    runner = BatchRunner(
        params, backend=backend, workers=workers, track_groups=True
    )
    initial = SystemState.one_club(params.num_pieces, initial_club_size)
    batch = runner.run(
        horizon,
        replications,
        seed=seed,
        initial_state=initial,
        max_population=max_population,
    )
    growths: List[float] = []
    finals_club: List[float] = []
    finals_pop: List[float] = []
    fraction_trajectory: List[Tuple[float, float]] = []
    for index, result in enumerate(batch.results):
        metrics = result.metrics
        growths.append(
            linear_slope(metrics.sample_times, metrics.one_club_size)
        )
        finals_club.append(float(metrics.one_club_size[-1]))
        finals_pop.append(float(metrics.population[-1]))
        if index == 0:
            fraction_trajectory = [
                (snapshot.time, snapshot.one_club_fraction)
                for snapshot in metrics.group_snapshots
            ]
    return OneClubRun(
        label=label,
        params=params,
        predicted_growth=predicted,
        measured_growth=float(np.mean(growths)),
        final_one_club=float(np.mean(finals_club)),
        final_population=float(np.mean(finals_pop)),
        one_club_fraction_trajectory=fraction_trajectory,
    )


def run_one_club_experiment(
    num_pieces: int = 3,
    peer_rate: float = 1.0,
    seed_departure_rate: float = 2.0,
    unstable_arrival: float = 3.0,
    unstable_seed_rate: float = 0.5,
    stable_arrival: float = 0.6,
    stable_seed_rate: float = 0.5,
    initial_club_size: int = 60,
    horizon: float = 120.0,
    replications: int = 2,
    seed: SeedLike = 44,
    max_population: int = 4000,
    backend: str = "object",
    workers: Optional[int] = None,
) -> OneClubResult:
    """Run the Figure-2 experiment in an unstable and a stable configuration.

    Defaults: ``U_s = 0.5``, ``µ = 1``, ``γ = 2`` give a threshold of
    ``U_s/(1−µ/γ) = 1``; arrivals at 3 (unstable, predicted club growth +2
    peers per unit time) and at 0.6 (stable, the club drains).
    """
    configurations = [
        (
            f"unstable (lambda={unstable_arrival:g})",
            one_club_parameters(
                unstable_arrival,
                unstable_seed_rate,
                num_pieces,
                peer_rate,
                seed_departure_rate,
            ),
        ),
        (
            f"stable (lambda={stable_arrival:g})",
            one_club_parameters(
                stable_arrival,
                stable_seed_rate,
                num_pieces,
                peer_rate,
                seed_departure_rate,
            ),
        ),
    ]
    seeds = spawn_generators(seed, len(configurations))
    runs = [
        _run_configuration(
            label,
            params,
            initial_club_size=initial_club_size,
            horizon=horizon,
            seed=config_seed,
            replications=replications,
            max_population=max_population,
            backend=backend,
            workers=workers,
        )
        for (label, params), config_seed in zip(configurations, seeds)
    ]
    return OneClubResult(runs=runs)


__all__ = [
    "OneClubResult",
    "OneClubRun",
    "one_club_parameters",
    "run_one_club_experiment",
]
