"""Experiment E13 — one-club capture prevalence under topology overlays.

The paper's missing-piece analysis (and every other experiment in this
repo) assumes uniform random contacts over the whole population.  This
experiment measures how the one-club's grip changes when contacts are
restricted to a sparse neighbor graph: a fleet of swarms is pre-seeded
with a modest one-club at Theorem-1-stable base rates, and the capture
census is swept over ``topology × degree`` cells, with a complete-graph
baseline cell for reference.

Mechanically each cell is one :class:`~repro.fleet.spec.FleetSpec` whose
scenario mix is a single ``sparse-overlay`` (or ``partitioned``) entry
carrying the cell's topology overrides, run through the ordinary
:class:`~repro.fleet.scheduler.FleetScheduler` — so overlay fleets get
checkpointing, worker counts, and the stacked kernel for free, and the
per-cell fingerprints are reproducible at any worker count.

Interpretation: under uniform contacts a one-club at stable rates
dissolves (the seed's rare-piece uploads reach everyone); at low overlay
degree, peers holding the rare piece are reachable from few neighbors, so
infection spreads slower and capture persists longer.  The sweep makes
that shift measurable — the first number in this repo the paper's
complete-graph theory cannot predict.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.tables import format_table
from ..fleet.result import FleetResult
from ..fleet.scheduler import FleetScheduler
from ..fleet.spec import FleetSpec, FixedSampler, ScenarioWeight
from ..simulation.rng import SeedLike

#: Baseline label for the complete-graph (no overlay) cell.
COMPLETE_LABEL = "complete"

#: Default overlay kinds swept (each crossed with every degree).
DEFAULT_TOPOLOGIES: Tuple[str, ...] = (
    "k-regular",
    "random-regular",
    "scale-free",
    "tracker",
)


def _cell_mix(kind: str, degree: int) -> Tuple[ScenarioWeight, ...]:
    """The single-entry scenario mix of one ``(topology, degree)`` cell."""
    if kind == COMPLETE_LABEL:
        return (ScenarioWeight.of(None),)
    if kind == "partitioned":
        return (ScenarioWeight.of("partitioned", degree=degree),)
    return (ScenarioWeight.of("sparse-overlay", topology=kind, degree=degree),)


@dataclass(frozen=True)
class TopologyCell:
    """Capture census of one ``(topology, degree)`` cell."""

    topology: str
    degree: Optional[int]  # None for the complete-graph baseline
    swarms: int
    captured: int
    fingerprint: str

    @property
    def captured_fraction(self) -> float:
        return self.captured / self.swarms if self.swarms else 0.0


@dataclass
class TopologySweepResult:
    """Capture prevalence over the ``topology × degree`` grid."""

    topologies: Tuple[str, ...]
    degrees: Tuple[int, ...]
    cells: Dict[Tuple[str, Optional[int]], TopologyCell]
    fleets: Dict[Tuple[str, Optional[int]], FleetResult]

    def cell(self, topology: str, degree: Optional[int]) -> TopologyCell:
        return self.cells[(topology, degree)]

    @property
    def baseline(self) -> TopologyCell:
        return self.cells[(COMPLETE_LABEL, None)]

    def report(self) -> str:
        """Capture-prevalence table (rows: topology, columns: degree)."""
        headers = ["topology \\ degree"] + [f"{d}" for d in self.degrees]
        rows: List[List[str]] = []
        for kind in self.topologies:
            row = [kind]
            for degree in self.degrees:
                cell = self.cells[(kind, degree)]
                row.append(f"{cell.captured_fraction:.0%}")
            rows.append(row)
        base = self.baseline
        rows.append(
            [COMPLETE_LABEL, f"{base.captured_fraction:.0%}"]
            + ["·"] * (len(self.degrees) - 1)
        )
        return format_table(
            headers=headers,
            rows=rows,
            title=(
                "One-club capture prevalence vs. overlay degree "
                f"({base.swarms} swarms/cell; complete-graph baseline below)"
            ),
        )


def run_topology_sweep(
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    degrees: Sequence[int] = (2, 4, 8),
    swarms_per_cell: int = 8,
    num_pieces: int = 5,
    arrival_rate: float = 1.2,
    seed_rate: float = 1.0,
    horizon: float = 60.0,
    initial_club_size: int = 30,
    max_events: Optional[int] = 20_000,
    max_population: Optional[int] = 5_000,
    backend: str = "array",
    workers: Optional[int] = None,
    seed: SeedLike = 0,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    stacked: bool = False,
) -> TopologySweepResult:
    """Sweep one-club capture prevalence over ``topology × degree`` fleets.

    Each cell (plus one complete-graph baseline cell) is a fleet of
    ``swarms_per_cell`` swarms pre-seeded with a one-club at the given base
    rates; a swarm counts as *captured* when the club still dominates the
    final population (the shared fleet census criterion).  All cells share
    the master ``seed``, so the sweep is reproducible at any worker count;
    ``checkpoint_dir`` (optional) gives each cell's fleet its own
    checkpoint file.  ``stacked=True`` drives each chunk through the
    stacked mega-kernel — overlay lanes batch through their per-lane
    adjacency-aware stage, so the census is bit-identical either way.
    """
    grid: List[Tuple[str, Optional[int]]] = [(COMPLETE_LABEL, None)]
    for kind in topologies:
        for degree in degrees:
            grid.append((kind, int(degree)))
    cells: Dict[Tuple[str, Optional[int]], TopologyCell] = {}
    fleets: Dict[Tuple[str, Optional[int]], FleetResult] = {}
    for kind, degree in grid:
        spec = FleetSpec(
            name=f"topology-{kind}" + (f"-d{degree}" if degree else ""),
            num_swarms=swarms_per_cell,
            sampler=FixedSampler.of(
                num_pieces=num_pieces,
                arrival_rate=arrival_rate,
                seed_rate=seed_rate,
            ),
            scenario_mix=_cell_mix(kind, degree if degree is not None else 0),
            horizon=horizon,
            max_events=max_events,
            max_population=max_population,
            backend=backend,
            initial_club_size=initial_club_size,
        )
        checkpoint_path = (
            Path(checkpoint_dir) / f"{spec.name}.ckpt.json"
            if checkpoint_dir is not None
            else None
        )
        scheduler = FleetScheduler(
            spec,
            workers=workers,
            checkpoint_path=checkpoint_path,
            stacked=stacked,
        )
        fleet = scheduler.run(seed=seed)
        fleets[(kind, degree)] = fleet
        cells[(kind, degree)] = TopologyCell(
            topology=kind,
            degree=degree,
            swarms=len(fleet.records),
            captured=sum(1 for record in fleet.records if record.captured),
            fingerprint=fleet.fingerprint(),
        )
    return TopologySweepResult(
        topologies=tuple(topologies),
        degrees=tuple(int(d) for d in degrees),
        cells=cells,
        fleets=fleets,
    )


__all__ = [
    "COMPLETE_LABEL",
    "DEFAULT_TOPOLOGIES",
    "TopologyCell",
    "TopologySweepResult",
    "run_topology_sweep",
]
