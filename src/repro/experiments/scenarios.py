"""Experiment E11 — one-club dynamics under non-ideal scenario workloads.

The Figure-2 experiment (:mod:`repro.experiments.one_club`) measures the
missing-piece syndrome under the paper's constant-rate homogeneous model.
This experiment re-runs the same one-club dynamics under the declarative
scenarios the paper only gestures at — a flash crowd (arrival-rate surge)
and a seed outage (the fixed seed goes dark for a window) — plus any other
registered scenario, and reports for each:

* the Theorem-1 verdict for the *base* rates, for the schedules'
  *worst case* — peak arrival factor combined with minimum seed factor —
  and the *piecewise* whole-run verdict of
  :func:`repro.core.schedule_stability.piecewise_stability` (stable iff
  every schedule segment is stable; ``out-of-theory`` for classed
  scenarios), since the schedule may carry the system across the stability
  boundary mid-run;
* the measured one-club growth rate and the empirical trajectory verdict;
* final population / one-club size and the thinned-event count (a sanity
  check that the schedule actually bit).

Every scenario runs on a single :class:`~repro.experiments.runner.BatchRunner`
batch starting from a pre-built one-club state, so the experiment exercises
the full scenario code path of both kernels (``backend=`` / ``workers=`` are
threaded through as everywhere else).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.statistics import linear_slope
from ..analysis.tables import format_table
from ..core.scenario import ScenarioSpec, make_scenario
from ..core.schedule_stability import piecewise_stability
from ..core.stability import analyze
from ..core.state import SystemState
from ..markov.classify import classify_trajectory, majority_verdict
from ..simulation.rng import SeedLike, spawn_generators
from .runner import run_scenario

#: The default pair of workloads the ISSUE names: a flash crowd and a seed
#: outage over the same base parameters.
DEFAULT_SCENARIOS: Tuple[str, ...] = ("flash-crowd", "seed-outage")


@dataclass
class ScenarioDynamicsRun:
    """One scenario's one-club dynamics, theory vs. measurement."""

    scenario: ScenarioSpec
    base_verdict: str
    worst_case_verdict: str
    piecewise_verdict: str
    empirical_verdict: str
    measured_club_growth: float
    mean_final_population: float
    mean_final_one_club: float
    thinned_events: int

    def row(self) -> Tuple[str, str, str, str, str, float, float, float, int]:
        return (
            self.scenario.name,
            self.base_verdict,
            self.worst_case_verdict,
            self.piecewise_verdict,
            self.empirical_verdict,
            self.measured_club_growth,
            self.mean_final_population,
            self.mean_final_one_club,
            self.thinned_events,
        )


@dataclass
class ScenarioDynamicsResult:
    """All scenario runs of one experiment invocation."""

    runs: List[ScenarioDynamicsRun]

    def report(self) -> str:
        return format_table(
            headers=[
                "scenario",
                "theory (base)",
                "theory (worst-case)",
                "theory (piecewise)",
                "empirical",
                "club growth",
                "final population",
                "final club",
                "thinned",
            ],
            rows=[run.row() for run in self.runs],
            title="One-club dynamics under scenario workloads",
        )


def _worst_case_verdict(scenario: ScenarioSpec) -> str:
    """Theorem-1 verdict at the schedules' worst case: the *maximum*
    arrival factor combined with the *minimum* seed factor (the two extremes
    need not co-occur in time, so this is a conservative bound, not a
    verdict at any single instant).

    Heterogeneous contact/departure rates fall outside Theorem 1's
    homogeneous hypotheses, so classed scenarios are reported as such.
    """
    if scenario.is_heterogeneous:
        return "out-of-theory"
    params = scenario.params
    arrival_factor = scenario.arrival_schedule.max_value
    if arrival_factor != 1.0:
        params = params.scaled_arrivals(arrival_factor)
    seed_factor = min(scenario.seed_schedule.values)
    if seed_factor != 1.0:
        params = params.with_seed_rate(params.seed_rate * seed_factor)
    return analyze(params).verdict.value


def run_scenario_dynamics(
    scenarios: Sequence[Union[str, ScenarioSpec]] = DEFAULT_SCENARIOS,
    initial_club_size: int = 60,
    horizon: float = 120.0,
    replications: int = 2,
    seed: SeedLike = 46,
    max_population: int = 6000,
    backend: str = "object",
    workers: Optional[int] = None,
) -> ScenarioDynamicsResult:
    """Measure one-club dynamics under each scenario workload.

    Each scenario starts from a pure one-club state of ``initial_club_size``
    peers (assigned to class 0 in heterogeneous scenarios) and runs
    ``replications`` independent replications.
    """
    specs = [
        make_scenario(entry) if isinstance(entry, str) else entry
        for entry in scenarios
    ]
    seeds = spawn_generators(seed, len(specs))
    runs: List[ScenarioDynamicsRun] = []
    for spec, spec_seed in zip(specs, seeds):
        initial = SystemState.one_club(spec.params.num_pieces, initial_club_size)
        batch = run_scenario(
            spec,
            horizon=horizon,
            replications=replications,
            seed=spec_seed,
            initial_state=initial,
            backend=backend,
            workers=workers,
            max_population=max_population,
        )
        growths: List[float] = []
        classifications = []
        for result in batch.results:
            metrics = result.metrics
            growths.append(
                linear_slope(metrics.sample_times, metrics.one_club_size)
            )
            classifications.append(
                classify_trajectory(
                    metrics.sample_times,
                    metrics.population,
                    arrival_rate=spec.peak_arrival_rate,
                )
            )
        runs.append(
            ScenarioDynamicsRun(
                scenario=spec,
                base_verdict=analyze(spec.params).verdict.value,
                worst_case_verdict=_worst_case_verdict(spec),
                piecewise_verdict=piecewise_stability(spec).overall,
                empirical_verdict=majority_verdict(classifications).value,
                measured_club_growth=float(np.mean(growths)),
                mean_final_population=float(
                    np.mean([r.final_population for r in batch.results])
                ),
                mean_final_one_club=float(
                    np.mean(
                        [r.metrics.one_club_size[-1] for r in batch.results]
                    )
                ),
                thinned_events=sum(
                    r.metrics.thinned_events for r in batch.results
                ),
            )
        )
    return ScenarioDynamicsResult(runs=runs)


__all__ = [
    "DEFAULT_SCENARIOS",
    "ScenarioDynamicsResult",
    "ScenarioDynamicsRun",
    "run_scenario_dynamics",
]
