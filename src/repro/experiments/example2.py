"""Experiment E2 — Example 2 / Figure 1(b): two arrival classes, four pieces.

Peers of type ``{1,2}`` and ``{3,4}`` arrive at rates ``λ_12`` and ``λ_34``;
there is no fixed seed and peers depart on completion.  Theorem 1 gives the
stability region ``λ_12 < 2 λ_34`` and ``λ_34 < 2 λ_12``.

The experiment fixes ``λ_34`` and sweeps ``λ_12`` across both boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..core.parameters import SystemParameters
from ..core.stability import stability_region_boundary_example2
from ..simulation.rng import SeedLike
from .runner import SweepResult, run_sweep


@dataclass
class Example2Result:
    """Sweep outcome plus the theoretical stable interval for ``λ_12``."""

    lambda_34: float
    stable_interval: Tuple[float, float]
    sweep: SweepResult

    def report(self) -> str:
        low, high = self.stable_interval
        return format_table(
            headers=["lambda_12", "theory", "simulated", "norm. slope", "mean n"],
            rows=self.sweep.table_rows(),
            title=(
                f"Example 2 (K=4, lambda_34={self.lambda_34:g}): stable iff "
                f"lambda_12 in ({low:g}, {high:g})"
            ),
        )


def example2_parameters(
    lambda_12: float, lambda_34: float, peer_rate: float = 1.0
) -> SystemParameters:
    """Parameter set of Example 2."""
    return SystemParameters.two_class_four_pieces(
        lambda_12=lambda_12, lambda_34=lambda_34, peer_rate=peer_rate
    )


def run_example2(
    lambda_34: float = 2.0,
    peer_rate: float = 1.0,
    lambda_12_values: Sequence[float] = (0.5, 2.0, 3.0, 7.0),
    horizon: float = 250.0,
    replications: int = 2,
    seed: SeedLike = 22,
    max_population: int = 4000,
    backend: str = "object",
    workers: Optional[int] = None,
) -> Example2Result:
    """Sweep ``λ_12`` for a fixed ``λ_34`` across the stability boundary."""
    points: List[Tuple[str, SystemParameters]] = [
        (
            f"{value:.3g}",
            example2_parameters(lambda_12=value, lambda_34=lambda_34, peer_rate=peer_rate),
        )
        for value in lambda_12_values
    ]
    sweep = run_sweep(
        name="example2",
        points=points,
        horizon=horizon,
        replications=replications,
        seed=seed,
        max_population=max_population,
        backend=backend,
        workers=workers,
    )
    return Example2Result(
        lambda_34=lambda_34,
        stable_interval=stability_region_boundary_example2(lambda_34),
        sweep=sweep,
    )


__all__ = ["Example2Result", "example2_parameters", "run_example2"]
