"""Experiment E10 — the appendix bounds (Proposition 20 and Lemma 21).

Two probabilistic bounds used by the transience proof are checked empirically:

* **Kingman's moment bound** for compound Poisson processes: the probability
  that the cumulative process ever exceeds a line ``B + εt`` is at most
  ``α m₂ / (2B(ε − α m₁))``;
* **the M/GI/∞ maximal bound** of Lemma 21: the probability the occupancy
  ever exceeds ``B + εt`` is at most ``e^{λ(m+1)} 2^{−B} / (1 − 2^{−ε})``.

For each bound the experiment simulates many independent paths, measures the
empirical exceedance frequency, and reports it next to the bound; the
measurements must not exceed the bounds (up to Monte-Carlo noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..analysis.tables import format_table
from ..queueing.mgi_inf import (
    MGInfinityQueue,
    erlang_plus_exponential_mean,
    erlang_plus_exponential_sampler,
    maximal_exceedance_bound,
)
from ..simulation.processes import CompoundPoissonProcess, kingman_exceedance_bound
from ..simulation.rng import SeedLike, spawn_generators


@dataclass
class BoundCheckRow:
    """One bound vs. its empirical exceedance frequency."""

    label: str
    offset: float
    slope: float
    theoretical_bound: float
    empirical_frequency: float

    @property
    def bound_holds(self) -> bool:
        """Allow a small Monte-Carlo slack above the bound."""
        return self.empirical_frequency <= min(1.0, self.theoretical_bound + 0.05)


@dataclass
class QueueingBoundsResult:
    """All checked bounds of the experiment."""

    rows: List[BoundCheckRow]

    def report(self) -> str:
        return format_table(
            headers=["process", "B", "slope", "bound", "empirical P(exceed)"],
            rows=[
                (row.label, row.offset, row.slope, row.theoretical_bound, row.empirical_frequency)
                for row in self.rows
            ],
            title="Appendix bounds: Kingman (Prop. 20) and M/GI/infinity maximal bound (Lemma 21)",
        )

    def all_bounds_hold(self) -> bool:
        return all(row.bound_holds for row in self.rows)


def run_queueing_bounds_experiment(
    horizon: float = 200.0,
    num_paths: int = 200,
    offsets: Sequence[float] = (20.0, 40.0),
    seed: SeedLike = 1234,
) -> QueueingBoundsResult:
    """Check both appendix bounds by Monte-Carlo simulation."""
    rows: List[BoundCheckRow] = []
    seeds = spawn_generators(seed, 2 * len(offsets))
    seed_index = 0

    # Kingman bound for a compound Poisson process with geometric batch sizes.
    rate = 1.0
    batch_mean = 2.0  # geometric with success probability 1/2 on {1, 2, ...}
    batch_second_moment = 6.0  # E[X^2] for that geometric law
    process = CompoundPoissonProcess(
        rate=rate,
        batch_sampler=lambda rng, count: rng.geometric(0.5, size=count).astype(float),
        batch_mean=batch_mean,
        batch_second_moment=batch_second_moment,
    )
    slope = rate * batch_mean * 1.5
    for offset in offsets:
        rng = seeds[seed_index]
        seed_index += 1
        exceed = 0
        for _ in range(num_paths):
            sample = process.sample(horizon, seed=rng)
            if sample.arrival_times.size:
                cumulative = np.cumsum(sample.batch_sizes)
                line = offset + slope * sample.arrival_times
                if np.any(cumulative >= line):
                    exceed += 1
        bound = kingman_exceedance_bound(
            rate, batch_mean, batch_second_moment, offset, slope
        )
        rows.append(
            BoundCheckRow(
                label="compound Poisson (Kingman)",
                offset=offset,
                slope=slope,
                theoretical_bound=bound,
                empirical_frequency=exceed / num_paths,
            )
        )

    # M/GI/infinity maximal bound with the Lemma-5 service law.
    arrival_rate = 1.0
    num_stages, stage_rate, dwell_rate = 3, 1.0, 2.0
    mean_service = erlang_plus_exponential_mean(num_stages, stage_rate, dwell_rate)
    queue = MGInfinityQueue(
        arrival_rate,
        erlang_plus_exponential_sampler(num_stages, stage_rate, dwell_rate),
    )
    slope_q = 1.0
    for offset in offsets:
        rng = seeds[seed_index]
        seed_index += 1
        exceed = 0
        for _ in range(num_paths):
            trajectory = queue.simulate(horizon, seed=rng, num_samples=400)
            line = offset + slope_q * trajectory.sample_times
            if np.any(trajectory.occupancy >= line):
                exceed += 1
        bound = maximal_exceedance_bound(arrival_rate, mean_service, offset, slope_q)
        rows.append(
            BoundCheckRow(
                label="M/GI/inf occupancy (Lemma 21)",
                offset=offset,
                slope=slope_q,
                theoretical_bound=bound,
                empirical_frequency=exceed / num_paths,
            )
        )
    return QueueingBoundsResult(rows=rows)


__all__ = ["BoundCheckRow", "QueueingBoundsResult", "run_queueing_bounds_experiment"]
