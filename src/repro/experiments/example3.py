"""Experiment E3 — Example 3 / Figure 1(c): one-piece arrivals, three pieces.

Every arriving peer carries exactly one piece (piece ``i`` with rate ``λ_i``);
no fixed seed; completed peers dwell with rate ``γ > µ``.  Theorem 1 gives the
stability region

``λ_i + λ_j < λ_k (2 + µ/γ) / (1 − µ/γ)``  for every permutation ``{i,j,k}``.

The experiment evaluates symmetric (stable) and skewed (unstable) arrival
mixes and reports the three inequalities alongside the simulation verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..core.parameters import SystemParameters
from ..core.stability import stability_region_boundary_example3
from ..simulation.rng import SeedLike
from .runner import SweepResult, run_sweep


@dataclass
class Example3Result:
    """Sweep outcome plus the per-mix inequality tables."""

    mu: float
    gamma: float
    inequality_tables: List[Tuple[str, List[Tuple[str, float, float]]]]
    sweep: SweepResult

    def report(self) -> str:
        sections = [
            format_table(
                headers=["arrival mix", "theory", "simulated", "norm. slope", "mean n"],
                rows=self.sweep.table_rows(),
                title=(
                    f"Example 3 (K=3, mu={self.mu:g}, gamma={self.gamma:g}): stable iff "
                    "lambda_i+lambda_j < lambda_k (2+mu/gamma)/(1-mu/gamma) for all k"
                ),
            )
        ]
        for label, rows in self.inequality_tables:
            sections.append(
                format_table(
                    headers=["inequality", "lhs", "rhs (threshold)"],
                    rows=rows,
                    title=f"  inequalities for mix {label}",
                )
            )
        return "\n\n".join(sections)


def example3_parameters(
    lambda_rates: Tuple[float, float, float],
    peer_rate: float = 1.0,
    seed_departure_rate: float = 2.0,
) -> SystemParameters:
    """Parameter set of Example 3 for the given one-piece arrival rates."""
    return SystemParameters.one_piece_arrivals(
        lambda_by_piece=lambda_rates,
        peer_rate=peer_rate,
        seed_departure_rate=seed_departure_rate,
    )


def run_example3(
    peer_rate: float = 1.0,
    seed_departure_rate: float = 2.0,
    mixes: Sequence[Tuple[float, float, float]] = (
        (1.0, 1.0, 1.0),
        (1.5, 1.2, 1.0),
        (4.0, 4.0, 0.5),
        (6.0, 1.0, 0.2),
    ),
    horizon: float = 250.0,
    replications: int = 2,
    seed: SeedLike = 33,
    max_population: int = 4000,
    backend: str = "object",
    workers: Optional[int] = None,
) -> Example3Result:
    """Evaluate several arrival mixes against the Example-3 boundary."""
    points: List[Tuple[str, SystemParameters]] = []
    inequality_tables: List[Tuple[str, List[Tuple[str, float, float]]]] = []
    for mix in mixes:
        label = f"({mix[0]:g}, {mix[1]:g}, {mix[2]:g})"
        points.append(
            (label, example3_parameters(mix, peer_rate, seed_departure_rate))
        )
        inequality_tables.append(
            (
                label,
                stability_region_boundary_example3(mix, peer_rate, seed_departure_rate),
            )
        )
    sweep = run_sweep(
        name="example3",
        points=points,
        horizon=horizon,
        replications=replications,
        seed=seed,
        max_population=max_population,
        backend=backend,
        workers=workers,
    )
    return Example3Result(
        mu=peer_rate,
        gamma=seed_departure_rate,
        inequality_tables=inequality_tables,
        sweep=sweep,
    )


__all__ = ["Example3Result", "example3_parameters", "run_example3"]
