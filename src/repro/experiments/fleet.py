"""Experiment E12 — fleet phase diagram over the Theorem-1 boundary.

Theorem 1 draws a sharp stability boundary in the ``(λ, U_s)`` plane for a
single swarm; this experiment measures where the *missing-piece capture*
actually bites across a whole fleet.  A :class:`~repro.fleet.spec.GridSampler`
cycles a fleet of swarms over a cartesian ``arrival_rate × seed_rate`` grid
(``swarms_per_cell`` swarms per cell, each drawn through the scenario mix),
every swarm starts from a modest pre-built one-club, and the fleet census
reports per cell the fraction of swarms whose one-club survived and captured
the swarm.  Inside the stable region the club should dissolve (capture
prevalence ≈ 0); past the boundary the club persists and absorbs the
population (prevalence → 1); scenarios (free riders, flash crowds, ...)
shift where the empirical boundary sits relative to the constant-rate
theory.

Everything runs on one :class:`~repro.fleet.scheduler.FleetScheduler` fleet,
so ``backend=`` / ``workers=`` / checkpointing behave exactly as everywhere
else, and the per-scenario breakdown and theory-vs-outcome confusion census
come straight from the shared :class:`~repro.fleet.result.FleetResult`.

**E12b — adaptive boundary mapping.**  :func:`run_adaptive_phase_diagram`
maps the same boundary with the budget-driven
:class:`~repro.fleet.adaptive.AdaptiveFleetDriver` instead of a uniform
grid: rounds of swarms are allocated to ``(λ, U_s, scenario)`` candidates by
Beta-posterior uncertainty (boosted near the empirical boundary) until the
boundary estimate stabilises or the budget runs out.  The returned
:class:`~repro.fleet.adaptive.AdaptiveFleetResult` records the full
sampled-point trail; with a budget equal to the uniform grid's swarm count
it concentrates replications in boundary cells, yielding a lower mean
posterior variance there (asserted by the acceptance tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.tables import format_table
from ..core.scenario import base_params
from ..core.stability import analyze
from ..fleet.adaptive import (
    AdaptiveFleetDriver,
    AdaptiveFleetResult,
    AdaptiveFleetSpec,
)
from ..fleet.result import FleetResult
from ..fleet.scheduler import FleetScheduler
from ..fleet.spec import FleetSpec, GridSampler, ScenarioWeight
from ..simulation.rng import SeedLike

#: Default scenario mix: plain swarms next to leech-heavy ones, so the
#: diagram shows how free riding shifts the empirical boundary.
DEFAULT_MIX: Tuple[ScenarioWeight, ...] = (
    ScenarioWeight.of(None, weight=2.0),
    ScenarioWeight.of("free-rider", weight=1.0, leech_fraction=0.6),
)


@dataclass(frozen=True)
class PhaseCell:
    """Capture census of one ``(arrival_rate, seed_rate)`` grid cell."""

    arrival_rate: float
    seed_rate: float
    swarms: int
    captured: int
    theory: str  # constant-rate Theorem-1 verdict at the cell's base rates

    @property
    def captured_fraction(self) -> float:
        return self.captured / self.swarms if self.swarms else 0.0


@dataclass
class FleetPhaseDiagramResult:
    """The fleet outcome reshaped into the ``(λ, U_s)`` capture grid."""

    arrival_rates: Tuple[float, ...]
    seed_rates: Tuple[float, ...]
    cells: Dict[Tuple[float, float], PhaseCell]
    fleet: FleetResult
    spec: FleetSpec

    def cell(self, arrival_rate: float, seed_rate: float) -> PhaseCell:
        return self.cells[(arrival_rate, seed_rate)]

    def report(self) -> str:
        """Capture-fraction grid (rows: U_s, columns: λ) plus the fleet census.

        Each grid entry shows the captured fraction and the constant-rate
        Theorem-1 verdict (``S``/``U``/``B``) at the cell's base rates.
        """
        headers = ["Us \\ lambda"] + [f"{rate:g}" for rate in self.arrival_rates]
        rows: List[List[str]] = []
        for seed_rate in self.seed_rates:
            row = [f"{seed_rate:g}"]
            for arrival_rate in self.arrival_rates:
                cell = self.cells[(arrival_rate, seed_rate)]
                row.append(f"{cell.captured_fraction:.0%} {cell.theory[0].upper()}")
            rows.append(row)
        grid = format_table(
            headers=headers,
            rows=rows,
            title=(
                "One-club capture prevalence over the Theorem-1 plane "
                "(S=stable, U=unstable, B=borderline at base rates)"
            ),
        )
        return grid + "\n\n" + self.fleet.report()


def run_fleet_phase_diagram(
    arrival_rates: Sequence[float] = (0.8, 1.6, 2.4, 3.2),
    seed_rates: Sequence[float] = (0.5, 1.5),
    swarms_per_cell: int = 4,
    scenario_mix: Optional[Sequence[ScenarioWeight]] = DEFAULT_MIX,
    num_pieces: int = 5,
    horizon: float = 60.0,
    initial_club_size: int = 30,
    max_events: Optional[int] = 20_000,
    max_population: Optional[int] = 5_000,
    backend: str = "array",
    workers: Optional[int] = None,
    seed: SeedLike = 0,
    checkpoint_path: Optional[Union[str, Path]] = None,
    stacked: bool = False,
    max_retries: int = 0,
    task_timeout: Optional[float] = None,
) -> FleetPhaseDiagramResult:
    """Run the capture phase diagram as one fleet.

    The grid has ``len(arrival_rates) * len(seed_rates)`` cells with exactly
    ``swarms_per_cell`` swarms each (the grid sampler cycles over the swarm
    index).  ``scenario_mix=None`` runs plain homogeneous swarms only.
    ``stacked=True`` executes each chunk in one stacked kernel (array
    backend only; the diagram is bit-identical either way).
    ``max_retries`` / ``task_timeout`` switch on worker supervision (see
    :class:`~repro.fleet.scheduler.FleetScheduler`): dead workers are
    respawned and failed swarms retried, without changing the diagram.
    """
    sampler = GridSampler.of(
        {"arrival_rate": tuple(arrival_rates), "seed_rate": tuple(seed_rates)},
        num_pieces=num_pieces,
    )
    spec = FleetSpec(
        name="phase-diagram",
        num_swarms=sampler.grid_size * swarms_per_cell,
        sampler=sampler,
        scenario_mix=tuple(scenario_mix) if scenario_mix else (),
        horizon=horizon,
        max_events=max_events,
        max_population=max_population,
        backend=backend,
        initial_club_size=initial_club_size,
    )
    scheduler = FleetScheduler(
        spec,
        workers=workers,
        checkpoint_path=checkpoint_path,
        stacked=stacked,
        max_retries=max_retries,
        task_timeout=task_timeout,
    )
    fleet = scheduler.run(seed=seed)
    cells: Dict[Tuple[float, float], PhaseCell] = {}
    for arrival_rate in arrival_rates:
        for seed_rate in seed_rates:
            matching = [
                record
                for record in fleet.records
                if record.arrival_rate == arrival_rate
                and record.seed_rate == seed_rate
            ]
            theory = analyze(
                base_params(
                    num_pieces=num_pieces,
                    arrival_rate=arrival_rate,
                    seed_rate=seed_rate,
                )
            ).verdict.value
            cells[(arrival_rate, seed_rate)] = PhaseCell(
                arrival_rate=arrival_rate,
                seed_rate=seed_rate,
                swarms=len(matching),
                captured=sum(1 for record in matching if record.captured),
                theory=theory,
            )
    return FleetPhaseDiagramResult(
        arrival_rates=tuple(arrival_rates),
        seed_rates=tuple(seed_rates),
        cells=cells,
        fleet=fleet,
        spec=spec,
    )


def run_adaptive_phase_diagram(
    arrival_rates: Sequence[float] = (0.8, 1.6, 2.4, 3.2),
    seed_rates: Sequence[float] = (0.5, 1.5),
    swarm_budget: int = 64,
    round_size: int = 16,
    event_budget: Optional[int] = None,
    scenario_mix: Optional[Sequence[ScenarioWeight]] = DEFAULT_MIX,
    num_pieces: int = 5,
    horizon: float = 60.0,
    initial_club_size: int = 30,
    max_events: Optional[int] = 20_000,
    max_population: Optional[int] = 5_000,
    backend: str = "array",
    workers: Optional[int] = None,
    seed: SeedLike = 0,
    checkpoint_path: Optional[Union[str, Path]] = None,
    log_path: Optional[Union[str, Path]] = None,
    min_rounds: int = 2,
    patience: int = 2,
    variance_tol: float = 0.01,
    boundary_boost: float = 4.0,
    max_retries: int = 0,
    task_timeout: Optional[float] = None,
) -> AdaptiveFleetResult:
    """Map the capture boundary adaptively under a swarm/event budget.

    Same candidate plane and run controls as :func:`run_fleet_phase_diagram`,
    but the swarms are *allocated* round by round to the ``(λ, U_s,
    scenario)`` points whose capture probability is still uncertain, and the
    run stops early once the boundary estimate is stable.  The result's
    :meth:`~repro.fleet.adaptive.AdaptiveFleetResult.trail` is the full
    sampled-point trail;
    :meth:`~repro.fleet.adaptive.AdaptiveFleetResult.boundary_estimate`
    interpolates the capture-onset λ* per ``(scenario, U_s)`` row.  With a
    ``checkpoint_path`` the run streams to a JSONL log and can be killed and
    resumed exactly (:func:`repro.fleet.resume_adaptive_fleet`).
    """
    spec = AdaptiveFleetSpec(
        name="adaptive-phase-diagram",
        arrival_rates=tuple(arrival_rates),
        seed_rates=tuple(seed_rates),
        scenario_mix=tuple(scenario_mix) if scenario_mix else (),
        num_pieces=num_pieces,
        swarm_budget=swarm_budget,
        event_budget=event_budget,
        round_size=round_size,
        min_rounds=min_rounds,
        patience=patience,
        variance_tol=variance_tol,
        boundary_boost=boundary_boost,
        horizon=horizon,
        max_events=max_events,
        max_population=max_population,
        backend=backend,
        initial_club_size=initial_club_size,
    )
    driver = AdaptiveFleetDriver(
        spec,
        workers=workers,
        checkpoint_path=checkpoint_path,
        log_path=log_path,
        max_retries=max_retries,
        task_timeout=task_timeout,
    )
    return driver.run(seed=seed)


__all__ = [
    "DEFAULT_MIX",
    "FleetPhaseDiagramResult",
    "PhaseCell",
    "run_adaptive_phase_diagram",
    "run_fleet_phase_diagram",
]
