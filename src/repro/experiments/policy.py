"""Experiment E7 — Theorem 14: insensitivity to the piece-selection policy.

The same arrival mix is simulated under several useful-piece selection
policies (random useful, rarest first, most common first, sequential).  The
stability verdict must not depend on the policy: a point inside the stability
region stays stable under every policy, a point outside stays unstable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..core.parameters import SystemParameters
from ..core.stability import analyze
from ..simulation.rng import SeedLike, spawn_generators
from ..swarm.policies import make_policy
from .runner import StabilityTrialResult, run_stability_trial


@dataclass
class PolicyTrial:
    """Verdicts of every policy at one parameter point."""

    label: str
    theory: str
    verdicts: Dict[str, str]
    slopes: Dict[str, float]

    @property
    def verdicts_agree(self) -> bool:
        """True when all decisive policy verdicts coincide."""
        decisive = {v for v in self.verdicts.values() if v != "inconclusive"}
        return len(decisive) <= 1


@dataclass
class PolicyResult:
    """Outcome of the policy-insensitivity experiment."""

    policies: List[str]
    trials: List[PolicyTrial]

    def report(self) -> str:
        headers = ["configuration", "theory"] + [
            f"{name}" for name in self.policies
        ]
        rows = []
        for trial in self.trials:
            rows.append(
                [trial.label, trial.theory]
                + [trial.verdicts[name] for name in self.policies]
            )
        return format_table(
            headers=headers,
            rows=rows,
            title="Theorem 14: stability verdict under different piece-selection policies",
        )

    def all_agree(self) -> bool:
        return all(trial.verdicts_agree for trial in self.trials)


def run_policy_experiment(
    num_pieces: int = 3,
    seed_rate: float = 1.2,
    peer_rate: float = 1.0,
    stable_arrival: float = 0.7,
    unstable_arrival: float = 2.8,
    policies: Sequence[str] = ("random-useful", "rarest-first", "sequential"),
    horizon: float = 220.0,
    replications: int = 2,
    seed: SeedLike = 77,
    max_population: int = 3000,
    backend: str = "object",
    workers: Optional[int] = None,
) -> PolicyResult:
    """Run the insensitivity experiment on a stable and an unstable point.

    Defaults use the flash-crowd setting (empty arrivals, ``γ = ∞``) where the
    threshold is exactly ``U_s``.
    """
    import math

    configurations = [
        (
            f"stable (lambda={stable_arrival:g} < Us={seed_rate:g})",
            SystemParameters.flash_crowd(
                num_pieces=num_pieces,
                arrival_rate=stable_arrival,
                seed_rate=seed_rate,
                peer_rate=peer_rate,
                seed_departure_rate=math.inf,
            ),
        ),
        (
            f"unstable (lambda={unstable_arrival:g} > Us={seed_rate:g})",
            SystemParameters.flash_crowd(
                num_pieces=num_pieces,
                arrival_rate=unstable_arrival,
                seed_rate=seed_rate,
                peer_rate=peer_rate,
                seed_departure_rate=math.inf,
            ),
        ),
    ]
    policy_list = list(policies)
    seeds = spawn_generators(seed, len(configurations) * len(policy_list))
    trials: List[PolicyTrial] = []
    seed_index = 0
    for label, params in configurations:
        theory = analyze(params).verdict.value
        verdicts: Dict[str, str] = {}
        slopes: Dict[str, float] = {}
        for policy_name in policy_list:
            trial = run_stability_trial(
                params,
                label=f"{label} / {policy_name}",
                horizon=horizon,
                replications=replications,
                seed=seeds[seed_index],
                policy=make_policy(policy_name),
                max_population=max_population,
                backend=backend,
                workers=workers,
            )
            seed_index += 1
            verdicts[policy_name] = trial.empirical_verdict.value
            slopes[policy_name] = trial.mean_normalized_slope
        trials.append(
            PolicyTrial(label=label, theory=theory, verdicts=verdicts, slopes=slopes)
        )
    return PolicyResult(policies=policy_list, trials=trials)


__all__ = ["PolicyResult", "PolicyTrial", "run_policy_experiment"]
