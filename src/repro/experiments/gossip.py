"""Experiment E14 — one-club capture prevalence vs. census-estimate staleness.

Every capture result in this repo up to now assumes policies read an
*exact* piece census.  This experiment measures what the missing-piece
syndrome looks like when rarest-first reads the flow-updating gossip
census instead (:mod:`repro.swarm.gossip`): swarms pre-seeded with a
modest one-club at Theorem-1-stable base rates are run under
rarest-first, and the capture census is swept over
``scenario × exchange-rate`` cells, with an exact-oracle baseline cell
per scenario for reference.

Mechanically each cell is a loop of :func:`~repro.swarm.swarm.run_swarm`
calls (not a fleet): the staleness and estimate-error numbers live in
per-swarm :class:`~repro.swarm.metrics.SwarmMetrics`, which fleet records
deliberately do not carry, and the explicit rarest-first policy is a
simulator argument the fleet spec does not model.  A swarm counts as
*captured* by the same criterion the fleet layer uses (final one-club
holding at least half the final population and at least 10 peers).

Interpretation: rarest-first is the policy that *uses* the census — with
a lazy gossip census (low exchange rate) its picks are driven by stale
estimates, so it degenerates toward random-useful behaviour and the
one-club's grip shifts relative to the oracle baseline.  The sweep puts
an honest number on that shift per scenario.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.tables import format_table
from ..core.scenario import make_scenario
from ..core.state import SystemState
from ..swarm.gossip import CensusSpec
from ..swarm.policies import make_policy
from ..swarm.swarm import run_swarm

#: Baseline label for the exact-census cell of each scenario.
ORACLE_LABEL = "oracle"

#: Default scenarios swept (each crossed with every census setting).
DEFAULT_SCENARIOS: Tuple[str, ...] = ("flash-crowd", "sparse-overlay")

#: Default gossip exchange rates swept (lazy → chatty).
DEFAULT_EXCHANGE_RATES: Tuple[float, ...] = (0.05, 0.35, 0.9)

#: The fleet layer's capture criterion, mirrored here so the cells stay
#: comparable with E12/E13 prevalence numbers.
CAPTURE_FRACTION = 0.5
CAPTURE_MIN_CLUB = 10


@dataclass(frozen=True)
class GossipCell:
    """Capture census of one ``(scenario, census)`` cell."""

    scenario: str
    exchange_rate: Optional[float]  # None for the oracle baseline
    swarms: int
    captured: int
    #: Mean (over swarms and sample times) estimate staleness and L1
    #: estimate error; NaN under the oracle, whose census is never stale.
    mean_staleness: float
    mean_error: float

    @property
    def is_oracle(self) -> bool:
        return self.exchange_rate is None

    @property
    def captured_fraction(self) -> float:
        return self.captured / self.swarms if self.swarms else 0.0


@dataclass
class GossipCensusResult:
    """Capture prevalence over the ``scenario × census`` grid."""

    scenarios: Tuple[str, ...]
    exchange_rates: Tuple[float, ...]
    cells: Dict[Tuple[str, Optional[float]], GossipCell]

    def cell(self, scenario: str, exchange_rate: Optional[float]) -> GossipCell:
        return self.cells[(scenario, exchange_rate)]

    def baseline(self, scenario: str) -> GossipCell:
        """The exact-oracle cell of ``scenario``."""
        return self.cells[(scenario, None)]

    def capture_shift(self, scenario: str, exchange_rate: float) -> float:
        """Capture-prevalence shift of a gossip cell vs. its oracle cell."""
        return (
            self.cell(scenario, exchange_rate).captured_fraction
            - self.baseline(scenario).captured_fraction
        )

    def report(self) -> str:
        """Capture vs. staleness table (rows: census setting)."""
        headers = ["census \\ scenario"] + list(self.scenarios)
        rows: List[List[str]] = []
        labels: List[Optional[float]] = [None] + list(self.exchange_rates)
        for rate in labels:
            label = ORACLE_LABEL if rate is None else f"gossip r={rate:g}"
            row = [label]
            for scenario in self.scenarios:
                cell = self.cells[(scenario, rate)]
                if cell.is_oracle:
                    row.append(f"{cell.captured_fraction:.0%} (exact)")
                else:
                    row.append(
                        f"{cell.captured_fraction:.0%} "
                        f"(stale {cell.mean_staleness:.2f})"
                    )
            rows.append(row)
        some = next(iter(self.cells.values()))
        return format_table(
            headers=headers,
            rows=rows,
            title=(
                "One-club capture prevalence vs. gossip-census staleness "
                f"under rarest-first ({some.swarms} swarms/cell; "
                "oracle baseline on top)"
            ),
        )


def run_gossip_census_experiment(
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    exchange_rates: Sequence[float] = DEFAULT_EXCHANGE_RATES,
    damping: float = 1.0,
    swarms_per_cell: int = 8,
    num_pieces: int = 5,
    arrival_rate: float = 1.2,
    seed_rate: float = 1.0,
    horizon: float = 60.0,
    initial_club_size: int = 30,
    max_events: Optional[int] = 20_000,
    max_population: Optional[int] = 5_000,
    backend: str = "array",
    seed: int = 0,
) -> GossipCensusResult:
    """Sweep capture prevalence over ``scenario × census`` cells.

    Each cell runs ``swarms_per_cell`` rarest-first swarms pre-seeded with
    a one-club of ``initial_club_size`` peers; gossip cells use
    ``CensusSpec.gossip(exchange_rate, damping)``, the baseline cell the
    exact oracle.  Swarm seeds derive from the master ``seed`` and the
    cell coordinates, so the sweep is reproducible run to run and every
    census setting sees statistically identical workloads.
    """
    grid: List[Optional[float]] = [None] + [float(r) for r in exchange_rates]
    cells: Dict[Tuple[str, Optional[float]], GossipCell] = {}
    policy = make_policy("rarest-first")
    for scenario_index, name in enumerate(scenarios):
        for rate_index, rate in enumerate(grid):
            census = (
                "oracle"
                if rate is None
                else CensusSpec.gossip(exchange_rate=rate, damping=damping)
            )
            scenario = make_scenario(
                name,
                census=census,
                num_pieces=num_pieces,
                arrival_rate=arrival_rate,
                seed_rate=seed_rate,
            )
            captured = 0
            staleness: List[float] = []
            errors: List[float] = []
            for index in range(swarms_per_cell):
                result = run_swarm(
                    scenario.params,
                    horizon=horizon,
                    seed=np.random.default_rng(
                        (int(seed), scenario_index, rate_index, index)
                    ),
                    policy=policy,
                    scenario=scenario,
                    backend=backend,
                    initial_state=SystemState.one_club(
                        num_pieces, initial_club_size
                    ),
                    max_events=max_events,
                    max_population=max_population,
                )
                metrics = result.metrics
                final_club = (
                    metrics.one_club_size[-1] if metrics.one_club_size else 0
                )
                if final_club >= CAPTURE_MIN_CLUB and final_club >= (
                    CAPTURE_FRACTION * max(result.final_population, 1)
                ):
                    captured += 1
                if rate is not None:
                    staleness.append(metrics.mean_census_staleness())
                    errors.append(metrics.mean_census_error())
            cells[(name, rate)] = GossipCell(
                scenario=name,
                exchange_rate=rate,
                swarms=swarms_per_cell,
                captured=captured,
                mean_staleness=(
                    float(np.mean(staleness)) if staleness else math.nan
                ),
                mean_error=float(np.mean(errors)) if errors else math.nan,
            )
    return GossipCensusResult(
        scenarios=tuple(scenarios),
        exchange_rates=tuple(float(r) for r in exchange_rates),
        cells=cells,
    )


__all__ = [
    "DEFAULT_EXCHANGE_RATES",
    "DEFAULT_SCENARIOS",
    "ORACLE_LABEL",
    "GossipCell",
    "GossipCensusResult",
    "run_gossip_census_experiment",
]
