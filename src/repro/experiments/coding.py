"""Experiment E6 — Theorem 15: network coding and the gifted fraction.

Two parts:

1. the theoretical thresholds on the fraction ``f`` of arrivals carrying one
   random coded piece, for the paper's quoted instance (``q = 64``,
   ``K = 200``) and for the small instance used in simulation;
2. a simulation of the coded swarm (small ``K`` and prime ``q``) at fractions
   below and above the thresholds, next to the *uncoded* swarm at a large
   fraction of single-data-piece arrivals, which Theorem 1 says is transient
   for any ``f < 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.statistics import linear_slope
from ..analysis.tables import format_table
from ..core.coding_theory import (
    gifted_fraction_thresholds,
    gifted_fraction_thresholds_exact,
    paper_example_table,
)
from ..core.parameters import SystemParameters
from ..core.types import PieceSet
from ..markov.classify import TrajectoryVerdict, classify_trajectory
from ..simulation.rng import SeedLike, spawn_generators
from ..swarm.network_coding import CodedSwarmSimulator, gifted_fraction_arrivals
from ..swarm.swarm import SwarmSimulator


@dataclass
class CodedTrialRow:
    """One simulated configuration of the coding experiment."""

    label: str
    coded: bool
    gifted_fraction: float
    theory: str
    verdict: str
    normalized_slope: float
    final_population: float


@dataclass
class CodingResult:
    """Theory table plus simulation rows."""

    paper_numbers: dict
    sim_thresholds: Tuple[float, float]
    sim_thresholds_exact: Tuple[float, float]
    rows: List[CodedTrialRow]

    def report(self) -> str:
        theory_rows = [
            ("q", self.paper_numbers["q"]),
            ("K", self.paper_numbers["K"]),
            ("transient below f", self.paper_numbers["transient_below"]),
            ("recurrent above f", self.paper_numbers["recurrent_above"]),
            ("transient threshold x K", self.paper_numbers["transient_below_times_K"]),
            ("recurrent threshold x K", self.paper_numbers["recurrent_above_times_K"]),
        ]
        sections = [
            format_table(
                headers=["quantity", "value"],
                rows=theory_rows,
                title="Theorem 15 worked example (paper: 1.014/K and 1.032/K)",
                float_format="{:.6g}",
            ),
            format_table(
                headers=[
                    "configuration",
                    "coded",
                    "f",
                    "theory",
                    "simulated",
                    "norm. slope",
                    "final n",
                ],
                rows=[
                    (
                        row.label,
                        row.coded,
                        row.gifted_fraction,
                        row.theory,
                        row.verdict,
                        row.normalized_slope,
                        row.final_population,
                    )
                    for row in self.rows
                ],
                title=(
                    "Simulation (small instance): coded thresholds "
                    f"paper-form ({self.sim_thresholds[0]:.3g}, {self.sim_thresholds[1]:.3g}), "
                    f"exact ({self.sim_thresholds_exact[0]:.3g}, {self.sim_thresholds_exact[1]:.3g})"
                ),
            ),
        ]
        return "\n\n".join(sections)


def _simulate_coded(
    num_pieces: int,
    field_size: int,
    total_rate: float,
    gifted_fraction: float,
    horizon: float,
    seed: SeedLike,
    max_population: int,
) -> Tuple[float, float, str]:
    simulator = CodedSwarmSimulator(
        num_pieces=num_pieces,
        field_size=field_size,
        arrivals=gifted_fraction_arrivals(total_rate, gifted_fraction),
        seed_rate=0.0,
        peer_rate=1.0,
        seed_departure_rate=math.inf,
        seed=seed,
    )
    result = simulator.run(horizon, max_population=max_population)
    metrics = result.metrics
    classification = classify_trajectory(
        metrics.sample_times,
        metrics.population,
        arrival_rate=total_rate,
    )
    return (
        classification.normalized_slope,
        float(metrics.population[-1]),
        classification.verdict.value,
    )


def _simulate_uncoded_gifted(
    num_pieces: int,
    total_rate: float,
    gifted_fraction: float,
    horizon: float,
    seed: SeedLike,
    max_population: int,
    initial_one_club: int = 0,
) -> Tuple[float, float, str]:
    """Uncoded counterpart: gifted peers carry one uniformly random *data* piece.

    ``initial_one_club`` seeds the run with a one-club heavy-load state: the
    uncoded system is transient (Theorem 1) but, started empty, it can linger
    in a quasi-stable symmetric state for a long time (Section IX); starting
    from the heavy-load state shows the non-recovery directly, which is what
    transience means.
    """
    from ..core.state import SystemState

    empty = PieceSet.empty(num_pieces)
    arrival_rates = {empty: total_rate * (1.0 - gifted_fraction)}
    per_piece = total_rate * gifted_fraction / num_pieces
    for piece in range(1, num_pieces + 1):
        arrival_rates[PieceSet.single(piece, num_pieces)] = per_piece
    params = SystemParameters(
        num_pieces=num_pieces,
        seed_rate=0.0,
        peer_rate=1.0,
        seed_departure_rate=math.inf,
        arrival_rates=arrival_rates,
    )
    simulator = SwarmSimulator(params, seed=seed)
    initial_state = (
        SystemState.one_club(num_pieces, initial_one_club) if initial_one_club else None
    )
    result = simulator.run(
        horizon, initial_state=initial_state, max_population=max_population
    )
    metrics = result.metrics
    classification = classify_trajectory(
        metrics.sample_times,
        metrics.population,
        arrival_rate=total_rate,
    )
    return (
        classification.normalized_slope,
        float(metrics.population[-1]),
        classification.verdict.value,
    )


def run_coding_experiment(
    num_pieces: int = 8,
    field_size: int = 7,
    total_rate: float = 2.0,
    low_fraction: float = 0.05,
    high_fraction: float = 0.6,
    uncoded_fraction: float = 0.6,
    horizon: float = 200.0,
    seed: SeedLike = 66,
    max_population: int = 3000,
    uncoded_initial_one_club: int = 60,
) -> CodingResult:
    """Run the network-coding experiment (theory table + small simulations)."""
    lower, upper = gifted_fraction_thresholds(num_pieces, field_size)
    lower_exact, upper_exact = gifted_fraction_thresholds_exact(num_pieces, field_size)
    seeds = spawn_generators(seed, 3)
    rows: List[CodedTrialRow] = []

    slope, final, verdict = _simulate_coded(
        num_pieces, field_size, total_rate, low_fraction, horizon, seeds[0], max_population
    )
    rows.append(
        CodedTrialRow(
            label="coded, f below threshold",
            coded=True,
            gifted_fraction=low_fraction,
            theory="transient" if low_fraction < lower else "(borderline)",
            verdict=verdict,
            normalized_slope=slope,
            final_population=final,
        )
    )

    slope, final, verdict = _simulate_coded(
        num_pieces, field_size, total_rate, high_fraction, horizon, seeds[1], max_population
    )
    rows.append(
        CodedTrialRow(
            label="coded, f above threshold",
            coded=True,
            gifted_fraction=high_fraction,
            theory="positive recurrent" if high_fraction > upper_exact else "(borderline)",
            verdict=verdict,
            normalized_slope=slope,
            final_population=final,
        )
    )

    slope, final, verdict = _simulate_uncoded_gifted(
        num_pieces,
        total_rate,
        uncoded_fraction,
        horizon,
        seeds[2],
        max_population,
        initial_one_club=uncoded_initial_one_club,
    )
    rows.append(
        CodedTrialRow(
            label="uncoded, same gifted fraction (one-club start)",
            coded=False,
            gifted_fraction=uncoded_fraction,
            theory="transient (any f < 1)",
            verdict=verdict,
            normalized_slope=slope,
            final_population=final,
        )
    )

    return CodingResult(
        paper_numbers=paper_example_table(),
        sim_thresholds=(lower, upper),
        sim_thresholds_exact=(lower_exact, upper_exact),
        rows=rows,
    )


__all__ = ["CodedTrialRow", "CodingResult", "run_coding_experiment"]
