"""Experiment E9 — numerical Foster--Lyapunov verification (Section VII).

Inside the stability region (``Δ_S < 0`` for every ``S``) the paper's
Lyapunov function ``W`` has drift ``QW(x) ≤ −ξ n`` outside a finite set.  The
experiment evaluates the exact drift on heavy-load states of growing
population — one-club states and random class-I style loads — and reports the
fraction of states with negative drift together with the worst normalised
drift, for a stable and (as a contrast) an unstable parameter set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..core.lyapunov import (
    LyapunovConfig,
    LyapunovFunction,
    check_negative_drift,
    sample_heavy_load_states,
)
from ..core.parameters import SystemParameters
from ..core.stability import analyze
from ..core.state import SystemState
from ..simulation.rng import SeedLike, make_rng


@dataclass
class LyapunovRow:
    """Drift summary for one parameter set and one population size."""

    label: str
    theory: str
    population: int
    num_states: int
    fraction_negative: float
    worst_drift_per_peer: float
    one_club_drift_per_peer: float


@dataclass
class LyapunovResult:
    """All drift-check rows of the experiment."""

    rows: List[LyapunovRow]

    def report(self) -> str:
        return format_table(
            headers=[
                "configuration",
                "theory",
                "n",
                "states",
                "frac. QW<0",
                "worst QW/n",
                "one-club QW/n",
            ],
            rows=[
                (
                    row.label,
                    row.theory,
                    row.population,
                    row.num_states,
                    row.fraction_negative,
                    row.worst_drift_per_peer,
                    row.one_club_drift_per_peer,
                )
                for row in self.rows
            ],
            title="Foster-Lyapunov drift of W on heavy-load states",
        )


def run_lyapunov_experiment(
    stable_params: Optional[SystemParameters] = None,
    unstable_params: Optional[SystemParameters] = None,
    populations: Sequence[int] = (100, 400),
    states_per_population: int = 12,
    seed: SeedLike = 99,
) -> LyapunovResult:
    """Evaluate the drift of ``W`` on heavy-load states.

    Defaults: the stable set is Example 3 with symmetric rates (1, 1, 1) and
    ``γ = 2 > µ = 1``; the unstable set skews the arrivals to (4, 4, 0.5).
    In the stable case the drift on one-club states must be negative for large
    populations; in the unstable case it is positive (the one club grows).
    """
    if stable_params is None:
        stable_params = SystemParameters.one_piece_arrivals(
            (1.0, 1.0, 1.0), peer_rate=1.0, seed_departure_rate=2.0
        )
    if unstable_params is None:
        unstable_params = SystemParameters.one_piece_arrivals(
            (4.0, 4.0, 0.5), peer_rate=1.0, seed_departure_rate=2.0
        )
    rng = make_rng(seed)
    rows: List[LyapunovRow] = []
    for label, params in (("stable", stable_params), ("unstable", unstable_params)):
        theory = analyze(params).verdict.value
        lyapunov = LyapunovFunction(params)
        for population in populations:
            states = sample_heavy_load_states(
                params,
                population=population,
                num_states=states_per_population,
                rng=rng,
            )
            check = check_negative_drift(lyapunov, states)
            one_club = SystemState.one_club(params.num_pieces, population)
            rows.append(
                LyapunovRow(
                    label=label,
                    theory=theory,
                    population=population,
                    num_states=check.num_states,
                    fraction_negative=check.num_negative / max(check.num_states, 1),
                    worst_drift_per_peer=check.max_drift_per_peer,
                    one_club_drift_per_peer=lyapunov.drift_per_peer(one_club),
                )
            )
    return LyapunovResult(rows=rows)


__all__ = ["LyapunovResult", "LyapunovRow", "run_lyapunov_experiment"]
