"""Experiment harness: replicated swarm runs and stability trials.

A *stability trial* compares Theorem 1's verdict with the empirical behaviour
of the peer-level simulator at a single parameter point: several independent
replications are run, each trajectory is classified by
:func:`repro.markov.classify.classify_trajectory`, and the majority verdict is
reported next to the theoretical one.  Sweeps are lists of trials.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.parameters import SystemParameters
from ..core.stability import Stability, StabilityReport, analyze
from ..core.state import SystemState
from ..markov.classify import (
    TrajectoryClassification,
    TrajectoryVerdict,
    classify_trajectory,
    majority_verdict,
)
from ..simulation.rng import SeedLike, spawn_generators
from ..swarm.policies import PieceSelectionPolicy
from ..swarm.swarm import SwarmResult, SwarmSimulator


@dataclass
class StabilityTrialResult:
    """Theory vs. simulation at a single parameter point."""

    label: str
    params: SystemParameters
    theory: StabilityReport
    classifications: List[TrajectoryClassification]
    empirical_verdict: TrajectoryVerdict
    mean_normalized_slope: float
    mean_population: float
    results: List[SwarmResult] = field(default_factory=list)

    @property
    def agrees_with_theory(self) -> bool:
        """True when the empirical verdict matches the theoretical one.

        Borderline theory points and inconclusive empirical verdicts never
        count as agreement or disagreement; they are reported as-is.
        """
        if self.theory.verdict is Stability.STABLE:
            return self.empirical_verdict is TrajectoryVerdict.STABLE
        if self.theory.verdict is Stability.UNSTABLE:
            return self.empirical_verdict is TrajectoryVerdict.UNSTABLE
        return False

    def row(self) -> Tuple[str, str, str, float, float]:
        """A table row: label, theory, empirical, slope, mean population."""
        return (
            self.label,
            self.theory.verdict.value,
            self.empirical_verdict.value,
            self.mean_normalized_slope,
            self.mean_population,
        )


def run_stability_trial(
    params: SystemParameters,
    label: str = "",
    horizon: float = 300.0,
    replications: int = 3,
    seed: SeedLike = 0,
    policy: Optional[PieceSelectionPolicy] = None,
    initial_state: Optional[SystemState] = None,
    max_population: Optional[int] = 20_000,
    keep_results: bool = False,
    last_fraction: float = 0.5,
) -> StabilityTrialResult:
    """Run one theory-vs-simulation comparison at a parameter point."""
    theory = analyze(params)
    rngs = spawn_generators(seed, replications)
    classifications: List[TrajectoryClassification] = []
    results: List[SwarmResult] = []
    slopes: List[float] = []
    populations: List[float] = []
    for rng in rngs:
        simulator = SwarmSimulator(params, policy=policy, seed=rng)
        result = simulator.run(
            horizon,
            initial_state=initial_state,
            max_population=max_population,
        )
        metrics = result.metrics
        classification = classify_trajectory(
            metrics.sample_times,
            metrics.population,
            arrival_rate=params.lambda_total,
            last_fraction=last_fraction,
        )
        classifications.append(classification)
        slopes.append(classification.normalized_slope)
        populations.append(metrics.mean_population(last_fraction))
        if keep_results:
            results.append(result)
    return StabilityTrialResult(
        label=label or params.describe().splitlines()[0],
        params=params,
        theory=theory,
        classifications=classifications,
        empirical_verdict=majority_verdict(classifications),
        mean_normalized_slope=float(np.mean(slopes)) if slopes else 0.0,
        mean_population=float(np.mean(populations)) if populations else 0.0,
        results=results,
    )


@dataclass
class SweepResult:
    """A collection of stability trials forming one experiment."""

    name: str
    trials: List[StabilityTrialResult]

    def table_rows(self) -> List[Tuple[str, str, str, float, float]]:
        return [trial.row() for trial in self.trials]

    def agreement_fraction(self) -> float:
        """Fraction of non-borderline trials whose verdicts agree with theory."""
        decisive = [
            trial
            for trial in self.trials
            if trial.theory.verdict is not Stability.BORDERLINE
            and trial.empirical_verdict is not TrajectoryVerdict.INCONCLUSIVE
        ]
        if not decisive:
            return 0.0
        agreeing = sum(1 for trial in decisive if trial.agrees_with_theory)
        return agreeing / len(decisive)

    def all_decisive_agree(self) -> bool:
        """True when every decisive trial matches the theoretical verdict."""
        for trial in self.trials:
            if trial.theory.verdict is Stability.BORDERLINE:
                continue
            if trial.empirical_verdict is TrajectoryVerdict.INCONCLUSIVE:
                continue
            if not trial.agrees_with_theory:
                return False
        return True


def run_sweep(
    name: str,
    points: Sequence[Tuple[str, SystemParameters]],
    horizon: float = 300.0,
    replications: int = 3,
    seed: SeedLike = 0,
    policy: Optional[PieceSelectionPolicy] = None,
    initial_state: Optional[SystemState] = None,
    max_population: Optional[int] = 20_000,
) -> SweepResult:
    """Run a stability trial at each labelled parameter point."""
    rngs = spawn_generators(seed, len(points))
    trials = [
        run_stability_trial(
            params,
            label=label,
            horizon=horizon,
            replications=replications,
            seed=rng,
            policy=policy,
            initial_state=initial_state,
            max_population=max_population,
        )
        for (label, params), rng in zip(points, rngs)
    ]
    return SweepResult(name=name, trials=trials)


__all__ = [
    "StabilityTrialResult",
    "SweepResult",
    "run_stability_trial",
    "run_sweep",
]
