"""Experiment harness: batched swarm replications and stability trials.

Two layers live here:

* :class:`BatchRunner` — fans independent swarm replications out across
  ``multiprocessing`` workers (or runs them serially), derives one child seed
  per replication via :func:`repro.simulation.rng.spawn_generators`, selects
  the simulation backend (``"object"`` reference simulator or ``"array"``
  structure-of-arrays kernel) and aggregates the per-replication
  :class:`~repro.swarm.metrics.SwarmMetrics` streams into a
  :class:`BatchSwarmResult`.
* *Stability trials* — a trial compares Theorem 1's verdict with the
  empirical behaviour at a single parameter point: several replications are
  run through a :class:`BatchRunner`, each trajectory is classified by
  :func:`repro.markov.classify.classify_trajectory`, and the majority verdict
  is reported next to the theoretical one.  Sweeps are lists of trials.

Scenario support: :class:`BatchRunner` accepts a declarative
:class:`~repro.core.scenario.ScenarioSpec` (heterogeneous peer classes,
time-varying rate schedules) as ``scenario=``, and :func:`run_scenario` is
the one-call entry point for batched scenario replications — pass either a
spec or a registered scenario name ("flash-crowd", "seed-outage", ...).

Backend-selection contract: every entry point takes ``backend="object" |
"array"`` and threads it through :func:`repro.swarm.swarm.make_simulator`.
The two backends are trajectory-equivalent under a shared seed — on plain
parameters and on every scenario — so switching backends changes the
wall-clock, never the science.
"""

from __future__ import annotations

import heapq
import math
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.parameters import SystemParameters
from ..core.scenario import ScenarioSpec, make_scenario
from ..core.stability import Stability, StabilityReport, analyze
from ..core.state import SystemState
from ..markov.classify import (
    TrajectoryClassification,
    TrajectoryVerdict,
    classify_trajectory,
    majority_verdict,
)
from ..simulation.rng import SeedLike, spawn_generators
from ..swarm.metrics import SwarmMetrics
from ..swarm.policies import PieceSelectionPolicy
from ..swarm.swarm import (
    _RUN_KWARGS,
    _SIM_KWARGS,
    SwarmResult,
    make_simulator,
    unsupported_option,
)

#: Same keyword split as :func:`repro.swarm.swarm.run_swarm`, except that
#: ``scenario`` is an explicit parameter of :func:`run_scenario`, not a
#: passthrough.
_SCENARIO_SIM_KWARGS = tuple(key for key in _SIM_KWARGS if key != "scenario")


def _run_replication(task) -> SwarmResult:
    """Top-level worker so batched replications can cross process boundaries."""
    params, policy, backend, sim_kwargs, horizon, initial_state, run_kwargs, rng = task
    simulator = make_simulator(
        params, policy=policy, seed=rng, backend=backend, **sim_kwargs
    )
    return simulator.run(horizon, initial_state=initial_state, **run_kwargs)


class TaskTimeoutError(RuntimeError):
    """A supervised task overran its per-task deadline and was terminated."""


class WorkerCrashError(RuntimeError):
    """A worker process died (segfault, OOM kill, ``os._exit``) mid-task."""


@dataclass(frozen=True)
class TaskFailure:
    """A supervised task that exhausted its retry budget.

    Yielded in the task's position (``on_exhausted="yield"``) so consumers
    can degrade gracefully — e.g. the fleet scheduler records the swarm as
    ``failed`` instead of losing the whole run.
    """

    task_index: int
    error: str
    error_type: str
    attempts: int


class _AttemptZero:
    """Picklable adapter: always call ``function(task, attempt=0)``.

    Keeps the unsupervised pool path (``pool.imap``) working for callers
    that opted into ``with_attempt`` signatures without supervision.
    """

    def __init__(self, function):
        self.function = function

    def __call__(self, task):
        return self.function(task, 0)


def _invoke_task(function, task, attempt: int, with_attempt: bool):
    if with_attempt:
        return function(task, attempt)
    return function(task)


def _describe_error(error: BaseException) -> str:
    return f"{type(error).__name__}: {error}"


def _run_supervised_serial(
    function,
    tasks: Sequence,
    max_retries: int,
    retry_backoff: float,
    on_exhausted: str,
    with_attempt: bool,
):
    """In-process supervision: bounded retries only (a serial run has no
    supervisor thread to enforce a deadline against, so ``task_timeout``
    is not enforceable here — documented on :func:`map_tasks`)."""
    for index, task in enumerate(tasks):
        outcome = None
        failure: Optional[BaseException] = None
        for attempt in range(max_retries + 1):
            try:
                outcome = _invoke_task(function, task, attempt, with_attempt)
                failure = None
                break
            except Exception as error:
                failure = error
                if attempt < max_retries and retry_backoff:
                    time.sleep(retry_backoff * (2 ** attempt))
        if failure is not None:
            if on_exhausted == "yield":
                yield TaskFailure(
                    task_index=index,
                    error=_describe_error(failure),
                    error_type=type(failure).__name__,
                    attempts=max_retries + 1,
                )
            else:
                raise failure
        else:
            yield outcome


def _run_supervised_pool(
    function,
    tasks: Sequence,
    pool_size: int,
    task_timeout: Optional[float],
    max_retries: int,
    retry_backoff: float,
    on_exhausted: str,
    with_attempt: bool,
):
    """Supervised process-pool execution: crash detection, deadlines, retry.

    Uses ``concurrent.futures.ProcessPoolExecutor`` rather than
    ``multiprocessing.Pool`` because a dead worker breaks the executor
    *loudly* (``BrokenProcessPool`` on every in-flight future) instead of
    silently swallowing the job.  On a broken pool, every in-flight task is
    charged one attempt (the executor cannot attribute the death to a
    single future) and the pool is rebuilt; on a deadline overrun, the
    pool's processes are terminated, only the overrunning tasks are
    charged, and everything else is requeued uncharged.  Results are
    yielded strictly in task order.
    """
    import concurrent.futures as cf
    from concurrent.futures.process import BrokenProcessPool

    total = len(tasks)
    attempts = [0] * total  # failed attempts consumed per task
    resolved: Dict[int, Any] = {}  # index -> ("ok", result) | TaskFailure
    ready: List[int] = list(range(total))
    heapq.heapify(ready)
    inflight: Dict[int, Tuple[Any, float]] = {}  # index -> (future, started)
    executor = cf.ProcessPoolExecutor(pool_size)

    def restart_pool(kill: bool) -> None:
        nonlocal executor
        if kill:
            for process in list(getattr(executor, "_processes", {}).values()):
                process.terminate()
        executor.shutdown(wait=False, cancel_futures=True)
        executor = cf.ProcessPoolExecutor(pool_size)

    def record_failure(index: int, error: BaseException) -> None:
        attempts[index] += 1
        if attempts[index] <= max_retries:
            if retry_backoff:
                time.sleep(retry_backoff * (2 ** (attempts[index] - 1)))
            heapq.heappush(ready, index)
        elif on_exhausted == "yield":
            resolved[index] = TaskFailure(
                task_index=index,
                error=_describe_error(error),
                error_type=type(error).__name__,
                attempts=attempts[index],
            )
        else:
            raise error

    def harvest() -> None:
        broken = False
        for index, (future, _started) in list(inflight.items()):
            if not future.done():
                continue
            del inflight[index]
            error = future.exception()
            if error is None:
                resolved[index] = ("ok", future.result())
            elif isinstance(error, BrokenProcessPool):
                broken = True
                record_failure(
                    index,
                    WorkerCrashError(
                        f"worker process died while running task {index}"
                    ),
                )
            else:
                record_failure(index, error)
        if broken:
            # Any future still pending on the broken pool is doomed too.
            for index in list(inflight):
                del inflight[index]
                record_failure(
                    index,
                    WorkerCrashError(
                        f"worker pool broke while task {index} was in flight"
                    ),
                )
            restart_pool(kill=False)

    def expire() -> None:
        if task_timeout is None or not inflight:
            return
        now = time.monotonic()
        overran = {
            index
            for index, (future, started) in inflight.items()
            if now - started >= task_timeout and not future.done()
        }
        if not overran:
            return
        # Terminating the pool aborts *everything* in flight; only the
        # overrunning tasks pay an attempt, the rest requeue uncharged.
        for index, (future, _started) in list(inflight.items()):
            del inflight[index]
            if index in overran:
                record_failure(
                    index,
                    TaskTimeoutError(
                        f"task {index} exceeded the {task_timeout}s deadline"
                    ),
                )
            else:
                heapq.heappush(ready, index)
        restart_pool(kill=True)

    def fill() -> None:
        while ready and len(inflight) < pool_size:
            index = heapq.heappop(ready)
            if index in resolved:
                continue
            try:
                future = executor.submit(
                    _invoke_task, function, tasks[index], attempts[index],
                    with_attempt,
                )
            except (BrokenProcessPool, RuntimeError):
                heapq.heappush(ready, index)
                restart_pool(kill=False)
                continue
            inflight[index] = (future, time.monotonic())

    try:
        emit = 0
        while emit < total:
            harvest()
            expire()
            fill()
            if emit in resolved:
                value = resolved.pop(emit)
                yield value if isinstance(value, TaskFailure) else value[1]
                emit += 1
                continue
            futures = [future for future, _started in inflight.values()]
            if not futures:
                continue
            if task_timeout is not None:
                now = time.monotonic()
                next_deadline = min(
                    started + task_timeout for _f, started in inflight.values()
                )
                wait_for = max(next_deadline - now, 0.0) + 0.01
            else:
                wait_for = None
            cf.wait(futures, timeout=wait_for, return_when=cf.FIRST_COMPLETED)
    finally:
        if inflight:
            # Consumer stopped early: cancel outstanding work, like the
            # unsupervised path's pool teardown.
            processes = getattr(executor, "_processes", None) or {}
            for process in list(processes.values()):
                process.terminate()
        executor.shutdown(wait=False, cancel_futures=True)


def map_tasks(
    function,
    tasks: Sequence,
    workers: Optional[int],
    *,
    task_timeout: Optional[float] = None,
    max_retries: int = 0,
    retry_backoff: float = 0.0,
    on_exhausted: str = "raise",
    with_attempt: bool = False,
):
    """Stream ``function`` over ``tasks``, serially or on a process pool.

    ``workers in (None, 0, 1)`` runs in-process; larger values use a
    process pool of ``min(workers, len(tasks))`` processes.  Results are
    yielded strictly in task order either way, so callers' outcomes never
    depend on the worker count.  The pool is torn down when the generator
    is exhausted *or* closed early (a consumer that stops iterating —
    e.g. the fleet scheduler hitting a checkpoint stop — cancels the
    outstanding work).

    Supervision (off by default; the default path is byte-for-byte the
    original ``multiprocessing.Pool``/serial execution):

    * ``max_retries`` — failed tasks are retried up to this many times
      with deterministic exponential backoff (``retry_backoff * 2**k``
      seconds before retry ``k+1``); a worker-process death
      (:class:`WorkerCrashError`) counts as a failed attempt for every
      task that was in flight.
    * ``task_timeout`` — per-task wall-clock deadline (seconds) on the
      pool path; an overrunning task's workers are terminated and the
      task is charged one attempt.  Unenforceable in-process (a serial
      run has no supervisor), so serial supervision retries only.
    * ``on_exhausted`` — ``"raise"`` re-raises the final error;
      ``"yield"`` yields a :class:`TaskFailure` sentinel in the task's
      position so the consumer can degrade gracefully.
    * ``with_attempt`` — call ``function(task, attempt)`` instead of
      ``function(task)``, letting deterministic fault plans key on the
      attempt number.

    This is the one process-fan-out primitive of the experiment stack:
    :class:`BatchRunner` maps replications through it and
    :class:`repro.fleet.scheduler.FleetScheduler` maps swarm chunks.
    """
    if not isinstance(max_retries, int) or isinstance(max_retries, bool) \
            or max_retries < 0:
        raise unsupported_option(
            "map_tasks", "max_retries", max_retries,
            "retries are a bounded non-negative count; pass 0 to disable "
            "supervised retry",
        )
    if task_timeout is not None and not task_timeout > 0:
        raise unsupported_option(
            "map_tasks", "task_timeout", task_timeout,
            "the per-task deadline is seconds of wall clock and must be "
            "positive; pass None to disable it",
        )
    if retry_backoff < 0:
        raise unsupported_option(
            "map_tasks", "retry_backoff", retry_backoff,
            "the retry backoff is seconds and must be >= 0",
        )
    if on_exhausted not in ("raise", "yield"):
        raise ValueError(
            f"on_exhausted must be 'raise' or 'yield', got {on_exhausted!r}"
        )
    supervised = (
        task_timeout is not None or max_retries > 0 or on_exhausted != "raise"
    )
    workers = workers or 0
    if workers > 1 and len(tasks) > 1:
        if supervised:
            yield from _run_supervised_pool(
                function,
                tasks,
                min(workers, len(tasks)),
                task_timeout,
                max_retries,
                retry_backoff,
                on_exhausted,
                with_attempt,
            )
        else:
            pool_function = _AttemptZero(function) if with_attempt else function
            with multiprocessing.Pool(min(workers, len(tasks))) as pool:
                yield from pool.imap(pool_function, tasks)
    elif supervised:
        yield from _run_supervised_serial(
            function, tasks, max_retries, retry_backoff, on_exhausted,
            with_attempt,
        )
    else:
        for task in tasks:
            yield _invoke_task(function, task, 0, with_attempt)


@dataclass
class BatchSwarmResult:
    """Aggregated outcome of a batch of independent swarm replications."""

    results: List[SwarmResult]
    backend: str

    def __len__(self) -> int:
        return len(self.results)

    @property
    def metrics(self) -> List[SwarmMetrics]:
        """The per-replication metrics streams, in seed order."""
        return [result.metrics for result in self.results]

    def final_populations(self) -> np.ndarray:
        return np.array([result.final_population for result in self.results])

    def mean_final_population(self) -> float:
        values = self.final_populations()
        return float(values.mean()) if values.size else 0.0

    def all_horizons_reached(self) -> bool:
        return all(result.horizon_reached for result in self.results)

    def summary(self) -> Dict[str, float]:
        """Mean of every per-replication summary statistic (NaN-safe)."""
        summaries = [result.metrics.summary() for result in self.results]
        if not summaries:
            return {}
        merged: Dict[str, float] = {}
        for key in summaries[0]:
            values = np.array([summary[key] for summary in summaries])
            finite = values[np.isfinite(values)]
            merged[key] = float(finite.mean()) if finite.size else float("nan")
        return merged


class BatchRunner:
    """Fan independent swarm replications across processes.

    Parameters
    ----------
    params:
        The system parameters shared by every replication.
    policy:
        Piece-selection policy (must be picklable when ``workers > 1``; the
        built-in policies are).
    backend:
        ``"object"`` (reference simulator) or ``"array"`` (SoA kernel), passed
        to :func:`repro.swarm.swarm.make_simulator`.
    workers:
        ``None``, 0 or 1 runs the batch serially in-process; ``n > 1`` uses a
        ``multiprocessing`` pool of ``n`` workers.  Results are returned in
        seed order either way, so the outcome is independent of ``workers``.
    sim_kwargs:
        Extra simulator-constructor options (``rare_piece``,
        ``retry_speedup``, ``track_groups``, ``scenario``).  Passing a
        :class:`~repro.core.scenario.ScenarioSpec` as ``scenario=`` runs
        every replication under that workload (or use :func:`run_scenario`,
        which also resolves registered scenario names).

    Each replication receives its own child generator from
    :func:`spawn_generators`, making the whole batch reproducible from one
    seed while keeping the replications statistically independent.
    """

    def __init__(
        self,
        params: SystemParameters,
        policy: Optional[PieceSelectionPolicy] = None,
        backend: str = "object",
        workers: Optional[int] = None,
        **sim_kwargs,
    ):
        self.params = params
        self.policy = policy
        self.backend = backend
        self.workers = workers
        self.sim_kwargs = sim_kwargs

    def run(
        self,
        horizon: float,
        replications: int,
        seed: SeedLike = 0,
        initial_state: Optional[SystemState] = None,
        **run_kwargs,
    ) -> BatchSwarmResult:
        """Run ``replications`` independent simulations of ``horizon``."""
        if replications < 1:
            raise ValueError(f"replications must be >= 1, got {replications}")
        rngs = spawn_generators(seed, replications)
        tasks = [
            (
                self.params,
                self.policy,
                self.backend,
                self.sim_kwargs,
                horizon,
                initial_state,
                run_kwargs,
                rng,
            )
            for rng in rngs
        ]
        results = list(map_tasks(_run_replication, tasks, self.workers))
        return BatchSwarmResult(results=results, backend=self.backend)


def run_scenario(
    scenario: "ScenarioSpec | str",
    horizon: float,
    replications: int = 1,
    seed: SeedLike = 0,
    policy: Optional[PieceSelectionPolicy] = None,
    initial_state: Optional[SystemState] = None,
    backend: str = "object",
    workers: Optional[int] = None,
    stacked: bool = False,
    scenario_kwargs: Optional[Dict] = None,
    **kwargs,
) -> BatchSwarmResult:
    """Run batched replications of a declarative scenario.

    ``scenario`` is either a :class:`~repro.core.scenario.ScenarioSpec` or
    the name of a registered scenario (resolved via
    :func:`repro.core.scenario.make_scenario`, with ``scenario_kwargs``
    forwarded to the factory).  The remaining keyword arguments are split
    between the simulator constructor (``rare_piece``, ``retry_speedup``,
    ``track_groups``) and ``run`` (``sample_interval``, ``max_events``,
    ``max_population``), exactly as in :func:`repro.swarm.swarm.run_swarm`.
    """
    if stacked:
        raise unsupported_option(
            "run_scenario", "stacked", stacked,
            "stacked execution batches fleets of independent swarms; use "
            "run_fleet(stacked=True) or run_adaptive_fleet(stacked=True)",
        )
    if isinstance(scenario, str):
        scenario = make_scenario(scenario, **(scenario_kwargs or {}))
    elif scenario_kwargs:
        raise ValueError(
            "scenario_kwargs only applies when scenario is a registered name"
        )
    sim_kwargs = {
        key: value for key, value in kwargs.items() if key in _SCENARIO_SIM_KWARGS
    }
    run_kwargs = {
        key: value for key, value in kwargs.items() if key in _RUN_KWARGS
    }
    unknown = set(kwargs) - set(_SCENARIO_SIM_KWARGS) - set(_RUN_KWARGS)
    if unknown:
        raise TypeError(f"unknown run_scenario arguments: {sorted(unknown)}")
    runner = BatchRunner(
        scenario.params,
        policy=policy,
        backend=backend,
        workers=workers,
        scenario=scenario,
        **sim_kwargs,
    )
    return runner.run(
        horizon,
        replications,
        seed=seed,
        initial_state=initial_state,
        **run_kwargs,
    )


@dataclass
class StabilityTrialResult:
    """Theory vs. simulation at a single parameter point."""

    label: str
    params: SystemParameters
    theory: StabilityReport
    classifications: List[TrajectoryClassification]
    empirical_verdict: TrajectoryVerdict
    mean_normalized_slope: float
    mean_population: float
    results: List[SwarmResult] = field(default_factory=list)

    @property
    def agrees_with_theory(self) -> bool:
        """True when the empirical verdict matches the theoretical one.

        Borderline theory points and inconclusive empirical verdicts never
        count as agreement or disagreement; they are reported as-is.
        """
        if self.theory.verdict is Stability.STABLE:
            return self.empirical_verdict is TrajectoryVerdict.STABLE
        if self.theory.verdict is Stability.UNSTABLE:
            return self.empirical_verdict is TrajectoryVerdict.UNSTABLE
        return False

    def row(self) -> Tuple[str, str, str, float, float]:
        """A table row: label, theory, empirical, slope, mean population."""
        return (
            self.label,
            self.theory.verdict.value,
            self.empirical_verdict.value,
            self.mean_normalized_slope,
            self.mean_population,
        )


def run_stability_trial(
    params: SystemParameters,
    label: str = "",
    horizon: float = 300.0,
    replications: int = 3,
    seed: SeedLike = 0,
    policy: Optional[PieceSelectionPolicy] = None,
    initial_state: Optional[SystemState] = None,
    max_population: Optional[int] = 20_000,
    keep_results: bool = False,
    last_fraction: float = 0.5,
    backend: str = "object",
    workers: Optional[int] = None,
) -> StabilityTrialResult:
    """Run one theory-vs-simulation comparison at a parameter point."""
    theory = analyze(params)
    runner = BatchRunner(params, policy=policy, backend=backend, workers=workers)
    batch = runner.run(
        horizon,
        replications,
        seed=seed,
        initial_state=initial_state,
        max_population=max_population,
    )
    classifications: List[TrajectoryClassification] = []
    results: List[SwarmResult] = []
    slopes: List[float] = []
    populations: List[float] = []
    for result in batch.results:
        metrics = result.metrics
        classification = classify_trajectory(
            metrics.sample_times,
            metrics.population,
            arrival_rate=params.lambda_total,
            last_fraction=last_fraction,
        )
        classifications.append(classification)
        slopes.append(classification.normalized_slope)
        populations.append(metrics.mean_population(last_fraction))
        if keep_results:
            results.append(result)
    return StabilityTrialResult(
        label=label or params.describe().splitlines()[0],
        params=params,
        theory=theory,
        classifications=classifications,
        empirical_verdict=majority_verdict(classifications),
        mean_normalized_slope=float(np.mean(slopes)) if slopes else 0.0,
        mean_population=float(np.mean(populations)) if populations else 0.0,
        results=results,
    )


@dataclass
class SweepResult:
    """A collection of stability trials forming one experiment."""

    name: str
    trials: List[StabilityTrialResult]

    def table_rows(self) -> List[Tuple[str, str, str, float, float]]:
        return [trial.row() for trial in self.trials]

    def agreement_fraction(self) -> float:
        """Fraction of non-borderline trials whose verdicts agree with theory."""
        decisive = [
            trial
            for trial in self.trials
            if trial.theory.verdict is not Stability.BORDERLINE
            and trial.empirical_verdict is not TrajectoryVerdict.INCONCLUSIVE
        ]
        if not decisive:
            return 0.0
        agreeing = sum(1 for trial in decisive if trial.agrees_with_theory)
        return agreeing / len(decisive)

    def all_decisive_agree(self) -> bool:
        """True when every decisive trial matches the theoretical verdict."""
        for trial in self.trials:
            if trial.theory.verdict is Stability.BORDERLINE:
                continue
            if trial.empirical_verdict is TrajectoryVerdict.INCONCLUSIVE:
                continue
            if not trial.agrees_with_theory:
                return False
        return True


def run_sweep(
    name: str,
    points: Sequence[Tuple[str, SystemParameters]],
    horizon: float = 300.0,
    replications: int = 3,
    seed: SeedLike = 0,
    policy: Optional[PieceSelectionPolicy] = None,
    initial_state: Optional[SystemState] = None,
    max_population: Optional[int] = 20_000,
    backend: str = "object",
    workers: Optional[int] = None,
) -> SweepResult:
    """Run a stability trial at each labelled parameter point."""
    rngs = spawn_generators(seed, len(points))
    trials = [
        run_stability_trial(
            params,
            label=label,
            horizon=horizon,
            replications=replications,
            seed=rng,
            policy=policy,
            initial_state=initial_state,
            max_population=max_population,
            backend=backend,
            workers=workers,
        )
        for (label, params), rng in zip(points, rngs)
    ]
    return SweepResult(name=name, trials=trials)


__all__ = [
    "BatchRunner",
    "BatchSwarmResult",
    "StabilityTrialResult",
    "SweepResult",
    "TaskFailure",
    "TaskTimeoutError",
    "WorkerCrashError",
    "map_tasks",
    "run_scenario",
    "run_stability_trial",
    "run_sweep",
]
