"""Experiment harness: batched swarm replications and stability trials.

Two layers live here:

* :class:`BatchRunner` — fans independent swarm replications out across
  ``multiprocessing`` workers (or runs them serially), derives one child seed
  per replication via :func:`repro.simulation.rng.spawn_generators`, selects
  the simulation backend (``"object"`` reference simulator or ``"array"``
  structure-of-arrays kernel) and aggregates the per-replication
  :class:`~repro.swarm.metrics.SwarmMetrics` streams into a
  :class:`BatchSwarmResult`.
* *Stability trials* — a trial compares Theorem 1's verdict with the
  empirical behaviour at a single parameter point: several replications are
  run through a :class:`BatchRunner`, each trajectory is classified by
  :func:`repro.markov.classify.classify_trajectory`, and the majority verdict
  is reported next to the theoretical one.  Sweeps are lists of trials.

Scenario support: :class:`BatchRunner` accepts a declarative
:class:`~repro.core.scenario.ScenarioSpec` (heterogeneous peer classes,
time-varying rate schedules) as ``scenario=``, and :func:`run_scenario` is
the one-call entry point for batched scenario replications — pass either a
spec or a registered scenario name ("flash-crowd", "seed-outage", ...).

Backend-selection contract: every entry point takes ``backend="object" |
"array"`` and threads it through :func:`repro.swarm.swarm.make_simulator`.
The two backends are trajectory-equivalent under a shared seed — on plain
parameters and on every scenario — so switching backends changes the
wall-clock, never the science.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.parameters import SystemParameters
from ..core.scenario import ScenarioSpec, make_scenario
from ..core.stability import Stability, StabilityReport, analyze
from ..core.state import SystemState
from ..markov.classify import (
    TrajectoryClassification,
    TrajectoryVerdict,
    classify_trajectory,
    majority_verdict,
)
from ..simulation.rng import SeedLike, spawn_generators
from ..swarm.metrics import SwarmMetrics
from ..swarm.policies import PieceSelectionPolicy
from ..swarm.swarm import (
    _RUN_KWARGS,
    _SIM_KWARGS,
    SwarmResult,
    make_simulator,
    unsupported_option,
)

#: Same keyword split as :func:`repro.swarm.swarm.run_swarm`, except that
#: ``scenario`` is an explicit parameter of :func:`run_scenario`, not a
#: passthrough.
_SCENARIO_SIM_KWARGS = tuple(key for key in _SIM_KWARGS if key != "scenario")


def _run_replication(task) -> SwarmResult:
    """Top-level worker so batched replications can cross process boundaries."""
    params, policy, backend, sim_kwargs, horizon, initial_state, run_kwargs, rng = task
    simulator = make_simulator(
        params, policy=policy, seed=rng, backend=backend, **sim_kwargs
    )
    return simulator.run(horizon, initial_state=initial_state, **run_kwargs)


def map_tasks(function, tasks: Sequence, workers: Optional[int]):
    """Stream ``function`` over ``tasks``, serially or on a process pool.

    ``workers in (None, 0, 1)`` runs in-process; larger values use a
    ``multiprocessing`` pool of ``min(workers, len(tasks))`` processes.
    Results are yielded strictly in task order either way, so callers'
    outcomes never depend on the worker count.  The pool is torn down when
    the generator is exhausted *or* closed early (a consumer that stops
    iterating — e.g. the fleet scheduler hitting a checkpoint stop — cancels
    the outstanding work).

    This is the one process-fan-out primitive of the experiment stack:
    :class:`BatchRunner` maps replications through it and
    :class:`repro.fleet.scheduler.FleetScheduler` maps swarm chunks.
    """
    workers = workers or 0
    if workers > 1 and len(tasks) > 1:
        with multiprocessing.Pool(min(workers, len(tasks))) as pool:
            yield from pool.imap(function, tasks)
    else:
        for task in tasks:
            yield function(task)


@dataclass
class BatchSwarmResult:
    """Aggregated outcome of a batch of independent swarm replications."""

    results: List[SwarmResult]
    backend: str

    def __len__(self) -> int:
        return len(self.results)

    @property
    def metrics(self) -> List[SwarmMetrics]:
        """The per-replication metrics streams, in seed order."""
        return [result.metrics for result in self.results]

    def final_populations(self) -> np.ndarray:
        return np.array([result.final_population for result in self.results])

    def mean_final_population(self) -> float:
        values = self.final_populations()
        return float(values.mean()) if values.size else 0.0

    def all_horizons_reached(self) -> bool:
        return all(result.horizon_reached for result in self.results)

    def summary(self) -> Dict[str, float]:
        """Mean of every per-replication summary statistic (NaN-safe)."""
        summaries = [result.metrics.summary() for result in self.results]
        if not summaries:
            return {}
        merged: Dict[str, float] = {}
        for key in summaries[0]:
            values = np.array([summary[key] for summary in summaries])
            finite = values[np.isfinite(values)]
            merged[key] = float(finite.mean()) if finite.size else float("nan")
        return merged


class BatchRunner:
    """Fan independent swarm replications across processes.

    Parameters
    ----------
    params:
        The system parameters shared by every replication.
    policy:
        Piece-selection policy (must be picklable when ``workers > 1``; the
        built-in policies are).
    backend:
        ``"object"`` (reference simulator) or ``"array"`` (SoA kernel), passed
        to :func:`repro.swarm.swarm.make_simulator`.
    workers:
        ``None``, 0 or 1 runs the batch serially in-process; ``n > 1`` uses a
        ``multiprocessing`` pool of ``n`` workers.  Results are returned in
        seed order either way, so the outcome is independent of ``workers``.
    sim_kwargs:
        Extra simulator-constructor options (``rare_piece``,
        ``retry_speedup``, ``track_groups``, ``scenario``).  Passing a
        :class:`~repro.core.scenario.ScenarioSpec` as ``scenario=`` runs
        every replication under that workload (or use :func:`run_scenario`,
        which also resolves registered scenario names).

    Each replication receives its own child generator from
    :func:`spawn_generators`, making the whole batch reproducible from one
    seed while keeping the replications statistically independent.
    """

    def __init__(
        self,
        params: SystemParameters,
        policy: Optional[PieceSelectionPolicy] = None,
        backend: str = "object",
        workers: Optional[int] = None,
        **sim_kwargs,
    ):
        self.params = params
        self.policy = policy
        self.backend = backend
        self.workers = workers
        self.sim_kwargs = sim_kwargs

    def run(
        self,
        horizon: float,
        replications: int,
        seed: SeedLike = 0,
        initial_state: Optional[SystemState] = None,
        **run_kwargs,
    ) -> BatchSwarmResult:
        """Run ``replications`` independent simulations of ``horizon``."""
        if replications < 1:
            raise ValueError(f"replications must be >= 1, got {replications}")
        rngs = spawn_generators(seed, replications)
        tasks = [
            (
                self.params,
                self.policy,
                self.backend,
                self.sim_kwargs,
                horizon,
                initial_state,
                run_kwargs,
                rng,
            )
            for rng in rngs
        ]
        results = list(map_tasks(_run_replication, tasks, self.workers))
        return BatchSwarmResult(results=results, backend=self.backend)


def run_scenario(
    scenario: "ScenarioSpec | str",
    horizon: float,
    replications: int = 1,
    seed: SeedLike = 0,
    policy: Optional[PieceSelectionPolicy] = None,
    initial_state: Optional[SystemState] = None,
    backend: str = "object",
    workers: Optional[int] = None,
    stacked: bool = False,
    scenario_kwargs: Optional[Dict] = None,
    **kwargs,
) -> BatchSwarmResult:
    """Run batched replications of a declarative scenario.

    ``scenario`` is either a :class:`~repro.core.scenario.ScenarioSpec` or
    the name of a registered scenario (resolved via
    :func:`repro.core.scenario.make_scenario`, with ``scenario_kwargs``
    forwarded to the factory).  The remaining keyword arguments are split
    between the simulator constructor (``rare_piece``, ``retry_speedup``,
    ``track_groups``) and ``run`` (``sample_interval``, ``max_events``,
    ``max_population``), exactly as in :func:`repro.swarm.swarm.run_swarm`.
    """
    if stacked:
        raise unsupported_option(
            "run_scenario", "stacked", stacked,
            "stacked execution batches fleets of independent swarms; use "
            "run_fleet(stacked=True) or run_adaptive_fleet(stacked=True)",
        )
    if isinstance(scenario, str):
        scenario = make_scenario(scenario, **(scenario_kwargs or {}))
    elif scenario_kwargs:
        raise ValueError(
            "scenario_kwargs only applies when scenario is a registered name"
        )
    sim_kwargs = {
        key: value for key, value in kwargs.items() if key in _SCENARIO_SIM_KWARGS
    }
    run_kwargs = {
        key: value for key, value in kwargs.items() if key in _RUN_KWARGS
    }
    unknown = set(kwargs) - set(_SCENARIO_SIM_KWARGS) - set(_RUN_KWARGS)
    if unknown:
        raise TypeError(f"unknown run_scenario arguments: {sorted(unknown)}")
    runner = BatchRunner(
        scenario.params,
        policy=policy,
        backend=backend,
        workers=workers,
        scenario=scenario,
        **sim_kwargs,
    )
    return runner.run(
        horizon,
        replications,
        seed=seed,
        initial_state=initial_state,
        **run_kwargs,
    )


@dataclass
class StabilityTrialResult:
    """Theory vs. simulation at a single parameter point."""

    label: str
    params: SystemParameters
    theory: StabilityReport
    classifications: List[TrajectoryClassification]
    empirical_verdict: TrajectoryVerdict
    mean_normalized_slope: float
    mean_population: float
    results: List[SwarmResult] = field(default_factory=list)

    @property
    def agrees_with_theory(self) -> bool:
        """True when the empirical verdict matches the theoretical one.

        Borderline theory points and inconclusive empirical verdicts never
        count as agreement or disagreement; they are reported as-is.
        """
        if self.theory.verdict is Stability.STABLE:
            return self.empirical_verdict is TrajectoryVerdict.STABLE
        if self.theory.verdict is Stability.UNSTABLE:
            return self.empirical_verdict is TrajectoryVerdict.UNSTABLE
        return False

    def row(self) -> Tuple[str, str, str, float, float]:
        """A table row: label, theory, empirical, slope, mean population."""
        return (
            self.label,
            self.theory.verdict.value,
            self.empirical_verdict.value,
            self.mean_normalized_slope,
            self.mean_population,
        )


def run_stability_trial(
    params: SystemParameters,
    label: str = "",
    horizon: float = 300.0,
    replications: int = 3,
    seed: SeedLike = 0,
    policy: Optional[PieceSelectionPolicy] = None,
    initial_state: Optional[SystemState] = None,
    max_population: Optional[int] = 20_000,
    keep_results: bool = False,
    last_fraction: float = 0.5,
    backend: str = "object",
    workers: Optional[int] = None,
) -> StabilityTrialResult:
    """Run one theory-vs-simulation comparison at a parameter point."""
    theory = analyze(params)
    runner = BatchRunner(params, policy=policy, backend=backend, workers=workers)
    batch = runner.run(
        horizon,
        replications,
        seed=seed,
        initial_state=initial_state,
        max_population=max_population,
    )
    classifications: List[TrajectoryClassification] = []
    results: List[SwarmResult] = []
    slopes: List[float] = []
    populations: List[float] = []
    for result in batch.results:
        metrics = result.metrics
        classification = classify_trajectory(
            metrics.sample_times,
            metrics.population,
            arrival_rate=params.lambda_total,
            last_fraction=last_fraction,
        )
        classifications.append(classification)
        slopes.append(classification.normalized_slope)
        populations.append(metrics.mean_population(last_fraction))
        if keep_results:
            results.append(result)
    return StabilityTrialResult(
        label=label or params.describe().splitlines()[0],
        params=params,
        theory=theory,
        classifications=classifications,
        empirical_verdict=majority_verdict(classifications),
        mean_normalized_slope=float(np.mean(slopes)) if slopes else 0.0,
        mean_population=float(np.mean(populations)) if populations else 0.0,
        results=results,
    )


@dataclass
class SweepResult:
    """A collection of stability trials forming one experiment."""

    name: str
    trials: List[StabilityTrialResult]

    def table_rows(self) -> List[Tuple[str, str, str, float, float]]:
        return [trial.row() for trial in self.trials]

    def agreement_fraction(self) -> float:
        """Fraction of non-borderline trials whose verdicts agree with theory."""
        decisive = [
            trial
            for trial in self.trials
            if trial.theory.verdict is not Stability.BORDERLINE
            and trial.empirical_verdict is not TrajectoryVerdict.INCONCLUSIVE
        ]
        if not decisive:
            return 0.0
        agreeing = sum(1 for trial in decisive if trial.agrees_with_theory)
        return agreeing / len(decisive)

    def all_decisive_agree(self) -> bool:
        """True when every decisive trial matches the theoretical verdict."""
        for trial in self.trials:
            if trial.theory.verdict is Stability.BORDERLINE:
                continue
            if trial.empirical_verdict is TrajectoryVerdict.INCONCLUSIVE:
                continue
            if not trial.agrees_with_theory:
                return False
        return True


def run_sweep(
    name: str,
    points: Sequence[Tuple[str, SystemParameters]],
    horizon: float = 300.0,
    replications: int = 3,
    seed: SeedLike = 0,
    policy: Optional[PieceSelectionPolicy] = None,
    initial_state: Optional[SystemState] = None,
    max_population: Optional[int] = 20_000,
    backend: str = "object",
    workers: Optional[int] = None,
) -> SweepResult:
    """Run a stability trial at each labelled parameter point."""
    rngs = spawn_generators(seed, len(points))
    trials = [
        run_stability_trial(
            params,
            label=label,
            horizon=horizon,
            replications=replications,
            seed=rng,
            policy=policy,
            initial_state=initial_state,
            max_population=max_population,
            backend=backend,
            workers=workers,
        )
        for (label, params), rng in zip(points, rngs)
    ]
    return SweepResult(name=name, trials=trials)


__all__ = [
    "BatchRunner",
    "BatchSwarmResult",
    "StabilityTrialResult",
    "SweepResult",
    "map_tasks",
    "run_scenario",
    "run_stability_trial",
    "run_sweep",
]
