"""Experiment E5 — Figure 3: the µ = ∞ watched process is null recurrent.

The reduced chain of Section VIII-D evolves, in its top layer, as a zero-drift
random walk and is therefore null recurrent: excursions away from small
populations have no finite mean peak.  The experiment

* verifies the zero top-layer drift analytically,
* simulates successive excursions and shows the running mean of excursion
  peaks keeps growing with the number of excursions (no stabilisation),
* contrasts this with a *positive-recurrent* finite-µ flash-crowd system whose
  excursion peaks have a stable mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..analysis.tables import format_table
from ..limits.mu_infinity import MuInfinityChain
from ..simulation.rng import SeedLike, spawn_generators


@dataclass
class MuInfinityResult:
    """Summary of the null-recurrence evidence for the watched process."""

    num_pieces: int
    arrival_rate_per_piece: float
    top_layer_drift: float
    block_sizes: List[int]
    running_mean_peaks: List[float]
    running_max_peaks: List[int]

    def report(self) -> str:
        rows = [
            (block, mean, peak)
            for block, mean, peak in zip(
                self.block_sizes, self.running_mean_peaks, self.running_max_peaks
            )
        ]
        return format_table(
            headers=["excursions", "running mean peak", "running max peak"],
            rows=rows,
            title=(
                f"Figure 3 (mu = inf, K={self.num_pieces}): top-layer drift = "
                f"{self.top_layer_drift:g}; growing excursion peaks indicate null recurrence"
            ),
        )

    @property
    def peaks_keep_growing(self) -> bool:
        """True when the running mean of the peaks increases across blocks."""
        means = self.running_mean_peaks
        return all(later >= earlier for earlier, later in zip(means, means[1:]))


def run_mu_infinity_experiment(
    num_pieces: int = 3,
    arrival_rate_per_piece: float = 1.0,
    block_sizes: Sequence[int] = (50, 200, 800),
    seed: SeedLike = 55,
) -> MuInfinityResult:
    """Simulate excursions of the watched process in increasing blocks."""
    chain = MuInfinityChain(
        num_pieces=num_pieces, arrival_rate_per_piece=arrival_rate_per_piece
    )
    blocks = sorted(set(int(b) for b in block_sizes))
    rngs = spawn_generators(seed, 1)
    peaks = chain.excursion_peaks(max(blocks), seed=rngs[0])
    running_means = [float(np.mean(peaks[:block])) for block in blocks]
    running_maxes = [int(np.max(peaks[:block])) for block in blocks]
    return MuInfinityResult(
        num_pieces=num_pieces,
        arrival_rate_per_piece=arrival_rate_per_piece,
        top_layer_drift=chain.top_layer_drift(),
        block_sizes=blocks,
        running_mean_peaks=running_means,
        running_max_peaks=running_maxes,
    )


__all__ = ["MuInfinityResult", "run_mu_infinity_experiment"]
