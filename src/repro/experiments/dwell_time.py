"""Experiment E8 — the headline corollary: one extra piece is enough.

For a fixed arrival rate and a small fixed-seed rate, Theorem 1 identifies the
largest peer-seed departure rate ``γ*`` (smallest mean dwell time ``1/γ*``)
for which the system is stable; the corollary says ``γ* ≥ µ``, i.e. a mean
dwell long enough to upload a single piece always suffices (provided every
piece can enter the system).

The experiment sweeps ``γ`` across ``γ*`` and compares verdicts, and reports
``1/γ*`` against ``1/µ``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..core.parameters import SystemParameters
from ..core.stability import critical_departure_rate, minimum_mean_dwell_time
from ..simulation.rng import SeedLike
from .runner import SweepResult, run_sweep


@dataclass
class DwellTimeResult:
    """Sweep outcome plus the theoretical critical dwell time."""

    critical_gamma: float
    minimum_dwell: float
    peer_rate: float
    sweep: SweepResult

    def report(self) -> str:
        title = (
            "Peer-seed dwell time: critical gamma* = "
            f"{self.critical_gamma:.4g} (minimum mean dwell {self.minimum_dwell:.4g}, "
            f"one-piece upload time 1/mu = {1.0 / self.peer_rate:.4g})"
        )
        return format_table(
            headers=["gamma", "theory", "simulated", "norm. slope", "mean n"],
            rows=self.sweep.table_rows(),
            title=title,
        )


def dwell_parameters(
    gamma: float,
    arrival_rate: float = 2.0,
    seed_rate: float = 0.2,
    num_pieces: int = 3,
    peer_rate: float = 1.0,
) -> SystemParameters:
    """Flash-crowd parameters with the given peer-seed departure rate."""
    return SystemParameters.flash_crowd(
        num_pieces=num_pieces,
        arrival_rate=arrival_rate,
        seed_rate=seed_rate,
        peer_rate=peer_rate,
        seed_departure_rate=gamma,
    )


def run_dwell_time_experiment(
    arrival_rate: float = 2.0,
    seed_rate: float = 0.2,
    num_pieces: int = 3,
    peer_rate: float = 1.0,
    gamma_values: Sequence[float] = (0.8, 1.05, 2.0, math.inf),
    horizon: float = 250.0,
    replications: int = 2,
    seed: SeedLike = 88,
    max_population: int = 4000,
    backend: str = "object",
    workers: Optional[int] = None,
) -> DwellTimeResult:
    """Sweep the peer-seed departure rate ``γ`` across the critical value."""
    reference = dwell_parameters(
        gamma=2.0,
        arrival_rate=arrival_rate,
        seed_rate=seed_rate,
        num_pieces=num_pieces,
        peer_rate=peer_rate,
    )
    critical = critical_departure_rate(reference)
    minimum_dwell = minimum_mean_dwell_time(reference)
    points: List[Tuple[str, SystemParameters]] = []
    for gamma in gamma_values:
        label = "inf" if math.isinf(gamma) else f"{gamma:g}"
        points.append(
            (
                label,
                dwell_parameters(
                    gamma=gamma,
                    arrival_rate=arrival_rate,
                    seed_rate=seed_rate,
                    num_pieces=num_pieces,
                    peer_rate=peer_rate,
                ),
            )
        )
    sweep = run_sweep(
        name="dwell-time",
        points=points,
        horizon=horizon,
        replications=replications,
        seed=seed,
        max_population=max_population,
        backend=backend,
        workers=workers,
    )
    return DwellTimeResult(
        critical_gamma=critical,
        minimum_dwell=minimum_dwell,
        peer_rate=peer_rate,
        sweep=sweep,
    )


__all__ = ["DwellTimeResult", "dwell_parameters", "run_dwell_time_experiment"]
