"""Experiment definitions reproducing the paper's figures and worked examples.

One module per experiment of the DESIGN.md index:

* E1 :mod:`repro.experiments.example1`  — Figure 1(a), single piece;
* E2 :mod:`repro.experiments.example2`  — Figure 1(b), two arrival classes;
* E3 :mod:`repro.experiments.example3`  — Figure 1(c), one-piece arrivals;
* E4 :mod:`repro.experiments.one_club`  — Figure 2, missing piece syndrome;
* E5 :mod:`repro.experiments.mu_infinity_exp` — Figure 3, µ = ∞ watched chain;
* E6 :mod:`repro.experiments.coding`    — Theorem 15 worked example;
* E7 :mod:`repro.experiments.policy`    — Theorem 14, policy insensitivity;
* E8 :mod:`repro.experiments.dwell_time` — the one-extra-piece corollary;
* E9 :mod:`repro.experiments.lyapunov_exp` — Section VII drift verification;
* E10 :mod:`repro.experiments.queueing_exp` — appendix bounds;
* E11 :mod:`repro.experiments.scenarios` — one-club dynamics under scenario
  workloads (flash crowd, seed outage, heterogeneous classes, ...);
* E12 :mod:`repro.experiments.fleet` — fleet phase diagram: one-club capture
  prevalence over the ``(λ, U_s)`` plane, per-scenario breakdown;
* E13 :mod:`repro.experiments.topology` — capture prevalence vs. overlay
  degree across contact topologies (vs. the complete-graph baseline);
* E14 :mod:`repro.experiments.gossip` — capture prevalence vs. gossip-census
  staleness under rarest-first (vs. the exact-oracle baseline).

The :mod:`repro.experiments.runner` module provides the shared stability-trial
harness plus the batched :func:`~repro.experiments.runner.run_scenario`
entry point; fleets run through :mod:`repro.fleet`.
"""

from .coding import CodingResult, run_coding_experiment
from .dwell_time import DwellTimeResult, run_dwell_time_experiment
from .example1 import Example1Result, run_example1
from .example2 import Example2Result, run_example2
from .example3 import Example3Result, run_example3
from .fleet import (
    FleetPhaseDiagramResult,
    PhaseCell,
    run_fleet_phase_diagram,
)
from .gossip import (
    GossipCell,
    GossipCensusResult,
    run_gossip_census_experiment,
)
from .lyapunov_exp import LyapunovResult, run_lyapunov_experiment
from .mu_infinity_exp import MuInfinityResult, run_mu_infinity_experiment
from .one_club import OneClubResult, run_one_club_experiment
from .policy import PolicyResult, run_policy_experiment
from .queueing_exp import QueueingBoundsResult, run_queueing_bounds_experiment
from .runner import (
    StabilityTrialResult,
    SweepResult,
    run_scenario,
    run_stability_trial,
    run_sweep,
)
from .scenarios import (
    ScenarioDynamicsResult,
    ScenarioDynamicsRun,
    run_scenario_dynamics,
)
from .topology import (
    TopologyCell,
    TopologySweepResult,
    run_topology_sweep,
)

__all__ = [
    "CodingResult",
    "DwellTimeResult",
    "Example1Result",
    "Example2Result",
    "Example3Result",
    "FleetPhaseDiagramResult",
    "GossipCell",
    "GossipCensusResult",
    "LyapunovResult",
    "PhaseCell",
    "MuInfinityResult",
    "OneClubResult",
    "PolicyResult",
    "QueueingBoundsResult",
    "ScenarioDynamicsResult",
    "ScenarioDynamicsRun",
    "StabilityTrialResult",
    "SweepResult",
    "TopologyCell",
    "TopologySweepResult",
    "run_coding_experiment",
    "run_dwell_time_experiment",
    "run_example1",
    "run_example2",
    "run_example3",
    "run_fleet_phase_diagram",
    "run_gossip_census_experiment",
    "run_lyapunov_experiment",
    "run_mu_infinity_experiment",
    "run_one_club_experiment",
    "run_policy_experiment",
    "run_queueing_bounds_experiment",
    "run_scenario",
    "run_scenario_dynamics",
    "run_stability_trial",
    "run_sweep",
    "run_topology_sweep",
]
