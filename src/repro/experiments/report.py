"""Run the full experiment suite and emit a combined report.

This is the "regenerate everything" entry point::

    python -m repro.experiments.report                 # full settings
    python -m repro.experiments.report --quick         # reduced horizons
    python -m repro.experiments.report --only E1 E6    # a subset
    python -m repro.experiments.report --output-dir results/

Each experiment prints its paper-vs-measured table; with ``--output-dir`` the
tables are also written as text files (one per experiment) for inclusion in
reports.  The same experiments are exercised, one per benchmark, by
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import argparse
import math
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from .coding import run_coding_experiment
from .dwell_time import run_dwell_time_experiment
from .example1 import run_example1
from .example2 import run_example2
from .example3 import run_example3
from .lyapunov_exp import run_lyapunov_experiment
from .mu_infinity_exp import run_mu_infinity_experiment
from .one_club import run_one_club_experiment
from .policy import run_policy_experiment
from .queueing_exp import run_queueing_bounds_experiment

ExperimentRunner = Callable[[bool], object]


def _scale(quick: bool, full_value: float, quick_value: float) -> float:
    return quick_value if quick else full_value


def _run_e1(quick: bool):
    return run_example1(
        horizon=_scale(quick, 250.0, 120.0),
        replications=1 if quick else 2,
    )


def _run_e2(quick: bool):
    return run_example2(
        horizon=_scale(quick, 250.0, 120.0),
        replications=1 if quick else 2,
    )


def _run_e3(quick: bool):
    return run_example3(
        horizon=_scale(quick, 250.0, 120.0),
        replications=1 if quick else 2,
    )


def _run_e4(quick: bool):
    return run_one_club_experiment(
        horizon=_scale(quick, 120.0, 60.0),
        replications=1 if quick else 2,
        initial_club_size=40 if quick else 60,
    )


def _run_e5(quick: bool):
    return run_mu_infinity_experiment(block_sizes=(20, 80) if quick else (50, 200, 800))


def _run_e6(quick: bool):
    return run_coding_experiment(
        num_pieces=6 if quick else 8,
        field_size=5 if quick else 7,
        horizon=_scale(quick, 200.0, 80.0),
    )


def _run_e7(quick: bool):
    return run_policy_experiment(
        horizon=_scale(quick, 220.0, 100.0),
        replications=1 if quick else 2,
    )


def _run_e8(quick: bool):
    return run_dwell_time_experiment(
        horizon=_scale(quick, 280.0, 200.0),
        replications=1 if quick else 2,
        gamma_values=(0.8, math.inf) if quick else (0.8, 1.05, 2.0, math.inf),
    )


def _run_e9(quick: bool):
    return run_lyapunov_experiment(
        populations=(400,) if quick else (200, 500),
        states_per_population=4 if quick else 10,
    )


def _run_e10(quick: bool):
    return run_queueing_bounds_experiment(
        num_paths=40 if quick else 200,
        horizon=_scale(quick, 200.0, 80.0),
        offsets=(20.0,) if quick else (20.0, 40.0),
    )


EXPERIMENTS: Dict[str, Tuple[str, ExperimentRunner]] = {
    "E1": ("Figure 1(a) / Example 1: single piece", _run_e1),
    "E2": ("Figure 1(b) / Example 2: two arrival classes", _run_e2),
    "E3": ("Figure 1(c) / Example 3: one-piece arrivals", _run_e3),
    "E4": ("Figure 2: missing piece syndrome", _run_e4),
    "E5": ("Figure 3: mu = infinity watched process", _run_e5),
    "E6": ("Theorem 15: network coding", _run_e6),
    "E7": ("Theorem 14: policy insensitivity", _run_e7),
    "E8": ("One-extra-piece corollary: dwell sweep", _run_e8),
    "E9": ("Section VII: Lyapunov drift", _run_e9),
    "E10": ("Appendix bounds", _run_e10),
}


def run_experiments(
    only: Optional[List[str]] = None,
    quick: bool = False,
    output_dir: Optional[Path] = None,
) -> Dict[str, str]:
    """Run the selected experiments and return their text reports by id.

    ``only`` restricts the set (default: all ten).  ``quick`` shrinks horizons
    and replication counts for smoke runs.  ``output_dir`` additionally writes
    one ``<id>.txt`` file per experiment.
    """
    selected = list(EXPERIMENTS) if not only else [key.upper() for key in only]
    unknown = [key for key in selected if key not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment id(s): {unknown}; known: {list(EXPERIMENTS)}")
    reports: Dict[str, str] = {}
    for key in selected:
        title, runner = EXPERIMENTS[key]
        result = runner(quick)
        reports[key] = f"{key}  {title}\n\n{result.report()}"
    if output_dir is not None:
        output_dir = Path(output_dir)
        output_dir.mkdir(parents=True, exist_ok=True)
        for key, text in reports.items():
            (output_dir / f"{key}.txt").write_text(text + "\n")
    return reports


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's figures and worked examples."
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        metavar="ID",
        help="experiment ids to run (E1..E10); default: all",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced horizons and replications"
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="also write one text report per experiment into this directory",
    )
    args = parser.parse_args(argv)
    reports = run_experiments(only=args.only, quick=args.quick, output_dir=args.output_dir)
    for key in reports:
        print("=" * 78)
        print(reports[key])
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
