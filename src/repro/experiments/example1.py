"""Experiment E1 — Example 1 / Figure 1(a): the single-piece system.

The file is a single piece; empty-handed peers arrive at rate ``λ_0``, the
fixed seed uploads at rate ``U_s`` and completed peers dwell as peer seeds for
an Exp(γ) time.  Theorem 1 (confirming Leskelä--Robert--Simatos [12]) gives
the threshold ``λ_0^* = U_s / (1 − µ/γ)`` when ``µ < γ``, and stability for
every ``λ_0`` when ``γ ≤ µ``.

The experiment sweeps ``λ_0`` across the threshold and compares the verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..core.parameters import SystemParameters
from ..core.stability import piece_threshold
from ..simulation.rng import SeedLike
from .runner import SweepResult, run_sweep


@dataclass
class Example1Result:
    """Sweep outcome plus the theoretical threshold."""

    threshold: float
    sweep: SweepResult

    def report(self) -> str:
        rows = [
            (label, theory, empirical, slope, population)
            for label, theory, empirical, slope, population in self.sweep.table_rows()
        ]
        table = format_table(
            headers=["lambda_0", "theory", "simulated", "norm. slope", "mean n"],
            rows=rows,
            title=(
                "Example 1 (K=1): threshold lambda_0* = "
                f"{self.threshold:.4g}"
            ),
        )
        return table


def example1_parameters(
    arrival_rate: float,
    seed_rate: float = 2.0,
    peer_rate: float = 1.0,
    seed_departure_rate: float = 2.0,
) -> SystemParameters:
    """Parameter set of Example 1 at a given arrival rate."""
    return SystemParameters.single_piece(
        arrival_rate=arrival_rate,
        seed_rate=seed_rate,
        peer_rate=peer_rate,
        seed_departure_rate=seed_departure_rate,
    )


def run_example1(
    seed_rate: float = 2.0,
    peer_rate: float = 1.0,
    seed_departure_rate: float = 2.0,
    relative_rates: Sequence[float] = (0.5, 0.8, 1.5, 2.0),
    horizon: float = 250.0,
    replications: int = 2,
    seed: SeedLike = 11,
    max_population: int = 4000,
    backend: str = "object",
    workers: Optional[int] = None,
) -> Example1Result:
    """Sweep ``λ_0`` at the given multiples of the theoretical threshold.

    ``backend`` / ``workers`` select the simulation engine and the number of
    batch-replication processes (see :class:`~repro.experiments.runner.BatchRunner`).
    """
    reference = example1_parameters(
        arrival_rate=1.0,
        seed_rate=seed_rate,
        peer_rate=peer_rate,
        seed_departure_rate=seed_departure_rate,
    )
    threshold = piece_threshold(reference, piece=1)
    points: List[Tuple[str, SystemParameters]] = []
    for multiple in relative_rates:
        arrival = multiple * threshold
        points.append(
            (
                f"{arrival:.3g} ({multiple:.2g}x)",
                example1_parameters(
                    arrival_rate=arrival,
                    seed_rate=seed_rate,
                    peer_rate=peer_rate,
                    seed_departure_rate=seed_departure_rate,
                ),
            )
        )
    sweep = run_sweep(
        name="example1",
        points=points,
        horizon=horizon,
        replications=replications,
        seed=seed,
        max_population=max_population,
        backend=backend,
        workers=workers,
    )
    return Example1Result(threshold=threshold, sweep=sweep)


__all__ = ["Example1Result", "example1_parameters", "run_example1"]
