"""Queueing substrates used by the proofs (appendix of the paper).

* :mod:`repro.queueing.mgi_inf` — M/GI/∞ queue simulation, stationary mean,
  and the maximal bound of Lemma 21;
* Kingman's compound-Poisson moment bound lives in
  :mod:`repro.simulation.processes` and is re-exported here for convenience.
"""

from ..simulation.processes import (
    CompoundPoissonProcess,
    kingman_exceedance_bound,
)
from .mgi_inf import (
    MGInfinityQueue,
    MGInfinityTrajectory,
    erlang_plus_exponential_mean,
    erlang_plus_exponential_sampler,
    maximal_exceedance_bound,
    stationary_mean,
)

__all__ = [
    "CompoundPoissonProcess",
    "MGInfinityQueue",
    "MGInfinityTrajectory",
    "erlang_plus_exponential_mean",
    "erlang_plus_exponential_sampler",
    "kingman_exceedance_bound",
    "maximal_exceedance_bound",
    "stationary_mean",
]
