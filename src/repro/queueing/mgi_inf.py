"""M/GI/∞ queue: simulation, exact formulas, and the maximal bound of Lemma 21.

The transience proof dominates the young/infected/gifted population by an
M/GI/∞ queue whose service time is the sum of ``K`` exponential download
times plus an exponential seed dwell time.  This module provides:

* :class:`MGInfinityQueue` — a simulator driven by an arbitrary service-time
  sampler, returning the occupancy trajectory;
* :func:`stationary_mean` — the textbook ``E[M] = λ E[S]`` identity;
* :func:`maximal_exceedance_bound` — Lemma 21's bound on
  ``P{M_t ≥ B + εt for some t}``;
* :func:`erlang_plus_exponential_sampler` — the specific service law of
  Lemma 5 (``K`` downloads at rate ``µ(1−ξ)`` then an Exp(γ) dwell).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..simulation.rng import SeedLike, make_rng, poisson_arrival_times


ServiceSampler = Callable[[np.random.Generator, int], np.ndarray]


@dataclass
class MGInfinityTrajectory:
    """Occupancy of the M/GI/∞ system sampled on a regular grid."""

    sample_times: np.ndarray
    occupancy: np.ndarray
    arrival_times: np.ndarray
    departure_times: np.ndarray

    @property
    def peak(self) -> int:
        return int(self.occupancy.max()) if self.occupancy.size else 0

    def mean_occupancy(self) -> float:
        return float(self.occupancy.mean()) if self.occupancy.size else 0.0


class MGInfinityQueue:
    """An M/GI/∞ queue with Poisson arrivals and i.i.d. service times."""

    def __init__(self, arrival_rate: float, service_sampler: ServiceSampler):
        if arrival_rate < 0:
            raise ValueError("arrival_rate must be nonnegative")
        self.arrival_rate = arrival_rate
        self._sampler = service_sampler

    def simulate(
        self,
        horizon: float,
        seed: SeedLike = None,
        num_samples: int = 200,
    ) -> MGInfinityTrajectory:
        """Simulate on ``[0, horizon]`` starting empty."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = make_rng(seed)
        arrivals = poisson_arrival_times(rng, self.arrival_rate, horizon)
        services = (
            np.asarray(self._sampler(rng, arrivals.size), dtype=float)
            if arrivals.size
            else np.empty(0)
        )
        if services.size and (services < 0).any():
            raise ValueError("service sampler produced negative service times")
        departures = arrivals + services
        grid = np.linspace(0.0, horizon, num_samples)
        # Occupancy at time t = #{arrivals <= t} - #{departures <= t}.
        occupancy = np.searchsorted(np.sort(arrivals), grid, side="right") - np.searchsorted(
            np.sort(departures), grid, side="right"
        )
        return MGInfinityTrajectory(
            sample_times=grid,
            occupancy=occupancy.astype(int),
            arrival_times=arrivals,
            departure_times=departures,
        )


def stationary_mean(arrival_rate: float, mean_service_time: float) -> float:
    """``E[M] = λ E[S]`` for the stationary M/GI/∞ queue."""
    if arrival_rate < 0 or mean_service_time < 0:
        raise ValueError("rates and means must be nonnegative")
    return arrival_rate * mean_service_time


def maximal_exceedance_bound(
    arrival_rate: float,
    mean_service_time: float,
    offset: float,
    slope: float,
) -> float:
    """Lemma 21: bound on ``P{M_t ≥ B + εt for some t ≥ 0}`` from an empty start.

    The bound is ``exp(λ(m + 1)) 2^{−B} / (1 − 2^{−ε})``; values above one are
    clipped to one (the bound is then vacuous).
    """
    if offset <= 0 or slope <= 0:
        return 1.0
    bound = (
        math.exp(arrival_rate * (mean_service_time + 1.0))
        * 2.0 ** (-offset)
        / (1.0 - 2.0 ** (-slope))
    )
    return min(1.0, bound)


def erlang_plus_exponential_sampler(
    num_stages: int, stage_rate: float, dwell_rate: float
) -> ServiceSampler:
    """Service law of Lemma 5: ``num_stages`` Exp(stage_rate) stages plus Exp(dwell_rate).

    ``dwell_rate = inf`` omits the dwell stage (peers that leave immediately).
    """
    if num_stages < 0:
        raise ValueError("num_stages must be nonnegative")
    if stage_rate <= 0:
        raise ValueError("stage_rate must be positive")

    def sampler(rng: np.random.Generator, count: int) -> np.ndarray:
        if count == 0:
            return np.empty(0)
        total = np.zeros(count)
        if num_stages:
            total += rng.gamma(shape=num_stages, scale=1.0 / stage_rate, size=count)
        if not math.isinf(dwell_rate):
            if dwell_rate <= 0:
                raise ValueError("dwell_rate must be positive or inf")
            total += rng.exponential(1.0 / dwell_rate, size=count)
        return total

    return sampler


def erlang_plus_exponential_mean(
    num_stages: int, stage_rate: float, dwell_rate: float
) -> float:
    """Mean of the Lemma-5 service law: ``K/(µ(1−ξ)) + 1/γ``."""
    dwell = 0.0 if math.isinf(dwell_rate) else 1.0 / dwell_rate
    return num_stages / stage_rate + dwell


__all__ = [
    "MGInfinityQueue",
    "MGInfinityTrajectory",
    "ServiceSampler",
    "erlang_plus_exponential_mean",
    "erlang_plus_exponential_sampler",
    "maximal_exceedance_bound",
    "stationary_mean",
]
