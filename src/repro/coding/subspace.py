"""Subspaces of GF(p)^K represented by row-reduced bases.

In the network-coded system the "type" of a peer is the subspace of
``GF(q)^K`` spanned by the coding vectors of the pieces it has received
(Section VIII-B).  A :class:`Subspace` maintains a basis in reduced row
echelon form so that dimension, membership, containment and the usefulness of
a new coded piece are all cheap to evaluate.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from .gf import PrimeField


def rref(matrix: np.ndarray, field: PrimeField) -> np.ndarray:
    """Reduced row echelon form over GF(p); zero rows are dropped."""
    work = field.reduce(np.array(matrix, dtype=np.int64, copy=True))
    if work.ndim != 2:
        raise ValueError("matrix must be 2-D")
    rows, cols = work.shape
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        pivot = None
        for row in range(pivot_row, rows):
            if work[row, col] != 0:
                pivot = row
                break
        if pivot is None:
            continue
        if pivot != pivot_row:
            work[[pivot_row, pivot]] = work[[pivot, pivot_row]]
        inv = field.inverse(int(work[pivot_row, col]))
        work[pivot_row] = field.scale(work[pivot_row], inv)
        for row in range(rows):
            if row != pivot_row and work[row, col] != 0:
                factor = int(work[row, col])
                work[row] = field.reduce(work[row] - factor * work[pivot_row])
        pivot_row += 1
    nonzero = [row for row in range(rows) if work[row].any()]
    return work[nonzero] if nonzero else np.zeros((0, cols), dtype=np.int64)


class Subspace:
    """A subspace of GF(p)^K stored as an RREF basis (rows)."""

    __slots__ = ("field", "ambient_dim", "_basis")

    def __init__(
        self,
        field: PrimeField,
        ambient_dim: int,
        vectors: Optional[Iterable[Sequence[int]]] = None,
    ):
        if ambient_dim < 1:
            raise ValueError("ambient_dim must be >= 1")
        self.field = field
        self.ambient_dim = ambient_dim
        if vectors is None:
            self._basis = np.zeros((0, ambient_dim), dtype=np.int64)
        else:
            matrix = np.array(list(vectors), dtype=np.int64)
            if matrix.size == 0:
                self._basis = np.zeros((0, ambient_dim), dtype=np.int64)
            else:
                if matrix.ndim == 1:
                    matrix = matrix.reshape(1, -1)
                if matrix.shape[1] != ambient_dim:
                    raise ValueError(
                        f"vectors have length {matrix.shape[1]}, expected {ambient_dim}"
                    )
                self._basis = rref(matrix, field)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def zero(cls, field: PrimeField, ambient_dim: int) -> "Subspace":
        return cls(field, ambient_dim)

    @classmethod
    def full(cls, field: PrimeField, ambient_dim: int) -> "Subspace":
        return cls(field, ambient_dim, np.eye(ambient_dim, dtype=np.int64))

    # -- basic queries ------------------------------------------------------------

    @property
    def basis(self) -> np.ndarray:
        """Copy of the RREF basis (rows are basis vectors)."""
        return self._basis.copy()

    @property
    def dimension(self) -> int:
        return self._basis.shape[0]

    @property
    def is_full(self) -> bool:
        return self.dimension == self.ambient_dim

    @property
    def is_zero(self) -> bool:
        return self.dimension == 0

    def contains(self, vector: Sequence[int]) -> bool:
        """True if ``vector`` lies in the subspace."""
        candidate = self.field.reduce(np.asarray(vector, dtype=np.int64))
        if candidate.shape != (self.ambient_dim,):
            raise ValueError("vector has wrong length")
        if not candidate.any():
            return True
        stacked = np.vstack([self._basis, candidate]) if self.dimension else candidate.reshape(1, -1)
        return rref(stacked, self.field).shape[0] == self.dimension

    def is_useful(self, vector: Sequence[int]) -> bool:
        """True if adding ``vector`` would increase the dimension."""
        return not self.contains(vector)

    def contains_subspace(self, other: "Subspace") -> bool:
        """True if ``other ⊆ self``."""
        self._check_compatible(other)
        return all(self.contains(row) for row in other._basis)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Subspace):
            return NotImplemented
        return (
            self.field == other.field
            and self.ambient_dim == other.ambient_dim
            and self._basis.shape == other._basis.shape
            and bool(np.array_equal(self._basis, other._basis))
        )

    def __hash__(self) -> int:
        return hash(
            (self.field.p, self.ambient_dim, self._basis.shape[0], self._basis.tobytes())
        )

    def __repr__(self) -> str:
        return (
            f"Subspace(dim={self.dimension}, ambient={self.ambient_dim}, "
            f"p={self.field.p})"
        )

    def _check_compatible(self, other: "Subspace") -> None:
        if self.field != other.field or self.ambient_dim != other.ambient_dim:
            raise ValueError("subspaces live in different ambient spaces")

    # -- lattice operations --------------------------------------------------------

    def add_vector(self, vector: Sequence[int]) -> "Subspace":
        """Subspace spanned by this one and ``vector``."""
        candidate = self.field.reduce(np.asarray(vector, dtype=np.int64)).reshape(1, -1)
        stacked = np.vstack([self._basis, candidate]) if self.dimension else candidate
        result = Subspace(self.field, self.ambient_dim)
        result._basis = rref(stacked, self.field)
        return result

    def sum(self, other: "Subspace") -> "Subspace":
        """The subspace ``self + other``."""
        self._check_compatible(other)
        if self.dimension == 0:
            return other
        if other.dimension == 0:
            return self
        stacked = np.vstack([self._basis, other._basis])
        result = Subspace(self.field, self.ambient_dim)
        result._basis = rref(stacked, self.field)
        return result

    def intersection_dimension(self, other: "Subspace") -> int:
        """``dim(self ∩ other)`` via the dimension formula."""
        self._check_compatible(other)
        return self.dimension + other.dimension - self.sum(other).dimension

    # -- sampling --------------------------------------------------------------------

    def random_vector(self, rng: np.random.Generator) -> np.ndarray:
        """A uniformly random vector of the subspace (zero vector possible)."""
        if self.dimension == 0:
            return np.zeros(self.ambient_dim, dtype=np.int64)
        return self.field.random_combination(self._basis, rng)

    def useful_probability_for(self, receiver: "Subspace") -> float:
        """Probability a random vector of this subspace is useful to ``receiver``.

        Equals ``1 − q^{dim(self ∩ receiver) − dim(self)}`` (Section VIII-B).
        """
        self._check_compatible(receiver)
        if self.dimension == 0:
            return 0.0
        exponent = self.intersection_dimension(receiver) - self.dimension
        return 1.0 - float(self.field.p) ** exponent


def random_subspace(
    field: PrimeField,
    ambient_dim: int,
    dimension: int,
    rng: np.random.Generator,
) -> Subspace:
    """A random subspace of the requested dimension (uniform basis draws)."""
    if not 0 <= dimension <= ambient_dim:
        raise ValueError("dimension out of range")
    subspace = Subspace.zero(field, ambient_dim)
    while subspace.dimension < dimension:
        subspace = subspace.add_vector(field.random_vector(ambient_dim, rng))
    return subspace


__all__ = ["Subspace", "rref", "random_subspace"]
