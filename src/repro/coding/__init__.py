"""Finite-field linear algebra for random linear network coding.

* :mod:`repro.coding.gf` — arithmetic over prime fields GF(p);
* :mod:`repro.coding.subspace` — subspaces of GF(p)^K with RREF bases,
  the peer "types" of the network-coded system (Section VIII-B).
"""

from .gf import PrimeField, is_prime
from .subspace import Subspace, random_subspace, rref

__all__ = ["PrimeField", "Subspace", "is_prime", "random_subspace", "rref"]
