"""Arithmetic over prime finite fields GF(p).

The network-coding simulator only needs vector arithmetic over a prime field
(the theory allows any prime power; restricting the *simulator* to primes
keeps the arithmetic elementary while exercising exactly the same code paths).
Vectors are numpy integer arrays reduced modulo ``p``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def is_prime(value: int) -> bool:
    """Trial-division primality test (fields used here are tiny)."""
    if value < 2:
        return False
    if value in (2, 3):
        return True
    if value % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


class PrimeField:
    """The finite field GF(p) for a prime ``p``.

    Provides scalar inverses and vector operations used by Gaussian
    elimination over the field.
    """

    def __init__(self, p: int):
        if not is_prime(p):
            raise ValueError(f"field order must be prime, got {p}")
        self.p = p
        # Precompute inverses by Fermat's little theorem; p is small.
        self._inverses = np.array(
            [0] + [pow(a, p - 2, p) for a in range(1, p)], dtype=np.int64
        )

    def __repr__(self) -> str:
        return f"PrimeField(p={self.p})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))

    # -- scalar operations ----------------------------------------------------

    def inverse(self, value: int) -> int:
        """Multiplicative inverse of a nonzero element."""
        value = int(value) % self.p
        if value == 0:
            raise ZeroDivisionError("zero has no multiplicative inverse")
        return int(self._inverses[value])

    # -- vector operations ------------------------------------------------------

    def reduce(self, vector: np.ndarray) -> np.ndarray:
        """Reduce an integer vector (or matrix) modulo ``p``."""
        return np.mod(np.asarray(vector, dtype=np.int64), self.p)

    def add(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        return self.reduce(np.asarray(left, dtype=np.int64) + np.asarray(right, dtype=np.int64))

    def scale(self, vector: np.ndarray, scalar: int) -> np.ndarray:
        return self.reduce(np.asarray(vector, dtype=np.int64) * (int(scalar) % self.p))

    def dot(self, left: np.ndarray, right: np.ndarray) -> int:
        return int(
            np.mod(
                np.asarray(left, dtype=np.int64) @ np.asarray(right, dtype=np.int64),
                self.p,
            )
        )

    def random_vector(
        self, length: int, rng: np.random.Generator, nonzero: bool = False
    ) -> np.ndarray:
        """A uniformly random vector in GF(p)^length (optionally nonzero)."""
        if length < 1:
            raise ValueError("length must be >= 1")
        while True:
            vector = rng.integers(0, self.p, size=length, dtype=np.int64)
            if not nonzero or vector.any():
                return vector

    def random_combination(
        self, basis: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """A uniformly random linear combination of the rows of ``basis``."""
        basis = np.asarray(basis, dtype=np.int64)
        if basis.ndim != 2:
            raise ValueError("basis must be a 2-D array (rows are vectors)")
        coefficients = rng.integers(0, self.p, size=basis.shape[0], dtype=np.int64)
        return self.reduce(coefficients @ basis)


__all__ = ["PrimeField", "is_prime"]
