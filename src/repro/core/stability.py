r"""Stability region of the P2P system — Theorem 1 of the paper.

For ``0 < µ < γ ≤ ∞`` the chain is

* **transient** if for some piece ``k``

  .. math::

     λ_{total} > \frac{U_s + \sum_{C: k ∈ C} λ_C (K + 1 - |C|)}{1 - µ/γ},

* **positive recurrent** (with ``E[N] < ∞``) if the reverse strict inequality
  holds for *every* piece ``k``.

For ``0 < γ ≤ µ`` the chain is positive recurrent as soon as every piece can
enter the system and transient when some piece cannot.  The two statements are
connected by the quantity (Eq. (4))

.. math::

   Δ_S = \sum_{C ⊆ S} λ_C
       - \frac{U_s + \sum_{C ⊄ S} λ_C (K - |C| + µ/γ)}{1 - µ/γ},

whose sign at ``S = F − {k}`` matches the per-piece condition above.

This module computes ``Δ_S``, the per-piece thresholds, an overall verdict,
stability margins, and critical parameter values (seed rate, arrival scale,
dwell time) used by the experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from .parameters import SystemParameters
from .types import PieceSet, all_types, format_type


class Stability(Enum):
    """Verdict of Theorem 1 for a given parameter set."""

    STABLE = "stable"
    UNSTABLE = "unstable"
    BORDERLINE = "borderline"


@dataclass(frozen=True)
class PieceCondition:
    """Per-piece numbers entering Theorem 1.

    ``threshold`` is the right-hand side of Eq. (3); the system is stable only
    if ``lambda_total < threshold`` for every piece, and unstable as soon as
    ``lambda_total > threshold`` for some piece.  ``delta`` is ``Δ_{F−{k}}``
    from Eq. (4) — negative iff the strict inequality (3) holds.
    """

    piece: int
    threshold: float
    delta: float
    can_enter: bool


@dataclass(frozen=True)
class StabilityReport:
    """Full output of the Theorem-1 analysis for one parameter set."""

    verdict: Stability
    regime: str
    piece_conditions: Tuple[PieceCondition, ...]
    critical_piece: Optional[int]
    margin: float

    @property
    def is_stable(self) -> bool:
        return self.verdict is Stability.STABLE

    @property
    def is_unstable(self) -> bool:
        return self.verdict is Stability.UNSTABLE

    def describe(self) -> str:
        lines = [f"verdict: {self.verdict.value} (regime: {self.regime})"]
        for cond in self.piece_conditions:
            lines.append(
                f"  piece {cond.piece}: threshold={cond.threshold:g} "
                f"delta={cond.delta:+.6g} can_enter={cond.can_enter}"
            )
        if self.critical_piece is not None:
            lines.append(f"  critical piece: {self.critical_piece}")
        lines.append(f"  margin: {self.margin:+.6g}")
        return "\n".join(lines)


def delta_s(params: SystemParameters, subset: PieceSet) -> float:
    """``Δ_S`` of Eq. (4) for ``S ∈ 𝒞 − {F}``.

    ``Δ_S < 0`` for every ``S ≠ F`` is the positive-recurrence condition of
    Theorem 1(b) in the regime ``µ < γ``.  Requires ``µ < γ``; with ``γ ≤ µ``
    the quantity is not defined (the branching factor ``1/(1-µ/γ)`` diverges)
    and a ``ValueError`` is raised.
    """
    if subset.is_complete:
        raise ValueError("delta_s is defined only for S != F")
    ratio = params.mu_over_gamma
    if ratio >= 1.0:
        raise ValueError(
            "delta_s requires mu < gamma; in the regime gamma <= mu the system "
            "is stable whenever every piece can enter (Theorem 1(b))"
        )
    inside = sum(
        rate
        for type_c, rate in params.arrival_rates.items()
        if type_c.issubset(subset)
    )
    outside = sum(
        rate * (params.num_pieces - len(type_c) + ratio)
        for type_c, rate in params.arrival_rates.items()
        if not type_c.issubset(subset)
    )
    return inside - (params.seed_rate + outside) / (1.0 - ratio)


def piece_threshold(params: SystemParameters, piece: int) -> float:
    """Right-hand side of Eq. (3) for the given piece.

    This is the largest total arrival rate the system can sustain when the
    bottleneck piece is ``piece``; only meaningful when ``µ < γ``.  Returns
    ``inf`` when ``γ ≤ µ`` and the piece can enter the system (the condition
    is then vacuous), and ``0`` when the piece can never enter.
    """
    if not 1 <= piece <= params.num_pieces:
        raise ValueError(f"piece {piece} out of range 1..{params.num_pieces}")
    if not params.piece_can_enter(piece):
        return 0.0
    ratio = params.mu_over_gamma
    if ratio >= 1.0:
        return math.inf
    numerator = params.seed_rate + sum(
        rate * (params.num_pieces + 1 - len(type_c))
        for type_c, rate in params.arrival_rates.items()
        if piece in type_c
    )
    return numerator / (1.0 - ratio)


def piece_condition(params: SystemParameters, piece: int) -> PieceCondition:
    """All Theorem-1 numbers for a single piece."""
    threshold = piece_threshold(params, piece)
    can_enter = params.piece_can_enter(piece)
    if params.mu_over_gamma < 1.0:
        delta = delta_s(params, PieceSet.full(params.num_pieces).remove(piece))
    else:
        # In the regime gamma <= mu the branching factor is infinite; the
        # effective delta is -inf when the piece can enter and +inf otherwise.
        delta = -math.inf if can_enter else math.inf
    return PieceCondition(
        piece=piece, threshold=threshold, delta=delta, can_enter=can_enter
    )


def analyze(params: SystemParameters, tolerance: float = 1e-12) -> StabilityReport:
    """Apply Theorem 1 to the parameter set and return the full report.

    ``tolerance`` is the slack used to declare the borderline case: a piece
    whose margin ``threshold − λ_total`` lies within ``±tolerance`` (after
    scaling by ``max(1, λ_total)``) makes the verdict ``BORDERLINE``.
    """
    conditions = tuple(
        piece_condition(params, piece) for piece in range(1, params.num_pieces + 1)
    )
    lam = params.lambda_total
    scale = max(1.0, lam)

    if params.mu_over_gamma >= 1.0:
        regime = "gamma <= mu (infinite branching of peer seeds)"
        blocked = [c.piece for c in conditions if not c.can_enter]
        if blocked:
            return StabilityReport(
                verdict=Stability.UNSTABLE,
                regime=regime,
                piece_conditions=conditions,
                critical_piece=blocked[0],
                margin=-math.inf,
            )
        return StabilityReport(
            verdict=Stability.STABLE,
            regime=regime,
            piece_conditions=conditions,
            critical_piece=None,
            margin=math.inf,
        )

    regime = "mu < gamma"
    margins = [(c.threshold - lam, c.piece) for c in conditions]
    worst_margin, worst_piece = min(margins)
    if worst_margin > tolerance * scale:
        verdict = Stability.STABLE
        critical: Optional[int] = None
    elif worst_margin < -tolerance * scale:
        verdict = Stability.UNSTABLE
        critical = worst_piece
    else:
        verdict = Stability.BORDERLINE
        critical = worst_piece
    return StabilityReport(
        verdict=verdict,
        regime=regime,
        piece_conditions=conditions,
        critical_piece=critical,
        margin=worst_margin,
    )


def is_stable(params: SystemParameters) -> bool:
    """Shorthand: True iff Theorem 1(b) guarantees positive recurrence."""
    return analyze(params).is_stable


def is_unstable(params: SystemParameters) -> bool:
    """Shorthand: True iff Theorem 1(a) guarantees transience."""
    return analyze(params).is_unstable


def stability_margin(params: SystemParameters) -> float:
    """``min_k (threshold_k − λ_total)``; positive inside the stable region."""
    return analyze(params).margin


# ---------------------------------------------------------------------------
# Critical-parameter solvers
# ---------------------------------------------------------------------------


def critical_arrival_scale(params: SystemParameters) -> float:
    """Largest factor ``α`` such that scaling all arrivals by ``α`` stays stable.

    With all arrival rates multiplied by ``α`` both sides of Eq. (3) scale
    differently: the left side scales linearly while the right side has an
    affine dependence through the gifted-arrival term, so the boundary is
    where ``α λ_total = (U_s + α G_k) / (1 - µ/γ)`` with ``G_k`` the gifted
    sum for the worst piece.  Returns ``inf`` when the system is stable for
    every scale (``γ ≤ µ`` with all pieces entering, or every piece arrives
    with every peer).
    """
    ratio = params.mu_over_gamma
    if ratio >= 1.0:
        return math.inf if params.all_pieces_can_enter() else 0.0
    lam = params.lambda_total
    scales = []
    for piece in range(1, params.num_pieces + 1):
        gifted = sum(
            rate * (params.num_pieces + 1 - len(type_c))
            for type_c, rate in params.arrival_rates.items()
            if piece in type_c
        )
        demand = lam * (1.0 - ratio)
        # boundary: alpha * demand = Us + alpha * gifted
        if demand <= gifted:
            scales.append(math.inf)
        elif params.seed_rate == 0.0:
            scales.append(0.0)
        else:
            scales.append(params.seed_rate / (demand - gifted))
    return min(scales)


def critical_seed_rate(params: SystemParameters) -> float:
    """Smallest fixed-seed rate ``U_s`` that stabilises the given arrivals.

    Zero when the system is already stable without a fixed seed (for example
    when ``γ ≤ µ`` and arrivals inject every piece).  Returns ``inf`` only in
    the degenerate case where a piece cannot enter even with a seed, which
    cannot happen since the seed holds all pieces.
    """
    ratio = params.mu_over_gamma
    if ratio >= 1.0:
        return 0.0 if params.all_pieces_can_enter() else math.inf * 0 + 0.0
    lam = params.lambda_total
    required = 0.0
    for piece in range(1, params.num_pieces + 1):
        gifted = sum(
            rate * (params.num_pieces + 1 - len(type_c))
            for type_c, rate in params.arrival_rates.items()
            if piece in type_c
        )
        need = lam * (1.0 - ratio) - gifted
        required = max(required, need)
    return max(0.0, required)


def critical_departure_rate(params: SystemParameters) -> float:
    """Largest peer-seed departure rate ``γ`` keeping the system stable.

    Equivalently ``1/γ*`` is the smallest mean dwell time peer seeds need.
    Returns ``inf`` when the system is stable even with instant departures
    (``γ = ∞``), and a value ``≤ µ`` when the system needs peer seeds to
    upload at least one extra piece on average (the paper's corollary).
    """
    # Stable with gamma = inf?
    if analyze(params.with_departure_rate(math.inf)).is_stable:
        return math.inf
    if not params.all_pieces_can_enter():
        # Even infinite dwell cannot create copies of a piece nobody injects.
        return 0.0
    mu = params.peer_rate
    lam = params.lambda_total
    best = mu  # gamma <= mu is always sufficient when all pieces can enter
    # For gamma in (mu, inf) solve lambda_total (1 - mu/gamma) < Us + G_k
    # for the worst piece k: gamma < mu / (1 - (Us + G_k)/lambda_total).
    worst = math.inf
    for piece in range(1, params.num_pieces + 1):
        gifted = sum(
            rate * (params.num_pieces + 1 - len(type_c))
            for type_c, rate in params.arrival_rates.items()
            if piece in type_c
        )
        supply = params.seed_rate + gifted
        if supply >= lam:
            continue  # this piece is never the bottleneck
        bound = mu / (1.0 - supply / lam)
        worst = min(worst, bound)
    return max(best, worst) if worst is not math.inf else math.inf


def minimum_mean_dwell_time(params: SystemParameters) -> float:
    """Smallest mean peer-seed dwell time ``1/γ`` sufficient for stability.

    The paper's headline corollary: this never exceeds ``1/µ`` — the time to
    upload a single extra piece — provided every piece can enter the system.
    """
    gamma_star = critical_departure_rate(params)
    if gamma_star == 0.0:
        return math.inf
    if math.isinf(gamma_star):
        return 0.0
    return 1.0 / gamma_star


def stability_region_boundary_example2(lambda_34: float) -> Tuple[float, float]:
    """Example 2 boundary: stable iff ``λ_12 < 2 λ_34`` and ``λ_34 < 2 λ_12``.

    Returns the interval of ``λ_12`` values (low, high) that are stable for a
    fixed ``λ_34``.
    """
    return (lambda_34 / 2.0, 2.0 * lambda_34)


def stability_region_boundary_example3(
    lambda_rates: Tuple[float, float, float], mu: float, gamma: float
) -> List[Tuple[str, float, float]]:
    """Example 3 inequalities: for each pair (i,j) with third piece k, stable iff

    ``λ_i + λ_j < λ_k (2 + µ/γ) / (1 − µ/γ)``.

    Returns a list of ``(label, lhs, rhs)`` triples, one per inequality.
    """
    if not mu < gamma:
        raise ValueError("example 3 assumes mu < gamma")
    ratio = mu / gamma if not math.isinf(gamma) else 0.0
    amplification = (2.0 + ratio) / (1.0 - ratio)
    l1, l2, l3 = lambda_rates
    return [
        ("lambda1+lambda2 vs lambda3", l1 + l2, l3 * amplification),
        ("lambda2+lambda3 vs lambda1", l2 + l3, l1 * amplification),
        ("lambda1+lambda3 vs lambda2", l1 + l3, l2 * amplification),
    ]


def worst_case_subset(params: SystemParameters) -> Tuple[PieceSet, float]:
    """The subset ``S ≠ F`` with the largest ``Δ_S`` (the binding constraint).

    The paper observes that the maximum over all ``S`` is attained at a set of
    the form ``F − {k}``; this helper verifies that numerically by scanning
    every subset, which is feasible for the small ``K`` used in experiments.
    Only valid when ``µ < γ``.
    """
    best_subset: Optional[PieceSet] = None
    best_delta = -math.inf
    for subset in all_types(params.num_pieces, include_full=False):
        value = delta_s(params, subset)
        if value > best_delta:
            best_delta = value
            best_subset = subset
    assert best_subset is not None
    return best_subset, best_delta


__all__ = [
    "Stability",
    "PieceCondition",
    "StabilityReport",
    "delta_s",
    "piece_threshold",
    "piece_condition",
    "analyze",
    "is_stable",
    "is_unstable",
    "stability_margin",
    "critical_arrival_scale",
    "critical_seed_rate",
    "critical_departure_rate",
    "minimum_mean_dwell_time",
    "stability_region_boundary_example2",
    "stability_region_boundary_example3",
    "worst_case_subset",
]
