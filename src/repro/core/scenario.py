"""Declarative scenario layer: heterogeneous peer classes + rate schedules.

The paper proves the missing-piece syndrome for a *homogeneous* swarm with
constant arrival and seed rates.  The scenario layer lets experiments express
the non-ideal workloads the paper only gestures at — flash crowds, seed
outages, diurnal load, unequal peers — without touching the kernels'
parameterisation by hand:

* :class:`PeerClass` — one class of peers with its own contact rate ``µ_c``,
  peer-seed departure rate ``γ_c`` and (optionally) its own arrival-type mix;
* :class:`RateSchedule` — a piecewise-constant multiplier applied to a base
  rate over time (``pulse`` for flash crowds, ``outage`` for seed failures,
  ``square_wave`` for diurnal load);
* :class:`ScenarioSpec` — a frozen bundle of base
  :class:`~repro.core.parameters.SystemParameters`, a tuple of peer classes
  and the arrival/seed schedules, consumed by both simulation backends via
  ``make_simulator(..., scenario=...)`` / ``run_scenario``.

Simulation contract
-------------------
Schedules are realised by Poisson thinning inside the shared event-loop
driver (:class:`repro.swarm.swarm._SwarmEventLoop`): the loop runs at the
schedule's *maximum* rate and accepts a candidate arrival / fixed-seed tick
with probability ``factor(t) / max_factor``.  Because the thinning draw lives
in the shared driver, the object simulator and the array kernel consume the
RNG identically and remain bit-identical per seed on every scenario.  A
scenario whose classes and schedules are all trivial reduces exactly to the
legacy homogeneous code path (same draws, same trajectories).

Peers loaded from an ``initial_state`` (e.g. a pre-built one club) are
assigned to class 0; exogenous arrivals are assigned to a class sampled by
``arrival_fraction``.

A small registry maps scenario names ("flash-crowd", "seed-outage", ...) to
parameterised factories; see :func:`make_scenario` / :func:`registered_scenarios`.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from .parameters import SystemParameters
from .types import PieceSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (swarm -> scenario)
    from ..swarm.gossip import CensusSpec
    from ..swarm.topology import TopologySpec


# ---------------------------------------------------------------------------
# Rate schedules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RateSchedule:
    """Piecewise-constant multiplier applied to a base rate.

    ``values[i]`` applies on ``[times[i], times[i+1])`` and ``values[-1]``
    from ``times[-1]`` onward.  ``times`` must start at 0 and increase
    strictly; values are nonnegative factors (0 switches the process off, 1
    leaves the base rate unchanged).
    """

    times: Tuple[float, ...]
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        times = tuple(float(t) for t in self.times)
        values = tuple(float(v) for v in self.values)
        if not times or len(times) != len(values):
            raise ValueError(
                f"times and values must be equal-length and non-empty, got "
                f"{len(times)} times / {len(values)} values"
            )
        if times[0] != 0.0:
            raise ValueError(f"schedule must start at time 0, got {times[0]}")
        for before, after in zip(times, times[1:]):
            if not after > before:
                raise ValueError(f"times must increase strictly, got {times}")
        for value in values:
            if not (value >= 0.0) or math.isinf(value):
                raise ValueError(f"schedule factors must be finite and >= 0, got {value}")
        if max(values) <= 0.0:
            raise ValueError("at least one schedule factor must be positive")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)

    # -- queries ------------------------------------------------------------

    def value_at(self, time: float) -> float:
        """The multiplier in force at ``time`` (clamped to the first segment
        for negative times)."""
        index = bisect.bisect_right(self.times, time) - 1
        return self.values[max(index, 0)]

    @cached_property
    def _times_array(self) -> np.ndarray:
        return np.asarray(self.times, dtype=np.float64)

    @cached_property
    def _values_array(self) -> np.ndarray:
        return np.asarray(self.values, dtype=np.float64)

    def values_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`value_at` over an array of query times.

        ``searchsorted(..., side="right") - 1`` (clamped at the first
        segment) walks the same table with the same tie-breaking as the
        scalar ``bisect_right`` lookup, so batched thinning decisions read
        the exact factors the scalar event loop would.
        """
        index = np.searchsorted(self._times_array, times, side="right") - 1
        np.maximum(index, 0, out=index)
        return self._values_array[index]

    @property
    def max_value(self) -> float:
        """The largest factor — the thinning bound used by the event loop."""
        return max(self.values)

    @property
    def is_constant(self) -> bool:
        """True when one factor applies for all time (no thinning needed)."""
        return len(set(self.values)) == 1

    @property
    def is_trivial(self) -> bool:
        """True when the schedule is exactly the constant-1 profile.

        This predicate is load-bearing: the event loop keeps the legacy
        homogeneous code path (and its exact RNG consumption) for trivial
        schedules, so every triviality check must agree with this one.
        """
        return self.is_constant and self.values[0] == 1.0

    def scaled(self, factor: float) -> "RateSchedule":
        """Copy with every value multiplied by ``factor`` (> 0)."""
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        return RateSchedule(self.times, tuple(v * factor for v in self.values))

    # -- constructors --------------------------------------------------------

    @classmethod
    def constant(cls, value: float = 1.0) -> "RateSchedule":
        """The trivial schedule: one factor for all time."""
        return cls((0.0,), (value,))

    @classmethod
    def step(cls, pairs: Sequence[Tuple[float, float]]) -> "RateSchedule":
        """Build from ``(time, factor)`` pairs, e.g. ``[(0, 1), (50, 3)]``."""
        times, values = zip(*pairs)
        return cls(tuple(times), tuple(values))

    @classmethod
    def pulse(
        cls, start: float, end: float, high: float, base: float = 1.0
    ) -> "RateSchedule":
        """Factor ``high`` on ``[start, end)``, ``base`` elsewhere — the
        flash-crowd shape."""
        if not 0.0 <= start < end:
            raise ValueError(f"need 0 <= start < end, got [{start}, {end})")
        if start == 0.0:
            return cls((0.0, end), (high, base))
        return cls((0.0, start, end), (base, high, base))

    @classmethod
    def outage(cls, start: float, end: float, base: float = 1.0) -> "RateSchedule":
        """Factor 0 on ``[start, end)`` — a seed (or arrival) outage."""
        return cls.pulse(start, end, 0.0, base=base)

    @classmethod
    def square_wave(
        cls, period: float, high: float, low: float, horizon: float
    ) -> "RateSchedule":
        """Alternate ``high`` / ``low`` every ``period / 2`` up to ``horizon``
        — a blocky diurnal load profile.

        Schedules are finite piecewise-constant tables: beyond ``horizon``
        the last half-period's factor holds forever, so size ``horizon`` to
        at least the simulation horizon or the wave stops alternating."""
        if period <= 0 or horizon <= 0:
            raise ValueError("period and horizon must be positive")
        times: List[float] = []
        values: List[float] = []
        time, phase = 0.0, 0
        while time < horizon:
            times.append(time)
            values.append(high if phase == 0 else low)
            time += period / 2.0
            phase ^= 1
        return cls(tuple(times), tuple(values))


# ---------------------------------------------------------------------------
# Peer classes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PeerClass:
    """One class of peers in a heterogeneous swarm.

    Attributes
    ----------
    name:
        Human-readable label ("residential", "datacenter", ...).
    contact_rate:
        Contact-upload rate ``µ_c > 0`` of this class's peers.
    seed_departure_rate:
        Peer-seed departure rate ``γ_c ∈ (0, ∞]``; ``math.inf`` means a
        class-``c`` peer departs the instant it completes the file.
    arrival_fraction:
        Nonnegative weight of this class among exogenous arrivals (the spec
        normalises weights across classes).
    arrival_mix:
        Optional per-class arrival-type mix ``C ↦ weight``; ``None`` inherits
        the base parameters' mix.  Weights are normalised per class.
    """

    name: str
    contact_rate: float
    seed_departure_rate: float
    arrival_fraction: float = 1.0
    arrival_mix: Optional[Mapping[PieceSet, float]] = None

    def __post_init__(self) -> None:
        if not self.contact_rate > 0:
            raise ValueError(
                f"class {self.name!r}: contact_rate must be > 0, got {self.contact_rate}"
            )
        if not self.seed_departure_rate > 0:
            raise ValueError(
                f"class {self.name!r}: seed_departure_rate must be > 0 "
                f"(math.inf for immediate departure), got {self.seed_departure_rate}"
            )
        if self.arrival_fraction < 0:
            raise ValueError(
                f"class {self.name!r}: arrival_fraction must be >= 0, "
                f"got {self.arrival_fraction}"
            )
        if self.arrival_mix is not None:
            cleaned: Dict[PieceSet, float] = {}
            for type_c, weight in dict(self.arrival_mix).items():
                if not isinstance(type_c, PieceSet):
                    raise TypeError(
                        f"class {self.name!r}: arrival_mix keys must be "
                        f"PieceSet, got {type(type_c)!r}"
                    )
                if weight < 0:
                    raise ValueError(
                        f"class {self.name!r}: arrival weight for {type_c!r} "
                        f"is negative: {weight}"
                    )
                if weight > 0:
                    cleaned[type_c] = float(weight)
            if not cleaned:
                raise ValueError(
                    f"class {self.name!r}: arrival_mix has no positive weight"
                )
            object.__setattr__(self, "arrival_mix", cleaned)

    @property
    def immediate_departure(self) -> bool:
        """True when class peers leave as soon as they hold all pieces."""
        return math.isinf(self.seed_departure_rate)


# ---------------------------------------------------------------------------
# Scenario spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative workload: base parameters + classes + rate schedules.

    An empty ``classes`` tuple means the homogeneous swarm of ``params``
    (every peer uses ``params.peer_rate`` / ``params.seed_departure_rate``).
    ``arrival_schedule`` multiplies the total arrival rate and
    ``seed_schedule`` multiplies the fixed seed's rate ``U_s`` over time.

    ``topology`` restricts peer contact ticks to an overlay graph (see
    :class:`repro.swarm.topology.TopologySpec`); ``None`` or the
    ``complete`` kind keep the legacy uniform-contact model.  ``cull_time``
    schedules a correlated-churn "flash exit": at that simulation time every
    incomplete (non-seed) peer independently departs with probability
    ``cull_fraction``.

    ``census`` selects the piece-frequency census served to policies: the
    exact ``"oracle"`` (the default, and the historical behaviour) or a
    flow-updating ``"gossip"`` estimate — pass a kind name or a
    :class:`repro.swarm.gossip.CensusSpec` for the knobs, e.g.
    ``CensusSpec.gossip(exchange_rate=0.5, damping=1.0)``.
    """

    name: str
    params: SystemParameters
    classes: Tuple[PeerClass, ...] = ()
    arrival_schedule: RateSchedule = field(
        default_factory=lambda: RateSchedule.constant(1.0)
    )
    seed_schedule: RateSchedule = field(
        default_factory=lambda: RateSchedule.constant(1.0)
    )
    topology: Optional["TopologySpec"] = None
    cull_time: Optional[float] = None
    cull_fraction: float = 0.0
    census: "CensusSpec | str" = "oracle"
    description: str = ""

    def __post_init__(self) -> None:
        # Imported lazily: repro.swarm imports this module at package-init
        # time (same cycle guard as the topology import above).
        from ..swarm.gossip import CensusSpec

        object.__setattr__(self, "census", CensusSpec.coerce(self.census))
        if self.cull_time is not None:
            if not self.cull_time > 0:
                raise ValueError(
                    f"cull_time must be > 0, got {self.cull_time}"
                )
            if not 0.0 <= self.cull_fraction <= 1.0:
                raise ValueError(
                    f"cull_fraction must be in [0, 1], got {self.cull_fraction}"
                )
        elif self.cull_fraction != 0.0:
            raise ValueError("cull_fraction requires cull_time")
        classes = tuple(self.classes)
        names = [cls.name for cls in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names: {names}")
        if classes and sum(cls.arrival_fraction for cls in classes) <= 0:
            raise ValueError("total arrival_fraction over classes must be > 0")
        num_pieces = self.params.num_pieces
        full = PieceSet.full(num_pieces)
        for cls in classes:
            mix = cls.arrival_mix if cls.arrival_mix is not None else self.params.arrival_rates
            for type_c in mix:
                if type_c.num_pieces != num_pieces:
                    raise ValueError(
                        f"class {cls.name!r}: arrival type {type_c!r} does "
                        f"not match K={num_pieces}"
                    )
            if cls.immediate_departure and mix.get(full, 0.0) > 0:
                raise ValueError(
                    f"class {cls.name!r}: full-file arrivals are not allowed "
                    f"when the class departs immediately on completion"
                )
        object.__setattr__(self, "classes", classes)

    # -- derived ------------------------------------------------------------

    @property
    def num_classes(self) -> int:
        return max(len(self.classes), 1)

    @property
    def is_heterogeneous(self) -> bool:
        """True when the spec needs per-class bookkeeping in the kernels.

        A single class whose rates and mix coincide with the base parameters
        is *not* heterogeneous: the kernels then keep the legacy homogeneous
        code path (and its exact RNG-consumption pattern).
        """
        if not self.classes:
            return False
        if len(self.classes) > 1:
            return True
        only = self.classes[0]
        return (
            only.contact_rate != self.params.peer_rate
            or only.seed_departure_rate != self.params.seed_departure_rate
            or only.arrival_mix is not None
        )

    @property
    def has_schedules(self) -> bool:
        """True when either schedule deviates from the constant-1 profile."""
        return not (
            self.arrival_schedule.is_trivial and self.seed_schedule.is_trivial
        )

    @property
    def has_overlay(self) -> bool:
        """True when contacts are restricted to a non-complete overlay."""
        return self.topology is not None and not self.topology.is_complete

    @property
    def has_cull(self) -> bool:
        """True when a flash-exit cull is scheduled."""
        return self.cull_time is not None

    @property
    def has_gossip(self) -> bool:
        """True when policies read a gossip-estimated census."""
        return not self.census.is_oracle

    @property
    def is_trivial(self) -> bool:
        """True when the spec is exactly the homogeneous constant-rate model."""
        return (
            not self.is_heterogeneous
            and not self.has_schedules
            and not self.has_overlay
            and not self.has_cull
            and not self.has_gossip
        )

    def class_fractions(self) -> Tuple[float, ...]:
        """Normalised arrival fractions over the classes (``(1.0,)`` when
        homogeneous)."""
        if not self.classes:
            return (1.0,)
        total = sum(cls.arrival_fraction for cls in self.classes)
        return tuple(cls.arrival_fraction / total for cls in self.classes)

    def class_arrival_types(self) -> Tuple[Tuple[Tuple[PieceSet, float], ...], ...]:
        """Per class: the ``(type, probability)`` pairs in canonical order."""
        result = []
        for cls in self.classes or (self.homogeneous_class(),):
            mix = cls.arrival_mix if cls.arrival_mix is not None else self.params.arrival_rates
            total = sum(mix.values())
            result.append(
                tuple((type_c, mix[type_c] / total) for type_c in sorted(mix))
            )
        return tuple(result)

    def homogeneous_class(self) -> PeerClass:
        """The single class equivalent to the base parameters."""
        return PeerClass(
            name="base",
            contact_rate=self.params.peer_rate,
            seed_departure_rate=self.params.seed_departure_rate,
            arrival_fraction=1.0,
        )

    def effective_classes(self) -> Tuple[PeerClass, ...]:
        """``classes`` or the singleton base class when homogeneous."""
        return self.classes or (self.homogeneous_class(),)

    @property
    def peak_arrival_rate(self) -> float:
        """``λ_total`` times the largest arrival-schedule factor."""
        return self.params.lambda_total * self.arrival_schedule.max_value

    @property
    def peak_seed_rate(self) -> float:
        """``U_s`` times the largest seed-schedule factor."""
        return self.params.seed_rate * self.seed_schedule.max_value

    def describe(self) -> str:
        """Multi-line human-readable summary of the scenario."""
        lines = [f"scenario {self.name!r}: {self.description or '(no description)'}"]
        lines.append(self.params.describe())
        for cls, fraction in zip(self.effective_classes(), self.class_fractions()):
            gamma = "inf" if cls.immediate_departure else f"{cls.seed_departure_rate:g}"
            lines.append(
                f"  class {cls.name!r}: mu={cls.contact_rate:g} gamma={gamma} "
                f"arrival share {fraction:.0%}"
            )
        lines.append(
            f"  arrival schedule: {_format_schedule(self.arrival_schedule)}"
        )
        lines.append(f"  seed schedule: {_format_schedule(self.seed_schedule)}")
        if self.has_overlay:
            lines.append(
                f"  topology: {self.topology.kind} degree={self.topology.degree}"
            )
        if self.has_cull:
            lines.append(
                f"  flash exit: {self.cull_fraction:.0%} of incomplete peers "
                f"at t={self.cull_time:g}"
            )
        if self.has_gossip:
            lines.append(f"  census: {self.census.describe()}")
        return "\n".join(lines)

    @classmethod
    def homogeneous(cls, params: SystemParameters, name: str = "homogeneous") -> "ScenarioSpec":
        """The trivial scenario reproducing ``run_swarm(params, ...)`` exactly."""
        return cls(name=name, params=params)


def _format_schedule(schedule: RateSchedule) -> str:
    if schedule.is_constant:
        return f"constant x{schedule.values[0]:g}"
    segments = [
        f"[{time:g},..)x{value:g}"
        for time, value in zip(schedule.times, schedule.values)
    ]
    return " ".join(segments)


# ---------------------------------------------------------------------------
# Named-scenario registry
# ---------------------------------------------------------------------------


ScenarioFactory = Callable[..., ScenarioSpec]

_SCENARIO_REGISTRY: Dict[str, ScenarioFactory] = {}


def register_scenario(name: str, factory: ScenarioFactory) -> None:
    """Register a parameterised scenario factory under ``name``."""
    _SCENARIO_REGISTRY[name] = factory


def make_scenario(name: str, **overrides) -> ScenarioSpec:
    """Build a registered scenario, forwarding keyword overrides.

    Raises
    ------
    ValueError
        When ``name`` is not registered; the message lists every registered
        scenario name.
    """
    factory = _SCENARIO_REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(sorted(_SCENARIO_REGISTRY))}"
        )
    return factory(**overrides)


def registered_scenarios() -> List[str]:
    """Names of all registered scenarios."""
    return sorted(_SCENARIO_REGISTRY)


def base_params(
    num_pieces: int = 5,
    arrival_rate: float = 1.2,
    seed_rate: float = 1.0,
    peer_rate: float = 1.0,
    seed_departure_rate: float = 2.0,
) -> SystemParameters:
    """The registry's shared base parameter set (empty-handed arrivals).

    Defaults sit inside the Theorem-1 stability region (threshold
    ``U_s/(1 - µ/γ) = 2 > λ = 1.2``), so the surge/outage scenarios cross
    the boundary mid-run rather than starting on it.  The fleet layer uses
    the same constructor for its "plain" (scenario-less) swarms, keeping
    fleet cells comparable across the scenario mix.
    """
    return SystemParameters.flash_crowd(
        num_pieces=num_pieces,
        arrival_rate=arrival_rate,
        seed_rate=seed_rate,
        peer_rate=peer_rate,
        seed_departure_rate=seed_departure_rate,
    )


#: Backwards-compatible private alias (the factories below predate the
#: public name).
_base_params = base_params


def flash_crowd_scenario(
    surge_start: float = 20.0,
    surge_end: float = 50.0,
    surge_factor: float = 8.0,
    census: "CensusSpec | str" = "oracle",
    **params_kwargs,
) -> ScenarioSpec:
    """Arrivals surge by ``surge_factor`` on ``[surge_start, surge_end)``."""
    return ScenarioSpec(
        name="flash-crowd",
        params=_base_params(**params_kwargs),
        arrival_schedule=RateSchedule.pulse(surge_start, surge_end, surge_factor),
        census=census,
        description=(
            f"arrival rate x{surge_factor:g} during [{surge_start:g}, {surge_end:g})"
        ),
    )


def seed_outage_scenario(
    outage_start: float = 20.0,
    outage_end: float = 60.0,
    census: "CensusSpec | str" = "oracle",
    **params_kwargs,
) -> ScenarioSpec:
    """The fixed seed goes dark on ``[outage_start, outage_end)``."""
    return ScenarioSpec(
        name="seed-outage",
        params=_base_params(**params_kwargs),
        seed_schedule=RateSchedule.outage(outage_start, outage_end),
        census=census,
        description=(
            f"fixed seed offline during [{outage_start:g}, {outage_end:g})"
        ),
    )


def heterogeneous_classes_scenario(
    fast_contact_rate: float = 2.0,
    slow_contact_rate: float = 0.5,
    fast_fraction: float = 0.3,
    census: "CensusSpec | str" = "oracle",
    **params_kwargs,
) -> ScenarioSpec:
    """Two peer classes: a fast minority and a slow majority."""
    params = _base_params(**params_kwargs)
    gamma = params.seed_departure_rate
    return ScenarioSpec(
        name="heterogeneous-classes",
        params=params,
        classes=(
            PeerClass(
                name="fast",
                contact_rate=fast_contact_rate,
                seed_departure_rate=gamma,
                arrival_fraction=fast_fraction,
            ),
            PeerClass(
                name="slow",
                contact_rate=slow_contact_rate,
                seed_departure_rate=gamma,
                arrival_fraction=1.0 - fast_fraction,
            ),
        ),
        census=census,
        description=(
            f"{fast_fraction:.0%} fast peers (mu={fast_contact_rate:g}) vs "
            f"slow peers (mu={slow_contact_rate:g})"
        ),
    )


def diurnal_scenario(
    period: float = 40.0,
    high: float = 3.0,
    low: float = 0.3,
    horizon: float = 200.0,
    census: "CensusSpec | str" = "oracle",
    **params_kwargs,
) -> ScenarioSpec:
    """Arrivals alternate between a busy and a quiet half-period.

    ``horizon`` bounds the alternation (the last phase's factor holds
    beyond it) — pass a value covering the intended simulation horizon.
    """
    return ScenarioSpec(
        name="diurnal",
        params=_base_params(**params_kwargs),
        arrival_schedule=RateSchedule.square_wave(period, high, low, horizon),
        census=census,
        description=(
            f"square-wave arrivals x{high:g}/x{low:g} with period {period:g}"
        ),
    )


def high_churn_scenario(
    patient_gamma: float = 1.0,
    impatient_fraction: float = 0.6,
    census: "CensusSpec | str" = "oracle",
    **params_kwargs,
) -> ScenarioSpec:
    """A majority of completing peers leave instantly; the rest dwell."""
    params = _base_params(**params_kwargs)
    mu = params.peer_rate
    return ScenarioSpec(
        name="high-churn",
        params=params,
        classes=(
            PeerClass(
                name="impatient",
                contact_rate=mu,
                seed_departure_rate=math.inf,
                arrival_fraction=impatient_fraction,
            ),
            PeerClass(
                name="patient",
                contact_rate=mu,
                seed_departure_rate=patient_gamma,
                arrival_fraction=1.0 - impatient_fraction,
            ),
        ),
        census=census,
        description=(
            f"{impatient_fraction:.0%} of peers depart on completion, the "
            f"rest dwell with gamma={patient_gamma:g}"
        ),
    )


def free_rider_scenario(
    leech_fraction: float = 0.6,
    leech_contact_rate: float = 0.02,
    leech_departure_rate: Optional[float] = None,
    census: "CensusSpec | str" = "oracle",
    **params_kwargs,
) -> ScenarioSpec:
    """Free riders: a class that uploads at ``µ_c ≈ 0`` but downloads normally.

    Downloads are driven by *other* peers' contact clocks, so a free rider
    still fills its collection at the usual pace — it just contributes almost
    no upload capacity back.  By default free riders also leave the instant
    they complete the file (``γ_c = ∞``), the classic leeching profile;
    contributors keep the base rates.  ``leech_fraction`` is the share of
    arrivals that are free riders.  Enough leeching starves the rare piece's
    replication and tips an otherwise Theorem-1-stable swarm into the
    one-club regime.

    The contributor class is listed first so that peers pre-seeded from an
    ``initial_state`` (class 0 by convention) are contributors, not leeches.
    """
    if not 0.0 <= leech_fraction < 1.0:
        raise ValueError(
            f"leech_fraction must be in [0, 1), got {leech_fraction}"
        )
    params = base_params(**params_kwargs)
    return ScenarioSpec(
        name="free-rider",
        params=params,
        classes=(
            PeerClass(
                name="contributor",
                contact_rate=params.peer_rate,
                seed_departure_rate=params.seed_departure_rate,
                arrival_fraction=1.0 - leech_fraction,
            ),
            PeerClass(
                name="free-rider",
                contact_rate=leech_contact_rate,
                seed_departure_rate=(
                    math.inf if leech_departure_rate is None else leech_departure_rate
                ),
                arrival_fraction=leech_fraction,
            ),
        ),
        census=census,
        description=(
            f"{leech_fraction:.0%} free riders uploading at "
            f"mu={leech_contact_rate:g} (downloads unimpaired)"
        ),
    )


def sparse_overlay_scenario(
    topology: str = "random-regular",
    degree: int = 8,
    max_degree: Optional[int] = None,
    census: "CensusSpec | str" = "oracle",
    **params_kwargs,
) -> ScenarioSpec:
    """Contacts restricted to a sparse overlay graph.

    ``topology`` picks any non-partitioned generator from
    :data:`repro.swarm.topology.TOPOLOGY_KINDS` (``"complete"`` reduces to
    the legacy uniform-contact swarm on the shared base parameters).
    """
    # Imported lazily: repro.swarm imports this module at package-init time.
    from ..swarm.topology import TopologySpec

    spec = TopologySpec(kind=topology, degree=degree, max_degree=max_degree)
    return ScenarioSpec(
        name="sparse-overlay",
        params=_base_params(**params_kwargs),
        topology=None if spec.is_complete else spec,
        census=census,
        description=(
            f"contact ticks restricted to a {topology} overlay of "
            f"degree {degree}"
        ),
    )


def partitioned_scenario(
    num_components: int = 3,
    bridge_prob: float = 0.05,
    degree: int = 8,
    census: "CensusSpec | str" = "oracle",
    **params_kwargs,
) -> ScenarioSpec:
    """Weakly-bridged overlay components: arrivals are assigned round-robin
    to ``num_components`` clusters and wire ``degree`` edges, each crossing
    components with probability ``bridge_prob``."""
    from ..swarm.topology import TopologySpec

    return ScenarioSpec(
        name="partitioned",
        params=_base_params(**params_kwargs),
        topology=TopologySpec(
            kind="partitioned",
            degree=degree,
            num_components=num_components,
            bridge_prob=bridge_prob,
        ),
        census=census,
        description=(
            f"{num_components} overlay components bridged with "
            f"probability {bridge_prob:g}"
        ),
    )


def flash_exit_scenario(
    exit_time: float = 30.0,
    exit_fraction: float = 0.5,
    topology: Optional[str] = None,
    degree: int = 8,
    census: "CensusSpec | str" = "oracle",
    **params_kwargs,
) -> ScenarioSpec:
    """Correlated churn: at ``exit_time`` every incomplete peer departs
    independently with probability ``exit_fraction``.

    ``topology`` optionally runs the flash exit on a contact overlay (any
    non-partitioned kind); the default keeps the complete contact graph.
    """
    topo = None
    if topology is not None and topology != "complete":
        from ..swarm.topology import TopologySpec

        topo = TopologySpec(kind=topology, degree=degree)
    return ScenarioSpec(
        name="flash-exit",
        params=_base_params(**params_kwargs),
        topology=topo,
        cull_time=exit_time,
        cull_fraction=exit_fraction,
        census=census,
        description=(
            f"{exit_fraction:.0%} of incomplete peers exit at t={exit_time:g}"
            + (f" on a {topology} overlay" if topo is not None else "")
        ),
    )


register_scenario("flash-crowd", flash_crowd_scenario)
register_scenario("seed-outage", seed_outage_scenario)
register_scenario("heterogeneous-classes", heterogeneous_classes_scenario)
register_scenario("diurnal", diurnal_scenario)
register_scenario("high-churn", high_churn_scenario)
register_scenario("free-rider", free_rider_scenario)
register_scenario("sparse-overlay", sparse_overlay_scenario)
register_scenario("partitioned", partitioned_scenario)
register_scenario("flash-exit", flash_exit_scenario)


__all__ = [
    "PeerClass",
    "RateSchedule",
    "ScenarioSpec",
    "ScenarioFactory",
    "base_params",
    "flash_crowd_scenario",
    "seed_outage_scenario",
    "heterogeneous_classes_scenario",
    "diurnal_scenario",
    "high_churn_scenario",
    "free_rider_scenario",
    "sparse_overlay_scenario",
    "partitioned_scenario",
    "flash_exit_scenario",
    "make_scenario",
    "register_scenario",
    "registered_scenarios",
]
