"""System parameters for the Zhu--Hajek P2P model.

The model of Section III of the paper is fully described by:

* ``K`` — number of pieces in the file,
* ``us`` — contact-upload rate of the fixed seed (``U_s``),
* ``mu`` — contact-upload rate of every peer (``µ > 0``),
* ``gamma`` — departure rate of peer seeds (``γ``; ``math.inf`` means peers
  depart immediately on completion),
* ``arrival_rates`` — a mapping from peer type ``C`` to the Poisson arrival
  rate ``λ_C`` of type-``C`` peers.

:class:`SystemParameters` validates these, exposes convenient aggregates
(``lambda_total``, per-piece injection rates, ...), and provides constructors
for the three worked examples of Section IV.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from .types import PieceSet, all_types, format_type


@dataclass(frozen=True)
class SystemParameters:
    """Immutable parameter set for one P2P system instance.

    Attributes
    ----------
    num_pieces:
        Number of pieces ``K ≥ 1``.
    seed_rate:
        Upload rate ``U_s ≥ 0`` of the fixed seed.
    peer_rate:
        Upload rate ``µ > 0`` of each peer.
    seed_departure_rate:
        Peer-seed departure rate ``γ ∈ (0, ∞]``.  ``math.inf`` models peers
        leaving immediately after completing the file.
    arrival_rates:
        Mapping ``C ↦ λ_C`` for the types that arrive with positive rate.
        Types not present arrive with rate zero.  When ``γ = ∞`` the full type
        ``F`` must not arrive (the paper assumes ``λ_F = 0`` in that case).
    """

    num_pieces: int
    seed_rate: float
    peer_rate: float
    seed_departure_rate: float
    arrival_rates: Mapping[PieceSet, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_pieces < 1:
            raise ValueError(f"num_pieces must be >= 1, got {self.num_pieces}")
        if self.seed_rate < 0:
            raise ValueError(f"seed_rate must be >= 0, got {self.seed_rate}")
        if not self.peer_rate > 0:
            raise ValueError(f"peer_rate must be > 0, got {self.peer_rate}")
        if not self.seed_departure_rate > 0:
            raise ValueError(
                "seed_departure_rate must be > 0 (use math.inf for immediate "
                f"departure), got {self.seed_departure_rate}"
            )
        cleaned: Dict[PieceSet, float] = {}
        for type_c, rate in dict(self.arrival_rates).items():
            if not isinstance(type_c, PieceSet):
                raise TypeError(
                    f"arrival_rates keys must be PieceSet, got {type(type_c)!r}"
                )
            if type_c.num_pieces != self.num_pieces:
                raise ValueError(
                    f"arrival type {type_c!r} does not match K={self.num_pieces}"
                )
            if rate < 0:
                raise ValueError(f"arrival rate for {type_c!r} is negative: {rate}")
            if rate > 0:
                cleaned[type_c] = float(rate)
        if not cleaned:
            raise ValueError("total arrival rate must be strictly positive")
        full = PieceSet.full(self.num_pieces)
        if self.immediate_departure and cleaned.get(full, 0.0) > 0:
            raise ValueError(
                "lambda_F must be zero when gamma is infinite "
                "(peer seeds depart immediately)"
            )
        object.__setattr__(self, "arrival_rates", cleaned)

    # -- aggregates ---------------------------------------------------------

    @property
    def immediate_departure(self) -> bool:
        """True when ``γ = ∞`` — peers leave as soon as they hold all pieces."""
        return math.isinf(self.seed_departure_rate)

    @property
    def lambda_total(self) -> float:
        """Total exogenous arrival rate ``λ_total = Σ_C λ_C``."""
        return sum(self.arrival_rates.values())

    @property
    def mu_over_gamma(self) -> float:
        """The branching ratio ``µ/γ`` (zero when ``γ = ∞``)."""
        if self.immediate_departure:
            return 0.0
        return self.peer_rate / self.seed_departure_rate

    @property
    def mean_dwell_time(self) -> float:
        """Mean peer-seed dwell time ``1/γ`` (zero when ``γ = ∞``)."""
        if self.immediate_departure:
            return 0.0
        return 1.0 / self.seed_departure_rate

    def arrival_rate(self, type_c: PieceSet) -> float:
        """``λ_C`` for the given type (zero if it never arrives)."""
        return self.arrival_rates.get(type_c, 0.0)

    def arriving_types(self) -> Tuple[PieceSet, ...]:
        """Types with strictly positive arrival rate, in canonical order."""
        return tuple(sorted(self.arrival_rates))

    def arrival_rate_with_piece(self, piece: int) -> float:
        """``Σ_{C : piece ∈ C} λ_C`` — rate of arrivals already holding ``piece``."""
        return sum(
            rate for type_c, rate in self.arrival_rates.items() if piece in type_c
        )

    def arrival_rate_missing_piece(self, piece: int) -> float:
        """``Σ_{C : piece ∉ C} λ_C`` — rate of arrivals that still need ``piece``."""
        return self.lambda_total - self.arrival_rate_with_piece(piece)

    def piece_injection_rate(self, piece: int) -> float:
        """Rate at which *new copies* of ``piece`` can enter the system.

        A new copy of piece ``k`` enters either via the fixed seed (rate
        ``U_s``) or carried by an arriving peer whose initial collection
        contains ``k``.  Theorem 1 uses only whether this is positive in the
        ``γ ≤ µ`` regime, but the quantity itself is useful for reporting.
        """
        return self.seed_rate + self.arrival_rate_with_piece(piece)

    def piece_can_enter(self, piece: int) -> bool:
        """Whether new copies of ``piece`` can enter the system at all."""
        return self.piece_injection_rate(piece) > 0

    def all_pieces_can_enter(self) -> bool:
        """Whether every piece can enter the system (Theorem 1, case γ ≤ µ)."""
        return all(self.piece_can_enter(k) for k in range(1, self.num_pieces + 1))

    # -- derived / modified copies ------------------------------------------

    def with_seed_rate(self, seed_rate: float) -> "SystemParameters":
        """Copy of the parameters with a different fixed-seed rate."""
        return SystemParameters(
            num_pieces=self.num_pieces,
            seed_rate=seed_rate,
            peer_rate=self.peer_rate,
            seed_departure_rate=self.seed_departure_rate,
            arrival_rates=dict(self.arrival_rates),
        )

    def with_departure_rate(self, gamma: float) -> "SystemParameters":
        """Copy of the parameters with a different peer-seed departure rate."""
        return SystemParameters(
            num_pieces=self.num_pieces,
            seed_rate=self.seed_rate,
            peer_rate=self.peer_rate,
            seed_departure_rate=gamma,
            arrival_rates=dict(self.arrival_rates),
        )

    def with_arrival_rates(
        self, arrival_rates: Mapping[PieceSet, float]
    ) -> "SystemParameters":
        """Copy of the parameters with a different arrival mix."""
        return SystemParameters(
            num_pieces=self.num_pieces,
            seed_rate=self.seed_rate,
            peer_rate=self.peer_rate,
            seed_departure_rate=self.seed_departure_rate,
            arrival_rates=dict(arrival_rates),
        )

    def scaled_arrivals(self, factor: float) -> "SystemParameters":
        """Copy with every arrival rate multiplied by ``factor`` (> 0)."""
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        return self.with_arrival_rates(
            {c: rate * factor for c, rate in self.arrival_rates.items()}
        )

    def describe(self) -> str:
        """Multi-line human-readable summary of the parameter set."""
        gamma = "inf" if self.immediate_departure else f"{self.seed_departure_rate:g}"
        lines = [
            f"K={self.num_pieces}  Us={self.seed_rate:g}  mu={self.peer_rate:g}  "
            f"gamma={gamma}  lambda_total={self.lambda_total:g}",
            "arrivals:",
        ]
        for type_c in sorted(self.arrival_rates):
            lines.append(
                f"  lambda_{format_type(type_c)} = {self.arrival_rates[type_c]:g}"
            )
        return "\n".join(lines)

    # -- example constructors (Section IV of the paper) ----------------------

    @classmethod
    def single_piece(
        cls,
        arrival_rate: float,
        seed_rate: float,
        peer_rate: float = 1.0,
        seed_departure_rate: float = 1.0,
    ) -> "SystemParameters":
        """Example 1 (Figure 1a): ``K = 1``, empty arrivals, peer seeds dwell."""
        empty = PieceSet.empty(1)
        return cls(
            num_pieces=1,
            seed_rate=seed_rate,
            peer_rate=peer_rate,
            seed_departure_rate=seed_departure_rate,
            arrival_rates={empty: arrival_rate},
        )

    @classmethod
    def two_class_four_pieces(
        cls,
        lambda_12: float,
        lambda_34: float,
        peer_rate: float = 1.0,
    ) -> "SystemParameters":
        """Example 2 (Figure 1b): ``K = 4``, arrivals of types {1,2} and {3,4}.

        No fixed seed, and peers depart immediately on completion (γ = ∞).
        The stability boundary is ``λ_12 < 2 λ_34`` and ``λ_34 < 2 λ_12``.
        """
        return cls(
            num_pieces=4,
            seed_rate=0.0,
            peer_rate=peer_rate,
            seed_departure_rate=math.inf,
            arrival_rates={
                PieceSet((1, 2), 4): lambda_12,
                PieceSet((3, 4), 4): lambda_34,
            },
        )

    @classmethod
    def one_piece_arrivals(
        cls,
        lambda_by_piece: Iterable[float],
        peer_rate: float = 1.0,
        seed_departure_rate: float = 2.0,
        seed_rate: float = 0.0,
    ) -> "SystemParameters":
        """Example 3 (Figure 1c): each arriving peer holds exactly one piece.

        ``lambda_by_piece`` gives ``(λ_1, ..., λ_K)``.  The paper's Example 3
        uses ``K = 3``, no fixed seed, and ``γ > µ``.
        """
        rates = list(lambda_by_piece)
        num_pieces = len(rates)
        arrival_rates = {
            PieceSet.single(i + 1, num_pieces): rate
            for i, rate in enumerate(rates)
            if rate > 0
        }
        return cls(
            num_pieces=num_pieces,
            seed_rate=seed_rate,
            peer_rate=peer_rate,
            seed_departure_rate=seed_departure_rate,
            arrival_rates=arrival_rates,
        )

    @classmethod
    def flash_crowd(
        cls,
        num_pieces: int,
        arrival_rate: float,
        seed_rate: float,
        peer_rate: float = 1.0,
        seed_departure_rate: float = math.inf,
    ) -> "SystemParameters":
        """The basic Hajek--Zhu [9,10] setting: all peers arrive empty-handed."""
        empty = PieceSet.empty(num_pieces)
        return cls(
            num_pieces=num_pieces,
            seed_rate=seed_rate,
            peer_rate=peer_rate,
            seed_departure_rate=seed_departure_rate,
            arrival_rates={empty: arrival_rate},
        )


def uniform_single_piece_rates(num_pieces: int, rate: float) -> Dict[PieceSet, float]:
    """Arrival mix where each single-piece type arrives at the same ``rate``.

    This is the symmetric flat-network mix of Conjecture 17 and Section VIII-D.
    """
    return {PieceSet.single(k, num_pieces): rate for k in range(1, num_pieces + 1)}


def validate_policy_support(params: SystemParameters) -> None:
    """Sanity checks that the parameter set describes a sensible swarm.

    Raises ``ValueError`` when no piece can ever enter the system — in that
    case the process is trivially transient (Theorem 1(a), second bullet) and
    most experiments are meaningless.
    """
    blocked = [
        k for k in range(1, params.num_pieces + 1) if not params.piece_can_enter(k)
    ]
    if blocked:
        raise ValueError(
            "no copies of piece(s) "
            + ", ".join(str(k) for k in blocked)
            + " can ever enter the system; the process is trivially transient"
        )


__all__ = [
    "SystemParameters",
    "uniform_single_piece_rates",
    "validate_policy_support",
]
