"""Branching-process analysis of piece-one spread (Section VI).

The transience proof couples the original system to an *autonomous branching
system* (ABS) in which every holder of the rare piece — infected peers (group
(b)), former one-club peer seeds (group (f)) and gifted peers (group (g)) —
spawns further holders independently.  The key quantities are

* ``m_b`` — one plus the mean number of descendants of a group-(b) peer,
* ``m_f`` — one plus the mean number of descendants of a group-(f) peer,
* ``m_g(C)`` — mean number of descendants of a gifted peer that arrived with
  piece collection ``C``,

all functions of the slack parameter ``ξ`` used in the proof.  As ``ξ → 0``
these converge to ``K/(1−µ/γ)``, ``1/(1−µ/γ)`` and
``(K−|C|+µ/γ)/(1−µ/γ)`` respectively, which are exactly the amplification
factors appearing in ``Δ_S`` and in the heuristics of the three examples.

Besides the closed forms, this module provides a Monte-Carlo simulator of the
two-type branching process so that the formulas can be checked empirically and
the (sub/super)criticality of the infection process can be observed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .parameters import SystemParameters
from .types import PieceSet


@dataclass(frozen=True)
class BranchingParameters:
    """Parameters of the autonomous branching system.

    ``xi`` is the proof's slack parameter (the probability bound on contacting
    a normal young peer); ``mu_over_gamma`` is ``µ/γ``; ``num_pieces`` is
    ``K``.  The ABS is well defined (finite means) iff :meth:`is_subcritical`.
    """

    num_pieces: int
    mu_over_gamma: float
    xi: float = 0.0

    def __post_init__(self) -> None:
        if self.num_pieces < 1:
            raise ValueError("num_pieces must be >= 1")
        if not 0 <= self.xi < 1:
            raise ValueError(f"xi must lie in [0, 1), got {self.xi}")
        if not 0 <= self.mu_over_gamma:
            raise ValueError("mu_over_gamma must be nonnegative")

    @classmethod
    def from_system(
        cls, params: SystemParameters, xi: float = 0.0
    ) -> "BranchingParameters":
        return cls(
            num_pieces=params.num_pieces,
            mu_over_gamma=params.mu_over_gamma,
            xi=xi,
        )

    def offspring_matrix(self) -> np.ndarray:
        """Mean offspring matrix ``M`` of the two-type (b)/(f) branching process.

        ``M[i, j]`` is the mean number of type-``j`` offspring of a type-``i``
        individual, with index 0 = group (b) (infected) and 1 = group (f)
        (former one-club seed).  This is the matrix appearing in the fixed
        point equation ``(m_b, m_f)ᵀ = (1,1)ᵀ + M (m_b, m_f)ᵀ`` of Section VI.
        """
        k = self.num_pieces
        ratio = self.mu_over_gamma
        xi = self.xi
        lifetime_b = (k - 1) / (1.0 - xi) + ratio
        return np.array(
            [
                [xi * lifetime_b, lifetime_b],
                [xi * ratio, ratio],
            ]
        )

    def spectral_radius(self) -> float:
        """Perron eigenvalue of the offspring matrix (criticality indicator)."""
        eigenvalues = np.linalg.eigvals(self.offspring_matrix())
        return float(np.max(np.abs(eigenvalues)))

    def is_subcritical(self) -> bool:
        """Condition (6): the total progeny of a single holder is finite."""
        k = self.num_pieces
        ratio = self.mu_over_gamma
        xi = self.xi
        return xi * ((k - 1) / (1.0 - xi) + ratio) + ratio < 1.0

    def mean_descendants(self) -> Tuple[float, float]:
        """``(m_b, m_f)``: one plus the mean total descendants of each type.

        Raises ``ValueError`` when the branching process is not subcritical
        (condition (6) fails), in which case the means are infinite.
        """
        if not self.is_subcritical():
            raise ValueError(
                "branching process is supercritical; mean progeny is infinite "
                "(condition (6) of the paper fails)"
            )
        k = self.num_pieces
        ratio = self.mu_over_gamma
        xi = self.xi
        lifetime_b = (k - 1) / (1.0 - xi) + ratio
        denom = 1.0 - xi * lifetime_b - ratio
        factor = (1.0 + xi) / denom
        m_b = 1.0 + factor * lifetime_b
        m_f = 1.0 + factor * ratio
        return m_b, m_f

    def mean_descendants_gifted(self, initial_pieces: int) -> float:
        """``m_g(C)``: mean total descendants of a gifted peer with ``|C|`` pieces."""
        if not 0 <= initial_pieces <= self.num_pieces:
            raise ValueError("initial_pieces out of range")
        m_b, m_f = self.mean_descendants()
        k = self.num_pieces
        ratio = self.mu_over_gamma
        xi = self.xi
        lifetime = (k - initial_pieces) / (1.0 - xi) + ratio
        return lifetime * (xi * m_b + m_f)


def seed_amplification(params: SystemParameters) -> float:
    """``1/(1 − µ/γ)``: expected one-club departures caused per seed upload.

    Each upload of the missing piece by the fixed seed turns a one-club peer
    into a peer seed, which on average uploads the piece to ``µ/γ`` more
    one-club peers before leaving, and so on (Example 1).  When ``γ ≤ µ`` the
    branching process is (super)critical and the amplification is infinite.
    """
    ratio = params.mu_over_gamma
    if ratio >= 1.0:
        return math.inf
    return 1.0 / (1.0 - ratio)


def gifted_amplification(params: SystemParameters, initial_pieces: int) -> float:
    """``(K − |C| + µ/γ)/(1 − µ/γ)``: one-club departures caused per gifted arrival.

    A peer arriving with ``|C|`` pieces including the rare one uploads the rare
    piece to about ``K − |C| + µ/γ`` one-club peers during its lifetime, each
    of which starts a seed branching process (Section V).
    """
    ratio = params.mu_over_gamma
    if ratio >= 1.0:
        return math.inf
    return (params.num_pieces - initial_pieces + ratio) / (1.0 - ratio)


def one_club_drift(params: SystemParameters, missing_piece: int = 1) -> float:
    """Net growth rate of the one club in the heavy-load regime.

    This is exactly ``Δ_{F − {missing_piece}}`` expressed through the
    branching amplification factors: arrivals of peers missing the rare piece,
    minus the departures caused by the fixed seed and by gifted arrivals.
    Positive drift ⇒ the one club grows linearly (transience); negative drift
    ⇒ the system escapes the missing piece syndrome.
    """
    ratio = params.mu_over_gamma
    arrivals_missing = params.arrival_rate_missing_piece(missing_piece)
    if ratio >= 1.0:
        # Infinite amplification: any injection of the piece empties the club.
        return -math.inf if params.piece_can_enter(missing_piece) else arrivals_missing
    departures = params.seed_rate * seed_amplification(params)
    for type_c, rate in params.arrival_rates.items():
        if missing_piece in type_c:
            departures += rate * gifted_amplification(params, len(type_c))
    return arrivals_missing - departures


def abs_download_rate(params: SystemParameters, missing_piece: int = 1, xi: float = 0.0) -> float:
    """Mean rate of piece-one downloads counted by the ABS (Corollary 3).

    At ``ξ = 0`` this equals ``(U_s + Σ_{C∋k} λ_C (K − |C| + µ/γ)) / (1 − µ/γ)``,
    the amplified injection rate of the rare piece.
    """
    branching = BranchingParameters.from_system(params, xi=xi)
    m_b, m_f = branching.mean_descendants()
    rate = params.seed_rate * (xi * m_b + m_f)
    for type_c, lam in params.arrival_rates.items():
        if missing_piece in type_c:
            rate += lam * branching.mean_descendants_gifted(len(type_c))
    return rate


@dataclass
class BranchingSimulationResult:
    """Empirical summary of simulated branching-process progenies."""

    mean_progeny: float
    std_progeny: float
    num_replications: int
    extinction_fraction: float


def simulate_total_progeny(
    branching: BranchingParameters,
    root_type: str = "f",
    num_replications: int = 1000,
    rng: Optional[np.random.Generator] = None,
    max_population: int = 100_000,
) -> BranchingSimulationResult:
    """Monte-Carlo estimate of the total progeny of a single root individual.

    ``root_type`` is ``"b"`` (infected peer) or ``"f"`` (former one-club peer
    seed).  The simulation counts the root plus all descendants, matching the
    definition of ``m_b`` / ``m_f``.  Runs that exceed ``max_population``
    individuals are treated as non-extinct (their progeny is censored at the
    cap), which only matters in the supercritical regime.
    """
    if root_type not in ("b", "f"):
        raise ValueError("root_type must be 'b' or 'f'")
    rng = rng if rng is not None else np.random.default_rng()
    matrix = branching.offspring_matrix()
    totals = np.empty(num_replications)
    exceeded = 0
    for rep in range(num_replications):
        # Population counts by type awaiting expansion.
        pending = [0, 0]
        pending[0 if root_type == "b" else 1] = 1
        total = 1
        alive = True
        while alive and (pending[0] > 0 or pending[1] > 0):
            new_pending = [0, 0]
            for parent_type in (0, 1):
                count = pending[parent_type]
                if count == 0:
                    continue
                for child_type in (0, 1):
                    mean = matrix[parent_type, child_type]
                    if mean <= 0:
                        continue
                    children = int(rng.poisson(mean * count))
                    new_pending[child_type] += children
                    total += children
            pending = new_pending
            if total > max_population:
                exceeded += 1
                alive = False
        totals[rep] = min(total, max_population)
    return BranchingSimulationResult(
        mean_progeny=float(np.mean(totals)),
        std_progeny=float(np.std(totals)),
        num_replications=num_replications,
        extinction_fraction=float(1.0 - exceeded / num_replications),
    )


__all__ = [
    "BranchingParameters",
    "BranchingSimulationResult",
    "seed_amplification",
    "gifted_amplification",
    "one_club_drift",
    "abs_download_rate",
    "simulate_total_progeny",
]
