"""Piece sets and the peer-type lattice.

A peer in the Zhu--Hajek model is characterised by the set of pieces it
holds, a subset of ``{1, ..., K}``.  This module provides a small, hashable,
immutable representation of such piece sets (:class:`PieceSet`) together with
the lattice operations the stability theory needs:

* enumeration of all types (``all_types``),
* the downward closure ``E_C = {C' : C' ⊆ C}`` of a type (peers that *are or
  can become* type ``C``),
* the upward complement ``H_C = {C' : C' ⊄ C}`` (peers that *can help* type
  ``C`` peers),
* useful-piece computations used by the simulators.

Internally a :class:`PieceSet` is a frozenset of 1-based piece indices, with a
compact bitmask used for fast hashing and ordering.  Pieces are numbered from
1 to match the paper's notation (piece "one" is the canonical missing piece).
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, Iterator, List, Sequence, Tuple


class PieceSet:
    """An immutable set of pieces held by a peer (a peer *type*).

    Parameters
    ----------
    pieces:
        Iterable of 1-based piece indices.
    num_pieces:
        Total number of pieces ``K`` in the file.  Every index must lie in
        ``1..K``.

    Notes
    -----
    ``PieceSet`` objects are hashable, comparable (by bitmask, which gives a
    stable total order grouping by cardinality only incidentally) and support
    the usual set operations needed by the model.
    """

    __slots__ = ("_mask", "_num_pieces")

    def __init__(self, pieces: Iterable[int], num_pieces: int):
        if num_pieces < 1:
            raise ValueError(f"num_pieces must be >= 1, got {num_pieces}")
        mask = 0
        for p in pieces:
            if not 1 <= p <= num_pieces:
                raise ValueError(
                    f"piece index {p} out of range 1..{num_pieces}"
                )
            mask |= 1 << (p - 1)
        self._mask = mask
        self._num_pieces = num_pieces

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls, num_pieces: int) -> "PieceSet":
        """The type of a peer holding no pieces."""
        return cls((), num_pieces)

    @classmethod
    def full(cls, num_pieces: int) -> "PieceSet":
        """The type ``F`` of a peer seed (all pieces)."""
        return cls(range(1, num_pieces + 1), num_pieces)

    @classmethod
    def from_mask(cls, mask: int, num_pieces: int) -> "PieceSet":
        """Build a piece set directly from a bitmask (bit ``i-1`` = piece ``i``)."""
        if mask < 0 or mask >= (1 << num_pieces):
            raise ValueError(f"mask {mask} out of range for K={num_pieces}")
        obj = cls.__new__(cls)
        obj._mask = mask
        obj._num_pieces = num_pieces
        return obj

    @classmethod
    def single(cls, piece: int, num_pieces: int) -> "PieceSet":
        """The type of a peer holding exactly one piece."""
        return cls((piece,), num_pieces)

    # -- basic protocol ----------------------------------------------------

    @property
    def mask(self) -> int:
        """Bitmask representation (bit ``i-1`` set iff piece ``i`` is held)."""
        return self._mask

    @property
    def num_pieces(self) -> int:
        """Total number of pieces ``K`` in the file."""
        return self._num_pieces

    def __len__(self) -> int:
        return bin(self._mask).count("1")

    def __iter__(self) -> Iterator[int]:
        mask = self._mask
        piece = 1
        while mask:
            if mask & 1:
                yield piece
            mask >>= 1
            piece += 1

    def __contains__(self, piece: int) -> bool:
        if not 1 <= piece <= self._num_pieces:
            return False
        return bool(self._mask & (1 << (piece - 1)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PieceSet):
            return NotImplemented
        return self._mask == other._mask and self._num_pieces == other._num_pieces

    def __hash__(self) -> int:
        return hash((self._mask, self._num_pieces))

    def __lt__(self, other: "PieceSet") -> bool:
        self._check_compatible(other)
        return (len(self), self._mask) < (len(other), other._mask)

    def __repr__(self) -> str:
        return f"PieceSet({sorted(self)}, K={self._num_pieces})"

    # -- set algebra -------------------------------------------------------

    def _check_compatible(self, other: "PieceSet") -> None:
        if self._num_pieces != other._num_pieces:
            raise ValueError(
                "piece sets refer to different files: "
                f"K={self._num_pieces} vs K={other._num_pieces}"
            )

    def issubset(self, other: "PieceSet") -> bool:
        """True if every piece of this set is held by ``other``."""
        self._check_compatible(other)
        return (self._mask & other._mask) == self._mask

    def issuperset(self, other: "PieceSet") -> bool:
        """True if this set holds every piece of ``other``."""
        return other.issubset(self)

    def is_proper_subset(self, other: "PieceSet") -> bool:
        """True if this set is contained in, and not equal to, ``other``."""
        return self.issubset(other) and self._mask != other._mask

    def union(self, other: "PieceSet") -> "PieceSet":
        self._check_compatible(other)
        return PieceSet.from_mask(self._mask | other._mask, self._num_pieces)

    def intersection(self, other: "PieceSet") -> "PieceSet":
        self._check_compatible(other)
        return PieceSet.from_mask(self._mask & other._mask, self._num_pieces)

    def difference(self, other: "PieceSet") -> "PieceSet":
        self._check_compatible(other)
        return PieceSet.from_mask(self._mask & ~other._mask, self._num_pieces)

    def add(self, piece: int) -> "PieceSet":
        """Return a new piece set with ``piece`` added."""
        if not 1 <= piece <= self._num_pieces:
            raise ValueError(f"piece index {piece} out of range")
        return PieceSet.from_mask(self._mask | (1 << (piece - 1)), self._num_pieces)

    def remove(self, piece: int) -> "PieceSet":
        """Return a new piece set with ``piece`` removed (must be present)."""
        if piece not in self:
            raise KeyError(f"piece {piece} not in {self!r}")
        return PieceSet.from_mask(self._mask & ~(1 << (piece - 1)), self._num_pieces)

    # -- model-specific helpers --------------------------------------------

    @property
    def is_complete(self) -> bool:
        """True if the peer holds all ``K`` pieces (it is a peer seed)."""
        return self._mask == (1 << self._num_pieces) - 1

    @property
    def is_empty(self) -> bool:
        """True if the peer holds no pieces."""
        return self._mask == 0

    def missing(self) -> "PieceSet":
        """The set of pieces this peer still needs (``F − C``)."""
        full = (1 << self._num_pieces) - 1
        return PieceSet.from_mask(full & ~self._mask, self._num_pieces)

    def missing_pieces(self) -> List[int]:
        """List of 1-based indices of pieces the peer still needs."""
        return list(self.missing())

    def useful_from(self, uploader: "PieceSet") -> "PieceSet":
        """Pieces the ``uploader`` holds that this peer needs (``B − A``).

        In the paper's notation, when peer ``A`` (this set) is contacted by a
        type-``B`` uploader, a useful upload is possible iff ``B ⊄ A``, i.e.
        the returned set is nonempty.
        """
        self._check_compatible(uploader)
        return PieceSet.from_mask(uploader._mask & ~self._mask, self._num_pieces)

    def can_be_helped_by(self, uploader: "PieceSet") -> bool:
        """True if ``uploader`` holds at least one piece this peer needs."""
        return bool(uploader._mask & ~self._mask)


def all_types(num_pieces: int, include_full: bool = True) -> List[PieceSet]:
    """Enumerate every peer type for a file of ``num_pieces`` pieces.

    Types are returned sorted by cardinality then bitmask, so the empty set
    comes first and ``F`` last.  ``include_full=False`` omits the peer-seed
    type ``F`` (used when ``γ = ∞`` and seeds leave instantly).
    """
    full_mask = 1 << num_pieces
    types = [PieceSet.from_mask(m, num_pieces) for m in range(full_mask)]
    if not include_full:
        types = [t for t in types if not t.is_complete]
    return sorted(types)


def types_of_size(num_pieces: int, size: int) -> List[PieceSet]:
    """All types with exactly ``size`` pieces."""
    return [
        PieceSet(combo, num_pieces)
        for combo in itertools.combinations(range(1, num_pieces + 1), size)
    ]


def downward_closure(target: PieceSet) -> List[PieceSet]:
    """``E_C``: all types ``C' ⊆ C`` — peers that are or can become type ``C``."""
    pieces = sorted(target)
    closure = []
    for r in range(len(pieces) + 1):
        for combo in itertools.combinations(pieces, r):
            closure.append(PieceSet(combo, target.num_pieces))
    return sorted(closure)


def helpers(target: PieceSet, include_full: bool = True) -> List[PieceSet]:
    """``H_C``: all types ``C' ⊄ C`` — peers that can help type ``C`` peers.

    The full type ``F`` belongs to ``H_C`` for every ``C ≠ F``; pass
    ``include_full=False`` to omit it (e.g. when enumerating over the γ = ∞
    state space where ``x_F ≡ 0``).
    """
    result = [
        t
        for t in all_types(target.num_pieces, include_full=include_full)
        if not t.issubset(target)
    ]
    return result


def one_club_type(num_pieces: int, missing_piece: int = 1) -> PieceSet:
    """The one-club type ``F − {missing_piece}`` of Figure 2."""
    return PieceSet.full(num_pieces).remove(missing_piece)


def format_type(piece_set: PieceSet) -> str:
    """Compact human-readable rendering such as ``{1,3}`` or ``∅`` or ``F``."""
    if piece_set.is_empty:
        return "∅"
    if piece_set.is_complete:
        return "F"
    return "{" + ",".join(str(p) for p in piece_set) + "}"


def parse_type(text: str, num_pieces: int) -> PieceSet:
    """Inverse of :func:`format_type` (accepts ``∅``, ``F``, ``{1,3}``, ``1,3``)."""
    text = text.strip()
    if text in ("∅", "{}", ""):
        return PieceSet.empty(num_pieces)
    if text == "F":
        return PieceSet.full(num_pieces)
    text = text.strip("{}")
    pieces = [int(tok) for tok in text.split(",") if tok.strip()]
    return PieceSet(pieces, num_pieces)


TypeVector = Tuple[PieceSet, ...]


def canonical_type_order(num_pieces: int, include_full: bool = True) -> TypeVector:
    """The canonical ordering of types used to index state vectors."""
    return tuple(all_types(num_pieces, include_full=include_full))


def type_index_map(types: Sequence[PieceSet]) -> dict:
    """Map each type to its index within ``types``."""
    return {t: i for i, t in enumerate(types)}


__all__ = [
    "PieceSet",
    "all_types",
    "types_of_size",
    "downward_closure",
    "helpers",
    "one_club_type",
    "format_type",
    "parse_type",
    "canonical_type_order",
    "type_index_map",
]
