"""State of the P2P Markov chain: counts of peers of each type.

The paper's Markov chain has state ``x = (x_C : C ∈ 𝒞)`` where ``x_C`` is the
number of type-``C`` peers currently in the system (with ``x_F ≡ 0`` when
``γ = ∞``).  :class:`SystemState` is an immutable mapping from types to counts
with the aggregates used throughout the theory (total population ``n``,
``E_C``, ``H_C`` sums, one-club size, ...).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from .parameters import SystemParameters
from .types import PieceSet, all_types, format_type


class SystemState:
    """Immutable snapshot of the population, indexed by peer type.

    Only types with a nonzero count are stored.  States are hashable so they
    can index dictionaries (e.g. stationary distributions over truncated state
    spaces).
    """

    __slots__ = ("_counts", "_num_pieces", "_hash")

    def __init__(self, counts: Mapping[PieceSet, int], num_pieces: int):
        cleaned: Dict[PieceSet, int] = {}
        for type_c, count in counts.items():
            if type_c.num_pieces != num_pieces:
                raise ValueError(
                    f"type {type_c!r} does not match K={num_pieces}"
                )
            if count < 0:
                raise ValueError(f"negative count {count} for type {type_c!r}")
            if count:
                cleaned[type_c] = int(count)
        self._counts = cleaned
        self._num_pieces = num_pieces
        self._hash: Optional[int] = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls, num_pieces: int) -> "SystemState":
        """The empty system (no peers)."""
        return cls({}, num_pieces)

    @classmethod
    def one_club(
        cls, num_pieces: int, size: int, missing_piece: int = 1
    ) -> "SystemState":
        """A pure one-club state: ``size`` peers all of type ``F − {missing_piece}``.

        This is the canonical heavy-load initial condition used in the proof of
        transience (Section VI) and in the Figure-2 experiments.
        """
        club = PieceSet.full(num_pieces).remove(missing_piece)
        return cls({club: size}, num_pieces)

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[PieceSet, int]], num_pieces: int
    ) -> "SystemState":
        counts: Dict[PieceSet, int] = {}
        for type_c, count in pairs:
            counts[type_c] = counts.get(type_c, 0) + count
        return cls(counts, num_pieces)

    # -- mapping protocol ------------------------------------------------------

    @property
    def num_pieces(self) -> int:
        return self._num_pieces

    def count(self, type_c: PieceSet) -> int:
        """Number of type-``C`` peers (zero if absent)."""
        return self._counts.get(type_c, 0)

    def __getitem__(self, type_c: PieceSet) -> int:
        return self.count(type_c)

    def __iter__(self) -> Iterator[PieceSet]:
        return iter(sorted(self._counts))

    def items(self) -> Iterator[Tuple[PieceSet, int]]:
        for type_c in sorted(self._counts):
            yield type_c, self._counts[type_c]

    def nonzero_types(self) -> Tuple[PieceSet, ...]:
        return tuple(sorted(self._counts))

    def __len__(self) -> int:
        return len(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SystemState):
            return NotImplemented
        return (
            self._num_pieces == other._num_pieces and self._counts == other._counts
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self._num_pieces, tuple(sorted((t.mask, c) for t, c in self._counts.items())))
            )
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{format_type(t)}:{c}" for t, c in self.items()
        )
        return f"SystemState({{{inner}}}, K={self._num_pieces})"

    # -- aggregates -------------------------------------------------------------

    @property
    def total_peers(self) -> int:
        """Total number of peers ``n`` in the system."""
        return sum(self._counts.values())

    @property
    def num_seeds(self) -> int:
        """Number of peer seeds (type ``F`` peers)."""
        return self.count(PieceSet.full(self._num_pieces))

    def peers_with_piece(self, piece: int) -> int:
        """Number of peers currently holding ``piece``."""
        return sum(c for t, c in self._counts.items() if piece in t)

    def peers_missing_piece(self, piece: int) -> int:
        """Number of peers currently missing ``piece``."""
        return self.total_peers - self.peers_with_piece(piece)

    def piece_counts(self) -> Dict[int, int]:
        """Copies of each piece held across the population (seeds included)."""
        counts = {k: 0 for k in range(1, self._num_pieces + 1)}
        for type_c, count in self._counts.items():
            for piece in type_c:
                counts[piece] += count
        return counts

    def one_club_size(self, missing_piece: int = 1) -> int:
        """Number of peers of type ``F − {missing_piece}``."""
        club = PieceSet.full(self._num_pieces).remove(missing_piece)
        return self.count(club)

    def one_club_fraction(self, missing_piece: int = 1) -> float:
        """Fraction of the population in the one club (zero for empty system)."""
        n = self.total_peers
        if n == 0:
            return 0.0
        return self.one_club_size(missing_piece) / n

    def downward_count(self, target: PieceSet) -> int:
        """``E_C = Σ_{C' ⊆ C} x_{C'}`` — peers that are or can become type ``C``."""
        return sum(c for t, c in self._counts.items() if t.issubset(target))

    def helper_count(self, target: PieceSet) -> int:
        """``x_{H_C} = Σ_{C' ⊄ C} x_{C'}`` — peers that can help type ``C`` peers."""
        return sum(c for t, c in self._counts.items() if not t.issubset(target))

    def helper_potential(self, target: PieceSet, mu_over_gamma: float) -> float:
        """``H_C`` of the Lyapunov construction (Section VII).

        ``H_C = (1/(1−µ/γ)) Σ_{C' ∈ H_C} (K − |C'| + µ/γ) x_{C'}`` — the stored
        potential of the helper population for serving type-``C`` peers.
        Requires ``µ/γ < 1`` (the interesting regime ``µ < γ``).
        """
        if not 0 <= mu_over_gamma < 1:
            raise ValueError(
                f"helper_potential requires 0 <= mu/gamma < 1, got {mu_over_gamma}"
            )
        total = 0.0
        num_pieces = self._num_pieces
        for type_c, count in self._counts.items():
            if not type_c.issubset(target):
                total += (num_pieces - len(type_c) + mu_over_gamma) * count
        return total / (1.0 - mu_over_gamma)

    def helper_potential_prime(self, target: PieceSet) -> float:
        """``H'_C = Σ_{C' ∈ H_C} (K + 1 − |C'|) x_{C'}`` (case ``γ ≤ µ``, Eq. 43)."""
        num_pieces = self._num_pieces
        return float(
            sum(
                (num_pieces + 1 - len(type_c)) * count
                for type_c, count in self._counts.items()
                if not type_c.issubset(target)
            )
        )

    # -- transformations -----------------------------------------------------

    def add_peer(self, type_c: PieceSet) -> "SystemState":
        """State after the arrival of one type-``C`` peer."""
        counts = dict(self._counts)
        counts[type_c] = counts.get(type_c, 0) + 1
        return SystemState(counts, self._num_pieces)

    def remove_peer(self, type_c: PieceSet) -> "SystemState":
        """State after the departure of one type-``C`` peer (must exist)."""
        if self.count(type_c) < 1:
            raise ValueError(f"no type {type_c!r} peer to remove from {self!r}")
        counts = dict(self._counts)
        counts[type_c] -= 1
        return SystemState(counts, self._num_pieces)

    def move_peer(self, from_type: PieceSet, to_type: PieceSet) -> "SystemState":
        """State after one peer upgrades from ``from_type`` to ``to_type``."""
        if self.count(from_type) < 1:
            raise ValueError(f"no type {from_type!r} peer to move in {self!r}")
        counts = dict(self._counts)
        counts[from_type] -= 1
        counts[to_type] = counts.get(to_type, 0) + 1
        return SystemState(counts, self._num_pieces)

    def to_vector(self, type_order: Tuple[PieceSet, ...]) -> Tuple[int, ...]:
        """Counts as a tuple aligned with ``type_order``."""
        return tuple(self.count(t) for t in type_order)

    @classmethod
    def from_vector(
        cls, vector: Iterable[int], type_order: Tuple[PieceSet, ...], num_pieces: int
    ) -> "SystemState":
        """Inverse of :meth:`to_vector`."""
        counts = {t: int(v) for t, v in zip(type_order, vector) if v}
        return cls(counts, num_pieces)


def describe_state(state: SystemState) -> str:
    """One-line rendering such as ``n=12 [{1,2}:8, {1,2,3}:3, F:1]``."""
    inner = ", ".join(f"{format_type(t)}:{c}" for t, c in state.items())
    return f"n={state.total_peers} [{inner}]"


__all__ = ["SystemState", "describe_state"]
