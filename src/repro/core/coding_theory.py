"""Stability of the network-coded system — Theorem 15 and its worked example.

With random linear network coding over ``GF(q)`` the type of a peer is the
subspace of ``GF(q)^K`` spanned by the coding vectors it holds.  A random
coded upload from ``B`` to ``A`` is useful with probability at least
``1 − 1/q`` whenever ``B`` can possibly help ``A``; the effective peer upload
rate thus becomes ``µ̃ = (1 − 1/q) µ``.

Theorem 15 mirrors Theorem 1 with pieces replaced by the hyperplanes
``V⁻ ⊂ GF(q)^K`` of dimension ``K − 1``:

* transient if for some hyperplane ``V⁻``

  ``λ_total > (U_s + Σ_{V ⊄ V⁻} λ_V (K − dim V + 1)) / (1 − µ/γ)``,

* positive recurrent if for every hyperplane ``V⁻``

  ``λ_total < (U_s + Σ_{V ⊄ V⁻} λ_V (K − dim V + q/(q−1))) (1 − 1/q)/(1 − µ̃/γ)``.

The paper's headline example (peers arriving with a single uniformly random
coded piece, no fixed seed, ``γ = ∞``) gives simple thresholds on the gifted
fraction ``f``: transient when ``f < q/((q−1)K)`` (approximately) and stable
when ``f > q²/((q−1)²K)``; without coding the same system is transient for
every ``f < 1``.  This module computes both the general conditions
(parametrised by arrival rates grouped by subspace dimension and hyperplane
membership) and the worked-example thresholds, exactly and in the paper's
approximate form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple


def mu_tilde(mu: float, q: int) -> float:
    """Effective peer upload rate ``µ̃ = (1 − 1/q) µ`` under random coding."""
    if q < 2:
        raise ValueError(f"field size q must be at least 2, got {q}")
    if mu <= 0:
        raise ValueError(f"mu must be positive, got {mu}")
    return (1.0 - 1.0 / q) * mu


def useful_probability(dim_a_intersect_b: int, dim_b: int, q: int) -> float:
    """Probability a random coded piece from ``B`` is useful to ``A``.

    ``1 − q^{dim(V_A ∩ V_B) − dim(V_B)}`` — zero when ``V_B ⊆ V_A`` and at
    least ``1 − 1/q`` otherwise.
    """
    if dim_a_intersect_b > dim_b:
        raise ValueError("intersection dimension cannot exceed dim(V_B)")
    if dim_b == 0:
        return 0.0
    return 1.0 - float(q) ** (dim_a_intersect_b - dim_b)


@dataclass(frozen=True)
class CodedArrivalClass:
    """One class of coded arrivals for the Theorem-15 conditions.

    Attributes
    ----------
    rate:
        Poisson arrival rate of this class.
    dimension:
        Dimension of the arriving subspace ``V``.
    outside_worst_hyperplane_fraction:
        Fraction of this class's rate whose subspace is *not* contained in the
        worst-case hyperplane ``V⁻`` (i.e. the fraction that arrives already
        "enlightened").  For peers arriving with ``d`` independent uniformly
        random coded pieces this is ``1 − q^{-d}``... computed by the caller;
        helpers below cover the single-random-piece case.
    """

    rate: float
    dimension: int
    outside_worst_hyperplane_fraction: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be nonnegative")
        if self.dimension < 0:
            raise ValueError("dimension must be nonnegative")
        if not 0.0 <= self.outside_worst_hyperplane_fraction <= 1.0:
            raise ValueError("fraction must lie in [0, 1]")


@dataclass(frozen=True)
class CodedStabilityReport:
    """Thresholds of Theorem 15 for one parameter set."""

    transience_threshold: float
    recurrence_threshold: float
    lambda_total: float
    is_transient: bool
    is_positive_recurrent: bool


def coded_stability(
    num_pieces: int,
    q: int,
    seed_rate: float,
    mu: float,
    gamma: float,
    arrival_classes: Tuple[CodedArrivalClass, ...],
) -> CodedStabilityReport:
    """Apply Theorem 15 to coded arrivals described by ``arrival_classes``.

    The worst hyperplane is the one minimising the helping terms; callers
    encode that choice through ``outside_worst_hyperplane_fraction``.  Both
    regimes of the theorem are handled; when ``γ ≤ µ̃`` the recurrence
    condition degenerates to "some arrivals span the space or ``U_s > 0``",
    which callers should check separately — here the thresholds are reported
    as infinite in that case.
    """
    if num_pieces < 1:
        raise ValueError("num_pieces must be >= 1")
    if q < 2:
        raise ValueError("q must be >= 2")
    lambda_total = sum(cls_.rate for cls_ in arrival_classes)
    ratio = mu / gamma if not math.isinf(gamma) else 0.0
    mu_eff = mu_tilde(mu, q)
    ratio_eff = mu_eff / gamma if not math.isinf(gamma) else 0.0

    if ratio >= 1.0:
        transience_threshold = math.inf
    else:
        helping = seed_rate + sum(
            cls_.rate
            * cls_.outside_worst_hyperplane_fraction
            * (num_pieces - cls_.dimension + 1)
            for cls_ in arrival_classes
        )
        transience_threshold = helping / (1.0 - ratio)

    if ratio_eff >= 1.0:
        recurrence_threshold = math.inf
    else:
        helping = seed_rate + sum(
            cls_.rate
            * cls_.outside_worst_hyperplane_fraction
            * (num_pieces - cls_.dimension + q / (q - 1.0))
            for cls_ in arrival_classes
        )
        recurrence_threshold = helping * (1.0 - 1.0 / q) / (1.0 - ratio_eff)

    return CodedStabilityReport(
        transience_threshold=transience_threshold,
        recurrence_threshold=recurrence_threshold,
        lambda_total=lambda_total,
        is_transient=lambda_total > transience_threshold,
        is_positive_recurrent=lambda_total < recurrence_threshold,
    )


# ---------------------------------------------------------------------------
# The worked example: a fraction f of peers arrive with one random coded piece
# ---------------------------------------------------------------------------


def gifted_fraction_thresholds(num_pieces: int, q: int) -> Tuple[float, float]:
    """Paper-form thresholds ``(q/((q−1)K), q²/((q−1)²K))`` on the gifted fraction.

    The system (``U_s = 0``, ``γ = ∞``, fraction ``f`` of arrivals carrying one
    uniformly random coded piece) is transient when ``f`` is below the first
    value and positive recurrent when above the second.
    """
    if num_pieces < 1 or q < 2:
        raise ValueError("require num_pieces >= 1 and q >= 2")
    lower = q / ((q - 1.0) * num_pieces)
    upper = q * q / ((q - 1.0) ** 2 * num_pieces)
    return lower, upper


def gifted_fraction_thresholds_exact(num_pieces: int, q: int) -> Tuple[float, float]:
    """Exact thresholds from Theorem 15 for the single-random-coded-piece example.

    Derivation: arrivals with one uniformly random coded piece have their
    coding vector outside a fixed hyperplane with probability ``1 − 1/q`` (and
    are useless with probability ``q^{-K}``, folded into dimension 0).  With
    ``U_s = 0`` and ``γ = ∞`` the transience condition reads
    ``1 > f (1 − 1/q) K`` and the recurrence condition reads
    ``1 < f (1 − 1/q)² (K − 1 + q/(q−1))``.
    """
    if num_pieces < 1 or q < 2:
        raise ValueError("require num_pieces >= 1 and q >= 2")
    p_outside = 1.0 - 1.0 / q
    lower = 1.0 / (p_outside * (num_pieces - 1 + 1))  # (K - dim + 1) with dim = 1
    lower /= 1.0  # gamma = inf => 1/(1 - mu/gamma) = 1
    lower = 1.0 / (p_outside * num_pieces)
    upper = 1.0 / (p_outside ** 2 * (num_pieces - 1 + q / (q - 1.0)))
    return lower, upper


def gifted_example_report(
    num_pieces: int,
    q: int,
    gifted_fraction: float,
    total_rate: float = 1.0,
) -> CodedStabilityReport:
    """Theorem-15 report for the worked example at a given gifted fraction ``f``."""
    if not 0.0 <= gifted_fraction <= 1.0:
        raise ValueError("gifted_fraction must lie in [0, 1]")
    lambda_gifted = gifted_fraction * total_rate
    lambda_empty = (1.0 - gifted_fraction) * total_rate
    classes = (
        CodedArrivalClass(rate=lambda_empty, dimension=0, outside_worst_hyperplane_fraction=0.0),
        CodedArrivalClass(
            rate=lambda_gifted,
            dimension=1,
            outside_worst_hyperplane_fraction=1.0 - 1.0 / q,
        ),
    )
    return coded_stability(
        num_pieces=num_pieces,
        q=q,
        seed_rate=0.0,
        mu=1.0,
        gamma=math.inf,
        arrival_classes=classes,
    )


def uncoded_gifted_is_transient(gifted_fraction: float) -> bool:
    """Without coding, the same example is transient for every ``f < 1``.

    A peer arriving with one uniformly random *data* piece carries the rare
    piece only with probability ``1/K``, and Theorem 1 makes the system with
    ``U_s = 0`` and ``γ = ∞`` transient for any arrival mix in which peers
    missing the rare piece arrive faster than gifted peers can serve them —
    which holds for every ``f < 1`` (see Section VIII-B).
    """
    return gifted_fraction < 1.0


def paper_example_table(q: int = 64, num_pieces: int = 200) -> Dict[str, float]:
    """Numbers quoted in the paper for ``q = 64``, ``K = 200``.

    Returns the transient/recurrent thresholds in the paper's ``c/K`` form
    (``1.014/K ≈ 0.00507`` and ``1.032/K ≈ 0.00516``) along with the raw
    values, so EXPERIMENTS.md can compare them side by side.
    """
    lower, upper = gifted_fraction_thresholds(num_pieces, q)
    return {
        "q": float(q),
        "K": float(num_pieces),
        "transient_below": lower,
        "recurrent_above": upper,
        "transient_below_times_K": lower * num_pieces,
        "recurrent_above_times_K": upper * num_pieces,
    }


__all__ = [
    "mu_tilde",
    "useful_probability",
    "CodedArrivalClass",
    "CodedStabilityReport",
    "coded_stability",
    "gifted_fraction_thresholds",
    "gifted_fraction_thresholds_exact",
    "gifted_example_report",
    "uncoded_gifted_is_transient",
    "paper_example_table",
]
