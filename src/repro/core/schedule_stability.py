"""Scenario-aware Theorem-1 reporting: piecewise verdicts over schedules.

Theorem 1 assumes constant arrival and seed rates.  A scenario's
:class:`~repro.core.scenario.RateSchedule`\\ s make both piecewise-constant,
so the natural extension is a *piecewise* analysis: split time at the union
of the two schedules' breakpoints, apply Theorem 1 to the effective rates of
each segment (base rates times the segment's arrival/seed factors), and
combine the segment verdicts into one conservative whole-run verdict —
**stable iff every segment is stable**, unstable as soon as any segment is
unstable, borderline otherwise.

The whole-run verdict is deliberately conservative rather than exact: a
finite unstable window does not make the process transient in the
Markov-chain sense (the backlog it builds may drain once the window closes),
but a run certified "stable" here never leaves the Theorem-1 region at any
instant.  A segment with arrival factor 0 admits no arrivals at all, so it is
reported stable regardless of the seed factor.

Heterogeneous peer classes fall outside Theorem 1's homogeneous hypotheses;
scenarios with classes are reported as ``out-of-theory`` (an explicit
verdict bucket, used as-is by the fleet layer's confusion census).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from .scenario import ScenarioSpec
from .stability import Stability, analyze

#: Whole-run verdict for scenarios Theorem 1 does not cover.
OUT_OF_THEORY = "out-of-theory"


@dataclass(frozen=True)
class SegmentVerdict:
    """Theorem-1 outcome on one constant-rate segment of a scenario."""

    start: float
    end: float  # math.inf on the last segment
    arrival_factor: float
    seed_factor: float
    verdict: str  # a Stability value
    margin: float

    def row(self) -> Tuple[str, float, float, str, float]:
        span = f"[{self.start:g}, {'inf' if math.isinf(self.end) else f'{self.end:g}'})"
        return (span, self.arrival_factor, self.seed_factor, self.verdict, self.margin)


@dataclass(frozen=True)
class ScheduleStabilityReport:
    """Per-segment Theorem-1 verdicts plus the conservative whole-run one."""

    scenario_name: str
    segments: Tuple[SegmentVerdict, ...]
    overall: str  # "stable" | "unstable" | "borderline" | OUT_OF_THEORY

    @property
    def is_piecewise(self) -> bool:
        """True when the scenario actually varies the rates over time."""
        return len(self.segments) > 1

    def describe(self) -> str:
        lines = [f"scenario {self.scenario_name!r}: whole-run verdict {self.overall}"]
        for segment in self.segments:
            span, af, sf, verdict, margin = segment.row()
            lines.append(
                f"  {span}: arrivals x{af:g}, seed x{sf:g} -> {verdict} "
                f"(margin {margin:+.4g})"
            )
        if not self.segments:
            lines.append("  (heterogeneous classes: outside Theorem 1)")
        return "\n".join(lines)


def piecewise_stability(scenario: ScenarioSpec) -> ScheduleStabilityReport:
    """Theorem-1 verdicts per schedule segment, with a conservative summary.

    The whole-run verdict is ``stable`` iff every segment is stable,
    ``unstable`` when any segment is unstable, ``borderline`` otherwise, and
    ``out-of-theory`` for heterogeneous (classed) scenarios.
    """
    if scenario.is_heterogeneous:
        return ScheduleStabilityReport(
            scenario_name=scenario.name, segments=(), overall=OUT_OF_THEORY
        )
    breakpoints = sorted(
        set(scenario.arrival_schedule.times) | set(scenario.seed_schedule.times)
    )
    segments = []
    for index, start in enumerate(breakpoints):
        end = breakpoints[index + 1] if index + 1 < len(breakpoints) else math.inf
        arrival_factor = scenario.arrival_schedule.value_at(start)
        seed_factor = scenario.seed_schedule.value_at(start)
        if arrival_factor == 0.0:
            # No arrivals at all during this segment: the population cannot
            # grow, so the segment is trivially stable.
            verdict, margin = Stability.STABLE.value, math.inf
        else:
            params = scenario.params
            if arrival_factor != 1.0:
                params = params.scaled_arrivals(arrival_factor)
            if seed_factor != 1.0:
                params = params.with_seed_rate(params.seed_rate * seed_factor)
            report = analyze(params)
            verdict, margin = report.verdict.value, report.margin
        segments.append(
            SegmentVerdict(
                start=start,
                end=end,
                arrival_factor=arrival_factor,
                seed_factor=seed_factor,
                verdict=verdict,
                margin=margin,
            )
        )
    if any(s.verdict == Stability.UNSTABLE.value for s in segments):
        overall = Stability.UNSTABLE.value
    elif all(s.verdict == Stability.STABLE.value for s in segments):
        overall = Stability.STABLE.value
    else:
        overall = Stability.BORDERLINE.value
    return ScheduleStabilityReport(
        scenario_name=scenario.name, segments=tuple(segments), overall=overall
    )


__all__ = [
    "OUT_OF_THEORY",
    "ScheduleStabilityReport",
    "SegmentVerdict",
    "piecewise_stability",
]
