"""Explicit generator matrices on truncated state spaces.

The P2P chain has a countably infinite state space; for small ``K`` and a cap
``n ≤ n_max`` on the population we can enumerate every reachable state, build
the (sparse) generator matrix ``Q`` and compute exact quantities:

* the stationary distribution of the truncated chain (arrivals that would
  exceed the cap are blocked, a standard finite-buffer approximation),
* expected population and per-type occupancy in the truncation,
* expected hitting times of the empty state (a proxy for recovery time from
  heavy load).

These exact computations back up the asymptotic Theorem-1 classification on
small instances and are used by unit tests and by the Lyapunov benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .parameters import SystemParameters
from .state import SystemState
from .transitions import outgoing_transitions


@dataclass
class TruncatedChain:
    """A finite truncation of the P2P Markov chain.

    Attributes
    ----------
    params:
        The system parameters the chain was built from.
    max_peers:
        Population cap ``n_max``; arrivals are blocked at the cap.
    states:
        Every state with at most ``max_peers`` peers reachable from the empty
        state, in a deterministic order (index 0 is the empty state).
    index:
        Mapping from state to its index in ``states``.
    generator:
        Sparse CSR generator matrix ``Q`` (rows sum to zero).
    """

    params: SystemParameters
    max_peers: int
    states: List[SystemState]
    index: Dict[SystemState, int]
    generator: sp.csr_matrix

    @property
    def num_states(self) -> int:
        return len(self.states)

    # -- solvers --------------------------------------------------------------

    def stationary_distribution(self) -> np.ndarray:
        """Stationary distribution ``π`` of the truncated chain (``π Q = 0``).

        Solved as a dense linear system with the normalisation constraint
        replacing one (redundant) balance equation; adequate for the state
        space sizes used in tests and benchmarks (up to a few tens of
        thousands of states).
        """
        size = self.num_states
        dense = self.generator.toarray().T  # columns: balance equations
        system = np.vstack([dense, np.ones((1, size))])
        rhs = np.zeros(size + 1)
        rhs[-1] = 1.0
        solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
        solution = np.clip(solution, 0.0, None)
        total = solution.sum()
        if total <= 0:
            raise RuntimeError("stationary distribution solve failed")
        return solution / total

    def expected_population(self, distribution: Optional[np.ndarray] = None) -> float:
        """``E[N]`` under the stationary distribution of the truncation."""
        pi = distribution if distribution is not None else self.stationary_distribution()
        populations = np.array([s.total_peers for s in self.states], dtype=float)
        return float(pi @ populations)

    def occupancy_by_type(
        self, distribution: Optional[np.ndarray] = None
    ) -> Dict[str, float]:
        """Expected number of peers of each type under the stationary law."""
        from .types import format_type

        pi = distribution if distribution is not None else self.stationary_distribution()
        totals: Dict[str, float] = {}
        for weight, state in zip(pi, self.states):
            for type_c, count in state.items():
                key = format_type(type_c)
                totals[key] = totals.get(key, 0.0) + weight * count
        return totals

    def mean_hitting_time_to_empty(self, start: SystemState) -> float:
        """Expected time to reach the empty state from ``start``.

        Solves ``Q_B h = -1`` on the set ``B`` of non-empty states, where
        ``Q_B`` is the generator restricted to ``B``.  Within the truncation
        this is finite for any parameter values; for unstable parameters it
        grows quickly with the truncation size, which is itself a useful
        diagnostic.
        """
        if start not in self.index:
            raise ValueError(f"state {start!r} is not in the truncation")
        empty_idx = self.index[SystemState.empty(self.params.num_pieces)]
        keep = [i for i in range(self.num_states) if i != empty_idx]
        position = {state_idx: row for row, state_idx in enumerate(keep)}
        submatrix = self.generator[keep, :][:, keep].tocsc()
        rhs = -np.ones(len(keep))
        hitting = spla.spsolve(submatrix, rhs)
        if start == SystemState.empty(self.params.num_pieces):
            return 0.0
        return float(hitting[position[self.index[start]]])


def enumerate_states(
    params: SystemParameters,
    max_peers: int,
    initial: Optional[SystemState] = None,
) -> List[SystemState]:
    """Breadth-first enumeration of all states with ``n ≤ max_peers``.

    Starts from the empty state (or ``initial``) and follows transitions,
    ignoring arrivals that would exceed the population cap.  The result
    contains the empty state first and is otherwise ordered by discovery.
    """
    start = initial if initial is not None else SystemState.empty(params.num_pieces)
    if start.total_peers > max_peers:
        raise ValueError("initial state already exceeds max_peers")
    seen = {start}
    order = [start]
    frontier = [start]
    while frontier:
        next_frontier: List[SystemState] = []
        for state in frontier:
            for transition in outgoing_transitions(state, params):
                target = transition.target
                if target.total_peers > max_peers or target in seen:
                    continue
                seen.add(target)
                order.append(target)
                next_frontier.append(target)
        frontier = next_frontier
    # Put the empty state first (it may not be `start`).
    empty = SystemState.empty(params.num_pieces)
    if empty not in seen:
        order.insert(0, empty)
    else:
        order.remove(empty)
        order.insert(0, empty)
    return order


def build_truncated_chain(
    params: SystemParameters,
    max_peers: int,
    initial: Optional[SystemState] = None,
) -> TruncatedChain:
    """Enumerate states and assemble the sparse generator of the truncation."""
    states = enumerate_states(params, max_peers, initial=initial)
    index = {state: i for i, state in enumerate(states)}
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    for i, state in enumerate(states):
        exit_rate = 0.0
        for transition in outgoing_transitions(state, params):
            j = index.get(transition.target)
            if j is None:
                # Transition leaves the truncation (an arrival at the cap):
                # block it, i.e. do not count it in the exit rate either.
                continue
            rows.append(i)
            cols.append(j)
            data.append(transition.rate)
            exit_rate += transition.rate
        rows.append(i)
        cols.append(i)
        data.append(-exit_rate)
    generator = sp.csr_matrix(
        (data, (rows, cols)), shape=(len(states), len(states))
    )
    return TruncatedChain(
        params=params,
        max_peers=max_peers,
        states=states,
        index=index,
        generator=generator,
    )


__all__ = ["TruncatedChain", "enumerate_states", "build_truncated_chain"]
