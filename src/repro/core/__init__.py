"""Core model and theory of the Zhu--Hajek P2P stability paper.

Sub-modules:

* :mod:`repro.core.types` — piece sets and the peer-type lattice;
* :mod:`repro.core.parameters` — :class:`SystemParameters` and example
  constructors;
* :mod:`repro.core.state` — population state :class:`SystemState`;
* :mod:`repro.core.transitions` — the transition rates of Eq. (1);
* :mod:`repro.core.stability` — Theorem 1 (stability region, ``Δ_S``,
  critical parameters);
* :mod:`repro.core.branching` — the autonomous branching system of the
  transience proof;
* :mod:`repro.core.lyapunov` — the Lyapunov functions of the recurrence proof;
* :mod:`repro.core.coding_theory` — Theorem 15 (network coding);
* :mod:`repro.core.generator` — exact truncated-chain computations;
* :mod:`repro.core.scenario` — declarative workloads: heterogeneous peer
  classes, time-varying rate schedules, and the named-scenario registry;
* :mod:`repro.core.schedule_stability` — scenario-aware Theorem-1 reporting
  (piecewise verdicts per schedule segment, conservative whole-run verdict).
"""

from .parameters import SystemParameters, uniform_single_piece_rates
from .scenario import (
    PeerClass,
    RateSchedule,
    ScenarioSpec,
    base_params,
    flash_exit_scenario,
    make_scenario,
    partitioned_scenario,
    register_scenario,
    registered_scenarios,
    sparse_overlay_scenario,
)
from .schedule_stability import (
    OUT_OF_THEORY,
    ScheduleStabilityReport,
    SegmentVerdict,
    piecewise_stability,
)
from .stability import (
    Stability,
    StabilityReport,
    analyze,
    critical_departure_rate,
    critical_seed_rate,
    delta_s,
    is_stable,
    is_unstable,
    minimum_mean_dwell_time,
    piece_threshold,
    stability_margin,
)
from .state import SystemState
from .types import PieceSet, all_types, format_type, one_club_type

__all__ = [
    "OUT_OF_THEORY",
    "PeerClass",
    "PieceSet",
    "RateSchedule",
    "ScenarioSpec",
    "ScheduleStabilityReport",
    "SegmentVerdict",
    "SystemParameters",
    "SystemState",
    "Stability",
    "StabilityReport",
    "all_types",
    "analyze",
    "base_params",
    "critical_departure_rate",
    "critical_seed_rate",
    "delta_s",
    "flash_exit_scenario",
    "format_type",
    "is_stable",
    "is_unstable",
    "make_scenario",
    "minimum_mean_dwell_time",
    "one_club_type",
    "partitioned_scenario",
    "piece_threshold",
    "piecewise_stability",
    "register_scenario",
    "registered_scenarios",
    "sparse_overlay_scenario",
    "stability_margin",
    "uniform_single_piece_rates",
]
