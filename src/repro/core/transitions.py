r"""Transition rates of the P2P Markov chain (Eq. (1) of the paper).

The chain moves in three ways:

* **arrival** of a type-``C`` peer at rate ``λ_C``;
* **upgrade** of a type-``C`` peer to type ``C ∪ {i}`` at aggregate rate

  .. math::

     Γ_{C, C∪\{i\}} = \frac{x_C}{n}\Bigl(\frac{U_s}{K-|C|}
        + µ \sum_{S : i ∈ S} \frac{x_S}{|S-C|}\Bigr),

  which, when ``C ∪ {i} = F`` and ``γ = ∞``, is instead a departure;
* **departure** of a peer seed at rate ``γ x_F`` (only when ``γ < ∞``).

This module computes individual rates, enumerates all outgoing transitions of
a state (for exact generator construction and for jump-chain simulation), and
provides the aggregate download/upload rates used by the Lyapunov analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional, Tuple

from .parameters import SystemParameters
from .state import SystemState
from .types import PieceSet


class TransitionKind(Enum):
    """Classification of a single Markov transition."""

    ARRIVAL = "arrival"
    UPGRADE = "upgrade"
    COMPLETION_DEPARTURE = "completion_departure"
    SEED_DEPARTURE = "seed_departure"


@dataclass(frozen=True)
class Transition:
    """One outgoing transition of the chain.

    Attributes
    ----------
    kind:
        Which of the four transition kinds this is.
    rate:
        The (positive) transition rate.
    target:
        The state reached by the transition.
    peer_type:
        The type of the peer involved (the arriving type, the upgrading
        peer's *old* type, or ``F`` for a seed departure).
    piece:
        The piece downloaded, for upgrades and completion departures.
    """

    kind: TransitionKind
    rate: float
    target: SystemState
    peer_type: PieceSet
    piece: Optional[int] = None


def upgrade_rate(
    state: SystemState,
    params: SystemParameters,
    from_type: PieceSet,
    piece: int,
) -> float:
    """Aggregate rate ``Γ_{C, C∪{piece}}`` at which type-``C`` peers gain ``piece``.

    Returns zero when there are no type-``C`` peers, the system is empty, or
    the piece is already held (``piece ∈ C``).
    """
    if piece in from_type:
        return 0.0
    x_c = state.count(from_type)
    n = state.total_peers
    if x_c == 0 or n == 0:
        return 0.0
    num_pieces = params.num_pieces
    seed_term = params.seed_rate / (num_pieces - len(from_type))
    peer_term = 0.0
    for holder_type, count in state.items():
        if piece in holder_type:
            useful = len(holder_type.difference(from_type))
            # ``piece ∈ holder_type`` and ``piece ∉ from_type`` ⇒ useful ≥ 1.
            peer_term += count / useful
    return (x_c / n) * (seed_term + params.peer_rate * peer_term)


def seed_departure_rate(state: SystemState, params: SystemParameters) -> float:
    """Rate ``γ x_F`` at which peer seeds depart (zero when ``γ = ∞``)."""
    if params.immediate_departure:
        return 0.0
    return params.seed_departure_rate * state.num_seeds


def outgoing_transitions(
    state: SystemState, params: SystemParameters
) -> List[Transition]:
    """Enumerate every outgoing transition of ``state`` with its rate.

    The union of these transitions defines the row of the generator matrix at
    ``state`` (excluding the diagonal).  Rates of zero are omitted.
    """
    transitions: List[Transition] = []
    full = PieceSet.full(params.num_pieces)

    for type_c, rate in params.arrival_rates.items():
        if rate > 0:
            transitions.append(
                Transition(
                    kind=TransitionKind.ARRIVAL,
                    rate=rate,
                    target=state.add_peer(type_c),
                    peer_type=type_c,
                )
            )

    if not params.immediate_departure:
        rate = seed_departure_rate(state, params)
        if rate > 0:
            transitions.append(
                Transition(
                    kind=TransitionKind.SEED_DEPARTURE,
                    rate=rate,
                    target=state.remove_peer(full),
                    peer_type=full,
                )
            )

    for from_type, _count in state.items():
        if from_type.is_complete:
            continue
        for piece in from_type.missing():
            rate = upgrade_rate(state, params, from_type, piece)
            if rate <= 0:
                continue
            new_type = from_type.add(piece)
            if new_type.is_complete and params.immediate_departure:
                transitions.append(
                    Transition(
                        kind=TransitionKind.COMPLETION_DEPARTURE,
                        rate=rate,
                        target=state.remove_peer(from_type),
                        peer_type=from_type,
                        piece=piece,
                    )
                )
            else:
                transitions.append(
                    Transition(
                        kind=TransitionKind.UPGRADE,
                        rate=rate,
                        target=state.move_peer(from_type, new_type),
                        peer_type=from_type,
                        piece=piece,
                    )
                )
    return transitions


def total_exit_rate(state: SystemState, params: SystemParameters) -> float:
    """Total rate out of ``state`` (the negated diagonal generator entry)."""
    return sum(t.rate for t in outgoing_transitions(state, params))


def departure_rate_from_type(
    state: SystemState, params: SystemParameters, from_type: PieceSet
) -> float:
    """``D_C``: aggregate rate at which peers leave the type-``C`` group.

    For ``C ≠ F`` this is ``Σ_i Γ_{C, C∪{i}}``; for ``C = F`` it is ``γ x_F``
    (zero if ``γ = ∞``), matching the definition in Section VII.
    """
    if from_type.is_complete:
        return seed_departure_rate(state, params)
    return sum(
        upgrade_rate(state, params, from_type, piece)
        for piece in from_type.missing()
    )


def total_download_rate(state: SystemState, params: SystemParameters) -> float:
    """``D_total``: aggregate rate of piece downloads across the whole system."""
    total = 0.0
    for from_type, _count in state.items():
        if not from_type.is_complete:
            total += departure_rate_from_type(state, params, from_type)
    return total


def flow_between(
    state: SystemState,
    params: SystemParameters,
    source_types: Tuple[PieceSet, ...],
    target_types: Tuple[PieceSet, ...],
) -> float:
    """``Γ_{X, X'}``: aggregate upgrade rate from types in ``X`` into types in ``X'``."""
    target_set = set(target_types)
    total = 0.0
    for from_type in source_types:
        if from_type.is_complete or state.count(from_type) == 0:
            continue
        for piece in from_type.missing():
            if from_type.add(piece) in target_set:
                total += upgrade_rate(state, params, from_type, piece)
    return total


def transition_rate_matrix_row(
    state: SystemState, params: SystemParameters
) -> Dict[SystemState, float]:
    """Off-diagonal generator entries ``q(x, x')`` for the row at ``state``.

    Transitions that land on the same target state (possible when different
    pieces lead to the same type change, which cannot happen here, but also
    when an arrival and an upgrade coincide, which cannot either) are summed
    defensively.
    """
    row: Dict[SystemState, float] = {}
    for transition in outgoing_transitions(state, params):
        row[transition.target] = row.get(transition.target, 0.0) + transition.rate
    return row


__all__ = [
    "Transition",
    "TransitionKind",
    "upgrade_rate",
    "seed_departure_rate",
    "outgoing_transitions",
    "total_exit_rate",
    "departure_rate_from_type",
    "total_download_rate",
    "flow_between",
    "transition_rate_matrix_row",
]
