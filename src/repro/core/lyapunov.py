r"""Lyapunov functions of the positive-recurrence proof (Section VII).

Two Lyapunov functions are used in the paper:

* ``W`` (Eq. (11)/(12)) for the regime ``0 < µ < γ ≤ ∞``:

  .. math::

     W = \sum_C r^{|C|} T_C,\qquad
     T_C = \tfrac12 E_C^2 + α E_C φ(H_C) \ (C ≠ F),\qquad
     T_F = \tfrac12 n^2,

  where ``E_C`` counts peers that can still become type ``C``, ``H_C`` is the
  stored helping potential of peers outside ``E_C`` and ``φ`` is a clipped
  quadratic ramp;

* ``W'`` (Eq. (43)) for the regime ``0 < γ ≤ µ`` which replaces ``α`` and
  ``H_C`` by a constant ``p`` and the simpler potential
  ``H'_C = Σ_{C' ⊄ C}(K+1−|C'|) x_{C'}``.

This module evaluates both functions and their exact drifts
``QW(x) = Σ_{x'} q(x, x') (W(x') − W(x))`` using the transition enumeration of
:mod:`repro.core.transitions`, so the Foster–Lyapunov negativity can be
verified numerically on heavy-load states (benchmark E9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .parameters import SystemParameters
from .state import SystemState
from .transitions import outgoing_transitions
from .types import PieceSet, all_types


def phi(value: float, d: float, beta: float) -> float:
    """The clipped ramp ``φ`` of Section VII.

    ``φ`` decreases with slope −1 on ``[0, 2d]``, flattens quadratically on
    ``[2d, 2d + 1/β]`` and is zero beyond; its derivative is Lipschitz with
    constant ``β``.
    """
    if value < 0:
        raise ValueError(f"phi is defined for nonnegative arguments, got {value}")
    knee = 2.0 * d
    upper = knee + 1.0 / beta
    if value <= knee:
        return knee + 1.0 / (2.0 * beta) - value
    if value <= upper:
        return beta / 2.0 * (value - upper) ** 2
    return 0.0


def phi_prime(value: float, d: float, beta: float) -> float:
    """Derivative of :func:`phi` (between −1 and 0)."""
    knee = 2.0 * d
    upper = knee + 1.0 / beta
    if value <= knee:
        return -1.0
    if value <= upper:
        return beta * (value - upper)
    return 0.0


@dataclass(frozen=True)
class LyapunovConfig:
    """Constants ``(r, d, β, α, p)`` of the Lyapunov functions.

    The proof requires ``r ∈ (0, ½)`` small, ``d > 1`` large, ``β ∈ (0, ½)``
    small, ``α ∈ (½, 1)`` close to one with
    ``β ((K + µ/γ)/(1 − µ/γ))² ≤ 1/α − 1``, and ``p`` large enough that
    ``λ_{E_C} − p (U_s + λ^*_{H_C}) < 0`` for every ``C ≠ F``.  Exact values
    only change how large the population must be before the drift turns
    negative; :meth:`default_for` picks values satisfying the constraints.
    """

    r: float = 0.1
    d: float = 10.0
    beta: float = 0.01
    alpha: float = 0.9
    p: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.r < 0.5:
            raise ValueError(f"r must lie in (0, 0.5), got {self.r}")
        if not self.d > 1:
            raise ValueError(f"d must exceed 1, got {self.d}")
        if not 0 < self.beta < 0.5:
            raise ValueError(f"beta must lie in (0, 0.5), got {self.beta}")
        if not 0.5 < self.alpha < 1:
            raise ValueError(f"alpha must lie in (0.5, 1), got {self.alpha}")
        if not self.p > 0:
            raise ValueError(f"p must be positive, got {self.p}")

    @classmethod
    def default_for(cls, params: SystemParameters) -> "LyapunovConfig":
        """Constants satisfying the proof's constraints for these parameters.

        ``α`` is chosen adaptively: large enough that, for every subset ``S``
        with positive helping supply, ``λ_{E_S} − α·(amplified supply) < 0``
        (possible whenever ``Δ_S < 0``), but as small as the constraint allows
        so that ``β`` — and with it the flat part of ``φ`` — stays moderate and
        the drift turns negative at moderate population sizes.
        """
        ratio = params.mu_over_gamma
        num_pieces = params.num_pieces
        if ratio < 1.0:
            jump = (num_pieces + ratio) / (1.0 - ratio)
            d = max(5.0, 2.0 * (1.0 + ratio) / (1.0 - ratio), jump + 1.0)
        else:
            jump = float(num_pieces + 1)
            d = max(5.0, jump + 1.0)
        # Smallest alpha that keeps the drift coefficient negative on every
        # heavy-load subset, with head-room; clamped to the proof's (1/2, 1).
        demand_supply_ratio = 0.0
        if ratio < 1.0:
            for type_c in all_types(num_pieces, include_full=False):
                demand = sum(
                    rate
                    for arr_type, rate in params.arrival_rates.items()
                    if arr_type.issubset(type_c)
                )
                supply = (
                    params.seed_rate
                    + sum(
                        rate * (num_pieces - len(arr_type) + ratio)
                        for arr_type, rate in params.arrival_rates.items()
                        if not arr_type.issubset(type_c)
                    )
                ) / (1.0 - ratio)
                if supply > 0:
                    demand_supply_ratio = max(demand_supply_ratio, demand / supply)
        alpha = min(0.999, max(0.75, (1.0 + min(demand_supply_ratio, 1.0)) / 2.0))
        beta = min(0.1, 0.9 * (1.0 / alpha - 1.0) / (jump * jump))
        beta = max(beta, 1e-9)
        # p chosen so that lambda_{E_C} - p (Us + lambda*_{H_C}) < 0 whenever
        # the supply term is positive; double it for slack.
        p = 1.0
        for type_c in all_types(num_pieces, include_full=False):
            demand = sum(
                rate
                for arr_type, rate in params.arrival_rates.items()
                if arr_type.issubset(type_c)
            )
            effective_ratio = min(ratio, 1.0)
            supply = params.seed_rate + sum(
                rate * (num_pieces - len(arr_type) + effective_ratio)
                for arr_type, rate in params.arrival_rates.items()
                if not arr_type.issubset(type_c)
            )
            if supply > 0 and demand > 0:
                p = max(p, 2.0 * demand / supply)
        return cls(r=0.1, d=d, beta=beta, alpha=alpha, p=p)


class LyapunovFunction:
    """Evaluate ``W`` (regime ``µ < γ``) or ``W'`` (regime ``γ ≤ µ``).

    The appropriate variant is selected automatically from the parameters; the
    regime can be forced with ``variant="W"`` or ``variant="Wprime"``.
    """

    def __init__(
        self,
        params: SystemParameters,
        config: Optional[LyapunovConfig] = None,
        variant: Optional[str] = None,
    ):
        self.params = params
        self.config = config if config is not None else LyapunovConfig.default_for(params)
        if variant is None:
            variant = "W" if params.mu_over_gamma < 1.0 else "Wprime"
        if variant not in ("W", "Wprime"):
            raise ValueError(f"variant must be 'W' or 'Wprime', got {variant}")
        if variant == "W" and params.mu_over_gamma >= 1.0:
            raise ValueError("variant 'W' requires mu < gamma")
        self.variant = variant
        include_full = not params.immediate_departure
        self._types: Tuple[PieceSet, ...] = tuple(
            all_types(params.num_pieces, include_full=True)
        )
        self._include_full_term = include_full

    # -- components ----------------------------------------------------------

    def term(self, state: SystemState, type_c: PieceSet) -> float:
        """``T_C`` (or ``T'_C``) evaluated at ``state``."""
        cfg = self.config
        if type_c.is_complete:
            n = state.total_peers
            return 0.5 * n * n
        e_c = state.downward_count(type_c)
        if self.variant == "W":
            h_c = state.helper_potential(type_c, self.params.mu_over_gamma)
            return 0.5 * e_c * e_c + cfg.alpha * e_c * phi(h_c, cfg.d, cfg.beta)
        h_c = state.helper_potential_prime(type_c)
        return 0.5 * e_c * e_c + cfg.p * e_c * phi(h_c, cfg.d, cfg.beta)

    def __call__(self, state: SystemState) -> float:
        """Value of the Lyapunov function at ``state``."""
        cfg = self.config
        total = 0.0
        for type_c in self._types:
            if type_c.is_complete and not self._include_full_term:
                continue
            total += (cfg.r ** len(type_c)) * self.term(state, type_c)
        return total

    # -- drift ---------------------------------------------------------------

    def drift(self, state: SystemState) -> float:
        """Exact generator drift ``QW(x) = Σ_{x'≠x} q(x,x')(W(x') − W(x))``."""
        here = self(state)
        total = 0.0
        for transition in outgoing_transitions(state, self.params):
            total += transition.rate * (self(transition.target) - here)
        return total

    def drift_per_peer(self, state: SystemState) -> float:
        """Drift normalised by the population size (the ``−ξ n`` criterion)."""
        n = state.total_peers
        if n == 0:
            return self.drift(state)
        return self.drift(state) / n


def sample_heavy_load_states(
    params: SystemParameters,
    population: int,
    num_states: int,
    rng: Optional[np.random.Generator] = None,
    concentration: float = 0.8,
) -> List[SystemState]:
    """Random heavy-load states with ``population`` peers.

    Each sampled state places a fraction ``concentration`` of the peers in a
    single randomly chosen incomplete type (a class-I style load) and spreads
    the remainder over other random types, mimicking the load distributions
    the proof must control.  One-club states are always included first.
    """
    rng = rng if rng is not None else np.random.default_rng()
    incomplete = all_types(params.num_pieces, include_full=False)
    states: List[SystemState] = []
    for piece in range(1, params.num_pieces + 1):
        states.append(SystemState.one_club(params.num_pieces, population, piece))
        if len(states) >= num_states:
            return states[:num_states]
    allowed_types = list(incomplete)
    if not params.immediate_departure:
        allowed_types = allowed_types + [PieceSet.full(params.num_pieces)]
    while len(states) < num_states:
        main_type = incomplete[rng.integers(len(incomplete))]
        main_count = int(round(concentration * population))
        remaining = population - main_count
        counts = {main_type: main_count}
        while remaining > 0:
            other = allowed_types[rng.integers(len(allowed_types))]
            chunk = int(rng.integers(1, remaining + 1))
            counts[other] = counts.get(other, 0) + chunk
            remaining -= chunk
        states.append(SystemState(counts, params.num_pieces))
    return states


@dataclass
class DriftCheckResult:
    """Outcome of a numerical Foster–Lyapunov drift check."""

    num_states: int
    num_negative: int
    max_drift_per_peer: float
    min_drift_per_peer: float

    @property
    def all_negative(self) -> bool:
        return self.num_negative == self.num_states


def check_negative_drift(
    lyapunov: LyapunovFunction,
    states: Sequence[SystemState],
) -> DriftCheckResult:
    """Evaluate the drift on every state and summarise the signs."""
    drifts = [lyapunov.drift_per_peer(state) for state in states]
    negative = sum(1 for value in drifts if value < 0)
    return DriftCheckResult(
        num_states=len(drifts),
        num_negative=negative,
        max_drift_per_peer=max(drifts) if drifts else 0.0,
        min_drift_per_peer=min(drifts) if drifts else 0.0,
    )


__all__ = [
    "phi",
    "phi_prime",
    "LyapunovConfig",
    "LyapunovFunction",
    "sample_heavy_load_states",
    "DriftCheckResult",
    "check_negative_drift",
]
