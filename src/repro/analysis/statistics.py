"""Small statistical helpers used by experiments and tests."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean estimate with a symmetric confidence interval."""

    mean: float
    half_width: float
    confidence: float
    num_samples: int

    @property
    def lower(self) -> float:
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g} ({self.confidence:.0%})"


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of i.i.d. samples."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("need at least one sample")
    mean = float(data.mean())
    if data.size == 1:
        return ConfidenceInterval(mean, math.inf, confidence, 1)
    sem = float(stats.sem(data))
    if sem == 0.0:
        return ConfidenceInterval(mean, 0.0, confidence, data.size)
    half_width = float(sem * stats.t.ppf((1.0 + confidence) / 2.0, data.size - 1))
    return ConfidenceInterval(mean, half_width, confidence, data.size)


def linear_slope(times: Sequence[float], values: Sequence[float]) -> float:
    """Least-squares slope of ``values`` against ``times``."""
    t = np.asarray(times, dtype=float)
    y = np.asarray(values, dtype=float)
    if t.size < 2 or np.ptp(t) == 0:
        return 0.0
    slope, _ = np.polyfit(t, y, 1)
    return float(slope)


def trailing_window(values: Sequence[float], fraction: float) -> np.ndarray:
    """The last ``fraction`` of a sequence as an array."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must lie in (0, 1]")
    data = np.asarray(values, dtype=float)
    start = int(round((1.0 - fraction) * data.size))
    return data[start:]


def empirical_exceedance_probability(
    trajectories: Sequence[Tuple[Sequence[float], Sequence[float]]],
    offset: float,
    slope: float,
) -> float:
    """Fraction of trajectories that ever exceed the line ``offset + slope·t``.

    Each trajectory is a ``(times, values)`` pair; used to compare against the
    Kingman and M/GI/∞ maximal bounds.
    """
    if not trajectories:
        raise ValueError("need at least one trajectory")
    exceed = 0
    for times, values in trajectories:
        t = np.asarray(times, dtype=float)
        v = np.asarray(values, dtype=float)
        if np.any(v >= offset + slope * t):
            exceed += 1
    return exceed / len(trajectories)


def relative_error(measured: float, reference: float) -> float:
    """``|measured − reference| / max(|reference|, eps)``."""
    denominator = max(abs(reference), 1e-12)
    return abs(measured - reference) / denominator


__all__ = [
    "ConfidenceInterval",
    "empirical_exceedance_probability",
    "linear_slope",
    "mean_confidence_interval",
    "relative_error",
    "trailing_window",
]
