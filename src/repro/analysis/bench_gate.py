"""Benchmark regression gate: diff BENCH_swarm.json throughput baselines.

The CI ``bench-gate`` job compares the freshly emitted ``BENCH_swarm.json``
(from the benchmark-smoke session) against the committed baseline and fails
when any ``events_per_second`` figure dropped by more than the tolerance
(default 30%, overridable via the ``BENCH_GATE_TOLERANCE`` environment
variable — a fraction, e.g. ``0.3``).  Both sides' ``events_per_second``
figures are medians of ``benchmarks.conftest.BENCH_REPETITIONS`` timed
repetitions (the per-rep timings travel in the ``repetitions`` field), so
the gate compares median against median and a single timer hiccup on a CI
runner cannot produce a phantom regression.

The comparison walks both JSON documents and pairs every
``events_per_second`` leaf by its dotted path (``backends.array``,
``scenario.backends.object``, ``fleet.array`` ...), so new benchmark
sections join the gate automatically.  A throughput present in the baseline
but missing from the fresh measurement counts as a regression (a silently
dropped benchmark must not pass the gate); brand-new entries are reported
but never fail.

The module's own code uses only the stdlib, but importing it through the
``repro`` package pulls the package's numpy dependency — the CI job installs
``requirements.txt`` like every other job.  The gate logic is unit-tested in
``tests/test_bench_gate.py``; ``benchmarks/bench_gate.py`` is the CLI shim
CI invokes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Default maximum tolerated relative drop in events/second (30%).
DEFAULT_TOLERANCE = 0.30

#: Environment variable overriding the tolerance (a fraction, e.g. "0.25").
TOLERANCE_ENV = "BENCH_GATE_TOLERANCE"

#: The JSON leaf key the gate tracks.
THROUGHPUT_KEY = "events_per_second"


def collect_throughputs(payload: object, prefix: str = "") -> Dict[str, float]:
    """All ``events_per_second`` leaves of a baseline, keyed by dotted path."""
    found: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            if key == THROUGHPUT_KEY and isinstance(value, (int, float)):
                found[prefix or THROUGHPUT_KEY] = float(value)
            else:
                path = f"{prefix}.{key}" if prefix else key
                found.update(collect_throughputs(value, path))
    return found


@dataclass(frozen=True)
class GateEntry:
    """One throughput comparison between the committed and fresh baselines."""

    path: str
    baseline: Optional[float]  # None: new entry, absent from the baseline
    current: Optional[float]  # None: dropped entry, absent from the fresh run
    tolerance: float

    @property
    def change(self) -> Optional[float]:
        """Relative change (+0.08 = 8% faster); None when unpairable."""
        if self.baseline is None or self.current is None or self.baseline == 0:
            return None
        return self.current / self.baseline - 1.0

    @property
    def regressed(self) -> bool:
        if self.baseline is None:
            return False  # new benchmark: informational only
        if self.current is None:
            return True  # benchmark disappeared: fail loudly
        change = self.change
        # Epsilon so a drop of *exactly* the tolerance passes despite float
        # rounding (100000 -> 70000 at 0.3 must not trip the gate).
        return change is not None and change + self.tolerance < -1e-9

    @property
    def status(self) -> str:
        if self.baseline is None:
            return "new"
        if self.current is None:
            return "MISSING"
        return "REGRESSED" if self.regressed else "ok"


@dataclass(frozen=True)
class GateReport:
    """Outcome of one baseline diff."""

    entries: Tuple[GateEntry, ...]
    tolerance: float

    @property
    def regressions(self) -> Tuple[GateEntry, ...]:
        return tuple(entry for entry in self.entries if entry.regressed)

    @property
    def passed(self) -> bool:
        return not self.regressions

    def markdown_table(self) -> str:
        """Before/after table for the CI job summary (GitHub-flavoured)."""
        lines = [
            f"### Benchmark gate — events/second "
            f"(tolerance: -{self.tolerance:.0%})",
            "",
            "| benchmark | baseline | current | change | status |",
            "| --- | ---: | ---: | ---: | --- |",
        ]
        for entry in self.entries:
            baseline = "—" if entry.baseline is None else f"{entry.baseline:,.1f}"
            current = "—" if entry.current is None else f"{entry.current:,.1f}"
            change = "—" if entry.change is None else f"{entry.change:+.1%}"
            marker = {"ok": "✅ ok", "new": "🆕 new"}.get(
                entry.status, f"❌ {entry.status}"
            )
            lines.append(
                f"| `{entry.path}` | {baseline} | {current} | {change} | {marker} |"
            )
        lines.append("")
        lines.append(
            "**PASS** — no throughput dropped beyond tolerance."
            if self.passed
            else f"**FAIL** — {len(self.regressions)} benchmark(s) regressed "
            f"beyond -{self.tolerance:.0%}."
        )
        return "\n".join(lines)


def compare_baselines(
    baseline: dict, current: dict, tolerance: float = DEFAULT_TOLERANCE
) -> GateReport:
    """Pair every throughput leaf of two baselines and judge regressions."""
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    old = collect_throughputs(baseline)
    new = collect_throughputs(current)
    entries = [
        GateEntry(
            path=path,
            baseline=old.get(path),
            current=new.get(path),
            tolerance=tolerance,
        )
        for path in sorted(set(old) | set(new))
    ]
    return GateReport(entries=tuple(entries), tolerance=tolerance)


def tolerance_from_env(default: float = DEFAULT_TOLERANCE) -> float:
    """The gate tolerance, honouring ``BENCH_GATE_TOLERANCE``."""
    raw = os.environ.get(TOLERANCE_ENV)
    if raw is None or raw.strip() == "":
        return default
    try:
        value = float(raw)
    except ValueError as error:
        raise ValueError(
            f"{TOLERANCE_ENV} must be a fraction like 0.3, got {raw!r}"
        ) from error
    if value < 0:
        raise ValueError(f"{TOLERANCE_ENV} must be >= 0, got {value}")
    return value


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: diff two baselines, print (and publish) the table, gate the job."""
    parser = argparse.ArgumentParser(
        description="Fail when events/second regressed beyond tolerance."
    )
    parser.add_argument(
        "--baseline", required=True, help="committed BENCH_swarm.json"
    )
    parser.add_argument(
        "--current", required=True, help="freshly emitted BENCH_swarm.json"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=f"max relative drop (default {DEFAULT_TOLERANCE}, "
        f"or ${TOLERANCE_ENV})",
    )
    args = parser.parse_args(argv)
    tolerance = (
        args.tolerance if args.tolerance is not None else tolerance_from_env()
    )
    baseline = json.loads(Path(args.baseline).read_text())
    current = json.loads(Path(args.current).read_text())
    report = compare_baselines(baseline, current, tolerance)
    table = report.markdown_table()
    print(table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(table + "\n")
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())


__all__ = [
    "DEFAULT_TOLERANCE",
    "GateEntry",
    "GateReport",
    "THROUGHPUT_KEY",
    "TOLERANCE_ENV",
    "collect_throughputs",
    "compare_baselines",
    "main",
    "tolerance_from_env",
]
