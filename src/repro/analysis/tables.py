"""Plain-text tables and CSV output for experiment reports.

The experiments produce small "paper prediction vs. measured" tables.  With no
plotting dependency available, the harness renders aligned monospace tables to
stdout and optionally writes CSV files next to them.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(cell: Cell, float_format: str = "{:.4g}") -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return float_format.format(cell)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render an aligned monospace table.

    Columns are sized to their widest entry; a separator line follows the
    header.  ``float_format`` controls numeric rendering.
    """
    rendered_rows: List[List[str]] = [
        [_format_cell(cell, float_format) for cell in row] for row in rows
    ]
    header_row = [str(h) for h in headers]
    widths = [len(h) for h in header_row]
    for row in rendered_rows:
        if len(row) != len(header_row):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(header_row)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header_row, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def write_csv(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
) -> Path:
    """Write the table to a CSV file, creating parent directories as needed."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return target


def table_to_csv_string(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """CSV rendering of a table as a string (used in tests)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


__all__ = ["format_table", "write_csv", "table_to_csv_string"]
