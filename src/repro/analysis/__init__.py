"""Statistics and reporting helpers."""

from .bench_gate import GateEntry, GateReport, collect_throughputs, compare_baselines
from .statistics import (
    ConfidenceInterval,
    empirical_exceedance_probability,
    linear_slope,
    mean_confidence_interval,
    relative_error,
    trailing_window,
)
from .tables import format_table, table_to_csv_string, write_csv

__all__ = [
    "ConfidenceInterval",
    "GateEntry",
    "GateReport",
    "collect_throughputs",
    "compare_baselines",
    "empirical_exceedance_probability",
    "format_table",
    "linear_slope",
    "mean_confidence_interval",
    "relative_error",
    "table_to_csv_string",
    "trailing_window",
    "write_csv",
]
