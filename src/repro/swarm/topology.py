"""Contact-topology overlays: who a ticking peer may actually contact.

Both swarm kernels (and the Zhu–Hajek theory they reproduce) default to
*uniform random contacts over the whole population* — a complete contact
graph.  Real swarms contact a bounded, tracker-sampled neighbor set.  This
module adds that layer:

* :class:`TopologySpec` — a frozen, picklable, hashable description of an
  overlay graph generator (``complete``, ``k-regular``, ``random-regular``,
  ``scale-free``, ``tracker``, ``partitioned``).
* :class:`OverlayState` — the mutable adjacency state both backends share: a
  SoA table (fixed-width ``int32`` neighbor matrix + degree vector) indexed
  by *population slot*.

Why slot-indexed and shared
---------------------------

The two backends maintain the invariant that array row ``i`` holds the same
peer as ``object._order[i]`` at all times (identical append and swap-remove
discipline).  Keying the adjacency by slot therefore lets ONE overlay
implementation serve both: the object backend translates peer ids through
``_position``, the array kernel uses rows directly, and the two contact
streams stay bit-identical by construction.  The object backend's per-peer
neighbor lists (``SwarmSimulator.peer_neighbors``) are a translated *view*
of this state, not a second copy.

Determinism contract
--------------------

Every stochastic decision consumes **exactly one uniform** from the shared
:class:`~repro.swarm.drawbuf.DrawBuffer`, and the number of draws per
overlay operation is a pure function of prior events — never of float
comparisons against graph state.  Concretely:

* arrival wiring — ``k-regular`` draws 0 uniforms; ``random-regular`` and
  ``tracker`` draw exactly ``degree`` uniforms (when at least one other peer
  exists); ``scale-free`` draws ``max(1, degree // 2)`` preferential-
  attachment uniforms; ``partitioned`` draws exactly ``degree`` uniforms,
  each remapped into either a bridge draw or an own-component draw.  A
  candidate that is a duplicate or would exceed ``max_degree`` simply fails
  to link — the uniform is consumed either way.
* contact tick — the ticking slot's target is one uniform over its neighbor
  row (``min(int(u * degree), degree - 1)``); a zero-degree ticker still
  consumes the uniform and wastes the tick.
* departure — neighbors are detached draw-free; ``tracker`` then draws
  exactly one replacement uniform per ex-neighbor (in detached-row order)
  when at least two peers remain.

Because the adjacency table is part of :meth:`OverlayState.capture` /
:meth:`OverlayState.restore`, format-2 snapshots remain exact under
overlays; block-size invariance is inherited from the draw buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from .drawbuf import DrawBuffer

#: Every overlay generator the spec accepts.  ``complete`` is the legacy
#: uniform-contact model: the kernels recognise it and build no overlay at
#: all, so it is bit-identical to the pre-topology code path.
TOPOLOGY_KINDS = (
    "complete",
    "k-regular",
    "random-regular",
    "scale-free",
    "tracker",
    "partitioned",
)


@dataclass(frozen=True)
class TopologySpec:
    """Declarative description of a contact overlay.

    Parameters
    ----------
    kind:
        One of :data:`TOPOLOGY_KINDS`.
    degree:
        Target neighbor count a peer wires up at arrival (``k-regular``
        links to the ``degree // 2`` slots immediately below; ``scale-free``
        attaches ``max(1, degree // 2)`` preferential edges).
    max_degree:
        Hard per-peer neighbor-list bound (the adjacency row width).
        Defaults to ``2 * degree``; links beyond it are dropped.
    num_components:
        ``partitioned`` only — number of weakly-bridged components
        (arrivals are assigned round-robin).
    bridge_prob:
        ``partitioned`` only — probability that one wiring draw reaches
        across components instead of inside the arrival's own component.
    """

    kind: str = "complete"
    degree: int = 8
    max_degree: Optional[int] = None
    num_components: int = 2
    bridge_prob: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; expected one of "
                f"{', '.join(TOPOLOGY_KINDS)}"
            )
        if self.degree < 1:
            raise ValueError(f"degree must be >= 1, got {self.degree}")
        if self.max_degree is not None and self.max_degree < self.degree:
            raise ValueError(
                f"max_degree ({self.max_degree}) must be >= degree "
                f"({self.degree})"
            )
        if self.num_components < 1:
            raise ValueError(
                f"num_components must be >= 1, got {self.num_components}"
            )
        if not 0.0 <= self.bridge_prob <= 1.0:
            raise ValueError(
                f"bridge_prob must be in [0, 1], got {self.bridge_prob}"
            )

    @property
    def is_complete(self) -> bool:
        return self.kind == "complete"

    @property
    def effective_max_degree(self) -> int:
        return self.max_degree if self.max_degree is not None else 2 * self.degree


class OverlayState:
    """Slot-indexed adjacency state for one swarm (see module docstring).

    ``adj`` is a ``(capacity, max_degree)`` ``int32`` matrix whose row ``s``
    holds the neighbor slots of population slot ``s`` in its first
    ``deg[s]`` entries (unused entries are ``-1``).  Rows move with the
    kernels' swap-remove discipline: removing slot ``s`` detaches it, moves
    the last slot's row into ``s`` and renames the moved slot inside each
    neighbor's row — every step O(degree).
    """

    __slots__ = (
        "spec",
        "kind",
        "degree",
        "max_degree",
        "n",
        "edges",
        "arrivals",
        "adj",
        "deg",
        "component",
        "_comp_members",
        "_comp_pos",
    )

    def __init__(self, spec: TopologySpec, capacity: int = 16):
        if spec.is_complete:
            raise ValueError(
                "the 'complete' topology is the legacy uniform-contact path; "
                "it does not build an OverlayState"
            )
        self.spec = spec
        self.kind = spec.kind
        self.degree = spec.degree
        self.max_degree = spec.effective_max_degree
        self.n = 0
        self.edges = 0
        self.arrivals = 0
        cap = max(capacity, 16)
        self.adj = np.full((cap, self.max_degree), -1, dtype=np.int32)
        self.deg = np.zeros(cap, dtype=np.int32)
        if spec.kind == "partitioned":
            self.component: Optional[np.ndarray] = np.full(cap, -1, dtype=np.int32)
            self._comp_members: Optional[List[List[int]]] = [
                [] for _ in range(spec.num_components)
            ]
            self._comp_pos: Optional[np.ndarray] = np.full(cap, -1, dtype=np.int32)
        else:
            self.component = None
            self._comp_members = None
            self._comp_pos = None

    # -- capacity ------------------------------------------------------------

    def _grow(self, need: int) -> None:
        cap = self.adj.shape[0]
        new_cap = max(cap * 2, need)
        adj = np.full((new_cap, self.max_degree), -1, dtype=np.int32)
        adj[:cap] = self.adj
        self.adj = adj
        deg = np.zeros(new_cap, dtype=np.int32)
        deg[:cap] = self.deg
        self.deg = deg
        if self.component is not None:
            component = np.full(new_cap, -1, dtype=np.int32)
            component[:cap] = self.component
            self.component = component
            comp_pos = np.full(new_cap, -1, dtype=np.int32)
            comp_pos[:cap] = self._comp_pos
            self._comp_pos = comp_pos

    # -- edge primitives -----------------------------------------------------

    def _link(self, a: int, b: int) -> bool:
        """Add the undirected edge (a, b) unless duplicate or over-degree."""
        deg = self.deg
        da = int(deg[a])
        db = int(deg[b])
        if da >= self.max_degree or db >= self.max_degree:
            return False
        row = self.adj[a]
        for i in range(da):
            if row[i] == b:
                return False
        row[da] = b
        self.adj[b, db] = a
        deg[a] = da + 1
        deg[b] = db + 1
        self.edges += 1
        return True

    def _drop_edge_ref(self, node: int, other: int) -> None:
        d = int(self.deg[node])
        row = self.adj[node]
        for i in range(d):
            if row[i] == other:
                row[i] = row[d - 1]
                row[d - 1] = -1
                self.deg[node] = d - 1
                return
        raise AssertionError(
            f"overlay inconsistency: slot {other} missing from the neighbor "
            f"row of slot {node}"
        )

    def _rename_ref(self, node: int, old: int, new: int) -> None:
        d = int(self.deg[node])
        row = self.adj[node]
        for i in range(d):
            if row[i] == old:
                row[i] = new
                return
        raise AssertionError(
            f"overlay inconsistency: slot {old} missing from the neighbor "
            f"row of slot {node}"
        )

    def _comp_remove(self, slot: int) -> None:
        comp = int(self.component[slot])
        pos = int(self._comp_pos[slot])
        members = self._comp_members[comp]
        last_member = members[-1]
        members[pos] = last_member
        self._comp_pos[last_member] = pos
        members.pop()
        self.component[slot] = -1
        self._comp_pos[slot] = -1

    # -- lifecycle hooks -----------------------------------------------------

    def on_arrival(self, slot: int, draws: DrawBuffer) -> None:
        """Wire the peer that just joined at ``slot`` (== population - 1)."""
        if slot >= self.adj.shape[0]:
            self._grow(slot + 1)
        n = slot + 1
        self.n = n
        self.deg[slot] = 0
        self.adj[slot] = -1
        self.arrivals += 1
        kind = self.kind
        if kind == "k-regular":
            # Ring-lattice wiring is draw-free: link to the slots immediately
            # below, half the target degree each side of the "ring".
            half = max(1, self.degree // 2)
            for offset in range(1, half + 1):
                other = slot - offset
                if other < 0:
                    break
                self._link(slot, other)
        elif kind == "partitioned":
            comp_index = (self.arrivals - 1) % self.spec.num_components
            if n >= 2:
                bridge = self.spec.bridge_prob
                members = self._comp_members[comp_index]
                for _ in range(self.degree):
                    u = draws.next()
                    if u < bridge:
                        # Remap the accepted uniform back onto [0, 1): one
                        # draw decides both bridge-vs-local and the target.
                        v = u / bridge
                        cand = int(v * (n - 1))
                        if cand >= n - 1:
                            cand = n - 2
                    else:
                        if not members:
                            continue  # draw consumed; no local candidate yet
                        v = (u - bridge) / (1.0 - bridge) if bridge < 1.0 else 0.0
                        idx = int(v * len(members))
                        if idx >= len(members):
                            idx = len(members) - 1
                        cand = members[idx]
                    self._link(slot, cand)
            self.component[slot] = comp_index
            self._comp_pos[slot] = len(self._comp_members[comp_index])
            self._comp_members[comp_index].append(slot)
        elif kind == "scale-free":
            if n >= 2:
                # Barabási–Albert-style: each of m edges picks an existing
                # slot with probability proportional to degree + 1 (the +1
                # smoothing keeps isolated slots reachable).  Weights are
                # recomputed between draws, so edges made during this
                # arrival already attract the next draw.
                m = max(1, self.degree // 2)
                for _ in range(m):
                    u = draws.next()
                    weights = self.deg[: n - 1].astype(np.float64)
                    weights += 1.0
                    cum = np.cumsum(weights)
                    cand = int(np.searchsorted(cum, u * cum[-1], side="right"))
                    if cand >= n - 1:
                        cand = n - 2
                    self._link(slot, cand)
        else:  # random-regular, tracker: uniform sample of existing slots
            if n >= 2:
                for _ in range(self.degree):
                    cand = draws.integers(n - 1)
                    self._link(slot, cand)

    def on_departure(self, slot: int, draws: DrawBuffer) -> None:
        """Detach ``slot``, move the last slot into it, and (tracker only)
        rewire the departed peer's ex-neighbors."""
        n_before = self.n
        last = n_before - 1
        adj = self.adj
        deg = self.deg
        ex_neighbors = [int(x) for x in adj[slot, : deg[slot]]]
        for neighbor in ex_neighbors:
            self._drop_edge_ref(neighbor, slot)
        self.edges -= len(ex_neighbors)
        deg[slot] = 0
        adj[slot] = -1
        if self.component is not None:
            self._comp_remove(slot)
        if slot != last:
            d_last = int(deg[last])
            adj[slot, :d_last] = adj[last, :d_last]
            adj[slot, d_last:] = -1
            deg[slot] = d_last
            for i in range(d_last):
                self._rename_ref(int(adj[slot, i]), last, slot)
            deg[last] = 0
            adj[last] = -1
            if self.component is not None:
                comp = int(self.component[last])
                self.component[slot] = comp
                pos = int(self._comp_pos[last])
                self._comp_members[comp][pos] = slot
                self._comp_pos[slot] = pos
                self.component[last] = -1
                self._comp_pos[last] = -1
            ex_neighbors = [
                slot if neighbor == last else neighbor
                for neighbor in ex_neighbors
            ]
        self.n = n_before - 1
        if self.kind == "tracker" and self.n >= 2:
            # Churn-driven rewiring: each orphaned peer re-samples one
            # tracker candidate — exactly one uniform per ex-neighbor, in
            # detached-row order, whether or not the link succeeds.
            n_after = self.n
            for orphan in ex_neighbors:
                cand = draws.integers(n_after)
                if cand != orphan:
                    self._link(orphan, cand)

    # -- contact sampling ----------------------------------------------------

    def draw_target(self, ticker_slot: int, u: float) -> int:
        """The contact target of ``ticker_slot`` for one uniform ``u``, or
        ``-1`` when the ticker has no neighbors (the tick is wasted; the
        uniform is consumed by the caller either way)."""
        d = int(self.deg[ticker_slot])
        if d == 0:
            return -1
        idx = int(u * d)
        if idx >= d:
            idx = d - 1
        return int(self.adj[ticker_slot, idx])

    def neighbors(self, slot: int) -> List[int]:
        """The neighbor slots of ``slot`` (row order, a copy)."""
        return [int(x) for x in self.adj[slot, : self.deg[slot]]]

    # -- snapshots -----------------------------------------------------------

    def capture(self) -> Dict[str, Any]:
        n = self.n
        state: Dict[str, Any] = {
            "kind": self.kind,
            "n": n,
            "edges": self.edges,
            "arrivals": self.arrivals,
            "adj": self.adj[:n].copy(),
            "deg": self.deg[:n].copy(),
        }
        if self.component is not None:
            state["component"] = self.component[:n].copy()
            state["comp_members"] = [list(m) for m in self._comp_members]
            state["comp_pos"] = self._comp_pos[:n].copy()
        return state

    def restore(self, state: Dict[str, Any]) -> None:
        if state["kind"] != self.kind:
            raise ValueError(
                f"snapshot overlay kind {state['kind']!r} does not match the "
                f"configured topology {self.kind!r}"
            )
        n = int(state["n"])
        if n > self.adj.shape[0]:
            self._grow(n)
        self.n = n
        self.edges = int(state["edges"])
        self.arrivals = int(state["arrivals"])
        self.adj[:n] = state["adj"]
        self.adj[n:] = -1
        self.deg[:n] = state["deg"]
        self.deg[n:] = 0
        if self.component is not None:
            self.component[:n] = state["component"]
            self.component[n:] = -1
            self._comp_members = [list(m) for m in state["comp_members"]]
            self._comp_pos[:n] = state["comp_pos"]
            self._comp_pos[n:] = -1


def build_overlay(spec: Optional[TopologySpec], capacity: int = 16) -> Optional[OverlayState]:
    """The overlay for a spec, or ``None`` for no spec / ``complete``."""
    if spec is None or spec.is_complete:
        return None
    return OverlayState(spec, capacity=capacity)


__all__ = [
    "OverlayState",
    "TOPOLOGY_KINDS",
    "TopologySpec",
    "build_overlay",
]
