"""Peer-level simulation of the network-coded swarm (Section VIII-B).

Under random linear network coding the "pieces" exchanged are random linear
combinations of the ``K`` data pieces over GF(q); the state of a peer is the
subspace spanned by the coding vectors it has received.  A contacted peer is
sent a uniformly random combination of the uploader's vectors, which is useful
exactly when it increases the dimension of the receiver's subspace.  A peer
departs (or dwells as a peer seed) once its subspace reaches dimension ``K``.

The simulator mirrors :class:`repro.swarm.swarm.SwarmSimulator` but with
subspace types, and is used by the E6 benchmark to show that a small fraction
of arrivals carrying one random coded piece stabilises a system that is
transient without coding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..coding.gf import PrimeField
from ..coding.subspace import Subspace
from ..simulation.rng import SeedLike, make_rng
from .metrics import SwarmMetrics


@dataclass
class CodedPeer:
    """One peer of the coded swarm; its type is a subspace of GF(q)^K."""

    peer_id: int
    subspace: Subspace
    arrival_time: float
    arrival_dimension: int = 0
    completed_at: Optional[float] = None
    departed_at: Optional[float] = None
    downloads: int = 0
    uploads: int = 0

    @property
    def dimension(self) -> int:
        return self.subspace.dimension

    @property
    def is_seed(self) -> bool:
        return self.subspace.is_full

    def receive_vector(self, vector: np.ndarray, time: float) -> bool:
        """Incorporate a coded piece; returns True when it was innovative."""
        if not self.subspace.is_useful(vector):
            return False
        self.subspace = self.subspace.add_vector(vector)
        self.downloads += 1
        if self.subspace.is_full and self.completed_at is None:
            self.completed_at = time
        return True


@dataclass(frozen=True)
class CodedArrivalSpec:
    """Arrival stream for the coded swarm.

    ``rate`` peers per unit time arrive carrying ``num_coded_pieces``
    independent uniformly random coded pieces each (0 for empty-handed peers).
    """

    rate: float
    num_coded_pieces: int = 0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be nonnegative")
        if self.num_coded_pieces < 0:
            raise ValueError("num_coded_pieces must be nonnegative")


@dataclass
class CodedSwarmResult:
    """Outcome of one coded-swarm run."""

    metrics: SwarmMetrics
    final_time: float
    final_population: int
    final_min_dimension: int
    horizon_reached: bool


class CodedSwarmSimulator:
    """Event-driven simulation of the network-coded swarm."""

    def __init__(
        self,
        num_pieces: int,
        field_size: int,
        arrivals: Sequence[CodedArrivalSpec],
        seed_rate: float = 0.0,
        peer_rate: float = 1.0,
        seed_departure_rate: float = math.inf,
        seed: SeedLike = None,
    ):
        if num_pieces < 1:
            raise ValueError("num_pieces must be >= 1")
        if peer_rate <= 0:
            raise ValueError("peer_rate must be positive")
        if seed_rate < 0:
            raise ValueError("seed_rate must be nonnegative")
        if not arrivals or all(spec.rate == 0 for spec in arrivals):
            raise ValueError("at least one arrival stream must have positive rate")
        self.num_pieces = num_pieces
        self.field = PrimeField(field_size)
        self.arrivals = list(arrivals)
        self.seed_rate = seed_rate
        self.peer_rate = peer_rate
        self.seed_departure_rate = seed_departure_rate
        self.rng = make_rng(seed)

        self._peers: Dict[int, CodedPeer] = {}
        self._order: List[int] = []
        self._position: Dict[int, int] = {}
        self._seeds: List[int] = []
        self._seed_position: Dict[int, int] = {}
        self._next_peer_id = 0
        self._time = 0.0
        self.metrics = SwarmMetrics()
        self._arrival_rates = np.array([spec.rate for spec in self.arrivals], dtype=float)
        self._arrival_total = float(self._arrival_rates.sum())

    # -- population management -----------------------------------------------------

    @property
    def population(self) -> int:
        return len(self._order)

    @property
    def num_seeds(self) -> int:
        return len(self._seeds)

    @property
    def immediate_departure(self) -> bool:
        return math.isinf(self.seed_departure_rate)

    def peers(self):
        return (self._peers[pid] for pid in self._order)

    def min_dimension(self) -> int:
        """Smallest subspace dimension among current peers (K when empty)."""
        dims = [peer.dimension for peer in self.peers()]
        return min(dims) if dims else self.num_pieces

    def one_club_size(self) -> int:
        """Number of peers whose subspace has dimension exactly ``K − 1``.

        With coding the analogue of the one club is the set of peers one
        innovative piece away from completion (all stuck below the same
        hyperplane in the syndrome state).
        """
        return sum(1 for peer in self.peers() if peer.dimension == self.num_pieces - 1)

    def _add_peer(self, num_coded_pieces: int) -> CodedPeer:
        subspace = Subspace.zero(self.field, self.num_pieces)
        for _ in range(num_coded_pieces):
            vector = self.field.random_vector(self.num_pieces, self.rng)
            if subspace.is_useful(vector):
                subspace = subspace.add_vector(vector)
        peer = CodedPeer(
            peer_id=self._next_peer_id,
            subspace=subspace,
            arrival_time=self._time,
            arrival_dimension=subspace.dimension,
        )
        self._next_peer_id += 1
        self._peers[peer.peer_id] = peer
        self._position[peer.peer_id] = len(self._order)
        self._order.append(peer.peer_id)
        if peer.is_seed and not self.immediate_departure:
            self._add_seed(peer.peer_id)
        self.metrics.total_arrivals += 1
        return peer

    def _remove_peer(self, peer: CodedPeer) -> None:
        pid = peer.peer_id
        index = self._position.pop(pid)
        last_id = self._order[-1]
        self._order[index] = last_id
        self._position[last_id] = index
        self._order.pop()
        del self._peers[pid]
        if pid in self._seed_position:
            self._remove_seed(pid)
        peer.departed_at = self._time
        download_time = (
            peer.completed_at - peer.arrival_time if peer.completed_at is not None else None
        )
        self.metrics.record_departure(
            sojourn=self._time - peer.arrival_time, download_time=download_time
        )

    def _add_seed(self, peer_id: int) -> None:
        self._seed_position[peer_id] = len(self._seeds)
        self._seeds.append(peer_id)

    def _remove_seed(self, peer_id: int) -> None:
        index = self._seed_position.pop(peer_id)
        last_id = self._seeds[-1]
        self._seeds[index] = last_id
        self._seed_position[last_id] = index
        self._seeds.pop()

    # -- events ----------------------------------------------------------------------

    def _event_rates(self) -> Tuple[float, float, float, float]:
        arrival = self._arrival_total
        seed_tick = self.seed_rate if self.population > 0 else 0.0
        peer_tick = self.population * self.peer_rate
        seed_departure = (
            0.0
            if self.immediate_departure
            else self.seed_departure_rate * self.num_seeds
        )
        return arrival, seed_tick, peer_tick, seed_departure

    def _sample_uniform_peer(self) -> CodedPeer:
        index = int(self.rng.integers(self.population))
        return self._peers[self._order[index]]

    def _handle_arrival(self) -> None:
        probabilities = self._arrival_rates / self._arrival_total
        index = int(self.rng.choice(len(self.arrivals), p=probabilities))
        self._add_peer(self.arrivals[index].num_coded_pieces)

    def _upload_random_combination(
        self, source: Subspace, target: CodedPeer, from_seed: bool
    ) -> bool:
        if source.dimension == 0:
            self.metrics.wasted_contacts += 1
            return False
        vector = source.random_vector(self.rng)
        innovative = target.receive_vector(vector, self._time)
        if not innovative:
            self.metrics.wasted_contacts += 1
            return False
        self.metrics.total_downloads += 1
        if from_seed:
            self.metrics.total_seed_uploads += 1
        if target.is_seed:
            if self.immediate_departure:
                self._remove_peer(target)
            else:
                self._add_seed(target.peer_id)
        return True

    def _handle_seed_tick(self) -> None:
        if self.population == 0:
            return
        target = self._sample_uniform_peer()
        full = Subspace.full(self.field, self.num_pieces)
        self._upload_random_combination(full, target, from_seed=True)

    def _handle_peer_tick(self) -> None:
        if self.population == 0:
            return
        uploader = self._sample_uniform_peer()
        target = self._sample_uniform_peer()
        if target.peer_id == uploader.peer_id:
            self.metrics.wasted_contacts += 1
            return
        if self._upload_random_combination(uploader.subspace, target, from_seed=False):
            uploader.uploads += 1

    def _handle_seed_departure(self) -> None:
        if not self._seeds:
            return
        index = int(self.rng.integers(len(self._seeds)))
        self._remove_peer(self._peers[self._seeds[index]])

    def _apply_event(self, rates: Tuple[float, float, float, float]) -> None:
        """Apply one event drawn proportionally to the given rates."""
        total = sum(rates)
        threshold = self.rng.uniform(0.0, total)
        if threshold <= rates[0]:
            self._handle_arrival()
        elif threshold <= rates[0] + rates[1]:
            self._handle_seed_tick()
        elif threshold <= rates[0] + rates[1] + rates[2]:
            self._handle_peer_tick()
        else:
            self._handle_seed_departure()

    def step(self) -> bool:
        rates = self._event_rates()
        total = sum(rates)
        if total <= 0:
            return False
        self._time += float(self.rng.exponential(1.0 / total))
        self._apply_event(rates)
        return True

    def _record_sample(self, sample_time: float) -> None:
        self.metrics.record_sample(
            time=sample_time,
            population=self.population,
            num_seeds=self.num_seeds,
            one_club_size=self.one_club_size(),
            min_piece_count=self.min_dimension(),
        )

    def run(
        self,
        horizon: float,
        sample_interval: Optional[float] = None,
        max_events: Optional[int] = None,
        max_population: Optional[int] = None,
    ) -> CodedSwarmResult:
        """Simulate until ``horizon`` with the same safety caps as the uncoded swarm."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        interval = sample_interval if sample_interval is not None else horizon / 200.0
        next_sample = 0.0
        events = 0
        horizon_reached = True
        while True:
            if max_events is not None and events >= max_events:
                horizon_reached = False
                break
            if max_population is not None and self.population >= max_population:
                horizon_reached = False
                break
            rates = self._event_rates()
            total = sum(rates)
            if total <= 0:
                self._time = horizon
                break
            next_event_time = self._time + float(self.rng.exponential(1.0 / total))
            # Record grid points falling before the next event (time-correct).
            while next_sample <= horizon and next_sample < next_event_time:
                self._record_sample(next_sample)
                next_sample += interval
            if next_event_time > horizon:
                self._time = horizon
                break
            self._time = next_event_time
            self._apply_event(rates)
            events += 1
        while next_sample <= horizon:
            self._record_sample(next_sample)
            next_sample += interval
        return CodedSwarmResult(
            metrics=self.metrics,
            final_time=self._time,
            final_population=self.population,
            final_min_dimension=self.min_dimension(),
            horizon_reached=horizon_reached,
        )


def gifted_fraction_arrivals(
    total_rate: float, gifted_fraction: float
) -> Tuple[CodedArrivalSpec, CodedArrivalSpec]:
    """Arrival streams for the Theorem-15 worked example.

    A fraction ``gifted_fraction`` of the arrivals carry one uniformly random
    coded piece; the remainder arrive empty-handed.
    """
    if not 0.0 <= gifted_fraction <= 1.0:
        raise ValueError("gifted_fraction must lie in [0, 1]")
    return (
        CodedArrivalSpec(rate=total_rate * (1.0 - gifted_fraction), num_coded_pieces=0),
        CodedArrivalSpec(rate=total_rate * gifted_fraction, num_coded_pieces=1),
    )


__all__ = [
    "CodedPeer",
    "CodedArrivalSpec",
    "CodedSwarmResult",
    "CodedSwarmSimulator",
    "gifted_fraction_arrivals",
]
