"""Peer-level swarm simulators (uncoded and network-coded).

* :mod:`repro.swarm.peer` / :mod:`repro.swarm.swarm` — the object-per-peer
  reference discrete-event simulation of the Section-III model;
* :mod:`repro.swarm.kernel` — the structure-of-arrays fast backend,
  trajectory-equivalent to the reference simulator under a shared seed;
* :mod:`repro.swarm.stacked` — the fleet mega-kernel driving many
  independent array-kernel swarms through one round-based loop, each lane
  bit-identical to its solo run;
* :mod:`repro.swarm.policies` — piece-selection policies (Theorem 14), with
  both ``PieceSet``-level and mask-level entry points, reading the piece
  census through the ``CensusSource`` seam;
* :mod:`repro.swarm.gossip` — the flow-updating gossip census estimator
  behind ``ScenarioSpec(census="gossip")``;
* :mod:`repro.swarm.groups` — the Figure-2 group decomposition;
* :mod:`repro.swarm.metrics` — collected statistics;
* :mod:`repro.swarm.network_coding` — the random-linear-coding variant
  (Theorem 15).

Backend selection goes through :func:`repro.swarm.swarm.make_simulator` /
``run_swarm(..., backend="object" | "array")``.
"""

from .drawbuf import DEFAULT_BLOCK_SIZE, DrawBuffer
from .gossip import (
    CENSUS_KINDS,
    CensusSpec,
    GossipCensus,
    GossipState,
    build_gossip,
)
from .groups import GroupSnapshot, PeerGroup, classify_peer, group_counts
from .kernel import ArraySwarmKernel
from .metrics import SwarmMetrics
from .network_coding import (
    CodedArrivalSpec,
    CodedSwarmResult,
    CodedSwarmSimulator,
    gifted_fraction_arrivals,
)
from .peer import Peer
from .policies import (
    CallablePolicy,
    CensusSource,
    MostCommonFirstSelection,
    OracleCensus,
    PieceSelectionPolicy,
    RandomUsefulSelection,
    RarestFirstSelection,
    SequentialSelection,
    SwarmView,
    make_policy,
    registered_policies,
)
from .stacked import StackedSwarmKernel
from .topology import (
    TOPOLOGY_KINDS,
    OverlayState,
    TopologySpec,
    build_overlay,
)
from .swarm import (
    BACKENDS,
    MAX_ARRAY_BACKEND_PIECES,
    SwarmResult,
    SwarmSimulator,
    make_simulator,
    run_swarm,
)

__all__ = [
    "ArraySwarmKernel",
    "BACKENDS",
    "CENSUS_KINDS",
    "MAX_ARRAY_BACKEND_PIECES",
    "CallablePolicy",
    "CensusSource",
    "CensusSpec",
    "CodedArrivalSpec",
    "CodedSwarmResult",
    "CodedSwarmSimulator",
    "DEFAULT_BLOCK_SIZE",
    "DrawBuffer",
    "GossipCensus",
    "GossipState",
    "GroupSnapshot",
    "MostCommonFirstSelection",
    "OracleCensus",
    "OverlayState",
    "Peer",
    "PeerGroup",
    "PieceSelectionPolicy",
    "RandomUsefulSelection",
    "RarestFirstSelection",
    "SequentialSelection",
    "StackedSwarmKernel",
    "SwarmMetrics",
    "TOPOLOGY_KINDS",
    "TopologySpec",
    "SwarmResult",
    "SwarmSimulator",
    "SwarmView",
    "build_gossip",
    "build_overlay",
    "classify_peer",
    "gifted_fraction_arrivals",
    "group_counts",
    "make_policy",
    "make_simulator",
    "registered_policies",
    "run_swarm",
]
