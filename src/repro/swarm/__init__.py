"""Peer-level swarm simulators (uncoded and network-coded).

* :mod:`repro.swarm.peer` / :mod:`repro.swarm.swarm` — the discrete-event
  simulation of the Section-III model;
* :mod:`repro.swarm.policies` — piece-selection policies (Theorem 14);
* :mod:`repro.swarm.groups` — the Figure-2 group decomposition;
* :mod:`repro.swarm.metrics` — collected statistics;
* :mod:`repro.swarm.network_coding` — the random-linear-coding variant
  (Theorem 15).
"""

from .groups import GroupSnapshot, PeerGroup, classify_peer, group_counts
from .metrics import SwarmMetrics
from .network_coding import (
    CodedArrivalSpec,
    CodedSwarmResult,
    CodedSwarmSimulator,
    gifted_fraction_arrivals,
)
from .peer import Peer
from .policies import (
    CallablePolicy,
    MostCommonFirstSelection,
    PieceSelectionPolicy,
    RandomUsefulSelection,
    RarestFirstSelection,
    SequentialSelection,
    SwarmView,
    make_policy,
    registered_policies,
)
from .swarm import SwarmResult, SwarmSimulator, run_swarm

__all__ = [
    "CallablePolicy",
    "CodedArrivalSpec",
    "CodedSwarmResult",
    "CodedSwarmSimulator",
    "GroupSnapshot",
    "MostCommonFirstSelection",
    "Peer",
    "PeerGroup",
    "PieceSelectionPolicy",
    "RandomUsefulSelection",
    "RarestFirstSelection",
    "SequentialSelection",
    "SwarmMetrics",
    "SwarmResult",
    "SwarmSimulator",
    "SwarmView",
    "classify_peer",
    "gifted_fraction_arrivals",
    "group_counts",
    "make_policy",
    "registered_policies",
    "run_swarm",
]
