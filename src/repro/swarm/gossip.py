"""Flow-updating gossip census: decentralised piece-frequency estimates.

Every other census in this repo is an oracle: policies read the exact
global piece counts through :class:`~repro.swarm.policies.OracleCensus`.
Real swarm clients have no such oracle — they estimate piece rarity from
neighbor gossip.  This module provides that estimator as an in-simulation
aggregation protocol in the *flow-updating* family (Jesus, Baquero &
Almeida): each peer keeps a local estimate of the mean piece-indicator
vector, and on contact ticks a pair of peers moves flow between their
estimates so both converge toward the population average.  Multiplying
the (clamped) average estimate by the live population size recovers an
estimated piece-frequency vector, which
:class:`~repro.swarm.policies.SwarmView` exposes to policies through the
``view.census`` seam.

Flow-updating bookkeeping, aggregated
-------------------------------------
The textbook protocol stores one flow per (peer, neighbor) edge and
derives the estimate as ``value - sum(flows)``.  Because our exchanges
are symmetric pairwise averages over *contact* edges (which the overlay
resamples constantly), per-edge flows collapse: only the aggregate flow
``f_i`` matters, and ``est_i = v_i - f_i`` means storing ``est_i``
directly is the same protocol with the flow matrix implicit.  Piece
receipt changes the peer's own value ``v_i`` (flow untouched), so the
estimate moves by the same indicator delta — exactly what
:meth:`GossipState.on_piece` applies.  Mass conservation holds: every
exchange moves equal and opposite flow, so the population's summed
estimate equals the summed true indicator vector (churn aside — a
departing peer takes its flow imbalance with it, the usual flow-updating
churn loss).

Draw-stream contract
--------------------
One uniform per stochastic choice from the shared
:class:`~repro.swarm.drawbuf.DrawBuffer`: when gossip is active, every
*peer* contact tick consumes exactly one extra uniform — drawn after the
ticker/target draws, before the transfer — regardless of whether the
exchange fires (self-contacts and zero-degree overlay ticks included),
so the per-event draw count stays a pure function of the event type.
The exchange itself executes only when the uniform clears the exchange
rate *and* the contact has a valid distinct partner.  Seed ticks never
gossip (the fixed seed is not a peer slot).  Everything else in this
module is draw-free, so object/array bit-identity, ``DRAW_BLOCK_SIZE``
invariance and snapshot exactness all carry over from the driver.

Slot discipline mirrors :mod:`repro.swarm.topology`: row ``i`` of the
estimate matrix is the peer in backend slot ``i`` (object ``_order[i]``,
array row ``i``), maintained by identical append / swap-remove moves, so
one :class:`GossipState` implementation serves both backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

import numpy as np

from .policies import CensusSource

#: Census kinds accepted by :class:`CensusSpec` (and, as strings, by
#: ``ScenarioSpec(census=...)``).
CENSUS_KINDS = ("oracle", "gossip")

#: Default probability that a peer contact tick triggers a gossip
#: exchange.
DEFAULT_EXCHANGE_RATE = 0.35

#: Default averaging step of an exchange (1.0 = full pairwise average).
DEFAULT_DAMPING = 1.0


@dataclass(frozen=True)
class CensusSpec:
    """How policies see the piece-frequency census of a swarm.

    ``kind="oracle"`` is the exact global census (the historical
    behaviour and the default); ``kind="gossip"`` replaces it with the
    flow-updating estimator of this module.  ``exchange_rate`` is the
    probability that a peer contact tick performs an exchange with its
    contact target; ``damping`` scales the averaging step (``1.0`` is a
    full pairwise average, smaller values move both estimates only part
    of the way).  Frozen and hashable so scenario specs carrying it stay
    usable as dict keys and pickle cleanly across fleet workers.
    """

    kind: str = "oracle"
    exchange_rate: float = DEFAULT_EXCHANGE_RATE
    damping: float = DEFAULT_DAMPING

    def __post_init__(self) -> None:
        if self.kind not in CENSUS_KINDS:
            raise ValueError(
                f"unknown census kind {self.kind!r}; expected one of {CENSUS_KINDS}"
            )
        if not 0.0 <= self.exchange_rate <= 1.0:
            raise ValueError(
                f"exchange_rate must be in [0, 1], got {self.exchange_rate}"
            )
        if not 0.0 < self.damping <= 1.0:
            raise ValueError(
                f"damping must be in (0, 1], got {self.damping}"
            )

    @property
    def is_oracle(self) -> bool:
        return self.kind == "oracle"

    @classmethod
    def oracle(cls) -> "CensusSpec":
        """The exact-census default."""
        return cls(kind="oracle")

    @classmethod
    def gossip(
        cls,
        exchange_rate: float = DEFAULT_EXCHANGE_RATE,
        damping: float = DEFAULT_DAMPING,
    ) -> "CensusSpec":
        """A flow-updating gossip census with the given knobs."""
        return cls(kind="gossip", exchange_rate=exchange_rate, damping=damping)

    @classmethod
    def coerce(cls, value: "CensusSpec | str") -> "CensusSpec":
        """Normalise a ``census=`` field value (spec or kind name)."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(kind=value)
        raise TypeError(
            f"census must be a CensusSpec or a kind name from {CENSUS_KINDS}, "
            f"got {value!r}"
        )

    def describe(self) -> str:
        if self.is_oracle:
            return "exact oracle census"
        return (
            f"gossip census (exchange_rate={self.exchange_rate:g}, "
            f"damping={self.damping:g})"
        )


class GossipState:
    """Per-swarm flow-updating state, shared verbatim by both backends.

    Row ``i`` of ``est`` is slot ``i``'s local estimate of the population
    mean piece-indicator vector (``K`` floats); ``last_update[i]`` is the
    simulation time of that slot's last estimate change (arrival, piece
    receipt or exchange), which grounds the staleness metric.  All
    methods are draw-free — the *caller* (the shared driver) owns the one
    uniform per contact tick that decides whether :meth:`exchange` runs.
    """

    __slots__ = (
        "num_pieces",
        "exchange_rate",
        "damping",
        "n",
        "exchanges",
        "est",
        "last_update",
        "_bits",
        "_focus_slot",
        "_focus_total",
        "_focus_time",
    )

    def __init__(self, spec: CensusSpec, num_pieces: int, capacity: int = 16) -> None:
        if spec.is_oracle:
            raise ValueError("GossipState requires a gossip CensusSpec")
        capacity = max(int(capacity), 1)
        self.num_pieces = num_pieces
        self.exchange_rate = spec.exchange_rate
        self.damping = spec.damping
        self.n = 0
        self.exchanges = 0
        self.est = np.zeros((capacity, num_pieces), dtype=np.float64)
        self.last_update = np.zeros(capacity, dtype=np.float64)
        self._bits = np.arange(num_pieces, dtype=np.uint64)
        # Focus defaults to slot 0 (a zero row before any arrival), so a
        # census read outside a transfer context degrades to zeros
        # instead of crashing.
        self._focus_slot = 0
        self._focus_total = 0
        self._focus_time = 0.0

    # ------------------------------------------------------------------
    # Capacity

    def _grow(self, need: int) -> None:
        capacity = len(self.last_update)
        if need <= capacity:
            return
        while capacity < need:
            capacity *= 2
        est = np.zeros((capacity, self.num_pieces), dtype=np.float64)
        est[: self.n] = self.est[: self.n]
        last_update = np.zeros(capacity, dtype=np.float64)
        last_update[: self.n] = self.last_update[: self.n]
        self.est = est
        self.last_update = last_update

    def _indicator(self, mask: int) -> np.ndarray:
        """The piece-indicator vector of a collection bitmask."""
        return ((np.uint64(mask) >> self._bits) & np.uint64(1)).astype(np.float64)

    # ------------------------------------------------------------------
    # Membership (same append / swap-remove discipline as the backends)

    def on_arrival(self, slot: int, mask: int, time: float) -> None:
        """A peer with collection ``mask`` joined in slot ``slot`` (== n)."""
        self._grow(slot + 1)
        self.n = slot + 1
        self.est[slot] = self._indicator(mask)
        self.last_update[slot] = time

    def on_bulk_arrivals(self, start: int, stop: int, mask: int, time: float) -> None:
        """Vectorised :meth:`on_arrival` for identical-mask pre-seeding.

        Matches a per-slot ``on_arrival`` loop exactly (same values, no
        draws), so the array kernel's bulk ``seed_population`` fill stays
        available under gossip.
        """
        self._grow(stop)
        self.n = stop
        self.est[start:stop] = self._indicator(mask)
        self.last_update[start:stop] = time

    def on_piece(self, slot: int, piece: int, time: float) -> None:
        """Slot ``slot`` received ``piece``: its own value rose by the
        indicator delta, flows untouched, so the estimate rises with it."""
        self.est[slot, piece - 1] += 1.0
        self.last_update[slot] = time

    def on_departure(self, slot: int) -> None:
        """Swap-remove: the last slot's row moves into ``slot``."""
        last = self.n - 1
        if slot != last:
            self.est[slot] = self.est[last]
            self.last_update[slot] = self.last_update[last]
        self.n = last

    # ------------------------------------------------------------------
    # The protocol step

    def exchange(self, a: int, b: int, time: float) -> None:
        """Move flow between slots ``a`` and ``b`` (damped pairwise average).

        Equal and opposite flow deltas keep the summed estimate invariant;
        with ``damping=1.0`` both slots land on their mutual average.
        """
        est = self.est
        delta = est[a] - est[b]
        delta *= 0.5 * self.damping
        est[a] -= delta
        est[b] += delta
        self.last_update[a] = time
        self.last_update[b] = time
        self.exchanges += 1

    # ------------------------------------------------------------------
    # Census reads (the GossipCensus view of the focused slot)

    def focus(self, slot: int, total_peers: int, time: float) -> None:
        """Select the slot whose estimate upcoming census reads serve.

        The driver focuses the *downloader* immediately before every
        policy call, so a policy always sees the census as estimated by
        the peer actually choosing a piece.
        """
        self._focus_slot = slot
        self._focus_total = total_peers
        self._focus_time = time

    def focused_count(self, piece: int) -> float:
        """Estimated number of peers holding ``piece`` (clamped at 0)."""
        value = self.est[self._focus_slot, piece - 1]
        if value < 0.0:
            value = 0.0
        return float(value * self._focus_total)

    def focused_counts(self) -> np.ndarray:
        """Estimated piece-frequency vector of the focused slot."""
        return np.maximum(self.est[self._focus_slot], 0.0) * float(self._focus_total)

    def focused_staleness(self) -> float:
        """Time since the focused slot's estimate last changed."""
        return self._focus_time - float(self.last_update[self._focus_slot])

    # ------------------------------------------------------------------
    # Metrics

    def mean_error(self, piece_counts: Mapping[int, int], total_peers: int) -> float:
        """Mean over live peers of the L1 distance between each peer's
        estimated frequency vector and the true oracle counts."""
        n = self.n
        if n == 0:
            return 0.0
        true = np.array(
            [piece_counts[k] for k in range(1, self.num_pieces + 1)],
            dtype=np.float64,
        )
        est = np.maximum(self.est[:n], 0.0) * float(total_peers)
        return float(np.mean(np.abs(est - true).sum(axis=1)))

    def mean_staleness(self, time: float) -> float:
        """Mean over live peers of the time since their last update."""
        n = self.n
        if n == 0:
            return 0.0
        return time - float(np.mean(self.last_update[:n]))

    # ------------------------------------------------------------------
    # Snapshots

    def capture(self) -> Dict[str, Any]:
        """Freeze the live rows for an exact checkpoint."""
        return {
            "exchange_rate": self.exchange_rate,
            "damping": self.damping,
            "n": self.n,
            "exchanges": self.exchanges,
            "est": self.est[: self.n].copy(),
            "last_update": self.last_update[: self.n].copy(),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`capture` payload (exact, focus reset)."""
        if (
            state["exchange_rate"] != self.exchange_rate
            or state["damping"] != self.damping
        ):
            raise ValueError(
                "snapshot gossip parameters (exchange_rate="
                f"{state['exchange_rate']!r}, damping={state['damping']!r}) do "
                "not match the configured census (exchange_rate="
                f"{self.exchange_rate!r}, damping={self.damping!r})"
            )
        n = int(state["n"])
        self._grow(n)
        self.n = n
        self.exchanges = int(state["exchanges"])
        self.est[:n] = np.asarray(state["est"], dtype=np.float64).reshape(
            n, self.num_pieces
        )
        self.est[n:] = 0.0
        self.last_update[:n] = np.asarray(state["last_update"], dtype=np.float64)
        self.last_update[n:] = 0.0
        self._focus_slot = 0
        self._focus_total = 0
        self._focus_time = 0.0


class GossipCensus(CensusSource):
    """:class:`~repro.swarm.policies.CensusSource` over a :class:`GossipState`.

    Reads are served from the estimate of the *focused* slot — the
    downloader of the transfer in progress — so each policy call sees
    exactly what that peer's gossip state knows, estimated counts being
    floats (compare :class:`~repro.swarm.policies.OracleCensus`, whose
    counts are exact ints and whose staleness is always ``0.0``).
    """

    __slots__ = ("_state",)

    def __init__(self, state: GossipState) -> None:
        self._state = state

    def count(self, piece: int) -> float:
        return self._state.focused_count(piece)

    def counts_array(self) -> np.ndarray:
        return self._state.focused_counts()

    def staleness(self) -> float:
        return self._state.focused_staleness()


def build_gossip(
    spec: Optional[CensusSpec], num_pieces: int, capacity: int = 16
) -> Optional[GossipState]:
    """Materialise the gossip state for a census spec (``None`` for oracle)."""
    if spec is None or spec.is_oracle:
        return None
    return GossipState(spec, num_pieces, capacity=capacity)


__all__ = [
    "CENSUS_KINDS",
    "DEFAULT_DAMPING",
    "DEFAULT_EXCHANGE_RATE",
    "CensusSpec",
    "GossipCensus",
    "GossipState",
    "build_gossip",
]
