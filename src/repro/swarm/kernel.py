"""Array-backed swarm kernel: the structure-of-arrays fast path.

:class:`ArraySwarmKernel` simulates exactly the same Section-III dynamics as
:class:`repro.swarm.swarm.SwarmSimulator`, but stores the population as a
structure of arrays (SoA) instead of one Python object per peer:

* ``_masks`` — ``numpy.uint64`` piece bitmasks (bit ``i-1`` = piece ``i``),
  one row per live peer (``K ≤ 64``);
* ``_arrival_time`` / ``_completed_at`` — float64 lifecycle timestamps
  (``nan`` marks "never completed");
* ``_arrived_with_rare`` / ``_infected`` / ``_was_one_club`` — boolean flags
  of the Figure-2 group decomposition;
* ``_seed_slot`` / ``_sped_slot`` — int64 back-pointers into the peer-seed
  and sped-up swap-remove lists (``-1`` when absent).

Rows are dense: peer ``i`` lives in row ``i`` for ``i < population``.  A
departure swap-removes the last row into the vacated slot (O(1)), with the
back-pointer columns keeping the seed/sped lists consistent.  All aggregate
observables — per-piece census, one-club size, seed count, total tick
weight — are maintained incrementally on every event, so recording a sample
point is O(K) instead of the object simulator's O(population) rescan, and
event sampling uses cumulative rates with no per-event array rebuilds.

Equivalence contract
--------------------
The aggregate-rate event loop (``run`` / ``step`` / event dispatch) is
inherited from the shared :class:`~repro.swarm.swarm._SwarmEventLoop` driver,
so the RNG-consumption contract has a single implementation; the kernel only
supplies the SoA state representation, the event handlers and the sampling
hooks, and it consumes the shared blocked
:class:`~repro.swarm.drawbuf.DrawBuffer` in *exactly* the same order and
with the same bounds as the object simulator (same swap-remove bookkeeping,
same draw per handler).  Running both backends from the same seed therefore
produces bit-identical trajectories (populations, piece censuses, one-club
sizes, metrics).  ``tests/test_property_based.py`` asserts this property;
any change to a handler of either backend must preserve it (or update both).

On top of the scalar handlers the kernel adds a **vectorized batch stage**
(:meth:`_batch_stage`): runs of state-neutral events — wasted peer ticks,
the dominant event of a captured swarm — are classified against the pending
draw block with numpy array ops and applied wholesale, consuming exactly the
draws the scalar loop would, so the batching is invisible in the trajectory
(enforced at ``DRAW_BLOCK_SIZE=1`` vs. default in CI).

The contract extends to declarative scenarios
(:class:`~repro.core.scenario.ScenarioSpec`): rate schedules thin in the
shared driver, and heterogeneous peer classes add a ``_class_idx`` column
plus per-class member/seed/sped row lists mirroring the object simulator's
per-class id lists, so scenario runs stay bit-identical across backends too.

Piece selection goes through the mask-level
:meth:`~repro.swarm.policies.PieceSelectionPolicy.select_piece_mask`
primitive; legacy ``PieceSet``-based policies are supported transparently via
the base-class shim.

Use :func:`repro.swarm.swarm.run_swarm` with ``backend="array"`` (or
:func:`repro.swarm.swarm.make_simulator`) rather than instantiating the
kernel directly.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.parameters import SystemParameters
from ..core.scenario import ScenarioSpec
from ..core.state import SystemState
from ..core.types import PieceSet
from ..simulation.rng import SeedLike, make_rng
from .groups import GroupSnapshot
from .metrics import SwarmMetrics
from .policies import PieceSelectionPolicy, RandomUsefulSelection, SwarmView
from .swarm import _SwarmEventLoop

_MAX_ARRAY_PIECES = 64


class ArraySwarmKernel(_SwarmEventLoop):
    """Structure-of-arrays peer-level simulation of the P2P swarm.

    Drop-in behavioural replacement for
    :class:`~repro.swarm.swarm.SwarmSimulator` (same constructor, ``run``,
    and observables), limited to ``num_pieces <= 64`` so that one uint64
    bitmask per peer suffices.
    """

    backend_name = "array"

    def __init__(
        self,
        params: SystemParameters,
        policy: Optional[PieceSelectionPolicy] = None,
        seed: SeedLike = None,
        rare_piece: int = 1,
        retry_speedup: float = 1.0,
        track_groups: bool = False,
        scenario: Optional[ScenarioSpec] = None,
        initial_capacity: int = 1024,
        draw_block_size: Optional[int] = None,
    ):
        if retry_speedup < 1.0:
            raise ValueError(f"retry_speedup must be >= 1, got {retry_speedup}")
        if not 1 <= rare_piece <= params.num_pieces:
            raise ValueError("rare_piece out of range")
        if params.num_pieces > _MAX_ARRAY_PIECES:
            raise ValueError(
                f"the array backend packs piece sets into uint64 bitmasks and "
                f"supports at most {_MAX_ARRAY_PIECES} pieces, got "
                f"{params.num_pieces}; fall back to backend=\"object\", which "
                f"has no piece-count limit"
            )
        self.params = params
        self.policy = policy if policy is not None else RandomUsefulSelection()
        self.rng = make_rng(seed)
        self.rare_piece = rare_piece
        self.retry_speedup = retry_speedup
        self.track_groups = track_groups

        num_pieces = params.num_pieces
        self._full_mask = (1 << num_pieces) - 1
        self._rare_bit = 1 << (rare_piece - 1)
        self._club_mask = self._full_mask & ~self._rare_bit

        capacity = max(int(initial_capacity), 16)
        self._masks = np.zeros(capacity, dtype=np.uint64)
        self._arrival_time = np.zeros(capacity, dtype=np.float64)
        self._completed_at = np.full(capacity, np.nan, dtype=np.float64)
        self._arrived_with_rare = np.zeros(capacity, dtype=np.bool_)
        self._infected = np.zeros(capacity, dtype=np.bool_)
        self._was_one_club = np.zeros(capacity, dtype=np.bool_)
        self._seed_slot = np.full(capacity, -1, dtype=np.int64)
        self._sped_slot = np.full(capacity, -1, dtype=np.int64)

        self._n = 0  # live rows: peers occupy rows 0.._n-1
        self._seeds: List[int] = []  # row indices of peer seeds (gamma < inf)
        self._sped: List[int] = []  # row indices of sped-up peers
        self._one_club_count = 0
        self._piece_counts: Dict[int, int] = {
            k: 0 for k in range(1, num_pieces + 1)
        }
        self._time = 0.0
        self.metrics = SwarmMetrics()

        self._arrival_types = list(params.arrival_rates)
        self._arrival_masks = [t.mask for t in self._arrival_types]
        self._arrival_weights = np.array(
            [params.arrival_rates[t] for t in self._arrival_types], dtype=float
        )
        self._arrival_total = float(self._arrival_weights.sum())
        self._arrival_probs = self._arrival_weights / self._arrival_total
        self._arrival_cumprobs = np.cumsum(self._arrival_probs)
        self._single_arrival_mask = (
            self._arrival_masks[0] if len(self._arrival_masks) == 1 else None
        )
        self._init_driver(scenario, draw_block_size)
        # The vectorized batch stage needs wasted peer ticks to be provably
        # state-neutral: retry speedups turn a wasted tick into a rate
        # change, and only policies flagged rng-free-when-useless are known
        # not to consume draws on a useless contact.  A gossip census adds a
        # draw (and a state mutation) to *every* peer tick, so gossip swarms
        # stay on the scalar per-event path wholesale.
        self._batch_enabled = (
            retry_speedup == 1.0
            and getattr(self.policy, "rng_free_when_useless", False)
            and self._gossip is None
        )
        self._membership_version = 0
        self._ticker_cache: Optional[dict] = None
        # Incremental numpy mirror of ``_class_members`` (built lazily on
        # the first ticker-table rebuild, kept in sync by the membership
        # mutators): rebuilds slice a view instead of re-converting lists.
        self._class_member_bufs: Optional[List[np.ndarray]] = None
        # Heterogeneous mode mirrors the object simulator's per-class
        # bookkeeping at the row level: _class_idx holds each row's class,
        # _member_slot its index in the per-class membership list, and the
        # per-class seed/sped lists replace the flat ones (the _seed_slot /
        # _sped_slot columns then index into the row's class list).
        if self._classes is not None:
            self._class_type_masks = tuple(
                tuple(type_c.mask for type_c in types)
                for types in self._class_types
            )
            self._class_idx = np.zeros(capacity, dtype=np.int32)
            self._member_slot = np.full(capacity, -1, dtype=np.int64)
            # Per-class membership revisions: bumped whenever that class's
            # member list mutates, so the batch ticker cache can keep the
            # row arrays of untouched classes across rebuilds.
            self._class_member_revs = [0] * len(self._classes)
        self._view = SwarmView(
            num_pieces=num_pieces,
            census=self._make_census(),
            total_peers=0,
            time=0.0,
        )

    # -- population management -------------------------------------------------

    @property
    def now(self) -> float:
        return self._time

    @property
    def population(self) -> int:
        return self._n

    @property
    def num_seeds(self) -> int:
        if self._classes is None:
            return len(self._seeds)
        return sum(len(seeds) for seeds in self._class_seeds)

    def current_state(self) -> SystemState:
        """Aggregate the population into a :class:`SystemState`."""
        num_pieces = self.params.num_pieces
        if num_pieces <= 16:
            # Small piece spaces: a bincount over the mask column beats the
            # sort inside ``np.unique`` (same ascending-mask grouping).
            tallies = np.bincount(
                self._masks[: self._n], minlength=1 << num_pieces
            )
            masks = np.flatnonzero(tallies)
            counts = tallies[masks]
        else:
            masks, counts = np.unique(self._masks[: self._n], return_counts=True)
        return SystemState(
            {
                PieceSet.from_mask(int(mask), num_pieces): int(count)
                for mask, count in zip(masks, counts)
            },
            num_pieces,
        )

    def one_club_size(self) -> int:
        return self._one_club_count

    def _grow(self) -> None:
        capacity = len(self._masks) * 2
        names = [
            "_masks",
            "_arrival_time",
            "_completed_at",
            "_arrived_with_rare",
            "_infected",
            "_was_one_club",
            "_seed_slot",
            "_sped_slot",
        ]
        if self._classes is not None:
            names += ["_class_idx", "_member_slot"]
        for name in names:
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[: len(old)] = old
            if name == "_completed_at":
                grown[len(old) :] = np.nan
            elif name in ("_seed_slot", "_sped_slot", "_member_slot"):
                grown[len(old) :] = -1
            else:
                grown[len(old) :] = 0
            setattr(self, name, grown)

    def _add_peer(self, mask: int, class_index: int = 0) -> int:
        if self._n == len(self._masks):
            self._grow()
        self._membership_version += 1
        row = self._n
        self._n += 1
        self._masks[row] = mask
        self._arrival_time[row] = self._time
        self._completed_at[row] = np.nan
        self._arrived_with_rare[row] = bool(mask & self._rare_bit)
        self._infected[row] = False
        self._was_one_club[row] = False
        self._seed_slot[row] = -1
        self._sped_slot[row] = -1
        if self._classes is not None:
            self._class_idx[row] = class_index
            members = self._class_members[class_index]
            self._member_slot[row] = len(members)
            members.append(row)
            self._class_member_revs[class_index] += 1
            bufs = self._class_member_bufs
            if bufs is not None:
                buf = bufs[class_index]
                slot = len(members) - 1
                if slot >= len(buf):
                    grown_buf = np.empty(
                        max(2 * len(buf), 8), dtype=np.int64
                    )
                    grown_buf[: len(buf)] = buf
                    buf = bufs[class_index] = grown_buf
                buf[slot] = row
        bits = mask
        counts = self._piece_counts
        while bits:
            low = bits & -bits
            counts[low.bit_length()] += 1
            bits ^= low
        if mask == self._club_mask:
            self._one_club_count += 1
        if mask == self._full_mask and not self._class_departs_immediately(
            class_index
        ):
            self._add_seed(row)
        self.metrics.total_arrivals += 1
        if self._overlay is not None:
            self._overlay.on_arrival(row, self.draws)
        if self._gossip is not None:
            self._gossip.on_arrival(row, mask, self._time)
        return row

    def _remove_peer(self, row: int) -> None:
        if self._overlay is not None:
            # Detach (and, for tracker overlays, rewire) before the rows
            # move; the overlay applies the same swap-remove internally.
            self._overlay.on_departure(row, self.draws)
        if self._gossip is not None:
            # Same swap-remove move on the estimate rows.
            self._gossip.on_departure(row)
        self._membership_version += 1
        arrival = float(self._arrival_time[row])
        sojourn = self._time - arrival
        completed = float(self._completed_at[row])
        mask = int(self._masks[row])
        bits = mask
        counts = self._piece_counts
        while bits:
            low = bits & -bits
            counts[low.bit_length()] -= 1
            bits ^= low
        if mask == self._club_mask:
            self._one_club_count -= 1
        if self._seed_slot[row] >= 0:
            self._remove_seed(row)
        if self._sped_slot[row] >= 0:
            self._discard_sped(row)
        hetero = self._classes is not None
        if hetero:
            row_class = int(self._class_idx[row])
            members = self._class_members[row_class]
            member_index = int(self._member_slot[row])
            self._member_slot[row] = -1
            last_member = members.pop()
            if last_member != row:
                members[member_index] = last_member
                self._member_slot[last_member] = member_index
                bufs = self._class_member_bufs
                if bufs is not None:
                    bufs[row_class][member_index] = last_member
            self._class_member_revs[row_class] += 1
        # Swap-remove: the last live row fills the vacated slot; the slot
        # columns keep the seed/sped/member lists pointing at the moved row.
        last = self._n - 1
        self._n = last
        if row != last:
            self._masks[row] = self._masks[last]
            self._arrival_time[row] = self._arrival_time[last]
            self._completed_at[row] = self._completed_at[last]
            self._arrived_with_rare[row] = self._arrived_with_rare[last]
            self._infected[row] = self._infected[last]
            self._was_one_club[row] = self._was_one_club[last]
            if hetero:
                last_class = int(self._class_idx[last])
                self._class_idx[row] = last_class
                member_slot = int(self._member_slot[last])
                self._member_slot[row] = member_slot
                self._member_slot[last] = -1
                if member_slot >= 0:
                    self._class_members[last_class][member_slot] = row
                    self._class_member_revs[last_class] += 1
                    bufs = self._class_member_bufs
                    if bufs is not None:
                        bufs[last_class][member_slot] = row
            seed_slot = int(self._seed_slot[last])
            self._seed_slot[row] = seed_slot
            if seed_slot >= 0:
                self._seed_list_of(last)[seed_slot] = row
            sped_slot = int(self._sped_slot[last])
            self._sped_slot[row] = sped_slot
            if sped_slot >= 0:
                self._sped_list_of(last)[sped_slot] = row
        self.metrics.record_departure(
            sojourn=sojourn,
            download_time=None if math.isnan(completed) else completed - arrival,
        )

    def _seed_list_of(self, row: int) -> List[int]:
        if self._classes is None:
            return self._seeds
        return self._class_seeds[int(self._class_idx[row])]

    def _sped_list_of(self, row: int) -> List[int]:
        if self._classes is None:
            return self._sped
        return self._class_sped[int(self._class_idx[row])]

    def _add_seed(self, row: int) -> None:
        seeds = self._seed_list_of(row)
        self._seed_slot[row] = len(seeds)
        seeds.append(row)

    def _remove_seed(self, row: int) -> None:
        seeds = self._seed_list_of(row)
        index = int(self._seed_slot[row])
        self._seed_slot[row] = -1
        last_row = seeds.pop()
        if last_row != row:
            seeds[index] = last_row
            self._seed_slot[last_row] = index

    def _add_sped(self, row: int) -> None:
        if self._sped_slot[row] < 0:
            sped = self._sped_list_of(row)
            self._sped_slot[row] = len(sped)
            sped.append(row)

    def _discard_sped(self, row: int) -> None:
        index = int(self._sped_slot[row])
        if index < 0:
            return
        sped = self._sped_list_of(row)
        self._sped_slot[row] = -1
        last_row = sped.pop()
        if last_row != row:
            sped[index] = last_row
            self._sped_slot[last_row] = index

    # -- snapshot hooks ----------------------------------------------------------

    #: The per-row columns captured by a snapshot (hetero columns added when
    #: a heterogeneous scenario is active).
    _SNAPSHOT_COLUMNS = (
        "masks",
        "arrival_time",
        "completed_at",
        "arrived_with_rare",
        "infected",
        "was_one_club",
        "seed_slot",
        "sped_slot",
    )

    def _capture_backend_state(self) -> Dict[str, object]:
        n = self._n
        state: Dict[str, object] = {
            "n": n,
            "seeds": list(self._seeds),
            "sped": list(self._sped),
            "one_club_count": self._one_club_count,
            "piece_counts": dict(self._piece_counts),
        }
        columns = list(self._SNAPSHOT_COLUMNS)
        if self._classes is not None:
            columns += ["class_idx", "member_slot"]
        for name in columns:
            state[name] = getattr(self, "_" + name)[:n].copy()
        return state

    def _restore_backend_state(self, state: Dict[str, object]) -> None:
        n = int(state["n"])
        while len(self._masks) < n:
            self._grow()
        # The restored membership has nothing to do with whatever this
        # simulator ran before, so the batch stage's cached ticker arrays
        # must not survive the restore.
        self._membership_version += 1
        self._ticker_cache = None
        self._class_member_bufs = None
        self._n = n
        columns = list(self._SNAPSHOT_COLUMNS)
        if self._classes is not None:
            columns += ["class_idx", "member_slot"]
        for name in columns:
            getattr(self, "_" + name)[:n] = state[name]
        self._seeds[:] = state["seeds"]
        self._sped[:] = state["sped"]
        self._one_club_count = state["one_club_count"]
        # The SwarmView proxies this dict, so update it in place.
        self._piece_counts.clear()
        self._piece_counts.update(state["piece_counts"])

    def seed_population(self, initial_state: SystemState) -> None:
        """Populate the swarm from a :class:`SystemState` before running.

        Bulk array fill: one broadcast per peer type instead of one
        ``_add_peer`` per peer.  Seeding draws no RNG and appends rows, class
        members and peer seeds in exactly the per-peer loop's order, so the
        trajectory is unchanged; on fleet workloads (hundreds of swarms,
        each pre-seeded with a one-club) the per-peer loop used to dominate
        the whole run.

        Under a topology overlay the bulk fill cannot be used: overlay
        wiring consumes draws per arrival in slot order, so seeding falls
        back to the object simulator's per-peer loop (and, like it, cancels
        the arrival counting — pre-seeded peers are not exogenous arrivals).
        """
        if self._overlay is not None:
            for type_c, count in initial_state.items():
                for _ in range(count):
                    self._add_peer(type_c.mask)
            self.metrics.total_arrivals -= initial_state.total_peers
            return
        for type_c, count in initial_state.items():
            if count <= 0:
                continue
            mask = type_c.mask
            self._membership_version += 1
            while self._n + count > len(self._masks):
                self._grow()
            start = self._n
            stop = start + count
            self._n = stop
            rows = range(start, stop)
            self._masks[start:stop] = mask
            self._arrival_time[start:stop] = self._time
            self._completed_at[start:stop] = np.nan
            self._arrived_with_rare[start:stop] = bool(mask & self._rare_bit)
            self._infected[start:stop] = False
            self._was_one_club[start:stop] = False
            self._seed_slot[start:stop] = -1
            self._sped_slot[start:stop] = -1
            if self._classes is not None:
                # Pre-seeded peers join class 0, like the scalar path did.
                self._class_idx[start:stop] = 0
                members = self._class_members[0]
                self._member_slot[start:stop] = np.arange(
                    len(members), len(members) + count, dtype=np.int64
                )
                members.extend(rows)
                self._class_member_revs[0] += 1
                # Bulk extend: drop the incremental mirror, it is rebuilt
                # lazily from the lists on the next ticker-table miss.
                self._class_member_bufs = None
            counts = self._piece_counts
            bits = mask
            while bits:
                low = bits & -bits
                counts[low.bit_length()] += count
                bits ^= low
            if mask == self._club_mask:
                self._one_club_count += count
            if mask == self._full_mask and not self._class_departs_immediately(0):
                seeds = self._seed_list_of(start)
                self._seed_slot[start:stop] = np.arange(
                    len(seeds), len(seeds) + count, dtype=np.int64
                )
                seeds.extend(rows)
            if self._gossip is not None:
                # Draw-free bulk init, matching per-slot on_arrival exactly.
                self._gossip.on_bulk_arrivals(start, stop, mask, self._time)

    # -- event mechanics -------------------------------------------------------

    def _total_peer_tick_rate(self) -> float:
        if self._classes is not None:
            return self._hetero_tick_rate()
        weight = self._n + (self.retry_speedup - 1.0) * len(self._sped)
        return weight * self.params.peer_rate

    def _sample_arrival_mask(self) -> int:
        if self._single_arrival_mask is not None:
            return self._single_arrival_mask
        # One buffered uniform + searchsorted, mirroring the object
        # simulator's arrival-type draw bit for bit.
        return self._arrival_masks[self.draws.cum_choice(self._arrival_cumprobs)]

    def _sample_ticking_row(self) -> int:
        if self._classes is not None:
            return self._draw_hetero_ticker()
        population = self._n
        sped = len(self._sped)
        if self.retry_speedup == 1.0 or not sped:
            return self.draws.integers(population)
        extra = self.retry_speedup - 1.0
        threshold = self.draws.uniform(0.0, population + extra * sped)
        if threshold < population:
            return int(threshold)
        return self._sped[min(int((threshold - population) / extra), sped - 1)]

    def _refresh_view(self) -> SwarmView:
        view = self._view
        view.total_peers = self._n
        view.time = self._time
        if self._classes is not None:
            view.class_counts = tuple(len(m) for m in self._class_members)
        return view

    def _transfer(self, uploader_mask: int, row: int, from_seed: bool) -> bool:
        """Attempt a useful upload into the peer at ``row``."""
        downloader_mask = int(self._masks[row])
        if self._gossip is not None:
            # The policy reads the census as the *downloader* estimates it.
            self._gossip.focus(row, self._n, self._time)
        piece = self.policy.select_piece_mask(
            downloader_mask, uploader_mask, self._refresh_view(), self.draws
        )
        if piece is None:
            self.metrics.wasted_contacts += 1
            return False
        piece_bit = 1 << (piece - 1)
        if downloader_mask & piece_bit:
            # Match the object backend, which fails loudly (via
            # Peer.receive_piece) when a buggy policy violates usefulness.
            raise ValueError(
                f"policy {self.policy.name!r} selected piece {piece}, "
                f"which the downloader already holds"
            )
        rare = self.rare_piece
        if downloader_mask == self._club_mask:
            self._was_one_club[row] = True
            self._one_club_count -= 1
        if (
            piece == rare
            and not self._arrived_with_rare[row]
            and self.params.num_pieces - downloader_mask.bit_count() >= 2
            and not self._infected[row]
        ):
            self._infected[row] = True
        new_mask = downloader_mask | piece_bit
        self._masks[row] = new_mask
        if new_mask == self._club_mask:
            self._one_club_count += 1
        self._piece_counts[piece] += 1
        if self._gossip is not None:
            self._gossip.on_piece(row, piece, self._time)
        self.metrics.total_downloads += 1
        if from_seed:
            self.metrics.total_seed_uploads += 1
        if new_mask == self._full_mask:
            self._completed_at[row] = self._time
            departs = (
                self.params.immediate_departure
                if self._classes is None
                else self._classes[int(self._class_idx[row])].immediate_departure
            )
            if departs:
                self._remove_peer(row)
            else:
                self._add_seed(row)
        return True

    def _handle_arrival(self) -> None:
        if self._classes is None:
            self._add_peer(self._sample_arrival_mask())
            return
        class_index, type_index = self._draw_arrival_class_type()
        self._add_peer(
            self._class_type_masks[class_index][type_index], class_index=class_index
        )

    def _handle_seed_tick(self) -> None:
        if self._n == 0:
            return
        target = self.draws.integers(self._n)
        self._transfer(self._full_mask, target, from_seed=True)

    def _handle_peer_tick(self) -> None:
        if self._n == 0:
            return
        uploader = self._sample_ticking_row()
        overlay = self._overlay
        if overlay is not None:
            # Overlay contact: the target is one uniform over the ticker's
            # neighbor row (a zero-degree ticker still consumes it).
            self._discard_sped(uploader)
            slot = overlay.draw_target(uploader, self.draws.next())
            if self._gossip is not None:
                self._gossip_tick(uploader, slot)
            if slot < 0:
                self.metrics.wasted_contacts += 1
                success = False
            else:
                success = self._transfer(
                    int(self._masks[uploader]), slot, from_seed=False
                )
            if success:
                self.metrics.neighbor_useful_ticks += 1
            else:
                self.metrics.neighbor_useless_ticks += 1
                if self.retry_speedup > 1.0:
                    self._add_sped(uploader)
            return
        target = self.draws.integers(self._n)
        self._apply_transfer_tick(uploader, target)

    def _apply_transfer_tick(self, uploader: int, target: int) -> None:
        """Peer tick whose ticker / target rows were already drawn.

        Cohort-apply primitive: the stacked dispatcher classifies the
        ticker and target rows vectorially from the peeked draw window
        (the same truncate-and-clamp maps as the scalar draws), advances
        the buffer past them, and lands here — so this body must consume
        exactly the remaining draws of the scalar ``_handle_peer_tick``
        (the piece pick, when the contact is useful).
        """
        # A ticking peer's speedup (if any) is consumed by this tick.
        self._discard_sped(uploader)
        if self._gossip is not None:
            # One gossip uniform per peer tick, after the ticker/target
            # draws and before the transfer — mirroring the object backend.
            # (Gossip lanes are never windowable, so the stacked phase-4
            # fast path, which lands here with the draws pre-consumed,
            # cannot reach this branch.)
            self._gossip_tick(uploader, target)
        if target == uploader:
            self.metrics.wasted_contacts += 1
            success = False
        else:
            success = self._transfer(
                int(self._masks[uploader]), target, from_seed=False
            )
        if not success and self.retry_speedup > 1.0:
            self._add_sped(uploader)

    # -- flash-exit cull hooks ---------------------------------------------------

    def _slot_is_complete(self, slot: int) -> bool:
        return int(self._masks[slot]) == self._full_mask

    def _remove_slot(self, slot: int) -> None:
        self._remove_peer(slot)

    def _handle_seed_departure(self) -> None:
        if self._classes is not None:
            row = self._draw_hetero_departing_seed()
            if row is not None:
                self._remove_peer(row)
            return
        if not self._seeds:
            return
        index = self.draws.integers(len(self._seeds))
        self._remove_peer(self._seeds[index])

    # -- vectorized event batching ----------------------------------------------

    def _batch_hetero_tickers(self, uniforms: np.ndarray) -> Optional[np.ndarray]:
        """Vectorized ``_draw_hetero_ticker`` for a chunk of uniforms.

        Replays the shared driver's segment walk with array ops: the segment
        boundaries are the cumulative ``µ_c · n_c`` widths (same summation
        order as ``_pick_from_segments``, so the same doubles), the in-segment
        index the same truncate-and-clamp.  Valid only while class
        memberships are frozen, which batched (state-neutral) events
        guarantee; the per-class row arrays are cached until any peer is
        added or removed.
        """
        cache = self._ticker_tables()
        if cache is None:
            return None
        boundaries = cache["boundaries"]
        threshold = uniforms * float(boundaries[-1])
        segment = np.searchsorted(boundaries, threshold, side="right")
        np.minimum(segment, len(boundaries) - 1, out=segment)
        index = (
            (threshold - cache["starts"][segment]) / cache["units"][segment]
        ).astype(np.int64)
        np.minimum(index, cache["sizes"][segment] - 1, out=index)
        return cache["handles"][cache["offsets"][segment] + index]

    def _ticker_tables(self) -> Optional[dict]:
        """The cached segment tables behind :meth:`_batch_hetero_tickers`.

        ``None`` when no class has members (no tick can fire).  The stacked
        driver reads the tables directly to classify several lanes' windows
        with one set of array ops; the cache is rebuilt when any membership
        changed, reusing the row arrays of classes whose revision is
        untouched.
        """
        cache = self._ticker_cache
        if cache is None or cache["version"] != self._membership_version:
            revs = self._class_member_revs
            old_rows = cache["class_rows"] if cache is not None else None
            old_revs = cache["revs"] if cache is not None else None
            bufs = self._class_member_bufs
            if bufs is None:
                # Seed the incremental mirror: per-class int64 buffers the
                # membership mutators keep in sync, so a rebuild slices a
                # view instead of converting the whole Python list.
                bufs = self._class_member_bufs = [
                    np.array(m, dtype=np.int64) for m in self._class_members
                ]
            class_rows: List[Optional[np.ndarray]] = []
            units: List[float] = []
            arrays: List[np.ndarray] = []
            for index, (cls, members) in enumerate(
                zip(self._classes, self._class_members)
            ):
                if old_rows is not None and old_revs[index] == revs[index]:
                    rows = old_rows[index]
                elif members:
                    rows = bufs[index][: len(members)]
                else:
                    rows = None
                class_rows.append(rows)
                if rows is not None:
                    units.append(cls.contact_rate)
                    arrays.append(rows)
            if not arrays:
                return None
            sizes = np.array([len(rows) for rows in arrays], dtype=np.int64)
            units_arr = np.array(units, dtype=np.float64)
            boundaries = np.cumsum(units_arr * sizes)
            offsets = np.zeros(len(arrays), dtype=np.int64)
            np.cumsum(sizes[:-1], out=offsets[1:])
            cache = self._ticker_cache = {
                "version": self._membership_version,
                "revs": list(revs),
                "class_rows": class_rows,
                "units": units_arr,
                "sizes": sizes,
                "boundaries": boundaries,
                "starts": np.concatenate(([0.0], boundaries[:-1])),
                "offsets": offsets,
                "handles": np.concatenate(arrays),
            }
        return cache

    def _batch_stage(
        self,
        rates: Tuple[float, float, float, float],
        total: float,
        horizon: float,
        interval: float,
        next_sample: float,
        limit: Optional[int],
    ) -> Tuple[int, float]:
        """Consume a run of wasted peer ticks with vectorized classification.

        A wasted peer tick — the dominant event in a captured (one-club)
        swarm — consumes exactly four buffered draws (inter-event
        exponential, event-type selection, ticking peer, contact target) and
        mutates nothing but the clock and ``metrics.wasted_contacts``, so
        the event rates provably stay constant across any run of them.  The
        stage speculatively classifies the pending draw block in groups of
        four with array ops (event type, ticker/target rows, usefulness of
        the contact via the mask census) and applies the maximal
        state-neutral prefix; the first event that transfers a piece,
        arrives, departs, ticks the fixed seed, or crosses the horizon is
        left — draws untouched — for the scalar path.  Each batched event
        consumes the same draws with the same semantics as the scalar loop,
        so trajectories are bit-identical (enforced by the equivalence and
        checkpoint property tests at ``DRAW_BLOCK_SIZE=1`` vs. default).

        A second state-neutral family — thinning-*rejected* arrival and
        fixed-seed-tick candidates under a scheduled (non-constant) rate,
        a fixed three-draw stride — dispatches to :meth:`_batch_thinned`,
        so scenario workloads batch past the first thinned candidate too.
        """
        n = self._n
        if n == 0:
            return 0, next_sample
        draws = self.draws
        if draws.remaining() < 2:
            return 0, next_sample
        r01 = rates[0] + rates[1]
        r012 = r01 + rates[2]
        # Scalar pre-check of the first candidate, so event streams that are
        # not batchable skip the vector classification entirely.
        first_sel = float(draws.uniforms_view(2)[1]) * total
        if not (first_sel > r01 and first_sel <= r012):
            if (first_sel <= rates[0] and self._thin_arrivals) or (
                rates[0] < first_sel <= r01 and self._thin_seed
            ):
                return self._batch_thinned(
                    rates, total, horizon, interval, next_sample, limit
                )
            return 0, next_sample
        candidates = draws.remaining() >> 2
        if limit is not None and candidates > limit:
            candidates = limit
        if candidates <= 0:
            return 0, next_sample
        uniforms = draws.uniforms_view(4 * candidates)
        hetero = self._classes is not None
        masks = self._masks
        overlay = self._overlay

        def leading_ok(window: int) -> int:
            chunk = uniforms[: 4 * window]
            selector = chunk[1::4] * total
            is_peer_tick = (selector > r01) & (selector <= r012)
            if hetero:
                ticker = self._batch_hetero_tickers(chunk[2::4])
                if ticker is None:
                    return 0
            else:
                ticker = (chunk[2::4] * n).astype(np.int64)
                np.minimum(ticker, n - 1, out=ticker)
            if overlay is not None:
                # Adjacency gather: the target draw maps onto the ticker's
                # neighbor row with the scalar truncate-and-clamp.  A
                # zero-degree ticker wastes its tick regardless of the
                # (clamped, garbage) gather, so the `zero` mask gates it.
                degree = overlay.deg[ticker]
                index = (chunk[3::4] * degree).astype(np.int64)
                np.minimum(index, degree - 1, out=index)
                np.maximum(index, 0, out=index)
                target = overlay.adj[ticker, index]
                useless = (masks[ticker] & ~masks[target]) == 0
                ok = is_peer_tick & ((degree == 0) | useless)
            else:
                target = (chunk[3::4] * n).astype(np.int64)
                np.minimum(target, n - 1, out=target)
                useless = (masks[ticker] & ~masks[target]) == 0
                ok = is_peer_tick & ((ticker == target) | useless)
            bad = np.flatnonzero(~ok)
            return int(bad[0]) if bad.size else window

        # Two-tier classification: probe a small window first, so phases
        # dominated by transfers / arrivals (where runs of wasted ticks are
        # short) never pay a full-block classification to apply a handful
        # of events; only a fully-clean probe escalates to the whole block.
        probe = 16 if candidates > 16 else candidates
        count = leading_ok(probe)
        if count == probe and candidates > probe:
            count = leading_ok(candidates)
        if count == 0:
            return 0, next_sample
        # Exact sequential clock walk over the accepted prefix: same
        # accumulation order, grid recording and horizon comparison as the
        # scalar loop (the exponentials are the block's precomputed
        # inverse-transform values, so the doubles match too).
        scale = 1.0 / total
        time = self._time
        record = self._record_sample
        applied = 0
        for exp_draw in draws.exp_view(4 * count)[::4].tolist():
            next_event_time = time + exp_draw * scale
            while next_sample <= horizon and next_sample < next_event_time:
                record(next_sample)
                next_sample += interval
            if next_event_time > horizon:
                break
            time = next_event_time
            applied += 1
        if applied:
            self._time = time
            self.metrics.wasted_contacts += applied
            if overlay is not None:
                # Both scalar overlay waste cases (zero degree, useless
                # neighbor) bump the locality counter too.
                self.metrics.neighbor_useless_ticks += applied
            draws.advance(4 * applied)
        return applied, next_sample

    def _batch_thinned(
        self,
        rates: Tuple[float, float, float, float],
        total: float,
        horizon: float,
        interval: float,
        next_sample: float,
        limit: Optional[int],
    ) -> Tuple[int, float]:
        """Consume a run of thinning-rejected scheduled-event candidates.

        Under a non-constant :class:`~repro.core.scenario.RateSchedule` the
        aggregate loop dispatches *candidate* arrivals (and fixed-seed
        ticks) at the thinning bound; a candidate that the acceptance draw
        rejects consumes exactly three buffered draws — inter-event
        exponential, event-type selector, thinning-acceptance uniform — and
        mutates nothing but the clock and ``metrics.thinned_events``, so
        rates stay constant across any run of rejections.  The stage
        classifies the pending block in groups of three: candidate event
        times via the same sequential clock accumulation as the scalar
        loop, schedule factors via the vectorized
        :meth:`~repro.core.scenario.RateSchedule.values_at` (same table
        walk as ``value_at``), and the rejection test ``bound · u ≥
        value_at(t)`` — the exact complement of ``_thin_accept``.  The
        first accepted candidate, non-thinnable event type, or
        horizon-crossing candidate is left, draws untouched, for the
        scalar path, so trajectories stay bit-identical.
        """
        draws = self.draws
        candidates = draws.remaining() // 3
        if limit is not None and candidates > limit:
            candidates = limit
        if candidates <= 0:
            return 0, next_sample
        r0 = rates[0]
        r01 = r0 + rates[1]
        thin_arrivals = self._thin_arrivals
        thin_seed = self._thin_seed
        scale = 1.0 / total
        record = self._record_sample

        # Scalar probe walk: rejection runs are usually short (a surge
        # schedule at its peak accepts nearly everything), and the
        # vectorized classification below costs ~20x a handful of scalar
        # acceptance tests.  Each candidate reads the same three doubles —
        # inter-event exponential, type selector, acceptance uniform — with
        # the same left-fold clock accumulation as both the scalar loop and
        # the vectorized ``cumsum`` times, and ``value_at`` equals
        # ``values_at`` element-wise, so the hand-off is bit-exact.
        probe = candidates if candidates < 8 else 8
        chunk = draws.uniforms_view(3 * probe).tolist()
        exps = draws.exp_view(3 * probe).tolist()
        time = self._time
        applied = 0
        streak = True
        for i in range(probe):
            selector = chunk[3 * i + 1] * total
            if selector <= r0:
                if not thin_arrivals:
                    streak = False
                    break
                schedule = self._arrival_schedule
                bound = self._arrival_bound
            elif selector <= r01:
                if not thin_seed:
                    streak = False
                    break
                schedule = self._seed_schedule
                bound = self._seed_bound
            else:
                streak = False
                break
            next_event_time = time + exps[3 * i] * scale
            if bound * chunk[3 * i + 2] < schedule.value_at(next_event_time):
                # Accepted: left, draws untouched, for the scalar path.
                streak = False
                break
            while next_sample <= horizon and next_sample < next_event_time:
                record(next_sample)
                next_sample += interval
            if next_event_time > horizon:
                streak = False
                break
            time = next_event_time
            applied += 1
        if applied:
            self._time = time
            self.metrics.thinned_events += applied
            draws.advance(3 * applied)
        if not streak or applied >= candidates:
            return applied, next_sample

        # The whole probe was a rejected streak: this looks like a long run
        # (e.g. a seed outage rejecting every fixed-rate tick), so classify
        # the rest of the pending block vectorially from the new position.
        head = applied
        candidates -= applied
        start_time = time

        def rejected_prefix(window: int) -> int:
            chunk = draws.uniforms_view(3 * window)
            selector = chunk[1::3] * total
            is_arrival = selector <= r0
            is_seed_tick = (selector > r0) & (selector <= r01)
            if not thin_arrivals:
                thinnable = is_seed_tick
            elif not thin_seed:
                thinnable = is_arrival
            else:
                thinnable = is_arrival | is_seed_tick
            stop = np.flatnonzero(~thinnable)
            prefix = int(stop[0]) if stop.size else window
            if prefix == 0:
                return 0
            # Candidate event times: the same left-fold accumulation (and
            # the same precomputed inverse-transform doubles) as the scalar
            # clock walk, so value_at lookups see identical times.
            steps = np.empty(prefix + 1, dtype=np.float64)
            steps[0] = start_time
            np.multiply(draws.exp_view(3 * prefix)[::3], scale, out=steps[1:])
            times = np.cumsum(steps)[1:]
            accept_u = chunk[2::3][:prefix]
            rejected = np.zeros(prefix, dtype=bool)
            if thin_arrivals:
                arrival_rows = is_arrival[:prefix]
                if arrival_rows.any():
                    values = self._arrival_schedule.values_at(times[arrival_rows])
                    rejected[arrival_rows] = (
                        self._arrival_bound * accept_u[arrival_rows] >= values
                    )
            if thin_seed:
                seed_rows = is_seed_tick[:prefix]
                if seed_rows.any():
                    values = self._seed_schedule.values_at(times[seed_rows])
                    rejected[seed_rows] = (
                        self._seed_bound * accept_u[seed_rows] >= values
                    )
            accepted = np.flatnonzero(~rejected)
            return int(accepted[0]) if accepted.size else prefix

        count = rejected_prefix(candidates)
        if count == 0:
            return head, next_sample
        time = start_time
        applied = 0
        for exp_draw in draws.exp_view(3 * count)[::3].tolist():
            next_event_time = time + exp_draw * scale
            while next_sample <= horizon and next_sample < next_event_time:
                record(next_sample)
                next_sample += interval
            if next_event_time > horizon:
                break
            time = next_event_time
            applied += 1
        if applied:
            self._time = time
            self.metrics.thinned_events += applied
            draws.advance(3 * applied)
        return head + applied, next_sample

    # -- sampling ---------------------------------------------------------------

    def _group_snapshot(self, sample_time: float) -> GroupSnapshot:
        n = self._n
        masks = self._masks[:n]
        gifted = self._arrived_with_rare[:n]
        infected = self._infected[:n] & ~gifted
        labelled = gifted | infected
        one_club = (masks == np.uint64(self._club_mask)) & ~labelled
        labelled = labelled | one_club
        has_rare = (masks & np.uint64(self._rare_bit)) != 0
        former = self._was_one_club[:n] & has_rare & ~labelled
        normal = n - int(gifted.sum()) - int(infected.sum()) - int(
            one_club.sum()
        ) - int(former.sum())
        return GroupSnapshot(
            time=sample_time,
            normal_young=normal,
            infected=int(infected.sum()),
            gifted=int(gifted.sum()),
            one_club=int(one_club.sum()),
            former_one_club=int(former.sum()),
        )

    def _record_sample(self, sample_time: float) -> None:
        snapshot = self._group_snapshot(sample_time) if self.track_groups else None
        gossip = self._gossip
        self.metrics.record_sample(
            time=sample_time,
            population=self._n,
            num_seeds=self.num_seeds,
            one_club_size=self._one_club_count,
            min_piece_count=min(self._piece_counts.values()),
            group_snapshot=snapshot,
            census_error=(
                gossip.mean_error(self._piece_counts, self._n)
                if gossip is not None
                else None
            ),
            census_staleness=(
                gossip.mean_staleness(sample_time) if gossip is not None else None
            ),
        )

    def _flush_samples(
        self, next_sample: float, horizon: float, interval: float
    ) -> float:
        # The state is frozen for the whole trailing grid, so append it in
        # bulk: the grid times are still generated by the same repeated
        # addition as the scalar walk, the constant columns extended once.
        # Group tracking snapshots per sample, so it keeps the scalar walk —
        # as does a gossip census, whose staleness varies with the sample
        # time (this trailing flush runs once per run, so it is not hot).
        if self.track_groups or self._gossip is not None or next_sample > horizon:
            return super()._flush_samples(next_sample, horizon, interval)
        times: List[float] = []
        while next_sample <= horizon:
            times.append(next_sample)
            next_sample += interval
        count = len(times)
        metrics = self.metrics
        metrics.sample_times.extend(times)
        metrics.population.extend([self._n] * count)
        metrics.num_seeds.extend([self.num_seeds] * count)
        metrics.one_club_size.extend([self._one_club_count] * count)
        metrics.min_piece_count.extend([min(self._piece_counts.values())] * count)
        return next_sample


__all__ = ["ArraySwarmKernel"]
