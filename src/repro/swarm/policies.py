"""Piece-selection policies (Theorem 14 / Section VIII-A).

A policy decides which piece an uploader transfers to a contacted peer.  The
only restriction Theorem 14 places on a policy is the *usefulness constraint*:
if the uploader holds any piece the downloader needs, a needed piece must be
transferred.  The stability region is then the same as for random useful
selection.

Implemented policies:

* :class:`RandomUsefulSelection` — the paper's baseline: a uniformly random
  piece among those the downloader needs;
* :class:`RarestFirstSelection` — BitTorrent-style: the needed piece with the
  fewest copies in the current population (ties broken uniformly);
* :class:`MostCommonFirstSelection` — adversarial counterpart of rarest-first,
  used to show insensitivity from the other side;
* :class:`SequentialSelection` — the lowest-numbered needed piece (in-order
  streaming-style download);
* :class:`CallablePolicy` — wraps an arbitrary ``h(A, B, x)``-style function.

Two equivalent entry points exist on every policy:

* ``select_piece(downloader_pieces, uploader_pieces, view, rng)`` — the
  original :class:`~repro.core.types.PieceSet`-level interface, kept for the
  object simulator and for user-defined policies;
* ``select_piece_mask(downloader_mask, uploader_mask, view, rng)`` — the
  mask-level primitive used by the array kernel
  (:mod:`repro.swarm.kernel`).  Masks are plain Python ints with bit ``i-1``
  set iff piece ``i`` is held.

The built-in policies implement the mask primitive natively (pure integer bit
twiddling, no allocation) and route ``select_piece`` through it; the abstract
base class provides the opposite shim, so a legacy policy that only implements
``select_piece`` (e.g. :class:`CallablePolicy` or a user subclass) works on
both backends automatically.  Both paths consume the RNG identically, which is
what makes the two simulation backends trajectory-equivalent under a shared
seed.

.. warning:: **Perf cliff** — the legacy ``select_piece_mask`` shim on the
   abstract base class allocates two :class:`~repro.core.types.PieceSet`
   objects on *every* contact, which on the array kernel's hot path costs a
   large constant factor over the built-ins' allocation-free bit arithmetic.
   Policies that never override the mask primitive get a one-time
   ``DeprecationWarning`` pointing here; override ``select_piece_mask``
   directly for array-kernel speed.

Each policy receives a :class:`SwarmView` whose ``census`` attribute — a
:class:`CensusSource` — gives read-only access to the piece-frequency census
of the current population so that global policies (rarest first) can be
expressed.  The default :class:`OracleCensus` serves the exact global counts;
a :class:`~repro.swarm.gossip.GossipCensus` serves the contacting peer's
flow-updating *estimate* instead (see :mod:`repro.swarm.gossip`), and
well-behaved policies read counts only through ``view.census.count(k)`` so
they work under either.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.types import PieceSet


class CensusSource(abc.ABC):
    """How a policy sees the piece-frequency census of the swarm.

    ``count(k)`` is the (possibly estimated) number of peers currently
    holding piece ``k``; ``counts_array()`` is the full 0-indexed vector
    (entry ``k-1`` for piece ``k``); ``staleness()`` is how old the served
    information is in simulation time — exactly ``0.0`` for the oracle,
    the focused peer's time-since-last-update for a gossip estimate.
    Counts are exact ints under :class:`OracleCensus` and floats under
    :class:`~repro.swarm.gossip.GossipCensus`; policies should only
    compare/rank them, never assume integrality.
    """

    __slots__ = ()

    @abc.abstractmethod
    def count(self, piece: int) -> float:
        """Number of peers currently holding ``piece`` (possibly estimated)."""

    @abc.abstractmethod
    def counts_array(self) -> np.ndarray:
        """The full piece-frequency vector (float64, entry ``k-1`` = piece ``k``)."""

    @abc.abstractmethod
    def staleness(self) -> float:
        """Age of the served census in simulation time (0.0 = exact)."""


class OracleCensus(CensusSource):
    """The exact global census (the historical behaviour and the default).

    Wraps the simulator's live piece-count mapping — reads always reflect
    the population at the instant of the policy call, so staleness is
    identically ``0.0``.
    """

    __slots__ = ("_counts",)

    def __init__(self, piece_counts: Mapping[int, int]) -> None:
        self._counts = piece_counts

    @property
    def mapping(self) -> Mapping[int, int]:
        """The underlying (read-only) piece-count mapping."""
        return self._counts

    def count(self, piece: int) -> int:
        return self._counts.get(piece, 0)

    def counts_array(self) -> np.ndarray:
        counts = self._counts
        return np.array(
            [counts.get(k, 0) for k in range(1, len(counts) + 1)], dtype=np.float64
        )

    def staleness(self) -> float:
        return 0.0


#: One-per-process guard for the deprecated ``SwarmView.piece_counts`` read.
_PIECE_COUNTS_WARNED = False


@dataclass
class SwarmView:
    """Read-only snapshot handed to piece-selection policies.

    Attributes
    ----------
    num_pieces:
        Number of pieces ``K``.
    census:
        The :class:`CensusSource` serving piece-frequency reads — the exact
        :class:`OracleCensus` by default, a
        :class:`~repro.swarm.gossip.GossipCensus` when the scenario runs a
        gossip census.  ``census.count(k)`` is the number of peers holding
        piece ``k`` as this census knows it.
    total_peers:
        Current population size.
    time:
        Current simulation time.
    class_counts:
        Per-class population sizes when the simulation runs a heterogeneous
        :class:`~repro.core.scenario.ScenarioSpec` (index ``c`` is the number
        of live class-``c`` peers); ``None`` in a homogeneous swarm.

    Notes
    -----
    Policies must treat the view as read-only and must not hold on to it
    beyond the duration of one ``select_piece`` call: for speed, both
    simulation backends reuse a single live view whose fields (including the
    census) are updated in place between events.  Under an oracle census the
    simulators wrap the count mapping in a read-only ``MappingProxyType``, so
    a policy that tries to mutate it raises ``TypeError``.
    """

    num_pieces: int
    census: CensusSource
    total_peers: int
    time: float
    class_counts: Optional[Tuple[int, ...]] = None

    def piece_count(self, piece: int) -> float:
        """Number of peers currently holding ``piece`` per the census."""
        return self.census.count(piece)

    @property
    def piece_counts(self) -> Mapping[int, float]:
        """Deprecated 1-based census mapping (read ``view.census`` instead).

        Kept as a thin backward-compat shim: for an oracle census this is
        the live count mapping as before; for a gossip census it is a dict
        materialised from the estimate on every access.  Emits a
        ``DeprecationWarning`` once per process.
        """
        global _PIECE_COUNTS_WARNED
        if not _PIECE_COUNTS_WARNED:
            _PIECE_COUNTS_WARNED = True
            warnings.warn(
                "SwarmView.piece_counts is deprecated; read the census through "
                "view.census.count(k) / view.census.counts_array()",
                DeprecationWarning,
                stacklevel=2,
            )
        census = self.census
        if isinstance(census, OracleCensus):
            return census.mapping
        return {k: census.count(k) for k in range(1, self.num_pieces + 1)}


def _mask_bits(mask: int) -> List[int]:
    """1-based indices of the set bits of ``mask``, ascending."""
    bits = []
    piece = 1
    while mask:
        if mask & 1:
            bits.append(piece)
        mask >>= 1
        piece += 1
    return bits


def _nth_set_bit(mask: int, index: int) -> int:
    """1-based position of the ``index``-th (0-based) set bit of ``mask``."""
    while index:
        mask &= mask - 1
        index -= 1
    return (mask & -mask).bit_length()


#: One-per-process guard for the legacy ``select_piece_mask`` shim warning.
_MASK_SHIM_WARNED = False


class PieceSelectionPolicy(abc.ABC):
    """Interface for piece-selection policies.

    The ``rng`` handed to a policy is the simulator's blocked
    :class:`~repro.swarm.drawbuf.DrawBuffer`, which implements the slice of
    the ``numpy.random.Generator`` API the built-in policies use
    (``integers`` / ``random`` / ``uniform`` / ``choice``); custom policies
    must restrict themselves to those methods so that both simulation
    backends keep consuming the draw stream identically.
    """

    name = "abstract"

    #: True when the policy is guaranteed not to consume the RNG on a
    #: contact with no useful piece (it returns ``None`` before drawing).
    #: The array kernel's vectorized batch stage only engages for such
    #: policies; the conservative default keeps custom subclasses on the
    #: scalar path unless they opt in.
    rng_free_when_useless = False

    @abc.abstractmethod
    def select_piece(
        self,
        downloader_pieces: PieceSet,
        uploader_pieces: PieceSet,
        view: SwarmView,
        rng: np.random.Generator,
    ) -> Optional[int]:
        """Choose the piece to transfer, or None when no useful piece exists.

        Implementations must satisfy the usefulness constraint: whenever the
        uploader holds a piece the downloader needs, a needed piece is
        returned.
        """

    def select_piece_mask(
        self,
        downloader_mask: int,
        uploader_mask: int,
        view: SwarmView,
        rng: np.random.Generator,
    ) -> Optional[int]:
        """Mask-level variant of :meth:`select_piece`.

        The default implementation wraps the masks into
        :class:`~repro.core.types.PieceSet` objects and defers to
        :meth:`select_piece`, so legacy policies work on the array kernel
        unchanged — at the cost of two ``PieceSet`` allocations per contact
        (the perf cliff flagged in the module docstring), which is why the
        first use of this shim emits a one-time ``DeprecationWarning``.
        Built-in policies override this with allocation-free bit arithmetic;
        custom policies should do the same for speed.  Overrides must consume
        the RNG exactly as their ``select_piece`` counterpart does, otherwise
        the two backends lose trajectory equivalence.
        """
        global _MASK_SHIM_WARNED
        if not _MASK_SHIM_WARNED:
            _MASK_SHIM_WARNED = True
            warnings.warn(
                f"policy {type(self).__name__!r} does not override "
                "select_piece_mask; the legacy shim allocates two PieceSet "
                "objects per contact on the array kernel — override the mask "
                "primitive for speed (see the repro.swarm.policies module "
                "docstring)",
                DeprecationWarning,
                stacklevel=2,
            )
        return self.select_piece(
            PieceSet.from_mask(downloader_mask, view.num_pieces),
            PieceSet.from_mask(uploader_mask, view.num_pieces),
            view,
            rng,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class _MaskNativePolicy(PieceSelectionPolicy):
    """Base for built-ins: ``select_piece`` routes through the mask primitive.

    Every built-in checks usefulness before touching the RNG, so the batch
    stage may skip them wholesale on useless contacts.
    """

    rng_free_when_useless = True

    def select_piece(
        self,
        downloader_pieces: PieceSet,
        uploader_pieces: PieceSet,
        view: SwarmView,
        rng: np.random.Generator,
    ) -> Optional[int]:
        return self.select_piece_mask(
            downloader_pieces.mask, uploader_pieces.mask, view, rng
        )


def _useful_pieces(downloader_pieces: PieceSet, uploader_pieces: PieceSet) -> List[int]:
    return list(downloader_pieces.useful_from(uploader_pieces))


class RandomUsefulSelection(_MaskNativePolicy):
    """Uniformly random useful piece (the paper's baseline policy)."""

    name = "random-useful"

    def select_piece_mask(
        self,
        downloader_mask: int,
        uploader_mask: int,
        view: SwarmView,
        rng: np.random.Generator,
    ) -> Optional[int]:
        useful = uploader_mask & ~downloader_mask
        if not useful:
            return None
        return _nth_set_bit(useful, int(rng.integers(useful.bit_count())))


class RarestFirstSelection(_MaskNativePolicy):
    """Transfer the useful piece with the fewest copies in the population."""

    name = "rarest-first"

    def select_piece_mask(
        self,
        downloader_mask: int,
        uploader_mask: int,
        view: SwarmView,
        rng: np.random.Generator,
    ) -> Optional[int]:
        useful = uploader_mask & ~downloader_mask
        if not useful:
            return None
        pieces = _mask_bits(useful)
        counts = [view.census.count(piece) for piece in pieces]
        rarest = min(counts)
        candidates = [piece for piece, count in zip(pieces, counts) if count == rarest]
        return int(candidates[rng.integers(len(candidates))])


class MostCommonFirstSelection(_MaskNativePolicy):
    """Transfer the useful piece with the *most* copies (worst-case diversity)."""

    name = "most-common-first"

    def select_piece_mask(
        self,
        downloader_mask: int,
        uploader_mask: int,
        view: SwarmView,
        rng: np.random.Generator,
    ) -> Optional[int]:
        useful = uploader_mask & ~downloader_mask
        if not useful:
            return None
        pieces = _mask_bits(useful)
        counts = [view.census.count(piece) for piece in pieces]
        most = max(counts)
        candidates = [piece for piece, count in zip(pieces, counts) if count == most]
        return int(candidates[rng.integers(len(candidates))])


class SequentialSelection(_MaskNativePolicy):
    """Transfer the lowest-numbered useful piece (in-order download)."""

    name = "sequential"

    def select_piece_mask(
        self,
        downloader_mask: int,
        uploader_mask: int,
        view: SwarmView,
        rng: np.random.Generator,
    ) -> Optional[int]:
        useful = uploader_mask & ~downloader_mask
        if not useful:
            return None
        return (useful & -useful).bit_length()


class CallablePolicy(PieceSelectionPolicy):
    """Adapt an arbitrary function into a policy.

    The function receives the downloader's pieces, the uploader's pieces, the
    swarm view and an RNG, and must return a needed piece (or raise).  A
    usefulness check wraps the result so that a buggy function cannot violate
    the Theorem-14 constraint silently.  Census-aware callables should read
    piece frequencies through ``view.census.count(k)`` (the deprecated
    ``view.piece_counts[k]`` mapping still works but warns)::

        def prefer_rare_evens(downloader, uploader, view, rng):
            useful = sorted(downloader.useful_from(uploader))
            evens = [k for k in useful if k % 2 == 0] or useful
            return min(evens, key=lambda k: view.census.count(k))

        policy = CallablePolicy(prefer_rare_evens, name="rare-evens")

    On the array kernel the inherited :meth:`select_piece_mask` shim converts
    the masks back into :class:`PieceSet` objects before calling the wrapped
    function, so existing callables keep working unmodified (with the shim's
    one-time ``DeprecationWarning`` and per-contact allocation cost).
    """

    #: The usefulness pre-check below returns before the wrapped function
    #: (and therefore the RNG) is ever reached on a useless contact.
    rng_free_when_useless = True

    def __init__(
        self,
        func: Callable[[PieceSet, PieceSet, SwarmView, np.random.Generator], int],
        name: str = "custom",
    ):
        self._func = func
        self.name = name

    def select_piece(
        self,
        downloader_pieces: PieceSet,
        uploader_pieces: PieceSet,
        view: SwarmView,
        rng: np.random.Generator,
    ) -> Optional[int]:
        useful = _useful_pieces(downloader_pieces, uploader_pieces)
        if not useful:
            return None
        piece = int(self._func(downloader_pieces, uploader_pieces, view, rng))
        if piece not in useful:
            raise ValueError(
                f"policy {self.name!r} selected piece {piece}, which is not useful "
                f"(useful pieces: {useful})"
            )
        return piece


_POLICY_REGISTRY: Dict[str, Callable[[], PieceSelectionPolicy]] = {
    "random-useful": RandomUsefulSelection,
    "rarest-first": RarestFirstSelection,
    "most-common-first": MostCommonFirstSelection,
    "sequential": SequentialSelection,
}


def make_policy(name: str) -> PieceSelectionPolicy:
    """Construct a registered policy by name."""
    try:
        factory = _POLICY_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown policy {name!r}; known policies: {sorted(_POLICY_REGISTRY)}"
        ) from exc
    return factory()


def registered_policies() -> List[str]:
    """Names of all built-in piece-selection policies."""
    return sorted(_POLICY_REGISTRY)


__all__ = [
    "CensusSource",
    "OracleCensus",
    "SwarmView",
    "PieceSelectionPolicy",
    "RandomUsefulSelection",
    "RarestFirstSelection",
    "MostCommonFirstSelection",
    "SequentialSelection",
    "CallablePolicy",
    "make_policy",
    "registered_policies",
]
