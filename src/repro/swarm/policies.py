"""Piece-selection policies (Theorem 14 / Section VIII-A).

A policy decides which piece an uploader transfers to a contacted peer.  The
only restriction Theorem 14 places on a policy is the *usefulness constraint*:
if the uploader holds any piece the downloader needs, a needed piece must be
transferred.  The stability region is then the same as for random useful
selection.

Implemented policies:

* :class:`RandomUsefulSelection` — the paper's baseline: a uniformly random
  piece among those the downloader needs;
* :class:`RarestFirstSelection` — BitTorrent-style: the needed piece with the
  fewest copies in the current population (ties broken uniformly);
* :class:`MostCommonFirstSelection` — adversarial counterpart of rarest-first,
  used to show insensitivity from the other side;
* :class:`SequentialSelection` — the lowest-numbered needed piece (in-order
  streaming-style download);
* :class:`CallablePolicy` — wraps an arbitrary ``h(A, B, x)``-style function.

Each policy receives a :class:`SwarmView` giving read-only access to the piece
census of the current population so that global policies (rarest first) can be
expressed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.types import PieceSet


@dataclass(frozen=True)
class SwarmView:
    """Read-only snapshot handed to piece-selection policies.

    Attributes
    ----------
    num_pieces:
        Number of pieces ``K``.
    piece_counts:
        ``piece_counts[k]`` is the number of peers currently holding piece
        ``k`` (1-based dict).
    total_peers:
        Current population size.
    time:
        Current simulation time.
    """

    num_pieces: int
    piece_counts: Dict[int, int]
    total_peers: int
    time: float


class PieceSelectionPolicy(abc.ABC):
    """Interface for piece-selection policies."""

    name = "abstract"

    @abc.abstractmethod
    def select_piece(
        self,
        downloader_pieces: PieceSet,
        uploader_pieces: PieceSet,
        view: SwarmView,
        rng: np.random.Generator,
    ) -> Optional[int]:
        """Choose the piece to transfer, or None when no useful piece exists.

        Implementations must satisfy the usefulness constraint: whenever the
        uploader holds a piece the downloader needs, a needed piece is
        returned.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _useful_pieces(downloader_pieces: PieceSet, uploader_pieces: PieceSet) -> List[int]:
    return list(downloader_pieces.useful_from(uploader_pieces))


class RandomUsefulSelection(PieceSelectionPolicy):
    """Uniformly random useful piece (the paper's baseline policy)."""

    name = "random-useful"

    def select_piece(
        self,
        downloader_pieces: PieceSet,
        uploader_pieces: PieceSet,
        view: SwarmView,
        rng: np.random.Generator,
    ) -> Optional[int]:
        useful = _useful_pieces(downloader_pieces, uploader_pieces)
        if not useful:
            return None
        return int(useful[rng.integers(len(useful))])


class RarestFirstSelection(PieceSelectionPolicy):
    """Transfer the useful piece with the fewest copies in the population."""

    name = "rarest-first"

    def select_piece(
        self,
        downloader_pieces: PieceSet,
        uploader_pieces: PieceSet,
        view: SwarmView,
        rng: np.random.Generator,
    ) -> Optional[int]:
        useful = _useful_pieces(downloader_pieces, uploader_pieces)
        if not useful:
            return None
        counts = [view.piece_counts.get(piece, 0) for piece in useful]
        rarest = min(counts)
        candidates = [piece for piece, count in zip(useful, counts) if count == rarest]
        return int(candidates[rng.integers(len(candidates))])


class MostCommonFirstSelection(PieceSelectionPolicy):
    """Transfer the useful piece with the *most* copies (worst-case diversity)."""

    name = "most-common-first"

    def select_piece(
        self,
        downloader_pieces: PieceSet,
        uploader_pieces: PieceSet,
        view: SwarmView,
        rng: np.random.Generator,
    ) -> Optional[int]:
        useful = _useful_pieces(downloader_pieces, uploader_pieces)
        if not useful:
            return None
        counts = [view.piece_counts.get(piece, 0) for piece in useful]
        most = max(counts)
        candidates = [piece for piece, count in zip(useful, counts) if count == most]
        return int(candidates[rng.integers(len(candidates))])


class SequentialSelection(PieceSelectionPolicy):
    """Transfer the lowest-numbered useful piece (in-order download)."""

    name = "sequential"

    def select_piece(
        self,
        downloader_pieces: PieceSet,
        uploader_pieces: PieceSet,
        view: SwarmView,
        rng: np.random.Generator,
    ) -> Optional[int]:
        useful = _useful_pieces(downloader_pieces, uploader_pieces)
        if not useful:
            return None
        return int(min(useful))


class CallablePolicy(PieceSelectionPolicy):
    """Adapt an arbitrary function into a policy.

    The function receives the downloader's pieces, the uploader's pieces, the
    swarm view and an RNG, and must return a needed piece (or raise).  A
    usefulness check wraps the result so that a buggy function cannot violate
    the Theorem-14 constraint silently.
    """

    def __init__(
        self,
        func: Callable[[PieceSet, PieceSet, SwarmView, np.random.Generator], int],
        name: str = "custom",
    ):
        self._func = func
        self.name = name

    def select_piece(
        self,
        downloader_pieces: PieceSet,
        uploader_pieces: PieceSet,
        view: SwarmView,
        rng: np.random.Generator,
    ) -> Optional[int]:
        useful = _useful_pieces(downloader_pieces, uploader_pieces)
        if not useful:
            return None
        piece = int(self._func(downloader_pieces, uploader_pieces, view, rng))
        if piece not in useful:
            raise ValueError(
                f"policy {self.name!r} selected piece {piece}, which is not useful "
                f"(useful pieces: {useful})"
            )
        return piece


_POLICY_REGISTRY: Dict[str, Callable[[], PieceSelectionPolicy]] = {
    "random-useful": RandomUsefulSelection,
    "rarest-first": RarestFirstSelection,
    "most-common-first": MostCommonFirstSelection,
    "sequential": SequentialSelection,
}


def make_policy(name: str) -> PieceSelectionPolicy:
    """Construct a registered policy by name."""
    try:
        factory = _POLICY_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown policy {name!r}; known policies: {sorted(_POLICY_REGISTRY)}"
        ) from exc
    return factory()


def registered_policies() -> List[str]:
    """Names of all built-in piece-selection policies."""
    return sorted(_POLICY_REGISTRY)


__all__ = [
    "SwarmView",
    "PieceSelectionPolicy",
    "RandomUsefulSelection",
    "RarestFirstSelection",
    "MostCommonFirstSelection",
    "SequentialSelection",
    "CallablePolicy",
    "make_policy",
    "registered_policies",
]
