"""Peer-level discrete-event simulator of the Zhu--Hajek swarm.

The simulator follows the model of Section III exactly:

* type-``C`` peers arrive as independent Poisson processes with rates
  ``λ_C``;
* the fixed seed contacts a uniformly chosen peer at the ticks of a rate
  ``U_s`` Poisson clock and uploads one useful piece chosen by the
  piece-selection policy (random useful by default);
* each peer contacts a uniformly chosen peer (possibly itself, in which case
  nothing useful can be transferred — matching the ``x_C/n`` normalisation of
  Eq. (1)) at the ticks of its own rate-``µ`` clock;
* a peer that completes the file stays as a peer seed for an Exp(γ) time
  (or departs immediately when ``γ = ∞``).

Because all peer clocks share the same rate, the simulation samples the
*aggregate* next event (arrival / seed tick / some peer's tick / some seed's
departure) instead of maintaining one timer per peer, which keeps a step at
O(population) worst case and usually O(1).

The optional ``retry_speedup`` factor implements the Section VIII-C extension:
a peer whose contact found no useful piece runs its clock faster by the given
factor until its next tick.

This module holds the object-per-peer *reference* backend.  The
structure-of-arrays fast backend lives in :mod:`repro.swarm.kernel`; both are
trajectory-equivalent under a shared seed and are selected via
:func:`make_simulator` / ``run_swarm(..., backend="object" | "array")``.

Every stochastic decision of either backend is taken from the shared blocked
:class:`~repro.swarm.drawbuf.DrawBuffer` (one uniform per decision,
inverse-transform exponentials), so the RNG-consumption contract is defined
entirely by *which* decisions happen in which order — and is invariant under
the buffer's block size.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from types import MappingProxyType
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.parameters import SystemParameters
from ..core.scenario import PeerClass, RateSchedule, ScenarioSpec
from ..core.state import SystemState
from ..core.types import PieceSet
from ..simulation.rng import SeedLike, make_rng
from .drawbuf import DrawBuffer
from .gossip import CensusSpec, GossipCensus, GossipState, build_gossip
from .groups import GroupSnapshot
from .metrics import SwarmMetrics
from .peer import Peer
from .policies import (
    CensusSource,
    OracleCensus,
    PieceSelectionPolicy,
    RandomUsefulSelection,
    SwarmView,
)
from .topology import OverlayState, TopologySpec, build_overlay


@dataclass
class SwarmResult:
    """Outcome of one swarm simulation run (or run segment).

    ``suspended`` is True when the run stopped at ``suspend_after_events``
    and can be continued bit-identically via ``run(..., resume=True)``
    (possibly on a fresh simulator after ``capture_state`` /
    ``restore_state``).

    ``events_executed`` counts the events *dispatched* so far in the current
    run, cumulatively across resumed segments.  Under a time-varying
    :class:`~repro.core.scenario.RateSchedule` the loop runs the scheduled
    processes at their maximum rate and thins candidates back down, and a
    candidate **rejected by thinning still counts** as one dispatched event
    (it consumed draws and advanced the clock); the number of such
    rejections is ``metrics.thinned_events``, so the accepted
    (post-thinning) event count is ``events_executed - thinned_events``.
    Without schedules the two notions coincide.
    """

    metrics: SwarmMetrics
    final_time: float
    final_population: int
    final_state: SystemState
    horizon_reached: bool
    suspended: bool = False
    events_executed: int = 0


class _SwarmEventLoop:
    """Shared event-loop driver of the two trajectory-equivalent backends.

    Both :class:`SwarmSimulator` and
    :class:`~repro.swarm.kernel.ArraySwarmKernel` inherit the aggregate-rate
    event loop from here, so the RNG-consumption contract (which draws happen,
    in which order, with which bounds) lives in exactly one place.  All draws
    come from ``self.draws`` — the blocked
    :class:`~repro.swarm.drawbuf.DrawBuffer` over ``self.rng`` — at exactly
    one uniform per decision, which is what lets the array kernel resolve
    runs of events against the pending block with vectorized ops (see
    :meth:`_batch_stage`) without changing any trajectory.  Subclasses
    provide the state representation and the four event handlers plus:

    * ``population`` / ``num_seeds`` properties,
    * ``_total_peer_tick_rate()`` — maintained incrementally,
    * ``_record_sample(time)`` — metrics recording at grid points,
    * ``current_state()`` — the final :class:`SystemState` aggregation,
    * ``_handle_arrival`` / ``_handle_seed_tick`` / ``_handle_peer_tick`` /
      ``_handle_seed_departure``,
    * ``backend_name`` plus ``_capture_backend_state()`` /
      ``_restore_backend_state(state)`` — the snapshot hooks behind the
      shared :meth:`capture_state` / :meth:`restore_state` API.

    Snapshot / resume contract
    --------------------------
    :meth:`run` keeps its loop state (sample grid position, cumulative event
    count) on the instance, so a run can be *suspended* after a given number
    of events (``suspend_after_events=``) and later continued with
    ``run(..., resume=True)``; the continuation consumes the RNG exactly as
    an uninterrupted run would, so the full trajectory is bit-identical.
    :meth:`capture_state` serialises everything mutable — RNG state, clock,
    metrics, population, scenario bookkeeping, run-loop position — into a
    picklable dict, and :meth:`restore_state` loads such a snapshot into a
    freshly constructed simulator with the *same constructor arguments*
    (params, policy, scenario, backend).  Schedules are stateless tables, so
    the scenario "position" is fully determined by the restored clock.

    Scenario support also lives here (see :mod:`repro.core.scenario`):

    * time-varying arrival / fixed-seed rate schedules are realised by
      *Poisson thinning* — the loop runs the affected process at the
      schedule's maximum rate and accepts a candidate event with probability
      ``factor(t) / max_factor``, consuming exactly one extra uniform draw
      per candidate, in the shared driver, so both backends stay
      bit-identical per seed;
    * heterogeneous peer classes are sampled through the shared
      ``_draw_*`` helpers below, which only require the backends to maintain
      per-class member / seed / sped-up lists (``_class_members``,
      ``_class_seeds``, ``_class_sped``) holding backend-native handles
      (peer ids for the object simulator, row indices for the array kernel)
      in the same arrival order.

    A ``scenario=None`` (or a trivial scenario) leaves every legacy code
    path — and therefore every legacy-seed trajectory — untouched.
    """

    params: SystemParameters
    rng: "np.random.Generator"
    metrics: SwarmMetrics
    _time: float
    _arrival_total: float
    scenario: Optional[ScenarioSpec]
    _classes: Optional[Tuple[PeerClass, ...]]

    #: Overridden by each backend; recorded in snapshots so a state captured
    #: on one backend cannot be restored into the other by mistake.
    backend_name = "abstract"

    #: Flipped on by backends that implement :meth:`_batch_stage`.
    _batch_enabled = False

    # -- scenario plumbing -----------------------------------------------------

    def _init_driver(
        self,
        scenario: Optional[ScenarioSpec],
        draw_block_size: Optional[int] = None,
    ) -> None:
        """Initialise the shared driver: scenario digestion + run-loop state."""
        #: The blocked draw buffer every stochastic decision comes from (see
        #: :mod:`repro.swarm.drawbuf`); both backends consume it identically.
        self.draws = DrawBuffer(self.rng, draw_block_size)
        self._init_scenario(scenario)
        #: Slot-indexed contact overlay shared (by construction, not by
        #: reference) between backends; ``None`` keeps uniform contacts.
        self._overlay: Optional[OverlayState] = build_overlay(self._topology)
        #: Slot-indexed flow-updating census state (same slot discipline as
        #: the overlay); ``None`` keeps the exact oracle census.
        self._gossip: Optional[GossipState] = build_gossip(
            self._census_spec, self.params.num_pieces
        )
        self._run_active = False
        self._run_horizon: Optional[float] = None
        self._run_interval: Optional[float] = None
        self._next_sample = 0.0
        self._events = 0

    def _init_scenario(self, scenario: Optional[ScenarioSpec]) -> None:
        """Digest a :class:`ScenarioSpec` into the event loop's fast fields.

        Trivial pieces (constant-1 schedules, a single class equal to the
        base parameters) are normalised away so that the homogeneous hot
        path keeps its exact legacy behaviour and RNG consumption.
        """
        self.scenario = scenario
        self._classes = None
        self._arrival_schedule: Optional[RateSchedule] = None
        self._seed_schedule: Optional[RateSchedule] = None
        self._arrival_bound = 1.0
        self._seed_bound = 1.0
        self._thin_arrivals = False
        self._thin_seed = False
        self._class_cumprobs: Optional[np.ndarray] = None
        self._class_types: Optional[Tuple[Tuple[PieceSet, ...], ...]] = None
        self._class_type_cumprobs: Optional[List[np.ndarray]] = None
        self._class_members: Optional[List[List[int]]] = None
        self._class_seeds: Optional[List[List[int]]] = None
        self._class_sped: Optional[List[List[int]]] = None
        self._topology: Optional[TopologySpec] = None
        self._census_spec: Optional[CensusSpec] = None
        self._cull_time: Optional[float] = None
        self._cull_fraction = 0.0
        self._cull_done = False
        if scenario is None:
            return
        if scenario.params != self.params:
            raise ValueError(
                "scenario.params does not match the simulator's params; "
                "construct the simulator with scenario.params (or use "
                "run_scenario)"
            )
        arrival_schedule = scenario.arrival_schedule
        if not arrival_schedule.is_trivial:
            self._arrival_schedule = arrival_schedule
            self._arrival_bound = arrival_schedule.max_value
            self._thin_arrivals = not arrival_schedule.is_constant
        seed_schedule = scenario.seed_schedule
        if not seed_schedule.is_trivial:
            self._seed_schedule = seed_schedule
            self._seed_bound = seed_schedule.max_value
            self._thin_seed = not seed_schedule.is_constant
        topology = getattr(scenario, "topology", None)
        if topology is not None and not topology.is_complete:
            self._topology = topology
        census = getattr(scenario, "census", None)
        if census is not None and not census.is_oracle:
            self._census_spec = census
        cull_time = getattr(scenario, "cull_time", None)
        if cull_time is not None:
            self._cull_time = float(cull_time)
            self._cull_fraction = float(scenario.cull_fraction)
        if scenario.is_heterogeneous:
            self._classes = scenario.effective_classes()
            # Cumulative probabilities: one uniform draw + searchsorted per
            # arrival instead of rng.choice's per-call validation overhead.
            self._class_cumprobs = np.cumsum(
                np.asarray(scenario.class_fractions(), dtype=float)
            )
            type_tables = scenario.class_arrival_types()
            self._class_types = tuple(
                tuple(type_c for type_c, _prob in table) for table in type_tables
            )
            self._class_type_cumprobs = [
                np.cumsum([prob for _type_c, prob in table])
                for table in type_tables
            ]
            num_classes = len(self._classes)
            self._class_members = [[] for _ in range(num_classes)]
            self._class_seeds = [[] for _ in range(num_classes)]
            self._class_sped = [[] for _ in range(num_classes)]

    def _class_departs_immediately(self, class_index: int) -> bool:
        """Whether a completing peer of the given class leaves instantly."""
        if self._classes is None:
            return self.params.immediate_departure
        return self._classes[class_index].immediate_departure

    def _thin_accept(self, schedule: RateSchedule, bound: float) -> bool:
        """Poisson-thinning acceptance for one candidate scheduled event.

        The candidate process runs at ``bound`` (the schedule's cached
        maximum); accepting with probability ``value_at(t) / bound``
        recovers the inhomogeneous process.  The single uniform draw lives
        here in the shared driver so both backends consume the RNG
        identically.
        """
        accept = self.draws.uniform(0.0, bound) < schedule.value_at(self._time)
        if not accept:
            self.metrics.thinned_events += 1
        return accept

    # -- gossip census (shared by both backends) -------------------------------

    def _make_census(self) -> CensusSource:
        """The census source policies read through ``view.census``."""
        if self._gossip is not None:
            return GossipCensus(self._gossip)
        return OracleCensus(MappingProxyType(self._piece_counts))

    def _gossip_tick(self, ticker_slot: int, target_slot: int) -> None:
        """The one gossip decision of a peer contact tick.

        Called by both backends' ``_handle_peer_tick`` immediately after
        the ticker/target draws, *before* the transfer.  Consumes exactly
        one uniform on every call — self-contacts and zero-degree overlay
        ticks included — so the per-event draw count stays a pure function
        of the event type; the exchange itself fires only when the uniform
        clears the exchange rate and the contact has a valid distinct
        partner.  Seed ticks never gossip (the fixed seed has no slot).
        """
        gossip = self._gossip
        fire = self.draws.next() < gossip.exchange_rate
        if fire and target_slot >= 0 and target_slot != ticker_slot:
            gossip.exchange(ticker_slot, target_slot, self._time)

    # -- heterogeneous-class sampling (shared by both backends) ----------------

    def _draw_arrival_class_type(self) -> Tuple[int, int]:
        """Sample (class index, arrival-type index) for one arriving peer.

        Cumulative-probability tables keep this at one uniform draw (and
        one ``searchsorted``) per non-degenerate level, with no per-event
        probability-array validation.
        """
        if len(self._classes) == 1:
            class_index = 0
        else:
            class_index = self.draws.cum_choice(self._class_cumprobs)
        types = self._class_types[class_index]
        if len(types) == 1:
            type_index = 0
        else:
            type_index = self.draws.cum_choice(
                self._class_type_cumprobs[class_index]
            )
        return class_index, type_index

    def _draw_hetero_ticker(self) -> int:
        """Backend-native handle of the peer whose clock ticks.

        One uniform draw over the cumulative per-class tick weight (base
        weight ``µ_c`` per member plus ``(retry_speedup - 1) µ_c`` per
        sped-up member); the handle is read out of the per-class lists by
        index arithmetic, with no per-event weight-array rebuild.
        """
        extra = self.retry_speedup - 1.0
        segments: List[Tuple[float, List[int]]] = []
        for cls, members in zip(self._classes, self._class_members):
            if members:
                segments.append((cls.contact_rate, members))
        if extra > 0.0:
            for cls, sped in zip(self._classes, self._class_sped):
                if sped:
                    segments.append((extra * cls.contact_rate, sped))
        return self._pick_from_segments(segments)

    def _draw_hetero_departing_seed(self) -> Optional[int]:
        """Backend-native handle of the departing peer seed (γ_c-weighted)."""
        segments = [
            (cls.seed_departure_rate, seeds)
            for cls, seeds in zip(self._classes, self._class_seeds)
            if seeds and not cls.immediate_departure
        ]
        if not segments:
            return None
        return self._pick_from_segments(segments)

    def _pick_from_segments(self, segments: List[Tuple[float, List[int]]]) -> int:
        """One uniform draw over concatenated (unit weight, handles) segments."""
        total = sum(unit * len(handles) for unit, handles in segments)
        threshold = self.draws.uniform(0.0, total)
        acc = 0.0
        for unit, handles in segments[:-1]:
            width = unit * len(handles)
            if threshold < acc + width:
                index = min(int((threshold - acc) / unit), len(handles) - 1)
                return handles[index]
            acc += width
        unit, handles = segments[-1]
        index = min(int((threshold - acc) / unit), len(handles) - 1)
        return handles[index]

    def _hetero_tick_rate(self) -> float:
        """Σ_c µ_c (n_c + (retry_speedup − 1) sped_c) over the peer classes."""
        extra = self.retry_speedup - 1.0
        total = 0.0
        for index, cls in enumerate(self._classes):
            weight = float(len(self._class_members[index]))
            if extra > 0.0:
                weight += extra * len(self._class_sped[index])
            total += cls.contact_rate * weight
        return total

    def _total_seed_departure_rate(self) -> float:
        """Aggregate peer-seed departure rate (γ-weighted in hetero mode)."""
        if self._classes is None:
            if self.params.immediate_departure:
                return 0.0
            return self.params.seed_departure_rate * self.num_seeds
        total = 0.0
        for cls, seeds in zip(self._classes, self._class_seeds):
            if seeds and not cls.immediate_departure:
                total += cls.seed_departure_rate * len(seeds)
        return total

    # -- aggregate-rate event loop ---------------------------------------------

    def _event_rates(self) -> Tuple[float, float, float, float]:
        """Rates of (arrival, fixed-seed tick, peer tick, seed departure).

        Scheduled processes contribute their *thinning-bound* rate
        (base rate × maximum schedule factor); `_apply_event` thins the
        candidates back down to the instantaneous rate.
        """
        arrival = self._arrival_total * self._arrival_bound
        seed_tick = (
            self.params.seed_rate * self._seed_bound if self.population > 0 else 0.0
        )
        peer_tick = self._total_peer_tick_rate()
        seed_departure = self._total_seed_departure_rate()
        return arrival, seed_tick, peer_tick, seed_departure

    # -- typed event application (cohort-apply primitives) ---------------------
    #
    # One method per selector branch of `_apply_event`, thinning included.
    # The stacked mega-kernel's cohort dispatcher classifies each lane's
    # pending selector *without* consuming it and then applies the event
    # through the matching primitive directly, so the branch bodies must
    # stay draw-for-draw identical to the scalar dispatch below.

    def _apply_arrival_event(self) -> None:
        """One (candidate) arrival: thinning acceptance, then the handler."""
        if self._thin_arrivals and not self._thin_accept(
            self._arrival_schedule, self._arrival_bound
        ):
            return
        self._handle_arrival()

    def _apply_seed_tick_event(self) -> None:
        """One (candidate) fixed-seed tick: thinning, then the handler."""
        if self._thin_seed and not self._thin_accept(
            self._seed_schedule, self._seed_bound
        ):
            return
        self._handle_seed_tick()

    def _apply_peer_tick_event(self) -> None:
        """One peer tick (draws its own ticker / target rows)."""
        self._handle_peer_tick()

    def _apply_departure_event(self) -> None:
        """One peer-seed departure."""
        self._handle_seed_departure()

    def _apply_event(self, rates: Tuple[float, float, float, float]) -> None:
        """Apply one event drawn proportionally to the given rates."""
        total = sum(rates)
        threshold = self.draws.uniform(0.0, total)
        if threshold <= rates[0]:
            self._apply_arrival_event()
        elif threshold <= rates[0] + rates[1]:
            self._apply_seed_tick_event()
        elif threshold <= rates[0] + rates[1] + rates[2]:
            self._apply_peer_tick_event()
        else:
            self._apply_departure_event()

    # -- flash-exit cull (scenario ``cull_time`` / ``cull_fraction``) ----------

    def _execute_cull(self) -> None:
        """Remove each incomplete peer independently with ``cull_fraction``.

        One uniform per incomplete peer in slot order, then removals in
        *descending* slot order (stable under the backends' swap-remove
        discipline); tracker-overlay rewiring draws happen inside each
        removal.  Runs in the shared driver so both backends consume the RNG
        identically.
        """
        fraction = self._cull_fraction
        draws = self.draws
        marked: List[int] = []
        for slot in range(self.population):
            if self._slot_is_complete(slot):
                continue
            if draws.next() < fraction:
                marked.append(slot)
        for slot in reversed(marked):
            self._remove_slot(slot)
        self.metrics.culled_peers += len(marked)
        self._cull_done = True

    def _slot_is_complete(self, slot: int) -> bool:
        """Whether the peer at population slot ``slot`` holds every piece."""
        raise NotImplementedError

    def _remove_slot(self, slot: int) -> None:
        """Remove the peer at population slot ``slot`` (departure semantics)."""
        raise NotImplementedError

    def step(self) -> bool:
        """Execute one event; returns False when no event can occur."""
        rates = self._event_rates()
        total = sum(rates)
        if total <= 0:
            return False
        next_time = self._time + self.draws.exponential(1.0 / total)
        if (
            self._cull_time is not None
            and not self._cull_done
            and next_time >= self._cull_time
        ):
            # The flash-exit cull fires as a deterministic interrupt; the
            # exponential is discarded (memoryless, so statistically exact)
            # and the selector has not been drawn yet.
            self._time = self._cull_time
            self._execute_cull()
            return True
        self._time = next_time
        self._apply_event(rates)
        return True

    def run(
        self,
        horizon: float,
        initial_state: Optional[SystemState] = None,
        sample_interval: Optional[float] = None,
        max_events: Optional[int] = None,
        max_population: Optional[int] = None,
        resume: bool = False,
        suspend_after_events: Optional[int] = None,
    ) -> "SwarmResult":
        """Simulate until ``horizon`` (simulation time units).

        ``max_events`` and ``max_population`` provide safety caps for runs in
        the unstable regime, where the population grows linearly without
        bound; hitting either cap ends the run early with
        ``horizon_reached=False``.

        ``suspend_after_events`` *suspends* the run once the cumulative event
        count reaches the bound: unlike the ``max_events`` cap, the trailing
        sample grid is not flushed and the run stays continuable —
        ``run(horizon, resume=True)`` (on this simulator, or on a fresh one
        after ``capture_state`` / ``restore_state``) picks up exactly where
        the suspension left off, yielding the same trajectory an
        uninterrupted run would have produced.  Event-count bounds are
        cumulative across resumed segments.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if resume:
            if not self._run_active:
                raise RuntimeError(
                    "resume=True requires a suspended run (start one with "
                    "run(..., suspend_after_events=...) or restore_state)"
                )
            if initial_state is not None:
                raise ValueError("initial_state cannot be combined with resume=True")
            if horizon != self._run_horizon:
                raise ValueError(
                    f"resumed horizon {horizon} does not match the suspended "
                    f"run's horizon {self._run_horizon}"
                )
            if sample_interval is not None and sample_interval != self._run_interval:
                raise ValueError(
                    f"resumed sample_interval {sample_interval} does not match "
                    f"the suspended run's interval {self._run_interval}"
                )
            interval = self._run_interval
        else:
            if initial_state is not None:
                self.seed_population(initial_state)
            interval = (
                sample_interval if sample_interval is not None else horizon / 200.0
            )
            self._run_active = True
            self._run_horizon = horizon
            self._run_interval = interval
            self._next_sample = 0.0
            self._events = 0
        next_sample = self._next_sample
        events = self._events
        horizon_reached = True
        suspended = False
        batch_enabled = self._batch_enabled
        while True:
            if suspend_after_events is not None and events >= suspend_after_events:
                horizon_reached = False
                suspended = True
                break
            if max_events is not None and events >= max_events:
                horizon_reached = False
                break
            if max_population is not None and self.population >= max_population:
                horizon_reached = False
                break
            rates = self._event_rates()
            total = sum(rates)
            if total <= 0:
                # No events possible (no arrivals configured and system empty).
                self._time = horizon
                break
            cull_time = self._cull_time
            cull_pending = cull_time is not None and not self._cull_done
            if batch_enabled and not cull_pending:
                # Vectorized fast path: consume a run of state-neutral events
                # (wasted peer ticks) in one go.  The stage consumes exactly
                # the draws the scalar path would and stops short of any
                # event that changes rates, crosses the horizon, or exceeds
                # the event caps, so trajectories stay bit-identical.
                limit = None
                if suspend_after_events is not None:
                    limit = suspend_after_events - events
                if max_events is not None:
                    remaining = max_events - events
                    limit = remaining if limit is None else min(limit, remaining)
                applied, next_sample = self._batch_stage(
                    rates, total, horizon, interval, next_sample, limit
                )
                if applied:
                    events += applied
                    continue
            next_event_time = self._time + self.draws.exponential(1.0 / total)
            if (
                cull_pending
                and cull_time <= horizon
                and next_event_time >= cull_time
            ):
                # Flash-exit interrupt: the cull fires *instead of* the drawn
                # event.  The consumed exponential is discarded (memoryless,
                # so statistically exact) before the selector draw, and both
                # backends take this exact path, preserving bit-identity.
                while next_sample <= horizon and next_sample < cull_time:
                    self._record_sample(next_sample)
                    next_sample += interval
                self._time = cull_time
                self._execute_cull()
                events += 1
                continue
            # The current population holds until the next event: record every
            # grid point in between before applying it (time-correct sampling).
            while next_sample <= horizon and next_sample < next_event_time:
                self._record_sample(next_sample)
                next_sample += interval
            if next_event_time > horizon:
                self._time = horizon
                break
            self._time = next_event_time
            self._apply_event(rates)
            events += 1
        if not suspended:
            next_sample = self._flush_samples(next_sample, horizon, interval)
        self._next_sample = next_sample
        self._events = events
        if not suspended:
            self._run_active = False
        return SwarmResult(
            metrics=self.metrics,
            final_time=self._time,
            final_population=self.population,
            final_state=self.current_state(),
            horizon_reached=horizon_reached,
            suspended=suspended,
            events_executed=events,
        )

    def _flush_samples(
        self, next_sample: float, horizon: float, interval: float
    ) -> float:
        """Record every remaining grid point up to ``horizon``.

        Called once the event loop has ended with the state frozen for the
        rest of the horizon; backends may override with a bulk append (the
        grid times must still be generated by the same repeated addition,
        so the recorded floats are bit-identical to the scalar walk).
        """
        while next_sample <= horizon:
            self._record_sample(next_sample)
            next_sample += interval
        return next_sample

    def _batch_stage(
        self,
        rates: Tuple[float, float, float, float],
        total: float,
        horizon: float,
        interval: float,
        next_sample: float,
        limit: Optional[int],
    ) -> Tuple[int, float]:
        """Vectorized event-batching hook; the base driver has none.

        Backends that can resolve a run of upcoming events with array ops
        (see :meth:`ArraySwarmKernel._batch_stage`) override this and set
        ``_batch_enabled``.  The contract: apply ``k >= 0`` complete events
        that consume exactly the draws the scalar loop would have consumed,
        leave the event rates unchanged throughout, record any crossed
        sample-grid points, and return ``(k, next_sample)``; the first event
        that cannot be proven state-neutral (or that would cross ``horizon``
        or exceed ``limit``) is left for the scalar path.
        """
        return 0, next_sample

    # -- snapshot / restore ------------------------------------------------------

    #: Version tag of the snapshot layout produced by :meth:`capture_state`.
    #: Format 2 added the draw-buffer remainder (``"draws"``); format-1
    #: snapshots (which predate the buffer and whose RNG state is in sync
    #: with the logical stream position) are still restorable.
    SNAPSHOT_FORMAT = 2

    #: Snapshot formats :meth:`restore_state` accepts.
    SUPPORTED_SNAPSHOT_FORMATS = (1, 2)

    def capture_state(self) -> Dict[str, Any]:
        """Serialise the simulator's full mutable state into a picklable dict.

        The snapshot covers the RNG state, the event-loop clock, the metrics
        stream, the run-loop position (sample grid, cumulative event count)
        and the backend's population state, plus the per-class bookkeeping
        lists when a heterogeneous scenario is active.  Restoring it into a
        fresh simulator built with the same constructor arguments (see
        :meth:`restore_state`) continues the trajectory bit-identically.
        """
        snapshot: Dict[str, Any] = {
            "format": self.SNAPSHOT_FORMAT,
            "backend": self.backend_name,
            "num_pieces": self.params.num_pieces,
            "scenario": self.scenario.name if self.scenario is not None else None,
            "time": self._time,
            "rng_state": copy.deepcopy(self.rng.bit_generator.state),
            "draws": self.draws.capture(),
            "metrics": copy.deepcopy(self.metrics),
            "run": {
                "active": self._run_active,
                "horizon": self._run_horizon,
                "interval": self._run_interval,
                "next_sample": self._next_sample,
                "events": self._events,
            },
            "class_lists": None,
            "overlay": (
                self._overlay.capture() if self._overlay is not None else None
            ),
            "gossip": (
                self._gossip.capture() if self._gossip is not None else None
            ),
            "cull_done": self._cull_done,
            "backend_state": self._capture_backend_state(),
        }
        if self._classes is not None:
            snapshot["class_lists"] = copy.deepcopy(
                (self._class_members, self._class_seeds, self._class_sped)
            )
        return snapshot

    def restore_state(self, snapshot: Dict[str, Any]) -> None:
        """Load a :meth:`capture_state` snapshot into this simulator.

        The simulator must have been constructed with the same arguments as
        the one that produced the snapshot (backend, ``num_pieces``,
        scenario); mismatches raise ``ValueError``.  The snapshot itself is
        never mutated, so the same snapshot can be restored repeatedly.
        """
        if snapshot.get("format") not in self.SUPPORTED_SNAPSHOT_FORMATS:
            raise ValueError(
                f"unsupported snapshot format {snapshot.get('format')!r} "
                f"(supported: {self.SUPPORTED_SNAPSHOT_FORMATS})"
            )
        if snapshot["backend"] != self.backend_name:
            raise ValueError(
                f"snapshot was captured on backend {snapshot['backend']!r}, "
                f"cannot restore into {self.backend_name!r}"
            )
        if snapshot["num_pieces"] != self.params.num_pieces:
            raise ValueError(
                f"snapshot has K={snapshot['num_pieces']}, simulator has "
                f"K={self.params.num_pieces}"
            )
        expected_scenario = self.scenario.name if self.scenario is not None else None
        if snapshot["scenario"] != expected_scenario:
            raise ValueError(
                f"snapshot scenario {snapshot['scenario']!r} does not match "
                f"the simulator's scenario {expected_scenario!r}"
            )
        self.rng.bit_generator.state = copy.deepcopy(snapshot["rng_state"])
        # Format-1 snapshots predate the draw buffer: their generator state
        # carries no look-ahead, so an empty buffer restores them exactly.
        self.draws.restore(snapshot.get("draws"))
        self._time = snapshot["time"]
        self.metrics = copy.deepcopy(snapshot["metrics"])
        run = snapshot["run"]
        self._run_active = run["active"]
        self._run_horizon = run["horizon"]
        self._run_interval = run["interval"]
        self._next_sample = run["next_sample"]
        self._events = run["events"]
        class_lists = snapshot["class_lists"]
        if (class_lists is not None) != (self._classes is not None):
            raise ValueError(
                "snapshot heterogeneous-class state does not match the "
                "simulator's scenario configuration"
            )
        if class_lists is not None:
            members, seeds, sped = copy.deepcopy(class_lists)
            if len(members) != len(self._class_members):
                raise ValueError("snapshot class count does not match scenario")
            for target, source in zip(self._class_members, members):
                target[:] = source
            for target, source in zip(self._class_seeds, seeds):
                target[:] = source
            for target, source in zip(self._class_sped, sped):
                target[:] = source
        overlay_state = snapshot.get("overlay")
        if (overlay_state is not None) != (self._overlay is not None):
            raise ValueError(
                "snapshot overlay state does not match the simulator's "
                "topology configuration"
            )
        if overlay_state is not None:
            self._overlay.restore(overlay_state)
        gossip_state = snapshot.get("gossip")
        if (gossip_state is not None) != (self._gossip is not None):
            raise ValueError(
                "snapshot gossip state does not match the simulator's "
                "census configuration"
            )
        if gossip_state is not None:
            self._gossip.restore(gossip_state)
        self._cull_done = bool(snapshot.get("cull_done", False))
        self._restore_backend_state(copy.deepcopy(snapshot["backend_state"]))

    def _capture_backend_state(self) -> Dict[str, Any]:
        raise NotImplementedError

    def _restore_backend_state(self, state: Dict[str, Any]) -> None:
        raise NotImplementedError


class SwarmSimulator(_SwarmEventLoop):
    """Event-driven peer-level simulation of the P2P swarm."""

    backend_name = "object"

    def __init__(
        self,
        params: SystemParameters,
        policy: Optional[PieceSelectionPolicy] = None,
        seed: SeedLike = None,
        rare_piece: int = 1,
        retry_speedup: float = 1.0,
        track_groups: bool = False,
        scenario: Optional[ScenarioSpec] = None,
        draw_block_size: Optional[int] = None,
    ):
        if retry_speedup < 1.0:
            raise ValueError(f"retry_speedup must be >= 1, got {retry_speedup}")
        if not 1 <= rare_piece <= params.num_pieces:
            raise ValueError("rare_piece out of range")
        self.params = params
        self.policy = policy if policy is not None else RandomUsefulSelection()
        self.rng = make_rng(seed)
        self.rare_piece = rare_piece
        self.retry_speedup = retry_speedup
        self.track_groups = track_groups

        self._peers: Dict[int, Peer] = {}
        self._order: List[int] = []  # peer ids, for O(1) uniform sampling
        self._position: Dict[int, int] = {}
        self._seeds: List[int] = []  # ids of peer seeds (only when gamma < inf)
        self._seed_position: Dict[int, int] = {}
        # Sped-up peers (Section VIII-C retry extension), kept as a swap-remove
        # list so the total tick weight and the weighted peer sampling are O(1).
        self._sped_ids: List[int] = []
        self._sped_position: Dict[int, int] = {}
        self._init_driver(scenario, draw_block_size)
        # In heterogeneous mode the seed/sped lists live per class
        # (self._class_seeds / self._class_sped, ids in arrival order) and the
        # position dicts index into the peer's class list; _member_pos indexes
        # the per-class membership lists used for µ_c-weighted tick sampling.
        self._member_pos: Dict[int, int] = {}
        self._piece_counts: Dict[int, int] = {
            k: 0 for k in range(1, params.num_pieces + 1)
        }
        self._next_peer_id = 0
        self._time = 0.0
        self.metrics = SwarmMetrics()
        self._arrival_types = list(params.arrival_rates)
        self._arrival_weights = np.array(
            [params.arrival_rates[t] for t in self._arrival_types], dtype=float
        )
        self._arrival_total = float(self._arrival_weights.sum())
        self._arrival_probs = self._arrival_weights / self._arrival_total
        self._arrival_cumprobs = np.cumsum(self._arrival_probs)
        self._single_arrival_type = (
            self._arrival_types[0] if len(self._arrival_types) == 1 else None
        )
        # One live view shared across policy calls; the oracle census is a
        # read-only proxy of the live count dict (zero-copy, but a mutating
        # policy fails loudly), the scalar fields are refreshed per call.
        self._view = SwarmView(
            num_pieces=params.num_pieces,
            census=self._make_census(),
            total_peers=0,
            time=0.0,
        )

    # -- population management -------------------------------------------------

    @property
    def now(self) -> float:
        return self._time

    @property
    def population(self) -> int:
        return len(self._order)

    @property
    def num_seeds(self) -> int:
        if self._classes is None:
            return len(self._seeds)
        return sum(len(seeds) for seeds in self._class_seeds)

    def peers(self) -> Iterable[Peer]:
        """Iterate over the peers currently in the system."""
        return (self._peers[pid] for pid in self._order)

    def current_state(self) -> SystemState:
        """Aggregate the population into a :class:`SystemState`."""
        counts: Dict[PieceSet, int] = {}
        for peer in self.peers():
            counts[peer.pieces] = counts.get(peer.pieces, 0) + 1
        return SystemState(counts, self.params.num_pieces)

    def one_club_size(self) -> int:
        return sum(1 for peer in self.peers() if peer.is_one_club(self.rare_piece))

    def _add_peer(self, pieces: PieceSet, class_index: int = 0) -> Peer:
        peer = Peer(
            peer_id=self._next_peer_id,
            pieces=pieces,
            arrival_time=self._time,
            arrived_with=pieces,
            class_index=class_index,
        )
        self._next_peer_id += 1
        self._peers[peer.peer_id] = peer
        self._position[peer.peer_id] = len(self._order)
        self._order.append(peer.peer_id)
        if self._classes is not None:
            members = self._class_members[class_index]
            self._member_pos[peer.peer_id] = len(members)
            members.append(peer.peer_id)
        for piece in pieces:
            self._piece_counts[piece] += 1
        if peer.is_seed and not self._class_departs_immediately(class_index):
            self._add_seed(peer.peer_id)
        self.metrics.total_arrivals += 1
        if self._overlay is not None:
            self._overlay.on_arrival(len(self._order) - 1, self.draws)
        if self._gossip is not None:
            self._gossip.on_arrival(len(self._order) - 1, pieces.mask, self._time)
        return peer

    def _remove_peer(self, peer: Peer) -> None:
        pid = peer.peer_id
        if self._overlay is not None:
            # Detach (and, for tracker overlays, rewire) before the order
            # list mutates; the overlay applies the same swap-remove move.
            self._overlay.on_departure(self._position[pid], self.draws)
        if self._gossip is not None:
            # Same swap-remove move on the estimate rows, before the order
            # list mutates.
            self._gossip.on_departure(self._position[pid])
        index = self._position.pop(pid)
        last_id = self._order.pop()
        if last_id != pid:
            self._order[index] = last_id
            self._position[last_id] = index
        if self._classes is not None:
            members = self._class_members[peer.class_index]
            member_index = self._member_pos.pop(pid)
            last_member = members.pop()
            if last_member != pid:
                members[member_index] = last_member
                self._member_pos[last_member] = member_index
        self._discard_sped(pid)
        for piece in peer.pieces:
            self._piece_counts[piece] -= 1
        if pid in self._seed_position:
            self._remove_seed(pid)
        del self._peers[pid]
        peer.depart(self._time)
        self.metrics.record_departure(
            sojourn=peer.sojourn_time(self._time),
            download_time=peer.download_time(),
        )

    def _seed_list_of(self, peer_id: int) -> List[int]:
        if self._classes is None:
            return self._seeds
        return self._class_seeds[self._peers[peer_id].class_index]

    def _sped_list_of(self, peer_id: int) -> List[int]:
        if self._classes is None:
            return self._sped_ids
        return self._class_sped[self._peers[peer_id].class_index]

    def _add_seed(self, peer_id: int) -> None:
        seeds = self._seed_list_of(peer_id)
        self._seed_position[peer_id] = len(seeds)
        seeds.append(peer_id)

    def _remove_seed(self, peer_id: int) -> None:
        seeds = self._seed_list_of(peer_id)
        index = self._seed_position.pop(peer_id)
        last_id = seeds.pop()
        if last_id != peer_id:
            seeds[index] = last_id
            self._seed_position[last_id] = index

    def _add_sped(self, peer_id: int) -> None:
        if peer_id not in self._sped_position:
            sped = self._sped_list_of(peer_id)
            self._sped_position[peer_id] = len(sped)
            sped.append(peer_id)

    def _discard_sped(self, peer_id: int) -> None:
        index = self._sped_position.pop(peer_id, None)
        if index is None:
            return
        sped = self._sped_list_of(peer_id)
        last_id = sped.pop()
        if last_id != peer_id:
            sped[index] = last_id
            self._sped_position[last_id] = index

    def seed_population(self, initial_state: SystemState) -> None:
        """Populate the swarm from a :class:`SystemState` before running."""
        for type_c, count in initial_state.items():
            for _ in range(count):
                self._add_peer(type_c)
        # The pre-seeded peers are not exogenous arrivals.
        self.metrics.total_arrivals -= initial_state.total_peers

    # -- flash-exit cull hooks ---------------------------------------------------

    def _slot_is_complete(self, slot: int) -> bool:
        return self._peers[self._order[slot]].is_seed

    def _remove_slot(self, slot: int) -> None:
        self._remove_peer(self._peers[self._order[slot]])

    # -- overlay views -----------------------------------------------------------

    def peer_neighbors(self, peer_id: int) -> List[int]:
        """The overlay neighbor *peer ids* of a peer (empty without overlay).

        The per-peer neighbor list is a translated view of the shared
        slot-indexed :class:`~repro.swarm.topology.OverlayState`, so it is
        always consistent with what the array kernel's adjacency table holds
        for the same trajectory.
        """
        if self._overlay is None:
            return []
        slot = self._position[peer_id]
        return [self._order[s] for s in self._overlay.neighbors(slot)]

    # -- snapshot hooks ----------------------------------------------------------

    def _capture_backend_state(self) -> Dict[str, object]:
        return copy.deepcopy(
            {
                "peers": self._peers,
                "order": self._order,
                "position": self._position,
                "seeds": self._seeds,
                "seed_position": self._seed_position,
                "sped_ids": self._sped_ids,
                "sped_position": self._sped_position,
                "member_pos": self._member_pos,
                "piece_counts": self._piece_counts,
                "next_peer_id": self._next_peer_id,
            }
        )

    def _restore_backend_state(self, state: Dict[str, object]) -> None:
        self._peers = state["peers"]
        self._order = state["order"]
        self._position = state["position"]
        self._seeds = state["seeds"]
        self._seed_position = state["seed_position"]
        self._sped_ids = state["sped_ids"]
        self._sped_position = state["sped_position"]
        self._member_pos = state["member_pos"]
        # The SwarmView holds a read-only proxy of this exact dict, so the
        # census is updated in place rather than rebound.
        self._piece_counts.clear()
        self._piece_counts.update(state["piece_counts"])
        self._next_peer_id = state["next_peer_id"]

    # -- event mechanics -------------------------------------------------------------

    def _total_peer_tick_rate(self) -> float:
        if self._classes is not None:
            return self._hetero_tick_rate()
        # Maintained incrementally: every peer contributes weight 1 and every
        # sped-up peer an extra (retry_speedup - 1), so no O(n) rebuild.
        weight = self.population + (self.retry_speedup - 1.0) * len(self._sped_ids)
        return weight * self.params.peer_rate

    def _sample_arrival_type(self) -> PieceSet:
        if self._single_arrival_type is not None:
            return self._single_arrival_type
        # One buffered uniform + searchsorted over the cumulative mix (the
        # array kernel draws its arrival mask the same way).
        return self._arrival_types[self.draws.cum_choice(self._arrival_cumprobs)]

    def _sample_uniform_peer(self) -> Peer:
        index = self.draws.integers(self.population)
        return self._peers[self._order[index]]

    def _sample_ticking_peer(self) -> Peer:
        """Choose which peer's clock ticks (weighted when speedups are active).

        Each peer has tick weight 1, plus an extra ``retry_speedup - 1`` when
        it is in the sped-up list; a single uniform draw over the cumulative
        weight picks either a uniform peer (base segment) or a uniform sped-up
        peer (extra segment), with no per-event weight-array rebuild.  In
        heterogeneous mode the µ_c-weighted draw is delegated to the shared
        driver so both backends consume the RNG identically.
        """
        if self._classes is not None:
            return self._peers[self._draw_hetero_ticker()]
        population = self.population
        sped = len(self._sped_ids)
        if self.retry_speedup == 1.0 or not sped:
            return self._sample_uniform_peer()
        extra = self.retry_speedup - 1.0
        threshold = self.draws.uniform(0.0, population + extra * sped)
        if threshold < population:
            return self._peers[self._order[int(threshold)]]
        index = min(int((threshold - population) / extra), sped - 1)
        return self._peers[self._sped_ids[index]]

    def _swarm_view(self) -> SwarmView:
        view = self._view
        view.total_peers = self.population
        view.time = self._time
        if self._classes is not None:
            view.class_counts = tuple(len(m) for m in self._class_members)
        return view

    def _transfer(self, uploader_pieces: PieceSet, downloader: Peer, from_seed: bool) -> bool:
        """Attempt a useful upload into ``downloader``; returns True on success."""
        if self._gossip is not None:
            # The policy reads the census as the *downloader* estimates it.
            self._gossip.focus(
                self._position[downloader.peer_id], self.population, self._time
            )
        piece = self.policy.select_piece(
            downloader.pieces, uploader_pieces, self._swarm_view(), self.draws
        )
        if piece is None:
            self.metrics.wasted_contacts += 1
            return False
        downloader.receive_piece(piece, self._time, rare_piece=self.rare_piece)
        self._piece_counts[piece] += 1
        if self._gossip is not None:
            self._gossip.on_piece(
                self._position[downloader.peer_id], piece, self._time
            )
        self.metrics.total_downloads += 1
        if from_seed:
            self.metrics.total_seed_uploads += 1
        if downloader.is_seed:
            if self._class_departs_immediately(downloader.class_index):
                self._remove_peer(downloader)
            else:
                self._add_seed(downloader.peer_id)
        return True

    def _handle_arrival(self) -> None:
        if self._classes is None:
            self._add_peer(self._sample_arrival_type())
            return
        class_index, type_index = self._draw_arrival_class_type()
        self._add_peer(
            self._class_types[class_index][type_index], class_index=class_index
        )

    def _handle_seed_tick(self) -> None:
        if self.population == 0:
            return
        target = self._sample_uniform_peer()
        full = PieceSet.full(self.params.num_pieces)
        self._transfer(full, target, from_seed=True)

    def _handle_peer_tick(self) -> None:
        if self.population == 0:
            return
        uploader = self._sample_ticking_peer()
        # A ticking peer's speedup (if any) is consumed by this tick.
        self._discard_sped(uploader.peer_id)
        overlay = self._overlay
        if overlay is not None:
            # Overlay contact: the target is one uniform over the ticker's
            # neighbor row (a zero-degree ticker still consumes it).
            uploader_slot = self._position[uploader.peer_id]
            slot = overlay.draw_target(uploader_slot, self.draws.next())
            if self._gossip is not None:
                self._gossip_tick(uploader_slot, slot)
            if slot < 0:
                self.metrics.wasted_contacts += 1
                success = False
            else:
                target = self._peers[self._order[slot]]
                success = self._transfer(uploader.pieces, target, from_seed=False)
                if success:
                    uploader.record_upload()
            if success:
                self.metrics.neighbor_useful_ticks += 1
            else:
                self.metrics.neighbor_useless_ticks += 1
        else:
            target = self._sample_uniform_peer()
            if self._gossip is not None:
                self._gossip_tick(
                    self._position[uploader.peer_id],
                    self._position[target.peer_id],
                )
            if target.peer_id == uploader.peer_id:
                self.metrics.wasted_contacts += 1
                success = False
            else:
                success = self._transfer(uploader.pieces, target, from_seed=False)
                if success:
                    uploader.record_upload()
        # No peer is removed on a failed tick, so the uploader is still in
        # the system here (mirrors ArraySwarmKernel._handle_peer_tick).
        if not success and self.retry_speedup > 1.0:
            self._add_sped(uploader.peer_id)

    def _handle_seed_departure(self) -> None:
        if self._classes is not None:
            peer_id = self._draw_hetero_departing_seed()
            if peer_id is not None:
                self._remove_peer(self._peers[peer_id])
            return
        if not self._seeds:
            return
        index = self.draws.integers(len(self._seeds))
        peer = self._peers[self._seeds[index]]
        self._remove_peer(peer)

    def _record_sample(self, sample_time: float) -> None:
        snapshot = None
        if self.track_groups:
            snapshot = GroupSnapshot.from_peers(
                sample_time, self.peers(), rare_piece=self.rare_piece
            )
        occupied = [count for count in self._piece_counts.values()]
        gossip = self._gossip
        self.metrics.record_sample(
            time=sample_time,
            population=self.population,
            num_seeds=self.num_seeds,
            one_club_size=self.one_club_size(),
            min_piece_count=min(occupied) if occupied else 0,
            group_snapshot=snapshot,
            census_error=(
                gossip.mean_error(self._piece_counts, self.population)
                if gossip is not None
                else None
            ),
            census_staleness=(
                gossip.mean_staleness(sample_time) if gossip is not None else None
            ),
        )


#: Names of the available simulation backends (see :func:`make_simulator`).
BACKENDS = ("object", "array")

#: Hard limit of the array backend: one uint64 bitmask per peer.
MAX_ARRAY_BACKEND_PIECES = 64


def make_simulator(
    params: SystemParameters,
    policy: Optional[PieceSelectionPolicy] = None,
    seed: SeedLike = None,
    backend: str = "object",
    **kwargs,
):
    """Construct a simulator for the requested backend.

    ``backend="object"`` builds the reference :class:`SwarmSimulator`;
    ``backend="array"`` builds the structure-of-arrays
    :class:`~repro.swarm.kernel.ArraySwarmKernel` (requires ``K <= 64``; a
    larger ``K`` raises ``ValueError`` here, at construction).  Both backends
    consume the RNG identically, so a given seed produces the same trajectory
    on either one; the array kernel is simply much faster on large
    populations.  Pass ``scenario=`` (a
    :class:`~repro.core.scenario.ScenarioSpec`) to run heterogeneous peer
    classes and time-varying rate schedules on either backend.  Pass
    ``draw_block_size=`` to size the blocked RNG draw buffer (default 4096,
    or the ``DRAW_BLOCK_SIZE`` environment variable); every block size
    yields the same trajectory, so this is purely a performance knob.
    """
    if backend == "object":
        return SwarmSimulator(params, policy=policy, seed=seed, **kwargs)
    if backend == "array":
        if params.num_pieces > MAX_ARRAY_BACKEND_PIECES:
            raise ValueError(
                f"backend='array' packs piece sets into uint64 bitmasks and "
                f"supports at most {MAX_ARRAY_BACKEND_PIECES} pieces, got "
                f"K={params.num_pieces}; use backend='object' for larger K"
            )
        from .kernel import ArraySwarmKernel

        return ArraySwarmKernel(params, policy=policy, seed=seed, **kwargs)
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")


#: Keyword arguments consumed by the simulator constructors.
_SIM_KWARGS = (
    "rare_piece",
    "retry_speedup",
    "track_groups",
    "scenario",
    "draw_block_size",
)

#: Keyword arguments consumed by ``run``.
_RUN_KWARGS = ("sample_interval", "max_events", "max_population")


def unsupported_option(entry_point: str, option: str, value, hint: str) -> ValueError:
    """Build the uniformly phrased rejection raised by every entry point.

    The ``run_swarm`` / ``run_scenario`` / ``run_fleet`` /
    ``run_adaptive_fleet`` family accepts the same execution keywords
    (``backend=``, ``workers=``, ``stacked=``) wherever they are meaningful;
    a combination an entry point cannot honour is rejected with this single
    phrasing so callers can grep for one message shape.
    """
    return ValueError(f"{entry_point} does not support {option}={value!r}; {hint}")


def run_swarm(
    params: SystemParameters,
    horizon: float,
    seed: SeedLike = None,
    policy: Optional[PieceSelectionPolicy] = None,
    initial_state: Optional[SystemState] = None,
    backend: str = "object",
    workers: Optional[int] = None,
    stacked: bool = False,
    **kwargs,
) -> SwarmResult:
    """Convenience wrapper: build a simulator and run it.

    ``backend`` selects the simulation engine (``"object"`` or ``"array"``,
    see :func:`make_simulator`); the remaining keyword arguments are split
    between the constructor (including ``scenario=``) and
    :meth:`SwarmSimulator.run`.  ``workers=`` and ``stacked=`` are accepted
    for signature uniformity with the batched entry points but a single
    swarm run supports neither — pass them to :func:`run_scenario` /
    ``run_fleet`` instead.
    """
    if workers is not None:
        raise unsupported_option(
            "run_swarm", "workers", workers,
            "a single swarm run has nothing to parallelise; use "
            "run_scenario(workers=...) or run_fleet(workers=...)",
        )
    if stacked:
        raise unsupported_option(
            "run_swarm", "stacked", stacked,
            "stacked execution drives whole fleets of swarms; use "
            "run_fleet(stacked=True) or run_adaptive_fleet(stacked=True)",
        )
    unknown = set(kwargs) - set(_SIM_KWARGS) - set(_RUN_KWARGS)
    if unknown:
        raise TypeError(f"unknown run_swarm arguments: {sorted(unknown)}")
    simulator = make_simulator(params, policy=policy, seed=seed, backend=backend, **{
        key: value for key, value in kwargs.items() if key in _SIM_KWARGS
    })
    run_kwargs = {
        key: value for key, value in kwargs.items() if key in _RUN_KWARGS
    }
    return simulator.run(horizon, initial_state=initial_state, **run_kwargs)


__all__ = [
    "BACKENDS",
    "MAX_ARRAY_BACKEND_PIECES",
    "SwarmSimulator",
    "SwarmResult",
    "make_simulator",
    "run_swarm",
    "unsupported_option",
]
