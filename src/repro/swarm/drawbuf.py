"""Blocked uniform-draw buffer: the single RNG tap of the swarm backends.

Every stochastic decision of the two swarm backends — inter-event
exponentials, event-type selection, Poisson-thinning acceptance, class /
peer / piece draws — is taken from one :class:`DrawBuffer` instead of from
scalar :class:`numpy.random.Generator` calls.  The buffer pre-draws uniforms
in blocks via ``Generator.random(block_size)`` and serves them one at a time
(or as whole numpy views, for the array kernel's vectorized batch stage).

Why this preserves determinism
------------------------------
``Generator.random(n)`` consumes the underlying PCG64 stream *identically*
to ``n`` scalar ``Generator.random()`` calls: each double eats exactly one
64-bit output.  Draw number ``k`` of a simulation therefore reads the same
stream position — and yields the same value — for **every** block size,
so blocked (default 4096) and scalar (``DRAW_BLOCK_SIZE=1``) runs are
bit-identical by construction, and both simulation backends stay
trajectory-equivalent per seed because they share this module's draw
semantics:

* ``uniform(high)`` is ``high * u`` (what ``Generator.uniform(0, high)``
  computes from one double);
* ``exponential(scale)`` is the inverse transform ``scale * -log1p(-u)``
  (one double, vectorized per block — numpy's default ziggurat method
  consumes a data-dependent number of raw draws and cannot be buffered);
* ``integers(n)`` is ``min(int(u * n), n - 1)`` (one double; numpy's
  Lemire rejection sampler consumes a variable number of raw draws).

The per-block exponential transform ``-log1p(-u)`` is computed **once**,
vectorized, on refill; scalar and batched consumers read the same
precomputed values, so no scalar-vs-SIMD libm discrepancy can creep in.

Snapshots
---------
A buffer holds look-ahead state: the generator has already been advanced to
the end of the current block while the simulation has only consumed a
prefix.  :meth:`capture` therefore records the un-consumed remainder of the
block (the generator state itself is captured by the simulator snapshot);
:meth:`restore` replays that remainder before drawing fresh blocks, so a
run restored mid-block continues bit-identically at any block size.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Sequence

import numpy as np

#: Default number of uniforms pre-drawn per block.
DEFAULT_BLOCK_SIZE = 4096

#: Environment variable overriding the default block size (CI runs the
#: kernel-equivalence suite with ``DRAW_BLOCK_SIZE=1`` to pin the blocked
#: stream to the scalar one).
BLOCK_SIZE_ENV = "DRAW_BLOCK_SIZE"


def default_block_size() -> int:
    """The block size to use when none is given (honours ``DRAW_BLOCK_SIZE``)."""
    raw = os.environ.get(BLOCK_SIZE_ENV)
    if raw is None or raw.strip() == "":
        return DEFAULT_BLOCK_SIZE
    try:
        value = int(raw)
    except ValueError as error:
        raise ValueError(
            f"{BLOCK_SIZE_ENV} must be a positive integer, got {raw!r}"
        ) from error
    if value < 1:
        raise ValueError(f"{BLOCK_SIZE_ENV} must be >= 1, got {value}")
    return value


class DrawBuffer:
    """Blocked uniform draws over a :class:`numpy.random.Generator`.

    The scalar accessors (:meth:`next`, :meth:`uniform`, :meth:`exponential`,
    :meth:`integers`, :meth:`choice`) serve one decision per call as plain
    Python floats read straight out of the block (no per-draw Generator
    call); the view accessors (:meth:`uniforms_view`, :meth:`exp_view`,
    :meth:`advance`) expose the same pending draws as numpy arrays for the
    array kernel's vectorized batch stage, and the peek accessors
    (:meth:`peek_uniform`, :meth:`peek_exp`) read ahead without consuming,
    for classifiers that decide *how* to consume before consuming.  All
    interfaces read the same positions of the same stream, so mixing them
    freely is safe.

    The object is also duck-compatible with the slice of the Generator API
    the built-in piece-selection policies use (``integers`` / ``random`` /
    ``uniform`` / ``choice``), so policies receive the buffer where they used
    to receive the Generator.  Custom policies must restrict themselves to
    these methods (documented in ``PieceSelectionPolicy``).
    """

    __slots__ = (
        "_rng",
        "block_size",
        "_uniforms",
        "_exp",
        "_pos",
        "_len",
    )

    def __init__(self, rng: np.random.Generator, block_size: Optional[int] = None):
        if block_size is None:
            block_size = default_block_size()
        block_size = int(block_size)
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self._rng = rng
        self.block_size = block_size
        self._set_block(np.empty(0, dtype=np.float64))

    # -- block management ------------------------------------------------------

    def _set_block(self, uniforms: np.ndarray) -> None:
        self._uniforms = uniforms
        # One vectorized inverse-transform per block; scalar and batched
        # consumers both read these exact doubles.
        self._exp = -np.log1p(-uniforms)
        self._pos = 0
        self._len = len(uniforms)

    def _refill(self) -> None:
        self._set_block(self._rng.random(self.block_size))

    def remaining(self) -> int:
        """Number of already-drawn uniforms not yet consumed."""
        return self._len - self._pos

    # -- scalar draws ----------------------------------------------------------

    def next(self) -> float:
        """The next uniform in ``[0, 1)`` as a plain Python float."""
        pos = self._pos
        if pos >= self._len:
            self._refill()
            pos = 0
        self._pos = pos + 1
        return self._uniforms.item(pos)

    def random(self) -> float:
        """Generator-compatible alias of :meth:`next`."""
        return self.next()

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform on ``[low, high)`` (one buffered draw).

        ``uniform(0.0, b)`` equals ``b * u`` bit-for-bit, which is what
        ``Generator.uniform(0.0, b)`` computes from its single double.
        """
        return low + (high - low) * self.next()

    def exponential(self, scale: float) -> float:
        """One Exp(1/scale) variate via the inverse transform (one draw)."""
        pos = self._pos
        if pos >= self._len:
            self._refill()
            pos = 0
        self._pos = pos + 1
        return scale * self._exp.item(pos)

    def integers(self, low: int, high: Optional[int] = None) -> int:
        """One integer from ``[0, low)`` (or ``[low, high)``), one draw.

        The floor-multiply map ``int(u * n)`` replaces numpy's Lemire
        rejection sampler so that the draw count is fixed at one; the
        ``n - 1`` clamp guards the (theoretical) ``u * n == n`` rounding
        edge and mirrors the vectorized batch stage exactly.
        """
        if high is None:
            span = low
            base = 0
        else:
            span = high - low
            base = low
        value = int(self.next() * span)
        if value >= span:
            value = span - 1
        return base + value

    def choice(self, n: int, p: Optional[Sequence[float]] = None) -> int:
        """One index from ``range(n)``, optionally ``p``-weighted (one draw)."""
        if p is None:
            return self.integers(n)
        cumulative = np.cumsum(np.asarray(p, dtype=float))
        index = int(np.searchsorted(cumulative, cumulative[-1] * self.next(), side="right"))
        return min(index, n - 1)

    def cum_choice(self, cumulative: np.ndarray) -> int:
        """Index drawn against a normalized cumulative-probability table.

        One uniform + ``searchsorted`` with the trailing clamp — THE pick
        idiom of both backends' arrival-type and class draws; keeping it
        here keeps the consumption contract (and the ``side="right"`` /
        clamp semantics) in exactly one place.
        """
        index = int(np.searchsorted(cumulative, self.next(), side="right"))
        limit = len(cumulative) - 1
        return index if index < limit else limit

    # -- vectorized views (array-kernel batch stage) ---------------------------

    def uniforms_view(self, count: int) -> np.ndarray:
        """The next ``count`` pending uniforms as a read-only numpy view."""
        return self._uniforms[self._pos : self._pos + count]

    def exp_view(self, count: int) -> np.ndarray:
        """``-log1p(-u)`` of the next ``count`` pending uniforms (a view)."""
        return self._exp[self._pos : self._pos + count]

    def advance(self, count: int) -> None:
        """Consume ``count`` pending draws previously read through a view."""
        position = self._pos + count
        if count < 0 or position > self._len:
            raise ValueError(
                f"cannot advance {count} draws: {self.remaining()} pending"
            )
        self._pos = position

    # -- peeks (classify before consuming) -------------------------------------

    def peek_uniform(self, offset: int = 0) -> float:
        """The pending uniform ``offset`` positions ahead, *not* consumed.

        The caller must guarantee ``remaining() > offset``; peeking never
        refills (a refill would discard the un-consumed remainder and break
        the fixed block boundaries of the stream).
        """
        return self._uniforms.item(self._pos + offset)

    def peek_exp(self, offset: int = 0) -> float:
        """``-log1p(-u)`` of the uniform ``offset`` ahead, *not* consumed."""
        return self._exp.item(self._pos + offset)

    # -- snapshots -------------------------------------------------------------

    def capture(self) -> Dict[str, Any]:
        """Picklable buffer state: the un-consumed remainder of the block."""
        return {
            "block_size": self.block_size,
            "uniforms": self._uniforms[self._pos :].copy(),
        }

    def restore(self, state: Optional[Dict[str, Any]]) -> None:
        """Load a :meth:`capture` payload (``None`` resets to an empty buffer).

        Snapshots that predate the draw buffer (simulator snapshot format 1)
        carry no buffer state; for those the generator was in sync with the
        logical stream position, so an empty buffer is the exact restore.
        """
        if state is None:
            self._set_block(np.empty(0, dtype=np.float64))
            return
        self._set_block(np.array(state["uniforms"], dtype=np.float64))


__all__ = [
    "BLOCK_SIZE_ENV",
    "DEFAULT_BLOCK_SIZE",
    "DrawBuffer",
    "default_block_size",
]
