"""Peer objects of the peer-level swarm simulator.

A :class:`Peer` tracks its current piece collection plus the lifecycle flags
needed for the Figure-2 group decomposition of the transience proof:

* ``arrived_with`` — the initial piece collection (gifted peers arrived with
  the rare piece in it);
* ``infected_at`` — the time it obtained the designated rare piece after
  arrival (None if it never has, or if it arrived with it);
* ``was_one_club`` — whether it was ever a one-club peer;
* ``completed_at`` — the time it became a peer seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.types import PieceSet


@dataclass
class Peer:
    """One peer in the swarm simulation (mutable)."""

    peer_id: int
    pieces: PieceSet
    arrival_time: float
    arrived_with: PieceSet = field(default=None)  # type: ignore[assignment]
    completed_at: Optional[float] = None
    departed_at: Optional[float] = None
    infected_at: Optional[float] = None
    was_one_club: bool = False
    downloads: int = 0
    uploads: int = 0
    #: Index into the scenario's peer classes (0 in a homogeneous swarm).
    class_index: int = 0

    def __post_init__(self) -> None:
        if self.arrived_with is None:
            self.arrived_with = self.pieces

    # -- piece queries ----------------------------------------------------------

    @property
    def num_pieces(self) -> int:
        return len(self.pieces)

    @property
    def is_seed(self) -> bool:
        """True when the peer holds the complete file (it is a peer seed)."""
        return self.pieces.is_complete

    @property
    def in_system(self) -> bool:
        return self.departed_at is None

    def needs(self, piece: int) -> bool:
        return piece not in self.pieces

    def useful_from(self, uploader_pieces: PieceSet) -> PieceSet:
        """Pieces the uploader holds that this peer still needs."""
        return self.pieces.useful_from(uploader_pieces)

    # -- lifecycle ---------------------------------------------------------------

    def receive_piece(self, piece: int, time: float, rare_piece: int = 1) -> None:
        """Record the download of ``piece`` at ``time``.

        Updates the infection flag of the transience-proof decomposition: a
        peer becomes *infected* when it obtains the rare piece after arrival
        while still missing at least one other piece (it was a normal young
        peer just before the download).
        """
        if piece in self.pieces:
            raise ValueError(f"peer {self.peer_id} already holds piece {piece}")
        was_one_club = self.is_one_club(rare_piece)
        missing_before = len(self.pieces.missing())
        if (
            piece == rare_piece
            and rare_piece not in self.arrived_with
            and missing_before >= 2
            and self.infected_at is None
        ):
            self.infected_at = time
        if was_one_club:
            self.was_one_club = True
        self.pieces = self.pieces.add(piece)
        self.downloads += 1
        if self.pieces.is_complete and self.completed_at is None:
            self.completed_at = time

    def record_upload(self) -> None:
        self.uploads += 1

    def depart(self, time: float) -> None:
        if self.departed_at is not None:
            raise ValueError(f"peer {self.peer_id} already departed")
        self.departed_at = time

    # -- Figure-2 classification helpers -------------------------------------------

    @property
    def is_gifted(self) -> bool:
        """Arrived holding the rare piece 1 (gifted for its entire stay)."""
        return 1 in self.arrived_with

    def is_one_club(self, rare_piece: int = 1) -> bool:
        """Currently holds every piece except the rare one."""
        missing = self.pieces.missing()
        return len(missing) == 1 and rare_piece in missing

    def sojourn_time(self, now: Optional[float] = None) -> float:
        """Time spent in the system (up to departure or ``now``)."""
        end = self.departed_at if self.departed_at is not None else now
        if end is None:
            raise ValueError("peer has not departed; supply the current time")
        return end - self.arrival_time

    def download_time(self) -> Optional[float]:
        """Time from arrival to completion (None if never completed)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival_time


__all__ = ["Peer"]
