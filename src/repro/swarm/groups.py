"""The Figure-2 decomposition of the population.

The transience proof partitions the peers into five groups with respect to a
designated rare piece (piece one in the paper):

* **normal young** (a): missing at least two pieces, one of them the rare one,
  and never previously infected;
* **infected** (b): obtained the rare piece after arrival, before holding all
  the other pieces; stays infected for its whole stay;
* **gifted** (g): arrived already holding the rare piece;
* **one club** (e): holds every piece except the rare one;
* **former one club** (f): was in the one club earlier and has since obtained
  the rare piece (necessarily a peer seed).

The classification drives the E4 experiment (one-club dynamics) and several
tests of the transience mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List

from .peer import Peer


class PeerGroup(Enum):
    """Labels of the five peer groups of Figure 2."""

    NORMAL_YOUNG = "normal_young"
    INFECTED = "infected"
    GIFTED = "gifted"
    ONE_CLUB = "one_club"
    FORMER_ONE_CLUB = "former_one_club"


def classify_peer(peer: Peer, rare_piece: int = 1) -> PeerGroup:
    """Assign a peer to its Figure-2 group.

    Precedence follows the paper: gifted and infected are *sticky* labels that
    persist once acquired (even for peer seeds), the one club contains exactly
    the peers of type ``F − {rare_piece}``, and former one-club peers are the
    ex-members that have since completed the file.
    """
    if peer.is_gifted if rare_piece == 1 else (rare_piece in peer.arrived_with):
        return PeerGroup.GIFTED
    if peer.infected_at is not None:
        return PeerGroup.INFECTED
    if peer.is_one_club(rare_piece):
        return PeerGroup.ONE_CLUB
    if peer.was_one_club and rare_piece in peer.pieces:
        return PeerGroup.FORMER_ONE_CLUB
    return PeerGroup.NORMAL_YOUNG


def group_counts(peers: Iterable[Peer], rare_piece: int = 1) -> Dict[PeerGroup, int]:
    """Count the members of each group among the given peers."""
    counts = {group: 0 for group in PeerGroup}
    for peer in peers:
        counts[classify_peer(peer, rare_piece)] += 1
    return counts


@dataclass(frozen=True)
class GroupSnapshot:
    """Group sizes at one sampling instant."""

    time: float
    normal_young: int
    infected: int
    gifted: int
    one_club: int
    former_one_club: int

    @property
    def total(self) -> int:
        return (
            self.normal_young
            + self.infected
            + self.gifted
            + self.one_club
            + self.former_one_club
        )

    @property
    def one_club_fraction(self) -> float:
        """Fraction of peers in the one club and former one club together.

        This is the quantity ``(Y^e + Y^f)/N`` whose persistence above
        ``1 − ξ`` defines the trapping event of the transience proof.
        """
        total = self.total
        if total == 0:
            return 0.0
        return (self.one_club + self.former_one_club) / total

    @classmethod
    def from_peers(
        cls, time: float, peers: Iterable[Peer], rare_piece: int = 1
    ) -> "GroupSnapshot":
        counts = group_counts(peers, rare_piece)
        return cls(
            time=time,
            normal_young=counts[PeerGroup.NORMAL_YOUNG],
            infected=counts[PeerGroup.INFECTED],
            gifted=counts[PeerGroup.GIFTED],
            one_club=counts[PeerGroup.ONE_CLUB],
            former_one_club=counts[PeerGroup.FORMER_ONE_CLUB],
        )


__all__ = ["PeerGroup", "GroupSnapshot", "classify_peer", "group_counts"]
