"""Stacked fleet mega-kernel: one SoA driver over many independent swarms.

A fleet chunk of small swarms pays the per-swarm Python cost of the solo
event loop even though almost every event is a *wasted peer tick* that the
array kernel's batch stage classifies vectorially: each
:meth:`~repro.swarm.kernel.ArraySwarmKernel._batch_stage` call only ever
amortises over one swarm's streak (~15 events on scenario workloads), so a
200-swarm fleet makes thousands of short vector calls.
:class:`StackedSwarmKernel` lifts that classification across swarms: all
lanes' pending draw windows are concatenated into one candidate array per
round (a swarm-id column keyed gather against a shared mask sheet), so one
set of numpy ops resolves every lane's streak at once.

Determinism contract
--------------------
Each lane is a full :class:`~repro.swarm.kernel.ArraySwarmKernel` with its
own :class:`~repro.swarm.drawbuf.DrawBuffer` (seeded exactly as a solo run
would be), and the stacked driver consumes each lane's buffer with the same
per-decision semantics — batched wasted ticks eat four draws, thinned
candidates three, scalar events go through the lane's own
``_apply_event`` — in the same per-lane order as the solo loop.  Block
refills happen at fixed 4096-draw boundaries of the *per-lane* stream
regardless of how draws are grouped, so every lane's trajectory (metrics,
samples, snapshots) is **bit-identical to a solo run on the same seed**;
``tests/test_stacked.py`` asserts this per lane and at fleet scale.
Interleaving lanes is free because swarms are independent: no draw of one
lane can influence another.

Structure
---------
* A shared uint64 **mask sheet** holds every lane's piece-mask column at a
  per-lane base offset (``lane._masks`` is a view into the sheet), so the
  cross-lane usefulness test is two gathers on one array instead of one
  small gather per swarm.  Lane growth re-homes the lane at the sheet's
  tail (the old segment is abandoned — growth is rare and the sheet is
  transient).
* Per round, each active lane contributes one *action*: a batched run of
  wasted ticks (global classification), a batched run of thinning-rejected
  candidates (the lane's own ``_batch_thinned``), one scalar event, a
  suspension, or its finalisation.  Finished lanes retire from the active
  list; their :class:`~repro.swarm.swarm.SwarmResult` is exactly what the
  solo loop would have returned.
* Snapshots stay per-swarm: ``lane.capture_state()`` emits the ordinary
  format-2 payload (backend ``"array"``), and ``add_lane(snapshot=...)``
  restores one, so fleet checkpoint/resume interoperates freely with the
  per-swarm path.

Limits: lanes inherit the array kernel's ``K <= 64`` bitmask bound, and
custom piece-selection policies are only batched under the same conditions
as the solo batch stage (``rng_free_when_useless`` and no retry speedup);
other lanes simply take the scalar route every round.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.parameters import SystemParameters
from ..core.scenario import ScenarioSpec
from ..core.state import SystemState
from ..simulation.rng import SeedLike, make_rng
from .drawbuf import DrawBuffer
from .gossip import build_gossip
from .kernel import ArraySwarmKernel
from .metrics import SwarmMetrics
from .policies import PieceSelectionPolicy, SwarmView
from .swarm import SwarmResult
from .topology import build_overlay

#: Sentinel larger than any candidate window (first-bad reduction).
_BIG = np.int64(1) << np.int64(40)

#: Initial / ceiling per-lane candidate window of the global classification
#: (doubled after a fully clean round, streak-sized after a broken one).
#: The floor trades re-classification of the window tail behind a breaker
#: against per-round dispatch overhead; the ceiling bounds how far one
#: deep-streak lane can pad the round's clock matrix (lanes classify at
#: the round's widest window).  Since the cohort restructure drained
#: scalar events inside the round, rounds are window-paced, so a high
#: ceiling amortises the per-round numpy glue better (swept 16..64 x
#: 512..2048 on the 200-swarm fleet workload).
_MIN_WINDOW = 16
_MAX_WINDOW = 1024

#: Below this block size per-lane windows cannot amortise anything (CI pins
#: ``DRAW_BLOCK_SIZE=1``); lanes are simply driven by their own solo loop.
#: (The stream is block-size invariant by construction, so a *bigger*
#: stacked block was tried too: it loses — event-capped fleet lanes only
#: consume a couple thousand draws, so wider blocks just generate and
#: exp-transform uniforms nobody reads.)
_MIN_STACKED_BLOCK = 8


class _StackedLane(ArraySwarmKernel):
    """An array kernel whose mask column lives in the stack's shared sheet."""

    _stack: Optional["StackedSwarmKernel"] = None

    def _grow(self) -> None:
        # The base grow detaches every column (including ``_masks``) into
        # private doubled arrays; re-home the masks on the sheet afterwards.
        super()._grow()
        if self._stack is not None:
            self._stack._adopt(self)


def _clone_lane(template: _StackedLane, seed: SeedLike) -> _StackedLane:
    """A fresh lane sharing the template's immutable digested configuration.

    Building a kernel from scratch re-derives the same arrival tables,
    schedule digests and class tables for every swarm of a fleet point;
    since :func:`~repro.fleet.spec.materialize_tasks` shares one
    params/scenario object per distinct point, those digests can be shared
    too.  Everything mutable — RNG, draw buffer, metrics, population
    arrays, per-class lists, run-loop state — is rebuilt per lane, so
    clones are trajectory-independent; only when the policy is the stateless
    built-in default do callers clone at all.
    """
    lane = object.__new__(_StackedLane)
    lane.__dict__.update(template.__dict__)
    lane._stack = None
    lane.rng = make_rng(seed)
    lane.draws = DrawBuffer(lane.rng, template.draws.block_size)
    lane.metrics = SwarmMetrics()
    capacity = len(template._arrival_time)
    lane._masks = np.zeros(capacity, dtype=np.uint64)
    lane._arrival_time = np.zeros(capacity, dtype=np.float64)
    lane._completed_at = np.full(capacity, np.nan, dtype=np.float64)
    lane._arrived_with_rare = np.zeros(capacity, dtype=np.bool_)
    lane._infected = np.zeros(capacity, dtype=np.bool_)
    lane._was_one_club = np.zeros(capacity, dtype=np.bool_)
    lane._seed_slot = np.full(capacity, -1, dtype=np.int64)
    lane._sped_slot = np.full(capacity, -1, dtype=np.int64)
    lane._n = 0
    lane._seeds = []
    lane._sped = []
    lane._one_club_count = 0
    lane._piece_counts = {k: 0 for k in range(1, template.params.num_pieces + 1)}
    lane._time = 0.0
    # The dict update aliased the template's mutable overlay (and its cull
    # progress); rebuild both per lane.  Same for the gossip census state.
    lane._overlay = build_overlay(template._topology)
    lane._gossip = build_gossip(template._census_spec, template.params.num_pieces)
    lane._cull_done = False
    lane._membership_version = 0
    lane._ticker_cache = None
    lane._class_member_bufs = None
    lane._run_active = False
    lane._run_horizon = None
    lane._run_interval = None
    lane._next_sample = 0.0
    lane._events = 0
    if lane._classes is not None:
        lane._class_idx = np.zeros(capacity, dtype=np.int32)
        lane._member_slot = np.full(capacity, -1, dtype=np.int64)
        num_classes = len(lane._classes)
        lane._class_members = [[] for _ in range(num_classes)]
        lane._class_seeds = [[] for _ in range(num_classes)]
        lane._class_sped = [[] for _ in range(num_classes)]
        lane._class_member_revs = [0] * num_classes
    lane._view = SwarmView(
        num_pieces=template.params.num_pieces,
        census=lane._make_census(),
        total_peers=0,
        time=0.0,
    )
    return lane


class StackedSwarmKernel:
    """N independent array-kernel swarms driven by one round-based loop.

    Usage::

        stack = StackedSwarmKernel()
        for task in chunk:
            stack.add_lane(task.params, seed=..., scenario=task.scenario)
        results = stack.run_all(horizon, initial_states=[...], ...)

    ``run_all`` returns one :class:`~repro.swarm.swarm.SwarmResult` per
    lane, in lane order, each bit-identical to the solo run.
    """

    def __init__(self) -> None:
        self._lanes: List[_StackedLane] = []
        self._sheet = np.zeros(1024, dtype=np.uint64)
        self._sheet_used = 0
        self._templates: Dict[Tuple[int, int], _StackedLane] = {}

    # -- lane management -----------------------------------------------------

    @property
    def num_lanes(self) -> int:
        return len(self._lanes)

    def lane(self, slot: int) -> ArraySwarmKernel:
        """The underlying kernel of one lane (e.g. for ``capture_state``)."""
        return self._lanes[slot]

    def _adopt(self, lane: _StackedLane) -> None:
        """(Re-)home a lane's mask column inside the shared sheet."""
        masks = lane._masks
        capacity = len(masks)
        if self._sheet_used + capacity > len(self._sheet):
            new_size = max(len(self._sheet) * 2, 1024)
            while new_size < self._sheet_used + capacity:
                new_size *= 2
            sheet = np.zeros(new_size, dtype=np.uint64)
            sheet[: self._sheet_used] = self._sheet[: self._sheet_used]
            self._sheet = sheet
            # Slice views into the old sheet died with it: rebind them all.
            for other in self._lanes:
                base = other._sheet_base
                if other is not lane:
                    other._masks = sheet[base : base + len(other._masks)]
        base = self._sheet_used
        self._sheet_used = base + capacity
        self._sheet[base : base + capacity] = masks
        lane._masks = self._sheet[base : base + capacity]
        lane._sheet_base = base

    def add_lane(
        self,
        params: SystemParameters,
        *,
        seed: SeedLike = None,
        scenario: Optional[ScenarioSpec] = None,
        policy: Optional[PieceSelectionPolicy] = None,
        initial_capacity: int = 1024,
        snapshot: Optional[Dict[str, object]] = None,
    ) -> int:
        """Append one swarm lane; returns its slot index.

        Lanes with a shared ``(params, scenario)`` object pair (what
        ``materialize_tasks`` produces for swarms of the same fleet point)
        are cloned from a per-pair template instead of re-digesting the
        configuration; a custom ``policy`` disables cloning since its
        statefulness is unknown.  ``snapshot`` restores a format-2 per-swarm
        snapshot (``capture_state`` of either the solo kernel or a stacked
        lane) into the new lane; ``run_all`` then resumes it.
        """
        if policy is None:
            key = (id(params), id(scenario))
            template = self._templates.get(key)
            if template is None:
                lane = _StackedLane(
                    params,
                    scenario=scenario,
                    initial_capacity=initial_capacity,
                    seed=seed,
                )
                self._templates[key] = lane
            else:
                lane = _clone_lane(template, seed)
        else:
            lane = _StackedLane(
                params,
                policy=policy,
                scenario=scenario,
                initial_capacity=initial_capacity,
                seed=seed,
            )
        if snapshot is not None:
            lane.restore_state(snapshot)
        slot = len(self._lanes)
        self._adopt(lane)
        self._lanes.append(lane)
        lane._stack = self
        return slot

    # -- finalisation helpers --------------------------------------------------

    @staticmethod
    def _finalize(
        lane: _StackedLane, horizon: float, interval: float, horizon_reached: bool
    ) -> SwarmResult:
        """Flush the trailing sample grid and close the lane's run (solo
        epilogue semantics)."""
        lane._next_sample = lane._flush_samples(
            lane._next_sample, horizon, interval
        )
        lane._run_active = False
        return SwarmResult(
            metrics=lane.metrics,
            final_time=lane._time,
            final_population=lane.population,
            final_state=lane.current_state(),
            horizon_reached=horizon_reached,
            suspended=False,
            events_executed=lane._events,
        )

    @staticmethod
    def _suspend(lane: _StackedLane) -> SwarmResult:
        """Suspend a lane mid-run (no sample flush, run stays continuable)."""
        return SwarmResult(
            metrics=lane.metrics,
            final_time=lane._time,
            final_population=lane.population,
            final_state=lane.current_state(),
            horizon_reached=False,
            suspended=True,
            events_executed=lane._events,
        )

    # -- the stacked event loop ------------------------------------------------

    def run_all(
        self,
        horizon: float,
        *,
        initial_states: Optional[Sequence[Optional[SystemState]]] = None,
        sample_interval: Optional[float] = None,
        max_events: Optional[int] = None,
        max_population: Optional[int] = None,
        suspend_after_events: Optional[int] = None,
    ) -> List[SwarmResult]:
        """Run every lane to ``horizon`` (or its cap); one result per lane.

        Lanes restored from a suspended snapshot resume where they left off
        (their recorded horizon / sample interval must match); the rest
        start fresh, optionally pre-seeded from ``initial_states``.
        ``suspend_after_events`` suspends each lane once its cumulative
        event count reaches the bound, exactly like the solo loop's
        parameter — the suspended lane's ``capture_state()`` equals the
        solo snapshot bit for bit.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        lanes = self._lanes
        results: List[Optional[SwarmResult]] = [None] * len(lanes)
        interval = (
            sample_interval if sample_interval is not None else horizon / 200.0
        )
        for slot, lane in enumerate(lanes):
            if lane._run_active:  # restored mid-run: resume
                if horizon != lane._run_horizon:
                    raise ValueError(
                        f"resumed horizon {horizon} does not match the "
                        f"suspended run's horizon {lane._run_horizon}"
                    )
                if (
                    sample_interval is not None
                    and sample_interval != lane._run_interval
                ):
                    raise ValueError(
                        f"resumed sample_interval {sample_interval} does not "
                        f"match the suspended run's interval {lane._run_interval}"
                    )
            else:
                state = (
                    initial_states[slot] if initial_states is not None else None
                )
                if state is not None:
                    lane.seed_population(state)
                lane._run_active = True
                lane._run_horizon = horizon
                lane._run_interval = interval
                lane._next_sample = 0.0
                lane._events = 0
            lane._stk_dirty = True
            lane._stk_window = _MIN_WINDOW
            # Overlay lanes cannot join the cross-lane classification:
            # phases 3/4 draw contact targets uniformly over the mask sheet,
            # but an overlay target is one uniform over the ticker's
            # *neighbor* row.  Such lanes batch through their own
            # (adjacency-aware) solo stage in ``classify`` instead.
            lane._stk_windowable = (
                lane._batch_enabled and lane._overlay is None
            )
            # Homogeneous lanes recompute rates from three counters and four
            # per-lane constants; digesting the constants once lets
            # ``classify`` skip the ``_event_rates`` call chain.  The
            # expressions below mirror ``_event_rates`` term for term, so
            # the recomputed doubles are bit-identical.
            if lane._classes is None:
                params = lane.params
                lane._stk_consts = (
                    lane._arrival_total * lane._arrival_bound,
                    params.seed_rate * lane._seed_bound,
                    params.peer_rate,
                    lane.retry_speedup - 1.0,
                    (
                        0.0
                        if params.immediate_departure
                        else params.seed_departure_rate
                    ),
                )
            else:
                lane._stk_consts = None

        # Tiny draw blocks (CI's DRAW_BLOCK_SIZE=1 equivalence mode) leave
        # nothing to stack; the solo loop is the same trajectory.
        if lanes and lanes[0].draws.block_size < _MIN_STACKED_BLOCK:
            for slot, lane in enumerate(lanes):
                results[slot] = lane.run(
                    horizon,
                    resume=True,
                    max_events=max_events,
                    max_population=max_population,
                    suspend_after_events=suspend_after_events,
                )
            return results

        # -- cohort classification (phase 1) -------------------------------
        # Per round, every pending lane is classified from its own draw
        # stream — the next exponential and selector are *peeked*, never
        # consumed — and filed into exactly one cohort: a batchable
        # wasted-tick window (resolved by the global phase-2
        # classification), a thinned-reject run (the lane's own
        # ``_batch_thinned``), or a typed scalar cohort (arrival /
        # seed-tick / peer-tick / departure) applied through the kernel's
        # cohort primitives.  Per-lane draw *order* is untouched, so
        # trajectories stay bit-identical to solo runs.

        def classify(slot: int, lane: _StackedLane) -> None:
            """Advance one lane to its next pending decision and file it.

            This is the solo loop top — caps, rate recomputation, thinned
            batching — in exactly the solo order; lanes whose run ends here
            store their result and retire from the active set.
            """
            while True:
                events = lane._events
                if (
                    suspend_after_events is not None
                    and events >= suspend_after_events
                ):
                    results[slot] = self._suspend(lane)
                    return
                if max_events is not None and events >= max_events:
                    results[slot] = self._finalize(lane, horizon, interval, False)
                    return
                if max_population is not None and lane._n >= max_population:
                    results[slot] = self._finalize(lane, horizon, interval, False)
                    return
                if lane._stk_dirty:
                    consts = lane._stk_consts
                    if consts is not None:
                        # Inline `_event_rates` for homogeneous lanes (term
                        # for term — see the digest in the prologue).
                        arr_r, seed_c, peer_rate, extra, dep_rate = consts
                        n = lane._n
                        rates = (
                            arr_r,
                            seed_c if n > 0 else 0.0,
                            (n + extra * len(lane._sped)) * peer_rate,
                            dep_rate * len(lane._seeds),
                        )
                    else:
                        rates = lane._event_rates()
                    total = rates[0] + rates[1] + rates[2] + rates[3]
                    lane._stk_rates = rates
                    lane._stk_total = total
                    if total > 0.0:
                        lane._stk_r01 = rates[0] + rates[1]
                        lane._stk_r012 = lane._stk_r01 + rates[2]
                        lane._stk_scale = 1.0 / total
                    lane._stk_dirty = False
                else:
                    rates = lane._stk_rates
                    total = lane._stk_total
                if total <= 0.0:
                    lane._time = horizon
                    results[slot] = self._finalize(lane, horizon, interval, True)
                    return
                draws = lane.draws
                remaining = draws._len - draws._pos
                if remaining == 0:
                    # Refilling an *empty* buffer is bit-free: blocks sit at
                    # fixed positions of the per-lane stream, so the next
                    # scalar draw would trigger the identical refill.
                    draws._refill()
                    remaining = draws._len
                cull_time = lane._cull_time
                cull_pending = cull_time is not None and not lane._cull_done
                if remaining == 1:
                    # The selector sits in the next block; take one generic
                    # scalar step (solo semantics, refill mid-event).
                    net = lane._time + draws.exponential(lane._stk_scale)
                    if cull_pending and cull_time <= horizon and net >= cull_time:
                        # Flash-exit interrupt (solo semantics: the consumed
                        # exponential is discarded, the selector not drawn).
                        next_sample = lane._next_sample
                        while next_sample <= horizon and next_sample < cull_time:
                            lane._record_sample(next_sample)
                            next_sample += interval
                        lane._next_sample = next_sample
                        lane._time = cull_time
                        lane._execute_cull()
                        lane._events = events + 1
                        lane._stk_dirty = True
                        continue
                    next_sample = lane._next_sample
                    while next_sample <= horizon and next_sample < net:
                        lane._record_sample(next_sample)
                        next_sample += interval
                    lane._next_sample = next_sample
                    if net > horizon:
                        lane._time = horizon
                        results[slot] = self._finalize(
                            lane, horizon, interval, True
                        )
                        return
                    lane._time = net
                    lane._apply_event(rates)
                    lane._events = events + 1
                    lane._stk_dirty = True
                    continue
                # Inline peek_uniform(1): this runs once per lane per round.
                sel = draws._uniforms.item(draws._pos + 1) * total
                if (
                    not cull_pending
                    and lane._batch_enabled
                    and lane._stk_r01 < sel <= lane._stk_r012
                ):
                    window = remaining >> 2
                    if window > lane._stk_window:
                        window = lane._stk_window
                    budget = (
                        max_events - events if max_events is not None else None
                    )
                    if suspend_after_events is not None:
                        left = suspend_after_events - events
                        budget = left if budget is None else min(budget, left)
                    if budget is not None and window > budget:
                        window = budget
                    if window > 0:
                        if lane._stk_windowable:
                            win_slots.append(slot)
                            win_lanes.append(lane)
                            win_widths.append(window)
                            return
                        # Overlay lane: batch through its own solo stage
                        # (adjacency-aware classification); draw-invisible,
                        # so the trajectory stays bit-identical to solo.
                        applied_b, next_sample = lane._batch_stage(
                            rates,
                            total,
                            horizon,
                            interval,
                            lane._next_sample,
                            budget,
                        )
                        # The stage may have recorded grid samples even when
                        # it applied nothing (a first candidate crossing the
                        # horizon): keep its grid cursor unconditionally,
                        # like the solo loop does.
                        lane._next_sample = next_sample
                        if applied_b:
                            lane._events = events + applied_b
                            continue
                    # remaining < 4 (or nothing batchable): the tick takes
                    # the typed scalar path below, exactly like the solo
                    # batch stage declining.
                elif not cull_pending and (
                    (sel <= rates[0] and lane._thin_arrivals)
                    or (rates[0] < sel <= lane._stk_r01 and lane._thin_seed)
                ):
                    budget = (
                        max_events - events if max_events is not None else None
                    )
                    if suspend_after_events is not None:
                        left = suspend_after_events - events
                        budget = left if budget is None else min(budget, left)
                    applied_thin, next_sample = lane._batch_thinned(
                        rates, total, horizon, interval, lane._next_sample, budget
                    )
                    # Keep the grid cursor even on zero applied events: the
                    # probe may have recorded samples before a first
                    # candidate crossed the horizon (solo loop semantics).
                    lane._next_sample = next_sample
                    if applied_thin:
                        lane._events = events + applied_thin
                        continue
                    # The first candidate is accepted (or crosses the
                    # horizon): file it as a typed scalar event below.
                # Typed scalar candidate: its event time and selector are
                # classified here; the cohort apply consumes the draws.
                net = lane._time + lane._stk_scale * draws._exp.item(draws._pos)
                if cull_pending and cull_time <= horizon and net >= cull_time:
                    # Flash-exit interrupt: consume (and discard) the peeked
                    # exponential, fire the cull; the selector stays pending.
                    draws._pos += 1
                    next_sample = lane._next_sample
                    while next_sample <= horizon and next_sample < cull_time:
                        lane._record_sample(next_sample)
                        next_sample += interval
                    lane._next_sample = next_sample
                    lane._time = cull_time
                    lane._execute_cull()
                    lane._events = events + 1
                    lane._stk_dirty = True
                    continue
                if net > horizon:
                    # Solo crossing semantics: the exponential is consumed,
                    # the grid flushed, the run closed.
                    draws._pos += 1
                    lane._time = horizon
                    results[slot] = self._finalize(lane, horizon, interval, True)
                    return
                if sel <= rates[0]:
                    arrival_cohort.append((slot, lane, net))
                elif sel <= lane._stk_r01:
                    seed_cohort.append((slot, lane, net))
                elif sel <= lane._stk_r012:
                    tick_cohort.append((slot, lane, net))
                else:
                    depart_cohort.append((slot, lane, net))
                return

        def apply_cohort(cohort, primitive) -> None:
            """Apply one classified scalar event per (slot, lane, net) entry.

            Consumes the peeked exponential + selector, walks the sample
            grid to the event time, then hands off to the typed primitive
            (which consumes the branch's own draws, thinning included) —
            draw for draw what ``_apply_event`` would have done.
            """
            for _slot, lane, net in cohort:
                next_sample = lane._next_sample
                if next_sample <= horizon and next_sample < net:
                    while next_sample <= horizon and next_sample < net:
                        lane._record_sample(next_sample)
                        next_sample += interval
                    lane._next_sample = next_sample
                lane._time = net
                # Inline advance(2): classify guaranteed >= 2 pending draws
                # before filing the lane (the exponential + the selector).
                lane.draws._pos += 2
                primitive(lane)
                lane._events += 1
                lane._stk_dirty = True

        active: List[Tuple[int, _StackedLane]] = list(enumerate(lanes))
        while active:
            # -- phases 1+2: classify and drain the scalar cohorts ---------
            # Every lane is classified; lanes that took a typed scalar event
            # are re-classified *within the round* until each active lane is
            # either windowed or retired, so the per-round numpy phases
            # amortize over every lane each round instead of one scalar
            # event costing a lane its whole round.  (Lanes are independent;
            # only the per-lane order is draw-identical to solo, and that is
            # untouched by how classification interleaves across lanes.)
            win_slots: List[int] = []
            win_lanes: List[_StackedLane] = []
            win_widths: List[int] = []
            pending = active
            while pending:
                arrival_cohort: List[Tuple[int, _StackedLane, float]] = []
                seed_cohort: List[Tuple[int, _StackedLane, float]] = []
                tick_cohort: List[Tuple[int, _StackedLane, float]] = []
                depart_cohort: List[Tuple[int, _StackedLane, float]] = []
                for slot, lane in pending:
                    # Inline fast path for the dominant case — a clean-rates
                    # lane whose next candidate is a batchable wasted tick.
                    # Exactly ``classify``'s window branch with the checks a
                    # non-dirty active lane has already passed (its cached
                    # total was > 0 when computed, and no event touched the
                    # lane since); everything else falls through to the full
                    # classifier.
                    if not lane._stk_dirty:
                        events = lane._events
                        if (
                            (
                                suspend_after_events is None
                                or events < suspend_after_events
                            )
                            and (max_events is None or events < max_events)
                            and (
                                max_population is None
                                or lane._n < max_population
                            )
                        ):
                            draws = lane.draws
                            rem = draws._len - draws._pos
                            if rem >= 4:
                                sel = (
                                    draws._uniforms.item(draws._pos + 1)
                                    * lane._stk_total
                                )
                                if (
                                    lane._stk_windowable
                                    and (
                                        lane._cull_time is None
                                        or lane._cull_done
                                    )
                                    and lane._stk_r01 < sel <= lane._stk_r012
                                ):
                                    window = rem >> 2
                                    if window > lane._stk_window:
                                        window = lane._stk_window
                                    if max_events is not None:
                                        left = max_events - events
                                        if window > left:
                                            window = left
                                    if suspend_after_events is not None:
                                        left = suspend_after_events - events
                                        if window > left:
                                            window = left
                                    win_slots.append(slot)
                                    win_lanes.append(lane)
                                    win_widths.append(window)
                                    continue
                    classify(slot, lane)

                # Apply the typed scalar cohorts.  (Before the window
                # classification: arrivals may grow the mask sheet, and the
                # gathers below must read the final layout.)
                if arrival_cohort:
                    apply_cohort(
                        arrival_cohort, _StackedLane._apply_arrival_event
                    )
                if seed_cohort:
                    apply_cohort(
                        seed_cohort, _StackedLane._apply_seed_tick_event
                    )
                if tick_cohort:
                    apply_cohort(
                        tick_cohort, _StackedLane._apply_peer_tick_event
                    )
                if depart_cohort:
                    apply_cohort(
                        depart_cohort, _StackedLane._apply_departure_event
                    )
                pending = [
                    (slot, lane)
                    for cohort in (
                        arrival_cohort,
                        seed_cohort,
                        tick_cohort,
                        depart_cohort,
                    )
                    for slot, lane, _net in cohort
                ]

            # -- phase 3: one global wasted-tick classification ------------
            if win_lanes:
                nseg = len(win_lanes)
                w_arr = np.array(win_widths, dtype=np.int64)
                seg_starts = np.zeros(nseg, dtype=np.int64)
                np.cumsum(w_arr[:-1], out=seg_starts[1:])
                lane_of = np.repeat(np.arange(nseg), w_arr)
                # Direct pending-draw slices (``uniforms_view`` / ``exp_view``
                # inlined — two method calls per lane-window add up here).
                # Only every 4th exponential (the inter-event gap) is read,
                # so the exp gather is strided per lane: lane spans are
                # 4-aligned in ``ubuf``, making this exactly ``ebuf[0::4]``
                # of the full concatenation.
                ubuf = np.concatenate(
                    [lane.draws._uniforms[lane.draws._pos:
                                          lane.draws._pos + 4 * w]
                     for lane, w in zip(win_lanes, win_widths)]
                )
                exp0 = np.concatenate(
                    [lane.draws._exp[lane.draws._pos:
                                     lane.draws._pos + 4 * w: 4]
                     for lane, w in zip(win_lanes, win_widths)]
                )
                # One gather of every per-lane scalar (row counts and sheet
                # bases are exact in float64) instead of seven array builds;
                # a flat list skips numpy's nested-sequence row parsing.
                scalars = np.array(
                    [
                        v
                        for lane in win_lanes
                        for v in (
                            lane._stk_total,
                            lane._stk_r01,
                            lane._stk_r012,
                            lane._stk_scale,
                            lane._time,
                            lane._n,
                            lane._sheet_base,
                        )
                    ],
                    dtype=np.float64,
                ).reshape(nseg, 7)
                tot = scalars[:, 0]
                r01 = scalars[:, 1]
                r012 = scalars[:, 2]
                scale = scalars[:, 3]
                t0 = scalars[:, 4]
                n_arr = scalars[:, 5].astype(np.int64)
                base = scalars[:, 6].astype(np.int64)
                sel = ubuf[1::4] * tot[lane_of]
                is_tick = (sel > r01[lane_of]) & (sel <= r012[lane_of])
                tick_u = ubuf[2::4]
                n_of = n_arr[lane_of]
                ticker = (tick_u * n_of).astype(np.int64)
                np.minimum(ticker, n_of - 1, out=ticker)
                # Heterogeneous lanes replay the per-class segment walk.
                # Lanes whose class tables have the same segment count are
                # resolved together: their tables stack into one matrix and
                # one set of array ops classifies every window (the walk's
                # doubles are untouched — same products, same truncation —
                # so rows equal the per-lane ``_batch_hetero_tickers``).
                hetero_groups: Dict[int, List[Tuple[int, dict]]] = {}
                for i, lane in enumerate(win_lanes):
                    if lane._classes is None:
                        continue
                    tabs = lane._ticker_tables()
                    if tabs is None:
                        s = seg_starts[i]
                        is_tick[s : s + win_widths[i]] = False
                    else:
                        hetero_groups.setdefault(
                            len(tabs["boundaries"]), []
                        ).append((i, tabs))
                for nsegs, group in hetero_groups.items():
                    if len(group) == 1:
                        i, tabs = group[0]
                        s = seg_starts[i]
                        e = s + win_widths[i]
                        boundaries = tabs["boundaries"]
                        thr = tick_u[s:e] * float(boundaries[-1])
                        seg = np.searchsorted(boundaries, thr, side="right")
                        np.minimum(seg, nsegs - 1, out=seg)
                        idx = (
                            (thr - tabs["starts"][seg]) / tabs["units"][seg]
                        ).astype(np.int64)
                        np.minimum(idx, tabs["sizes"][seg] - 1, out=idx)
                        ticker[s:e] = tabs["handles"][tabs["offsets"][seg] + idx]
                        continue
                    bound_m = np.stack([t["boundaries"] for _, t in group])
                    start_m = np.stack([t["starts"] for _, t in group])
                    unit_m = np.stack([t["units"] for _, t in group])
                    size_m = np.stack([t["sizes"] for _, t in group])
                    off_m = np.stack([t["offsets"] for _, t in group])
                    # One boolean mask covers every lane of the group: the
                    # gather (and the final scatter) walk the group's spans
                    # in ascending candidate order, identical to span-wise
                    # concatenation, without per-lane numpy calls.
                    hmask = np.zeros(len(tick_u), dtype=bool)
                    widths_g: List[int] = []
                    for i, _tabs in group:
                        s = int(seg_starts[i])
                        w = win_widths[i]
                        hmask[s : s + w] = True
                        widths_g.append(w)
                    u_h = tick_u[hmask]
                    lane_h = np.repeat(np.arange(len(group)), widths_g)
                    thr = u_h * bound_m[lane_h, nsegs - 1]
                    # Count of boundaries <= threshold == searchsorted
                    # (side="right") on each lane's sorted boundary row.
                    seg = (bound_m[lane_h] <= thr[:, None]).sum(axis=1)
                    np.minimum(seg, nsegs - 1, out=seg)
                    idx = (
                        (thr - start_m[lane_h, seg]) / unit_m[lane_h, seg]
                    ).astype(np.int64)
                    np.minimum(idx, size_m[lane_h, seg] - 1, out=idx)
                    loc = off_m[lane_h, seg] + idx
                    # The per-lane handle rows concatenate into one table;
                    # per-lane offsets lift ``loc`` into it, so one gather
                    # and one scatter resolve the whole group.
                    h_sizes = [len(t["handles"]) for _, t in group]
                    h_off = np.zeros(len(group), dtype=np.int64)
                    np.cumsum(h_sizes[:-1], out=h_off[1:])
                    h_cat = np.concatenate([t["handles"] for _, t in group])
                    ticker[hmask] = h_cat[h_off[lane_h] + loc]
                target = (ubuf[3::4] * n_of).astype(np.int64)
                np.minimum(target, n_of - 1, out=target)
                sheet = self._sheet
                g = base[lane_of]
                useless = (sheet[g + ticker] & ~sheet[g + target]) == 0
                ok = is_tick & ((ticker == target) | useless)
                pos = np.arange(len(ok), dtype=np.int64) - seg_starts[lane_of]
                first_bad = np.minimum.reduceat(
                    np.where(ok, _BIG, pos), seg_starts
                )
                counts = np.minimum(first_bad, w_arr)
                # Exact per-lane clock walk: sequential accumulation along
                # axis 1 reproduces the scalar left-fold double for double.
                maxw = int(w_arr.max())
                times = np.empty((nseg, maxw + 1), dtype=np.float64)
                times[:, 0] = t0
                steps = exp0 * scale[lane_of]
                if int(w_arr.min()) == maxw:
                    # Uniform widths (the common case: windows double in
                    # lockstep): a plain reshape replaces the fancy scatter.
                    times[:, 1:] = steps.reshape(nseg, maxw)
                else:
                    times[:, 1:] = 0.0
                    times[lane_of, pos + 1] = steps
                np.cumsum(times, axis=1, out=times)
                rows_idx = np.arange(nseg)
                end_time = times[rows_idx, counts]
                crossed = end_time > horizon
                applied = counts
                if crossed.any():
                    # Horizon crossings happen once per lane per run, and
                    # each clock row is strictly increasing: a per-lane
                    # bisect replaces a full crossing matrix.
                    applied = counts.copy()
                    for i in np.flatnonzero(crossed):
                        applied[i] = int(
                            np.searchsorted(
                                times[i, 1 : counts[i] + 1],
                                horizon,
                                side="right",
                            )
                        )
                    end_time = times[rows_idx, applied]
                applied_list = applied.tolist()
                newtime_list = end_time.tolist()
                crossed_list = crossed.tolist()
                seg_list = seg_starts.tolist()
                # -- phase 4: apply each lane's prefix, then its breaker ---
                for i, lane in enumerate(win_lanes):
                    slot = win_slots[i]
                    k = applied_list[i]
                    if k:
                        t_new = newtime_list[i]
                        next_sample = lane._next_sample
                        if next_sample <= horizon and next_sample < t_new:
                            while next_sample <= horizon and next_sample < t_new:
                                lane._record_sample(next_sample)
                                next_sample += interval
                            lane._next_sample = next_sample
                        lane._time = t_new
                        lane.metrics.wasted_contacts += k
                        # Inline advance(4k): the window width was capped at
                        # remaining >> 2, so 4k draws are always pending.
                        lane.draws._pos += 4 * k
                        lane._events += k
                    if crossed_list[i]:
                        # The candidate after the prefix crosses the
                        # horizon: its exponential is consumed, the run
                        # closes (solo crossing semantics).
                        lane.draws._pos += 1
                        lane._time = horizon
                        results[slot] = self._finalize(
                            lane, horizon, interval, True
                        )
                        continue
                    if k == win_widths[i]:
                        window = lane._stk_window * 2
                        lane._stk_window = (
                            window if window < _MAX_WINDOW else _MAX_WINDOW
                        )
                        continue
                    # Broken streak: the breaking candidate is already
                    # classified — apply it through the cohort primitives
                    # instead of burning a round on a scalar re-step.  The
                    # next window is sized to the streak the lane actually
                    # ran (plus a small margin) rather than blind halving:
                    # a broken lane re-windows every round regardless of
                    # width, so anything past its streak is pure speculative
                    # classification waste.
                    window = k + 8
                    lane._stk_window = (
                        window if window > _MIN_WINDOW else _MIN_WINDOW
                    )
                    ev = lane._events
                    if (
                        (
                            suspend_after_events is not None
                            and ev >= suspend_after_events
                        )
                        or (max_events is not None and ev >= max_events)
                        or (
                            max_population is not None
                            and lane._n >= max_population
                        )
                    ):
                        continue  # retires at the next classification
                    t_next = float(times[i, k + 1])
                    if t_next > horizon:
                        lane.draws._pos += 1
                        lane._time = horizon
                        results[slot] = self._finalize(
                            lane, horizon, interval, True
                        )
                        continue
                    gi = seg_list[i] + k
                    if is_tick[gi]:
                        # A useful peer tick — the canonical streak breaker.
                        # Ticker / target rows come from the classification
                        # above; the transfer primitive consumes the piece
                        # pick exactly like the scalar handler.
                        next_sample = lane._next_sample
                        if next_sample <= horizon and next_sample < t_next:
                            while next_sample <= horizon and next_sample < t_next:
                                lane._record_sample(next_sample)
                                next_sample += interval
                            lane._next_sample = next_sample
                        lane._time = t_next
                        # Inline advance(4): candidate k+1 sits fully inside
                        # the window's 4·width pending draws.
                        lane.draws._pos += 4
                        lane._apply_transfer_tick(int(ticker[gi]), int(target[gi]))
                        lane._events = ev + 1
                        lane._stk_dirty = True
                        continue
                    s_val = float(sel[gi])
                    rates = lane._stk_rates
                    if (s_val <= rates[0] and lane._thin_arrivals) or (
                        rates[0] < s_val <= lane._stk_r01 and lane._thin_seed
                    ):
                        # Thinnable candidate: leave it (draws untouched)
                        # for the next round's thinned-reject batch.
                        continue
                    next_sample = lane._next_sample
                    if next_sample <= horizon and next_sample < t_next:
                        while next_sample <= horizon and next_sample < t_next:
                            lane._record_sample(next_sample)
                            next_sample += interval
                        lane._next_sample = next_sample
                    lane._time = t_next
                    lane.draws._pos += 2
                    if s_val <= rates[0]:
                        lane._apply_arrival_event()
                    elif s_val <= lane._stk_r01:
                        lane._apply_seed_tick_event()
                    elif s_val <= lane._stk_r012:
                        lane._apply_peer_tick_event()
                    else:
                        lane._apply_departure_event()
                    lane._events = ev + 1
                    lane._stk_dirty = True

            active = [
                (slot, lane) for slot, lane in active if results[slot] is None
            ]
        return results


__all__ = ["StackedSwarmKernel"]
