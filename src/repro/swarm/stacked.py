"""Stacked fleet mega-kernel: one SoA driver over many independent swarms.

A fleet chunk of small swarms pays the per-swarm Python cost of the solo
event loop even though almost every event is a *wasted peer tick* that the
array kernel's batch stage classifies vectorially: each
:meth:`~repro.swarm.kernel.ArraySwarmKernel._batch_stage` call only ever
amortises over one swarm's streak (~15 events on scenario workloads), so a
200-swarm fleet makes thousands of short vector calls.
:class:`StackedSwarmKernel` lifts that classification across swarms: all
lanes' pending draw windows are concatenated into one candidate array per
round (a swarm-id column keyed gather against a shared mask sheet), so one
set of numpy ops resolves every lane's streak at once.

Determinism contract
--------------------
Each lane is a full :class:`~repro.swarm.kernel.ArraySwarmKernel` with its
own :class:`~repro.swarm.drawbuf.DrawBuffer` (seeded exactly as a solo run
would be), and the stacked driver consumes each lane's buffer with the same
per-decision semantics — batched wasted ticks eat four draws, thinned
candidates three, scalar events go through the lane's own
``_apply_event`` — in the same per-lane order as the solo loop.  Block
refills happen at fixed 4096-draw boundaries of the *per-lane* stream
regardless of how draws are grouped, so every lane's trajectory (metrics,
samples, snapshots) is **bit-identical to a solo run on the same seed**;
``tests/test_stacked.py`` asserts this per lane and at fleet scale.
Interleaving lanes is free because swarms are independent: no draw of one
lane can influence another.

Structure
---------
* A shared uint64 **mask sheet** holds every lane's piece-mask column at a
  per-lane base offset (``lane._masks`` is a view into the sheet), so the
  cross-lane usefulness test is two gathers on one array instead of one
  small gather per swarm.  Lane growth re-homes the lane at the sheet's
  tail (the old segment is abandoned — growth is rare and the sheet is
  transient).
* Per round, each active lane contributes one *action*: a batched run of
  wasted ticks (global classification), a batched run of thinning-rejected
  candidates (the lane's own ``_batch_thinned``), one scalar event, a
  suspension, or its finalisation.  Finished lanes retire from the active
  list; their :class:`~repro.swarm.swarm.SwarmResult` is exactly what the
  solo loop would have returned.
* Snapshots stay per-swarm: ``lane.capture_state()`` emits the ordinary
  format-2 payload (backend ``"array"``), and ``add_lane(snapshot=...)``
  restores one, so fleet checkpoint/resume interoperates freely with the
  per-swarm path.

Limits: lanes inherit the array kernel's ``K <= 64`` bitmask bound, and
custom piece-selection policies are only batched under the same conditions
as the solo batch stage (``rng_free_when_useless`` and no retry speedup);
other lanes simply take the scalar route every round.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.parameters import SystemParameters
from ..core.scenario import ScenarioSpec
from ..core.state import SystemState
from ..simulation.rng import SeedLike, make_rng
from .drawbuf import DrawBuffer
from .kernel import ArraySwarmKernel
from .metrics import SwarmMetrics
from .policies import PieceSelectionPolicy, SwarmView
from .swarm import SwarmResult

#: Sentinel larger than any candidate window (first-bad reduction).
_BIG = np.int64(1) << np.int64(40)

#: Initial / ceiling per-lane candidate window of the global classification
#: (doubled after a fully clean round, reset after a broken streak).
_MIN_WINDOW = 64
_MAX_WINDOW = 1024

#: Below this block size per-lane windows cannot amortise anything (CI pins
#: ``DRAW_BLOCK_SIZE=1``); lanes are simply driven by their own solo loop.
_MIN_STACKED_BLOCK = 8


class _StackedLane(ArraySwarmKernel):
    """An array kernel whose mask column lives in the stack's shared sheet."""

    _stack: Optional["StackedSwarmKernel"] = None

    def _grow(self) -> None:
        # The base grow detaches every column (including ``_masks``) into
        # private doubled arrays; re-home the masks on the sheet afterwards.
        super()._grow()
        if self._stack is not None:
            self._stack._adopt(self)


def _clone_lane(template: _StackedLane, seed: SeedLike) -> _StackedLane:
    """A fresh lane sharing the template's immutable digested configuration.

    Building a kernel from scratch re-derives the same arrival tables,
    schedule digests and class tables for every swarm of a fleet point;
    since :func:`~repro.fleet.spec.materialize_tasks` shares one
    params/scenario object per distinct point, those digests can be shared
    too.  Everything mutable — RNG, draw buffer, metrics, population
    arrays, per-class lists, run-loop state — is rebuilt per lane, so
    clones are trajectory-independent; only when the policy is the stateless
    built-in default do callers clone at all.
    """
    lane = object.__new__(_StackedLane)
    lane.__dict__.update(template.__dict__)
    lane._stack = None
    lane.rng = make_rng(seed)
    lane.draws = DrawBuffer(lane.rng, template.draws.block_size)
    lane.metrics = SwarmMetrics()
    capacity = len(template._arrival_time)
    lane._masks = np.zeros(capacity, dtype=np.uint64)
    lane._arrival_time = np.zeros(capacity, dtype=np.float64)
    lane._completed_at = np.full(capacity, np.nan, dtype=np.float64)
    lane._arrived_with_rare = np.zeros(capacity, dtype=np.bool_)
    lane._infected = np.zeros(capacity, dtype=np.bool_)
    lane._was_one_club = np.zeros(capacity, dtype=np.bool_)
    lane._seed_slot = np.full(capacity, -1, dtype=np.int64)
    lane._sped_slot = np.full(capacity, -1, dtype=np.int64)
    lane._n = 0
    lane._seeds = []
    lane._sped = []
    lane._one_club_count = 0
    lane._piece_counts = {k: 0 for k in range(1, template.params.num_pieces + 1)}
    lane._time = 0.0
    lane._membership_version = 0
    lane._ticker_cache = None
    lane._run_active = False
    lane._run_horizon = None
    lane._run_interval = None
    lane._next_sample = 0.0
    lane._events = 0
    if lane._classes is not None:
        lane._class_idx = np.zeros(capacity, dtype=np.int32)
        lane._member_slot = np.full(capacity, -1, dtype=np.int64)
        num_classes = len(lane._classes)
        lane._class_members = [[] for _ in range(num_classes)]
        lane._class_seeds = [[] for _ in range(num_classes)]
        lane._class_sped = [[] for _ in range(num_classes)]
    lane._view = SwarmView(
        num_pieces=template.params.num_pieces,
        piece_counts=MappingProxyType(lane._piece_counts),
        total_peers=0,
        time=0.0,
    )
    return lane


class StackedSwarmKernel:
    """N independent array-kernel swarms driven by one round-based loop.

    Usage::

        stack = StackedSwarmKernel()
        for task in chunk:
            stack.add_lane(task.params, seed=..., scenario=task.scenario)
        results = stack.run_all(horizon, initial_states=[...], ...)

    ``run_all`` returns one :class:`~repro.swarm.swarm.SwarmResult` per
    lane, in lane order, each bit-identical to the solo run.
    """

    def __init__(self) -> None:
        self._lanes: List[_StackedLane] = []
        self._sheet = np.zeros(1024, dtype=np.uint64)
        self._sheet_used = 0
        self._templates: Dict[Tuple[int, int], _StackedLane] = {}

    # -- lane management -----------------------------------------------------

    @property
    def num_lanes(self) -> int:
        return len(self._lanes)

    def lane(self, slot: int) -> ArraySwarmKernel:
        """The underlying kernel of one lane (e.g. for ``capture_state``)."""
        return self._lanes[slot]

    def _adopt(self, lane: _StackedLane) -> None:
        """(Re-)home a lane's mask column inside the shared sheet."""
        masks = lane._masks
        capacity = len(masks)
        if self._sheet_used + capacity > len(self._sheet):
            new_size = max(len(self._sheet) * 2, 1024)
            while new_size < self._sheet_used + capacity:
                new_size *= 2
            sheet = np.zeros(new_size, dtype=np.uint64)
            sheet[: self._sheet_used] = self._sheet[: self._sheet_used]
            self._sheet = sheet
            # Slice views into the old sheet died with it: rebind them all.
            for other in self._lanes:
                base = other._sheet_base
                if other is not lane:
                    other._masks = sheet[base : base + len(other._masks)]
        base = self._sheet_used
        self._sheet_used = base + capacity
        self._sheet[base : base + capacity] = masks
        lane._masks = self._sheet[base : base + capacity]
        lane._sheet_base = base

    def add_lane(
        self,
        params: SystemParameters,
        *,
        seed: SeedLike = None,
        scenario: Optional[ScenarioSpec] = None,
        policy: Optional[PieceSelectionPolicy] = None,
        initial_capacity: int = 1024,
        snapshot: Optional[Dict[str, object]] = None,
    ) -> int:
        """Append one swarm lane; returns its slot index.

        Lanes with a shared ``(params, scenario)`` object pair (what
        ``materialize_tasks`` produces for swarms of the same fleet point)
        are cloned from a per-pair template instead of re-digesting the
        configuration; a custom ``policy`` disables cloning since its
        statefulness is unknown.  ``snapshot`` restores a format-2 per-swarm
        snapshot (``capture_state`` of either the solo kernel or a stacked
        lane) into the new lane; ``run_all`` then resumes it.
        """
        if policy is None:
            key = (id(params), id(scenario))
            template = self._templates.get(key)
            if template is None:
                lane = _StackedLane(
                    params,
                    scenario=scenario,
                    initial_capacity=initial_capacity,
                    seed=seed,
                )
                self._templates[key] = lane
            else:
                lane = _clone_lane(template, seed)
        else:
            lane = _StackedLane(
                params,
                policy=policy,
                scenario=scenario,
                initial_capacity=initial_capacity,
                seed=seed,
            )
        if snapshot is not None:
            lane.restore_state(snapshot)
        slot = len(self._lanes)
        self._adopt(lane)
        self._lanes.append(lane)
        lane._stack = self
        return slot

    # -- finalisation helpers --------------------------------------------------

    @staticmethod
    def _finalize(
        lane: _StackedLane, horizon: float, interval: float, horizon_reached: bool
    ) -> SwarmResult:
        """Flush the trailing sample grid and close the lane's run (solo
        epilogue semantics)."""
        next_sample = lane._next_sample
        while next_sample <= horizon:
            lane._record_sample(next_sample)
            next_sample += interval
        lane._next_sample = next_sample
        lane._run_active = False
        return SwarmResult(
            metrics=lane.metrics,
            final_time=lane._time,
            final_population=lane.population,
            final_state=lane.current_state(),
            horizon_reached=horizon_reached,
            suspended=False,
            events_executed=lane._events,
        )

    @staticmethod
    def _suspend(lane: _StackedLane) -> SwarmResult:
        """Suspend a lane mid-run (no sample flush, run stays continuable)."""
        return SwarmResult(
            metrics=lane.metrics,
            final_time=lane._time,
            final_population=lane.population,
            final_state=lane.current_state(),
            horizon_reached=False,
            suspended=True,
            events_executed=lane._events,
        )

    # -- the stacked event loop ------------------------------------------------

    def run_all(
        self,
        horizon: float,
        *,
        initial_states: Optional[Sequence[Optional[SystemState]]] = None,
        sample_interval: Optional[float] = None,
        max_events: Optional[int] = None,
        max_population: Optional[int] = None,
        suspend_after_events: Optional[int] = None,
    ) -> List[SwarmResult]:
        """Run every lane to ``horizon`` (or its cap); one result per lane.

        Lanes restored from a suspended snapshot resume where they left off
        (their recorded horizon / sample interval must match); the rest
        start fresh, optionally pre-seeded from ``initial_states``.
        ``suspend_after_events`` suspends each lane once its cumulative
        event count reaches the bound, exactly like the solo loop's
        parameter — the suspended lane's ``capture_state()`` equals the
        solo snapshot bit for bit.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        lanes = self._lanes
        results: List[Optional[SwarmResult]] = [None] * len(lanes)
        interval = (
            sample_interval if sample_interval is not None else horizon / 200.0
        )
        for slot, lane in enumerate(lanes):
            if lane._run_active:  # restored mid-run: resume
                if horizon != lane._run_horizon:
                    raise ValueError(
                        f"resumed horizon {horizon} does not match the "
                        f"suspended run's horizon {lane._run_horizon}"
                    )
                if (
                    sample_interval is not None
                    and sample_interval != lane._run_interval
                ):
                    raise ValueError(
                        f"resumed sample_interval {sample_interval} does not "
                        f"match the suspended run's interval {lane._run_interval}"
                    )
            else:
                state = (
                    initial_states[slot] if initial_states is not None else None
                )
                if state is not None:
                    lane.seed_population(state)
                lane._run_active = True
                lane._run_horizon = horizon
                lane._run_interval = interval
                lane._next_sample = 0.0
                lane._events = 0
            lane._stk_dirty = True
            lane._stk_window = _MIN_WINDOW

        # Tiny draw blocks (CI's DRAW_BLOCK_SIZE=1 equivalence mode) leave
        # nothing to stack; the solo loop is the same trajectory.
        if lanes and lanes[0].draws.block_size < _MIN_STACKED_BLOCK:
            for slot, lane in enumerate(lanes):
                results[slot] = lane.run(
                    horizon,
                    resume=True,
                    max_events=max_events,
                    max_population=max_population,
                    suspend_after_events=suspend_after_events,
                )
            return results

        def advance_inline(slot: int, lane: _StackedLane) -> int:
            """Drive one lane through the solo loop body until its next
            candidate is a batchable wasted tick (returns the classification
            window > 0) or the lane's run ends (returns 0, result stored).

            This is the solo ``run`` loop minus the wasted-tick batch stage:
            loop-top caps, rate recomputation, the thinned-run batch, and
            the scalar event step — in exactly the solo order, consuming
            exactly the solo draws — so interleaving it with the global tick
            classification preserves per-lane trajectories bit for bit.
            """
            while True:
                events = lane._events
                if (
                    suspend_after_events is not None
                    and events >= suspend_after_events
                ):
                    results[slot] = self._suspend(lane)
                    return 0
                if max_events is not None and events >= max_events:
                    results[slot] = self._finalize(lane, horizon, interval, False)
                    return 0
                if max_population is not None and lane._n >= max_population:
                    results[slot] = self._finalize(lane, horizon, interval, False)
                    return 0
                if lane._stk_dirty:
                    rates = lane._event_rates()
                    total = rates[0] + rates[1] + rates[2] + rates[3]
                    lane._stk_rates = rates
                    lane._stk_total = total
                    if total > 0.0:
                        lane._stk_r01 = rates[0] + rates[1]
                        lane._stk_r012 = lane._stk_r01 + rates[2]
                        lane._stk_scale = 1.0 / total
                    lane._stk_dirty = False
                else:
                    rates = lane._stk_rates
                    total = lane._stk_total
                if total <= 0.0:
                    lane._time = horizon
                    results[slot] = self._finalize(lane, horizon, interval, True)
                    return 0
                draws = lane.draws
                pos = draws._pos
                remaining = draws._len - pos
                if remaining == 0:
                    # Refilling an *empty* buffer is bit-free: blocks sit at
                    # fixed positions of the per-lane stream, so the next
                    # scalar draw would trigger the identical refill.
                    draws._refill()
                    pos = 0
                    remaining = draws._len
                if lane._batch_enabled and remaining >= 2:
                    first_sel = float(draws._uniforms[pos + 1]) * total
                    if lane._stk_r01 < first_sel <= lane._stk_r012:
                        window = remaining >> 2
                        if window > lane._stk_window:
                            window = lane._stk_window
                        budget = (
                            max_events - events if max_events is not None else None
                        )
                        if suspend_after_events is not None:
                            left = suspend_after_events - events
                            budget = left if budget is None else min(budget, left)
                        if budget is not None and window > budget:
                            window = budget
                        if window > 0:
                            return window
                        # remaining < 4: the tick is handled by the scalar
                        # step below, exactly like the solo batch declining.
                    elif (first_sel <= rates[0] and lane._thin_arrivals) or (
                        rates[0] < first_sel <= lane._stk_r01 and lane._thin_seed
                    ):
                        budget = (
                            max_events - events if max_events is not None else None
                        )
                        if suspend_after_events is not None:
                            left = suspend_after_events - events
                            budget = left if budget is None else min(budget, left)
                        applied_thin, next_sample = lane._batch_thinned(
                            rates,
                            total,
                            horizon,
                            interval,
                            lane._next_sample,
                            budget,
                        )
                        if applied_thin:
                            lane._events = events + applied_thin
                            lane._next_sample = next_sample
                            continue
                # Scalar step (solo semantics: the horizon-crossing
                # exponential is consumed, then the run finalises).
                net = lane._time + draws.exponential(lane._stk_scale)
                next_sample = lane._next_sample
                while next_sample <= horizon and next_sample < net:
                    lane._record_sample(next_sample)
                    next_sample += interval
                lane._next_sample = next_sample
                if net > horizon:
                    lane._time = horizon
                    results[slot] = self._finalize(lane, horizon, interval, True)
                    return 0
                lane._time = net
                lane._apply_event(rates)
                lane._events = events + 1
                lane._stk_dirty = True

        active: List[Tuple[int, _StackedLane]] = list(enumerate(lanes))
        while active:
            # -- phase 1: advance every lane to its next batchable tick ----
            class_slots: List[Tuple[int, _StackedLane]] = []
            widths: List[int] = []
            for slot, lane in active:
                window = advance_inline(slot, lane)
                if window:
                    class_slots.append((slot, lane))
                    widths.append(window)

            if not class_slots:
                break  # every lane finished inside advance_inline
            # -- phase 2: one global wasted-tick classification ------------
            if True:
                nseg = len(class_slots)
                w_arr = np.array(widths, dtype=np.int64)
                seg_starts = np.zeros(nseg, dtype=np.int64)
                np.cumsum(w_arr[:-1], out=seg_starts[1:])
                lane_of = np.repeat(np.arange(nseg), w_arr)
                ubuf = np.concatenate(
                    [lane.draws.uniforms_view(4 * w)
                     for (_s, lane), w in zip(class_slots, widths)]
                )
                ebuf = np.concatenate(
                    [lane.draws.exp_view(4 * w)
                     for (_s, lane), w in zip(class_slots, widths)]
                )
                tot = np.array([lane._stk_total for _s, lane in class_slots])
                r01 = np.array([lane._stk_r01 for _s, lane in class_slots])
                r012 = np.array([lane._stk_r012 for _s, lane in class_slots])
                scale = np.array([lane._stk_scale for _s, lane in class_slots])
                n_arr = np.array(
                    [lane._n for _s, lane in class_slots], dtype=np.int64
                )
                base = np.array(
                    [lane._sheet_base for _s, lane in class_slots], dtype=np.int64
                )
                t0 = np.array([lane._time for _s, lane in class_slots])
                sel = ubuf[1::4] * tot[lane_of]
                is_tick = (sel > r01[lane_of]) & (sel <= r012[lane_of])
                tick_u = ubuf[2::4]
                n_of = n_arr[lane_of]
                ticker = (tick_u * n_of).astype(np.int64)
                np.minimum(ticker, n_of - 1, out=ticker)
                for i, (_slot, lane) in enumerate(class_slots):
                    if lane._classes is not None:
                        s = seg_starts[i]
                        e = s + widths[i]
                        rows = lane._batch_hetero_tickers(tick_u[s:e])
                        if rows is None:
                            is_tick[s:e] = False
                        else:
                            ticker[s:e] = rows
                target = (ubuf[3::4] * n_of).astype(np.int64)
                np.minimum(target, n_of - 1, out=target)
                sheet = self._sheet
                g = base[lane_of]
                useless = (sheet[g + ticker] & ~sheet[g + target]) == 0
                ok = is_tick & ((ticker == target) | useless)
                pos = np.arange(len(ok), dtype=np.int64) - seg_starts[lane_of]
                first_bad = np.minimum.reduceat(
                    np.where(ok, _BIG, pos), seg_starts
                )
                counts = np.minimum(first_bad, w_arr)
                # Exact per-lane clock walk: sequential accumulation along
                # axis 1 reproduces the scalar left-fold double for double.
                maxw = int(w_arr.max())
                times = np.zeros((nseg, maxw + 1), dtype=np.float64)
                times[:, 0] = t0
                times[lane_of, pos + 1] = ebuf[0::4] * scale[lane_of]
                np.cumsum(times, axis=1, out=times)
                in_streak = np.arange(maxw)[None, :] < counts[:, None]
                crossing = (times[:, 1:] > horizon) & in_streak
                has_cross = crossing.any(axis=1)
                first_cross = np.argmax(crossing, axis=1)
                applied = np.where(has_cross, first_cross, counts)
                newtime = times[np.arange(nseg), applied]
                applied_list = applied.tolist()
                newtime_list = newtime.tolist()
                clean = (applied == w_arr).tolist()
                # -- phase 3: apply each lane's accepted prefix ------------
                still_active: List[Tuple[int, _StackedLane]] = []
                for i, (slot, lane) in enumerate(class_slots):
                    k = applied_list[i]
                    if k == 0:
                        # Candidate 0 was tick-typed but either useful (a
                        # transfer — the streak breaker) or past the
                        # horizon: exactly the solo "batch applies nothing"
                        # case, whose next step is the scalar one.  Run it
                        # here; the lane re-enters phase 1 next round.
                        lane._stk_window = _MIN_WINDOW
                        draws = lane.draws
                        rates = lane._stk_rates
                        net = lane._time + draws.exponential(lane._stk_scale)
                        next_sample = lane._next_sample
                        while next_sample <= horizon and next_sample < net:
                            lane._record_sample(next_sample)
                            next_sample += interval
                        lane._next_sample = next_sample
                        if net > horizon:
                            lane._time = horizon
                            results[slot] = self._finalize(
                                lane, horizon, interval, True
                            )
                            continue
                        lane._time = net
                        lane._apply_event(rates)
                        lane._events += 1
                        lane._stk_dirty = True
                        still_active.append((slot, lane))
                        continue
                    t_new = newtime_list[i]
                    next_sample = lane._next_sample
                    if next_sample <= horizon and next_sample < t_new:
                        while next_sample <= horizon and next_sample < t_new:
                            lane._record_sample(next_sample)
                            next_sample += interval
                        lane._next_sample = next_sample
                    lane._time = t_new
                    lane.metrics.wasted_contacts += k
                    lane.draws.advance(4 * k)
                    lane._events += k
                    if clean[i]:
                        window = lane._stk_window * 2
                        lane._stk_window = (
                            window if window < _MAX_WINDOW else _MAX_WINDOW
                        )
                    else:
                        lane._stk_window = _MIN_WINDOW
                    still_active.append((slot, lane))

            active = still_active
        return results


__all__ = ["StackedSwarmKernel"]
