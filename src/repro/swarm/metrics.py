"""Metrics collected by the swarm simulators.

:class:`SwarmMetrics` accumulates a sampled time series of the population
size, the number of peer seeds, the one-club size, the minimum piece count
(how rare the rarest piece is) and the Figure-2 group sizes, plus event
counters (arrivals, departures, downloads, wasted contacts) and the sojourn
times of departed peers.  Summary helpers compute the growth slope of the
population, which the experiments use to classify runs as stable or unstable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .groups import GroupSnapshot


@dataclass
class SwarmMetrics:
    """Time series and counters from one swarm simulation run."""

    sample_times: List[float] = field(default_factory=list)
    population: List[int] = field(default_factory=list)
    num_seeds: List[int] = field(default_factory=list)
    one_club_size: List[int] = field(default_factory=list)
    min_piece_count: List[int] = field(default_factory=list)
    group_snapshots: List[GroupSnapshot] = field(default_factory=list)
    #: Census-estimate quality series, recorded at sample times only when a
    #: gossip census is active (empty lists under the exact oracle):
    #: ``census_error[i]`` is the mean (over live peers) L1 distance between
    #: the peer's estimated piece-frequency vector and the oracle counts at
    #: ``sample_times[i]``; ``census_staleness[i]`` is the mean time since a
    #: peer's estimate last changed.
    census_error: List[float] = field(default_factory=list)
    census_staleness: List[float] = field(default_factory=list)

    total_arrivals: int = 0
    total_departures: int = 0
    total_downloads: int = 0
    total_seed_uploads: int = 0
    wasted_contacts: int = 0
    #: Candidate scheduled events rejected by Poisson thinning (only nonzero
    #: when a scenario runs a non-constant arrival or seed rate schedule).
    thinned_events: int = 0
    #: Contact-locality counters (only nonzero under a topology overlay):
    #: peer ticks whose overlay neighbor accepted a piece vs. ticks wasted on
    #: a useless (or absent) neighbor.  Fixed-seed ticks are not counted.
    neighbor_useful_ticks: int = 0
    neighbor_useless_ticks: int = 0
    #: Peers removed by a flash-exit cull (scenario ``cull_time``).
    culled_peers: int = 0
    sojourn_times: List[float] = field(default_factory=list)
    download_times: List[float] = field(default_factory=list)

    # -- recording -------------------------------------------------------------

    def record_sample(
        self,
        time: float,
        population: int,
        num_seeds: int,
        one_club_size: int,
        min_piece_count: int,
        group_snapshot: Optional[GroupSnapshot] = None,
        census_error: Optional[float] = None,
        census_staleness: Optional[float] = None,
    ) -> None:
        self.sample_times.append(time)
        self.population.append(population)
        self.num_seeds.append(num_seeds)
        self.one_club_size.append(one_club_size)
        self.min_piece_count.append(min_piece_count)
        if group_snapshot is not None:
            self.group_snapshots.append(group_snapshot)
        if census_error is not None:
            self.census_error.append(census_error)
        if census_staleness is not None:
            self.census_staleness.append(census_staleness)

    def record_departure(self, sojourn: float, download_time: Optional[float]) -> None:
        self.total_departures += 1
        self.sojourn_times.append(sojourn)
        if download_time is not None:
            self.download_times.append(download_time)

    # -- arrays ------------------------------------------------------------------

    def times_array(self) -> np.ndarray:
        return np.asarray(self.sample_times, dtype=float)

    def population_array(self) -> np.ndarray:
        return np.asarray(self.population, dtype=float)

    def one_club_array(self) -> np.ndarray:
        return np.asarray(self.one_club_size, dtype=float)

    # -- summaries --------------------------------------------------------------

    @property
    def final_population(self) -> int:
        return self.population[-1] if self.population else 0

    @property
    def peak_population(self) -> int:
        return max(self.population) if self.population else 0

    def mean_population(self, last_fraction: float = 0.5) -> float:
        """Mean population over the trailing ``last_fraction`` of samples."""
        values = self.population_array()
        if values.size == 0:
            return 0.0
        start = int(round((1.0 - last_fraction) * values.size))
        return float(values[start:].mean())

    def population_slope(self, last_fraction: float = 0.5) -> float:
        """Least-squares slope of ``n(t)`` over the trailing portion of the run.

        A clearly positive slope (relative to the arrival rate) indicates the
        linear growth characteristic of transience; a slope near zero with a
        bounded population indicates stability.
        """
        times = self.times_array()
        values = self.population_array()
        if times.size < 3:
            return 0.0
        start = int(round((1.0 - last_fraction) * times.size))
        t = times[start:]
        y = values[start:]
        if t.size < 3 or np.ptp(t) == 0:
            return 0.0
        slope, _intercept = np.polyfit(t, y, 1)
        return float(slope)

    def one_club_slope(self, last_fraction: float = 0.5) -> float:
        """Least-squares slope of the one-club size over the trailing portion."""
        times = self.times_array()
        values = self.one_club_array()
        if times.size < 3:
            return 0.0
        start = int(round((1.0 - last_fraction) * times.size))
        t = times[start:]
        y = values[start:]
        if t.size < 3 or np.ptp(t) == 0:
            return 0.0
        slope, _intercept = np.polyfit(t, y, 1)
        return float(slope)

    def mean_sojourn_time(self) -> float:
        if not self.sojourn_times:
            return float("nan")
        return float(np.mean(self.sojourn_times))

    def mean_download_time(self) -> float:
        if not self.download_times:
            return float("nan")
        return float(np.mean(self.download_times))

    def mean_census_error(self) -> float:
        """Mean over samples of the mean-L1 census-estimate error (NaN when
        the run used the exact oracle census)."""
        if not self.census_error:
            return float("nan")
        return float(np.mean(self.census_error))

    def mean_census_staleness(self) -> float:
        """Mean over samples of the mean estimate staleness (NaN under the
        exact oracle census, whose staleness is identically zero)."""
        if not self.census_staleness:
            return float("nan")
        return float(np.mean(self.census_staleness))

    def fraction_time_empty(self) -> float:
        """Fraction of samples at which the system was empty."""
        values = self.population_array()
        if values.size == 0:
            return 0.0
        return float(np.mean(values == 0))

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of headline statistics (for tables and CSV output)."""
        return {
            "final_population": float(self.final_population),
            "peak_population": float(self.peak_population),
            "mean_population": self.mean_population(),
            "population_slope": self.population_slope(),
            "one_club_slope": self.one_club_slope(),
            "total_arrivals": float(self.total_arrivals),
            "total_departures": float(self.total_departures),
            "total_downloads": float(self.total_downloads),
            "wasted_contacts": float(self.wasted_contacts),
            "neighbor_useful_ticks": float(self.neighbor_useful_ticks),
            "neighbor_useless_ticks": float(self.neighbor_useless_ticks),
            "culled_peers": float(self.culled_peers),
            "mean_sojourn_time": self.mean_sojourn_time(),
            "mean_download_time": self.mean_download_time(),
            "mean_census_error": self.mean_census_error(),
            "mean_census_staleness": self.mean_census_staleness(),
        }


__all__ = ["SwarmMetrics"]
