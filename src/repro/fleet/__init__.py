"""Fleet layer: many independent swarms as one sharded, resumable workload.

The paper's Theorem 1 answers the stability question *per swarm*; a
production tracker serves *fleets* of concurrent swarms whose parameters are
drawn from a population.  This subsystem turns the scenario registry and the
dual-kernel runner into a phase-diagram machine:

* :mod:`repro.fleet.spec` — :class:`FleetSpec` (swarm count + a parameter
  sampler + a weighted scenario mix + run controls) and the deterministic
  per-swarm task materialization;
* :mod:`repro.fleet.scheduler` — :class:`FleetScheduler` /
  :func:`run_fleet` / :func:`resume_fleet`: chunked ``multiprocessing``
  sharding with results independent of the worker count, streaming
  aggregation, and on-disk checkpoint/resume (including mid-swarm kernel
  snapshots);
* :mod:`repro.fleet.result` — :class:`FleetSwarmRecord` and the incremental
  :class:`FleetResult` census (one-club prevalence, sojourn/download
  distributions, Theorem-1-vs-outcome confusion counts, per-scenario
  breakdown);
* :mod:`repro.fleet.checkpoint` — the atomic pickle checkpoint format.

The fleet-level experiment (a capture phase diagram over the Theorem-1
boundary) lives in :mod:`repro.experiments.fleet`.
"""

from .checkpoint import FleetCheckpoint, load_checkpoint, save_checkpoint
from .result import FleetResult, FleetSwarmRecord, record_from_result, theory_verdict
from .scheduler import FleetScheduler, resume_fleet, run_fleet
from .spec import (
    FixedSampler,
    FleetSpec,
    GridSampler,
    PLAIN_LABEL,
    ParameterSampler,
    RandomSampler,
    SAMPLABLE_FIELDS,
    ScenarioWeight,
    SwarmTask,
    materialize_tasks,
    normalize_fleet_seed,
)

__all__ = [
    "FixedSampler",
    "FleetCheckpoint",
    "FleetResult",
    "FleetScheduler",
    "FleetSpec",
    "FleetSwarmRecord",
    "GridSampler",
    "PLAIN_LABEL",
    "ParameterSampler",
    "RandomSampler",
    "SAMPLABLE_FIELDS",
    "ScenarioWeight",
    "SwarmTask",
    "load_checkpoint",
    "materialize_tasks",
    "normalize_fleet_seed",
    "record_from_result",
    "resume_fleet",
    "run_fleet",
    "save_checkpoint",
    "theory_verdict",
]
